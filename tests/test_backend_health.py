"""Health-based simulation backend degradation.

A crash in a compiled backend (vector or trace kernels) must never take a
job down when a slower tier can still answer: ``run_testbench`` feeds a
per-backend circuit breaker and degrades vector → trace → stepwise.  Strict
env forcing (``REPRO_TB_BACKEND=vector|trace``) opts out — a forced backend
propagates its crash and ignores the breaker, because silently answering
from another tier would invalidate the forcing.
"""

import pytest

from repro.sim import testbench as tb
from repro.sim.testbench import (
    FunctionalPoint,
    Testbench,
    backend_health,
    reset_backend_health,
    run_testbench,
)
from repro.verilog.parser import parse_verilog

PASSTHROUGH = """
module top(input wire [3:0] d, output wire [3:0] q);
  assign q = d;
endmodule
"""

MODULE = parse_verilog(PASSTHROUGH)[0]
BENCH = Testbench(
    points=[FunctionalPoint(inputs={"d": value}) for value in range(4)],
    observed_outputs=["q"],
    reset_cycles=0,
)


@pytest.fixture(autouse=True)
def _fresh_health(monkeypatch):
    monkeypatch.setenv("REPRO_SIM_HEALTH_THRESHOLD", "2")
    monkeypatch.delenv("REPRO_TB_BACKEND", raising=False)
    reset_backend_health()
    yield
    reset_backend_health()


def _crash_trace(monkeypatch, calls):
    def boom(dut, reference, testbench):
        calls.append(1)
        raise RuntimeError("chaos: trace kernel crash")

    monkeypatch.setattr(tb, "_run_testbench_trace", boom)


class TestTraceDegradation:
    def test_trace_crash_degrades_to_stepwise(self, monkeypatch):
        calls = []
        _crash_trace(monkeypatch, calls)
        report = run_testbench(MODULE, MODULE, BENCH)
        assert report.passed and calls == [1]
        assert backend_health()["trace"]["state"] == "closed"

    def test_breaker_opens_and_skips_the_crashing_tier(self, monkeypatch):
        calls = []
        _crash_trace(monkeypatch, calls)
        for _ in range(2):
            assert run_testbench(MODULE, MODULE, BENCH).passed
        assert backend_health()["trace"]["state"] == "open"
        # Third run: breaker open, the trace tier is not even attempted.
        assert run_testbench(MODULE, MODULE, BENCH).passed
        assert len(calls) == 2

    def test_simulation_errors_are_not_health_evidence(self, monkeypatch):
        def raise_sim_error(dut, reference, testbench):
            from repro.verilog.simulator import SimulationError

            raise SimulationError("semantic problem, not a kernel crash")

        monkeypatch.setattr(tb, "_run_testbench_trace", raise_sim_error)
        from repro.verilog.simulator import SimulationError

        with pytest.raises(SimulationError):
            run_testbench(MODULE, MODULE, BENCH)
        assert backend_health()["trace"]["state"] == "closed"


class TestStrictForcingBypassesHealth:
    def test_forced_trace_propagates_the_crash(self, monkeypatch):
        calls = []
        _crash_trace(monkeypatch, calls)
        monkeypatch.setenv("REPRO_TB_BACKEND", "trace")
        with pytest.raises(RuntimeError, match="trace kernel crash"):
            run_testbench(MODULE, MODULE, BENCH)

    def test_forced_trace_ignores_an_open_breaker(self, monkeypatch):
        calls = []
        _crash_trace(monkeypatch, calls)
        for _ in range(2):
            run_testbench(MODULE, MODULE, BENCH)
        assert backend_health()["trace"]["state"] == "open"
        monkeypatch.setenv("REPRO_TB_BACKEND", "trace")
        with pytest.raises(RuntimeError):
            run_testbench(MODULE, MODULE, BENCH)
        assert len(calls) == 3  # strict forcing attempted the tier anyway


class TestVectorDegradation:
    def test_vector_crash_degrades_to_trace(self, monkeypatch):
        def boom(dut, reference, testbench):
            raise RuntimeError("chaos: vector kernel crash")

        monkeypatch.setattr(tb, "_run_testbench_vector", boom)
        report = run_testbench(MODULE, MODULE, BENCH, backend="vector")
        assert report.passed  # answered by the trace tier
        assert backend_health()["vector"]["state"] == "closed"
        assert run_testbench(MODULE, MODULE, BENCH, backend="vector").passed
        assert backend_health()["vector"]["state"] == "open"


class TestHealthKnobs:
    def test_zero_threshold_disables_health_tracking(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_HEALTH_THRESHOLD", "0")
        reset_backend_health()
        calls = []
        _crash_trace(monkeypatch, calls)
        for _ in range(4):
            assert run_testbench(MODULE, MODULE, BENCH).passed
        assert len(calls) == 4  # never skipped: no breaker in the way
        assert backend_health()["trace"] == {"state": "disabled"}

    def test_success_heals_the_failure_streak(self, monkeypatch):
        calls = []
        _crash_trace(monkeypatch, calls)
        assert run_testbench(MODULE, MODULE, BENCH).passed
        monkeypatch.undo()
        monkeypatch.setenv("REPRO_SIM_HEALTH_THRESHOLD", "2")
        assert run_testbench(MODULE, MODULE, BENCH).passed
        assert backend_health()["trace"]["state"] == "closed"
        assert backend_health()["trace"]["failures"] == 0
