"""Crash-resume equivalence: SIGKILL a live campaign, resume, converge.

The harshest fault class in the chaos matrix: the orchestrator process is
killed with SIGKILL (no handlers, no atexit, torn tail writes possible) at
seeded-random points mid-campaign, then re-launched with the identical
command line.  The contract under test:

* the campaign converges to ``complete`` within a bounded number of resumes,
* the converged store is bit-identical (``store_unit_digest``) to one from
  an uninterrupted run of the same spec,
* stage digests in the final manifest match the uninterrupted run, and
* a further re-run replays **zero** work units (the frontier is the store).
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.campaign.checkpoint import store_unit_digest
from repro.retry import seeded_rng

pytestmark = pytest.mark.chaos

SRC = str(Path(__file__).resolve().parents[1] / "src")
QUICK = ["--quick", "--samples", "1", "--seed", "7", "--chunk", "1"]


def campaign_argv(store, *extra):
    return [sys.executable, "-m", "repro.campaign", "--store", str(store), *QUICK, *extra]


def campaign_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    # Keep subprocess behaviour hermetic regardless of the host environment.
    for name in list(env):
        if name.startswith("REPRO_"):
            env.pop(name)
    return env


def run_to_completion(store, *extra):
    completed = subprocess.run(
        campaign_argv(store, *extra),
        env=campaign_env(),
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert completed.returncode == 0, completed.stderr
    return json.loads(completed.stdout.strip().splitlines()[-1])


class TestSigkillResume:
    def test_kill_resume_converges_bit_identically(self, tmp_path):
        started = time.monotonic()
        reference = run_to_completion(tmp_path / "reference")
        reference_seconds = time.monotonic() - started
        assert reference["status"] == "complete"

        store = tmp_path / "chaos"
        rng = seeded_rng("campaign-sigkill", 7)
        argv = campaign_argv(store, "--throttle", "0.02")
        # Kill delays are derived from the measured fault-free runtime so the
        # window stays inside the campaign regardless of how fast the quick
        # spec's workload happens to be on this machine or revision, and they
        # escalate per attempt so early rounds kill mid-run while later rounds
        # leave a mostly-resumed campaign room to finish.
        window = max(0.15, min(reference_seconds * 0.6, 1.2))
        kills = 0
        for attempt in range(8):
            process = subprocess.Popen(
                argv,
                env=campaign_env(),
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
            delay = 0.1 + rng.random() * window + attempt * max(reference_seconds, 0.5)
            time.sleep(delay)
            if process.poll() is not None:
                process.wait()
                break  # finished before this kill landed
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=30)
            kills += 1
        else:
            pytest.fail("campaign did not converge within 8 kill/resume rounds")
        assert kills >= 1, "every round finished before the kill; widen the window"

        # The killed store must load cleanly (torn tails truncated on reopen)
        # and the surviving frontier must be bit-identical to fault-free work.
        final = run_to_completion(store, "--throttle", "0.02")
        assert final["status"] == "complete"
        assert store_unit_digest(str(store)) == store_unit_digest(
            str(tmp_path / "reference")
        )
        assert [s["result"]["digest"] for s in final["stages"]] == [
            s["result"]["digest"] for s in reference["stages"]
        ]

        # Zero-replay: one more run must execute nothing at all.
        verify = run_to_completion(store, "--throttle", "0.02")
        assert verify["executed"] == 0
        assert verify["resumed"] is True

    def test_sigterm_drains_and_resume_completes(self, tmp_path):
        store = tmp_path / "drain"
        process = subprocess.Popen(
            campaign_argv(store, "--throttle", "0.05"),
            env=campaign_env(),
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        time.sleep(0.8)
        if process.poll() is None:
            process.send_signal(signal.SIGTERM)
        stdout, stderr = process.communicate(timeout=60)
        assert process.returncode == 0, stderr
        result = json.loads(stdout.strip().splitlines()[-1])
        assert result["status"] in ("drained", "complete")

        final = run_to_completion(store)
        assert final["status"] == "complete"
        reference = run_to_completion(tmp_path / "reference")
        assert store_unit_digest(str(store)) == store_unit_digest(
            str(tmp_path / "reference")
        )
        assert [s["result"]["digest"] for s in final["stages"]] == [
            s["result"]["digest"] for s in reference["stages"]
        ]
