"""Unit and integration tests for the fault-tolerant campaign orchestrator.

Covers the control primitives (budget, deadline, cancel, priority gate), the
unified retry/breaker module, store meta records and manifest checkpoints,
the ResilientStore write-fault buffer, and whole-campaign orchestration:
complete runs, zero-replay resumes, drain, deadline/budget stops and
interactive preemption.  Crash (SIGKILL) resumes live in
``test_campaign_resume.py`` and the fault matrix in ``test_campaign_chaos.py``.
"""

import json
import threading

import pytest

from repro.campaign.budget import (
    Budget,
    BudgetExceeded,
    CampaignCancelled,
    CancelToken,
    Deadline,
    DeadlineExceeded,
    MeteredClient,
)
from repro.campaign.checkpoint import (
    CheckpointLog,
    ResilientStore,
    list_campaigns,
    payload_digest,
    store_unit_digest,
)
from repro.campaign.chaos import FlakyStore
from repro.campaign.config import CampaignConfig
from repro.campaign.orchestrator import CampaignOrchestrator
from repro.campaign.scheduler import PriorityGate
from repro.campaign.spec import (
    KIND_REPORT,
    KIND_SWEEP,
    CampaignSpec,
    StageSpec,
    default_campaign,
    sweep_units,
)
from repro.experiments.store import ResultStore
from repro.experiments.work import WorkUnit
from repro.obs import EventBus
from repro.retry import (
    BackoffPolicy,
    BreakerOpenError,
    CircuitBreaker,
    HttpError,
    MalformedResponseError,
    RetryPolicy,
    TransportTimeout,
    emit_retry,
    is_transport_fault,
    seeded_rng,
)


def quick_spec(seed=0, samples=1, fuzz_programs=2):
    return default_campaign(samples=samples, fuzz_programs=fuzz_programs, seed=seed)


def quick_config(tmp_path, name="store", **kwargs):
    kwargs.setdefault("chunk_size", 2)
    return CampaignConfig(store_path=str(tmp_path / name), **kwargs)


# --------------------------------------------------------------------- spec


class TestCampaignSpec:
    def test_round_trips_through_json(self):
        spec = quick_spec()
        document = json.loads(json.dumps(spec.to_dict()))
        assert CampaignSpec.from_dict(document) == spec
        assert CampaignSpec.from_dict(document).campaign_id == spec.campaign_id

    def test_campaign_id_is_content_addressed(self):
        assert quick_spec(seed=0).campaign_id == quick_spec(seed=0).campaign_id
        assert quick_spec(seed=0).campaign_id != quick_spec(seed=1).campaign_id

    def test_stage_names_must_be_unique(self):
        with pytest.raises(ValueError, match="unique"):
            CampaignSpec(
                "dup",
                stages=(StageSpec("a", KIND_SWEEP), StageSpec("a", KIND_REPORT)),
            )

    def test_unknown_stage_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown stage kind"):
            StageSpec("x", "mystery")

    def test_sweep_units_are_deterministic_and_zero_shot_is_single_shot(self):
        stage = quick_spec().stage("generate")
        first = sweep_units(stage, 0)
        second = sweep_units(stage, 0)
        assert first == second
        assert all(
            unit.max_iterations == 0 for unit in first if unit.strategy == "zero_shot"
        )

    def test_sweep_units_rejects_unknown_strategy(self):
        stage = StageSpec("bad", KIND_SWEEP, {"strategies": ["telepathy"]})
        with pytest.raises(ValueError, match="telepathy"):
            sweep_units(stage, 0)


# ------------------------------------------------------------ control primitives


class _StubClient:
    def __init__(self):
        self.calls = 0

    def complete(self, messages):
        self.calls += 1
        return "ok"


class TestBudget:
    def test_charges_until_limit_then_raises_without_spending(self):
        budget = Budget(limit=2)
        budget.charge()
        budget.charge()
        with pytest.raises(BudgetExceeded):
            budget.charge()
        assert budget.spent == 2
        assert budget.remaining() == 0

    def test_unlimited_budget_still_counts_spend(self):
        budget = Budget()
        for _ in range(5):
            budget.charge()
        assert budget.spent == 5
        assert budget.remaining() is None

    def test_seeded_spend_spans_resumes(self):
        budget = Budget(limit=10, spent=9)
        budget.charge()
        with pytest.raises(BudgetExceeded):
            budget.charge()
        assert budget.spent == 10


class TestDeadlineAndCancel:
    def test_deadline_expires_on_fake_clock(self):
        now = [0.0]
        deadline = Deadline(5.0, clock=lambda: now[0])
        deadline.check()
        now[0] = 5.1
        assert deadline.expired()
        with pytest.raises(DeadlineExceeded):
            deadline.check()

    def test_none_deadline_never_expires(self):
        deadline = Deadline(None)
        assert deadline.remaining() is None
        deadline.check()

    def test_cancel_token_is_sticky_with_reason(self):
        token = CancelToken()
        token.check()
        token.set("drain please")
        token.set("second reason ignored")
        assert token.is_set
        with pytest.raises(CampaignCancelled, match="drain please"):
            token.check()

    def test_metered_client_refuses_before_touching_inner(self):
        inner = _StubClient()
        client = MeteredClient(inner, budget=Budget(limit=1))
        client.complete([])
        with pytest.raises(BudgetExceeded):
            client.complete([])
        assert inner.calls == 1  # the refused call never reached the inner client


class TestPriorityGate:
    def test_counts_nested_interactive_sections(self):
        gate = PriorityGate()
        assert not gate.busy
        with gate.interactive():
            assert gate.busy
            with gate.interactive():
                assert gate.active == 2
            assert gate.busy
        assert not gate.busy
        assert gate.marks == 2

    def test_wait_until_clear_bounded(self):
        gate = PriorityGate()
        gate.interactive_begin()
        assert gate.wait_until_clear(timeout=0.05) is False
        timer = threading.Timer(0.05, gate.interactive_end)
        timer.start()
        try:
            assert gate.wait_until_clear(timeout=2.0) is True
        finally:
            timer.cancel()


# ---------------------------------------------------------------- retry module


class TestRetryPrimitives:
    def test_backoff_policy_is_capped_exponential(self):
        policy = BackoffPolicy(base=0.1, factor=2.0, cap=0.5)
        assert [policy.delay(k) for k in range(1, 5)] == [0.1, 0.2, 0.4, 0.5]

    def test_retry_policy_jitter_is_seed_deterministic(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=1.0, jitter=0.5)
        first = [policy.delay(k, seeded_rng("t", 1)) for k in (1, 2, 3)]
        second = [policy.delay(k, seeded_rng("t", 1)) for k in (1, 2, 3)]
        assert first == second
        for attempt, delay in enumerate(first, start=1):
            base = min(1.0, 0.1 * 2 ** (attempt - 1))
            assert base * 0.75 <= delay <= base * 1.25

    def test_transport_fault_taxonomy(self):
        assert is_transport_fault(TransportTimeout("t"))
        assert is_transport_fault(HttpError(503))
        assert is_transport_fault(MalformedResponseError("m"))
        assert is_transport_fault(TimeoutError())
        assert is_transport_fault(ConnectionError())
        assert not is_transport_fault(BreakerOpenError("open"))
        assert not is_transport_fault(ValueError("v"))

    def test_emit_retry_publishes_tagged_event(self):
        bus = EventBus()
        subscription = bus.subscribe("retry")
        emit_retry(bus, "campaign", 2, "TransportTimeout", 0.25)
        events = subscription.pop_all()
        assert len(events) == 1
        assert events[0].name == "attempt"
        assert events[0].attrs["source"] == "campaign"
        assert events[0].attrs["attempt"] == 2


class TestCircuitBreaker:
    def make(self, bus=None, threshold=3, cooldown=10.0, probes=1):
        now = [0.0]
        breaker = CircuitBreaker(
            threshold, cooldown, probes, name="llm", bus=bus, clock=lambda: now[0]
        )
        return breaker, now

    def test_opens_after_threshold_consecutive_failures(self):
        breaker, _ = self.make()
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.snapshot()["rejections"] == 1

    def test_half_open_probe_success_closes(self):
        breaker, now = self.make()
        for _ in range(3):
            breaker.record_failure()
        now[0] = 10.0
        assert breaker.state == "half-open"
        assert breaker.allow()  # claims the single probe slot
        assert not breaker.allow()  # second caller rejected while probing
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_half_open_probe_failure_reopens(self):
        breaker, now = self.make()
        for _ in range(3):
            breaker.record_failure()
        now[0] = 10.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.snapshot()["opens"] == 2

    def test_success_resets_failure_streak(self):
        breaker, _ = self.make()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_transitions_publish_breaker_events(self):
        bus = EventBus()
        subscription = bus.subscribe("llm.breaker")
        breaker, now = self.make(bus=bus)
        for _ in range(3):
            breaker.record_failure()
        now[0] = 10.0
        assert breaker.allow()
        breaker.record_success()
        names = [event.name for event in subscription.pop_all()]
        assert names == ["open", "half-open", "close"]

    def test_from_environment_disable_and_tuning(self, monkeypatch):
        monkeypatch.setenv("REPRO_BREAKER_THRESHOLD", "0")
        assert CircuitBreaker.from_environment() is None
        monkeypatch.setenv("REPRO_BREAKER_THRESHOLD", "7")
        monkeypatch.setenv("REPRO_BREAKER_COOLDOWN", "2.5")
        breaker = CircuitBreaker.from_environment()
        assert breaker.threshold == 7 and breaker.cooldown == 2.5


# ----------------------------------------------------------- store meta records


class TestStoreMeta:
    def test_meta_records_are_separate_from_units(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        store.put_meta("campaign/x/manifest/00000001", {"status": "running"})
        assert store.get_meta("campaign/x/manifest/00000001") == {"status": "running"}
        assert store.get("campaign/x/manifest/00000001") is None
        assert store.unit_fingerprints() == []
        assert store.meta_keys() == ["campaign/x/manifest/00000001"]
        store.close()

    def test_meta_survives_reopen_and_is_first_wins(self, tmp_path):
        path = str(tmp_path / "store")
        store = ResultStore(path)
        store.put_meta("k", {"value": 1})
        store.put_meta("k", {"value": 2})  # first-wins, like unit records
        store.close()
        reopened = ResultStore(path)
        assert reopened.get_meta("k") == {"value": 1}
        reopened.close()

    def test_meta_keys_prefix_filter(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        store.put_meta("campaign/a/manifest/00000001", {})
        store.put_meta("campaign/b/manifest/00000001", {})
        store.put_meta("other/key", {})
        assert store.meta_keys("campaign/a/") == ["campaign/a/manifest/00000001"]
        assert len(store.meta_keys()) == 3
        store.close()


class TestCheckpointLog:
    def test_versions_are_monotonic_and_newest_wins(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        log = CheckpointLog(store, "abc")
        assert log.load_latest() is None
        assert log.save({"status": "running"}) == 1
        assert log.save({"status": "complete"}) == 2
        fresh = CheckpointLog(store, "abc")
        manifest = fresh.load_latest()
        assert manifest["status"] == "complete" and manifest["seq"] == 2
        assert list_campaigns(store) == ["abc"]
        store.close()

    def test_payload_digest_is_order_sensitive(self):
        a = [{"x": 1}, {"x": 2}]
        assert payload_digest(a) == payload_digest([{"x": 1}, {"x": 2}])
        assert payload_digest(a) != payload_digest(list(reversed(a)))


class TestResilientStore:
    def test_buffers_failed_writes_and_flushes_when_fault_clears(self, tmp_path):
        inner = ResultStore(str(tmp_path / "store"))
        flaky = FlakyStore(inner, rate=1.0, limit=2)  # first two writes fail
        store = ResilientStore(flaky)
        unit = WorkUnit("zero_shot", "GPT-4o mini", "alu_w4", 0, 0, 0, 0)
        store.put_meta("a", {"n": 1})
        store.put("f" * 8, unit, {"n": 2})
        # The second write queues behind the backlog without a fresh fault.
        assert store.buffered == 2 and store.write_faults == 1
        # Parked records are visible to the writer process.
        assert store.get_meta("a") == {"n": 1}
        assert store.get("f" * 8) == {"n": 2}
        assert "a" in store.meta_keys()
        assert store.flush() == 0
        assert inner.get_meta("a") == {"n": 1} and inner.get("f" * 8) == {"n": 2}
        inner.close()

    def test_backlog_is_bounded(self, tmp_path):
        inner = ResultStore(str(tmp_path / "store"))
        store = ResilientStore(FlakyStore(inner, rate=1.0), max_buffered=2)
        store.put_meta("a", {})
        store.put_meta("b", {})
        with pytest.raises(OSError, match="backlog"):
            store.put_meta("c", {})
        inner.close()


# ------------------------------------------------------------- orchestration


class TestOrchestrator:
    def test_campaign_completes_all_stages(self, tmp_path):
        result = CampaignOrchestrator(quick_spec(), quick_config(tmp_path)).run()
        assert result.status == "complete"
        assert [stage["status"] for stage in result.stages] == ["complete"] * 4
        assert result.executed > 0
        assert result.llm_spent > 0
        report = result.stage("verify")["result"]["report"]
        assert report["samples"] == 2

    def test_rerun_replays_zero_units_and_keeps_digests(self, tmp_path):
        config = quick_config(tmp_path)
        first = CampaignOrchestrator(quick_spec(), config).run()
        second = CampaignOrchestrator(quick_spec(), config).run()
        assert second.status == "complete"
        assert second.resumed is True
        assert second.executed == 0  # nothing replayed
        assert [s["result"]["digest"] for s in second.stages] == [
            s["result"]["digest"] for s in first.stages
        ]
        assert second.llm_spent == first.llm_spent  # purse spans resumes

    def test_two_stores_same_spec_are_bit_identical(self, tmp_path):
        config_a = quick_config(tmp_path, "a")
        config_b = quick_config(tmp_path, "b", chunk_size=1)
        result_a = CampaignOrchestrator(quick_spec(), config_a).run()
        result_b = CampaignOrchestrator(quick_spec(), config_b).run()
        assert [s["result"]["digest"] for s in result_a.stages] == [
            s["result"]["digest"] for s in result_b.stages
        ]
        assert store_unit_digest(config_a.store_path) == store_unit_digest(
            config_b.store_path
        )

    def test_drain_checkpoints_and_resume_converges(self, tmp_path):
        config = quick_config(tmp_path, chunk_size=1)
        cell = {}
        calls = {"n": 0}

        def middleware(client, unit):
            class _Trigger:
                def complete(self, messages):
                    calls["n"] += 1
                    if calls["n"] == 3:
                        cell["orch"].request_drain("test drain")
                    return client.complete(messages)

            return _Trigger()

        orchestrator = CampaignOrchestrator(
            quick_spec(), config, client_middleware=middleware
        )
        cell["orch"] = orchestrator
        drained = orchestrator.run()
        assert drained.status == "drained"
        assert drained.checkpoint_seq > 0

        resumed = CampaignOrchestrator(quick_spec(), config).run()
        assert resumed.status == "complete"
        # Bit-identical to a fault-free campaign in a fresh store.
        reference = quick_config(tmp_path, "ref")
        CampaignOrchestrator(quick_spec(), reference).run()
        assert store_unit_digest(config.store_path) == store_unit_digest(
            reference.store_path
        )

    def test_deadline_stops_then_resume_completes(self, tmp_path):
        config = quick_config(tmp_path, deadline=0.001, throttle=0.01)
        stopped = CampaignOrchestrator(quick_spec(), config).run()
        assert stopped.status == "deadline-exceeded"
        relaxed = quick_config(tmp_path)
        finished = CampaignOrchestrator(quick_spec(), relaxed).run()
        assert finished.status == "complete"

    def test_budget_stops_then_resume_spends_the_difference(self, tmp_path):
        reference = CampaignOrchestrator(quick_spec(), quick_config(tmp_path, "ref")).run()
        config = quick_config(tmp_path, llm_budget=3)
        stopped = CampaignOrchestrator(quick_spec(), config).run()
        assert stopped.status == "budget-exhausted"
        assert stopped.llm_spent <= 3
        relaxed = quick_config(tmp_path)
        finished = CampaignOrchestrator(quick_spec(), relaxed).run()
        assert finished.status == "complete"
        # The purse carries across resumes.  A unit interrupted mid-dialogue
        # re-runs from scratch, so total spend can exceed the fault-free bill
        # by at most one unit's conversation — never undercount it.
        assert finished.llm_spent >= reference.llm_spent
        assert [s["result"]["digest"] for s in finished.stages] == [
            s["result"]["digest"] for s in reference.stages
        ]

    def test_interactive_traffic_preempts_campaign(self, tmp_path):
        gate = PriorityGate()
        gate.interactive_begin()
        release = threading.Timer(0.1, gate.interactive_end)
        release.start()
        try:
            result = CampaignOrchestrator(
                quick_spec(), quick_config(tmp_path), gate=gate
            ).run()
        finally:
            release.cancel()
        assert result.status == "complete"
        assert result.preemptions >= 1

    def test_campaign_events_flow_on_the_bus(self, tmp_path):
        bus = EventBus()
        subscription = bus.subscribe("campaign")
        result = CampaignOrchestrator(quick_spec(), quick_config(tmp_path), bus=bus).run()
        assert result.status == "complete"
        names = {event.name for event in subscription.pop_all()}
        assert {"start", "stage", "progress", "checkpoint", "budget", "complete"} <= names

    def test_resume_classmethod_restores_spec_from_manifest(self, tmp_path):
        config = quick_config(tmp_path)
        first = CampaignOrchestrator(quick_spec(), config).run()
        orchestrator = CampaignOrchestrator.resume(first.campaign_id, config)
        assert orchestrator.spec == quick_spec()
        result = orchestrator.run()
        assert result.status == "complete" and result.executed == 0

    def test_resume_unknown_campaign_raises(self, tmp_path):
        config = quick_config(tmp_path)
        store = ResultStore(config.store_path)
        store.close()
        with pytest.raises(KeyError):
            CampaignOrchestrator.resume("feedfacecafe", config)

    def test_report_stage_must_source_a_sweep(self, tmp_path):
        spec = CampaignSpec(
            "bad",
            stages=(
                StageSpec("generate", KIND_SWEEP, {"samples": 1}),
                StageSpec("verify", KIND_REPORT, {"source": "verify"}),
            ),
        )
        with pytest.raises(ValueError, match="must source a sweep"):
            CampaignOrchestrator(spec, quick_config(tmp_path)).run()


class TestCampaignCli:
    def run_cli(self, args):
        from repro.campaign.__main__ import main

        return main(args)

    def test_quick_campaign_runs_and_reruns_reuse(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert self.run_cli(["--store", store, "--quick", "--samples", "1"]) == 0
        first = json.loads(capsys.readouterr().out.strip().splitlines()[-1])
        assert first["status"] == "complete"
        assert self.run_cli(["--store", store, "--quick", "--samples", "1"]) == 0
        second = json.loads(capsys.readouterr().out.strip().splitlines()[-1])
        assert second["executed"] == 0 and second["resumed"] is True

    def test_list_and_resume(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        self.run_cli(["--store", store, "--quick", "--samples", "1"])
        result = json.loads(capsys.readouterr().out.strip().splitlines()[-1])
        assert self.run_cli(["--store", store, "--list"]) == 0
        assert result["campaign"] in capsys.readouterr().out
        assert self.run_cli(["--store", store, "--resume", result["campaign"]]) == 0
        resumed = json.loads(capsys.readouterr().out.strip().splitlines()[-1])
        assert resumed["executed"] == 0

    def test_budget_stop_exit_code(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        code = self.run_cli(
            ["--store", store, "--quick", "--samples", "1", "--budget", "2"]
        )
        assert code == 4
        result = json.loads(capsys.readouterr().out.strip().splitlines()[-1])
        assert result["status"] == "budget-exhausted"

    def test_missing_store_is_usage_error(self, monkeypatch):
        monkeypatch.delenv("REPRO_CAMPAIGN_STORE", raising=False)
        monkeypatch.delenv("REPRO_RESULT_STORE", raising=False)
        assert self.run_cli(["--quick"]) == 2
