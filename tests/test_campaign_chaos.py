"""Stack-wide chaos matrix: every fault class converges to fault-free results.

Each test injects one fault class — LLM transport faults, store write faults,
torn tail records, event-bus overload, executor loss — into a full campaign
and asserts the store and stage digests are bit-identical to an uninterrupted
fault-free run of the same spec.  The remaining class, orchestrator SIGKILL,
lives in ``test_campaign_resume.py`` (it needs a subprocess).

Determinism invariants that make this possible:

* injected faults raise *before* the wrapped client runs, so the synthetic
  LLM's RNG never advances on a faulted call;
* faults raise *outside* :class:`MeteredClient`, so a faulted call is never
  charged against the budget;
* the store is the unit frontier — replays hit the memo/store tier and the
  first-wins log keeps whichever record landed first.
"""

import pytest

from repro.campaign.chaos import (
    FAULT_KINDS,
    FaultPlan,
    FaultyClient,
    FlakyStore,
    chaos_middleware,
    overload_bus,
    tear_store_tail,
)
from repro.campaign.checkpoint import ResilientStore, store_unit_digest
from repro.campaign.config import CampaignConfig
from repro.campaign.orchestrator import CampaignOrchestrator
from repro.campaign.spec import default_campaign
from repro.obs import EventBus
from repro.retry import CircuitBreaker, TransportTimeout

pytestmark = pytest.mark.chaos


def chaos_spec():
    return default_campaign(samples=1, fuzz_programs=2, seed=3)


def chaos_config(tmp_path, name, **kwargs):
    kwargs.setdefault("chunk_size", 1)
    kwargs.setdefault("unit_retries", 6)
    return CampaignConfig(store_path=str(tmp_path / name), **kwargs)


@pytest.fixture()
def reference(tmp_path):
    """Fault-free oracle: digests and spend of an unperturbed campaign."""
    result = CampaignOrchestrator(chaos_spec(), chaos_config(tmp_path, "ref")).run()
    assert result.status == "complete"
    return {
        "result": result,
        "digests": [s["result"]["digest"] for s in result.stages],
        "units": store_unit_digest(str(tmp_path / "ref")),
    }


def assert_identical(tmp_path, name, result, reference):
    assert result.status == "complete"
    assert [s["result"]["digest"] for s in result.stages] == reference["digests"]
    assert store_unit_digest(str(tmp_path / name)) == reference["units"]


class TestLlmTransportChaos:
    def test_fault_plan_schedule_is_seeded(self):
        plan_a = FaultPlan(rate=0.5, seed=11, limit=8)
        plan_b = FaultPlan(rate=0.5, seed=11, limit=8)
        schedule_a = [plan_a.next_fault() for _ in range(30)]
        assert schedule_a == [plan_b.next_fault() for _ in range(30)]
        assert sum(1 for kind in schedule_a if kind) == 8
        assert {kind for kind in schedule_a if kind} <= set(FAULT_KINDS)

    def test_faulty_client_raises_before_inner_call(self):
        calls = []

        class _Inner:
            def complete(self, messages):
                calls.append(messages)
                return "ok"

        client = FaultyClient(_Inner(), FaultPlan(rate=1.0, limit=1))
        with pytest.raises(Exception):
            client.complete(["hello"])
        assert calls == []  # the inner RNG never advanced
        assert client.complete(["hello"]) == "ok"

    def test_transport_faults_converge_bit_identically(self, tmp_path, reference):
        plan = FaultPlan(rate=0.35, seed=5, limit=10)
        result = CampaignOrchestrator(
            chaos_spec(),
            chaos_config(tmp_path, "llm"),
            client_middleware=chaos_middleware(plan),
            breaker=CircuitBreaker(2, 0.05, name="llm"),
        ).run()
        assert_identical(tmp_path, "llm", result, reference)
        assert plan.snapshot()["injected"] > 0
        # A faulted call itself is never charged (the fault raises outside the
        # budget meter), but a retried multi-call unit re-charges its earlier
        # successful calls — so spend is bounded below by the fault-free bill.
        assert result.llm_spent >= reference["result"].llm_spent

    def test_breaker_opens_under_fault_burst(self, tmp_path, reference):
        bus = EventBus()
        subscription = bus.subscribe("llm.breaker")
        result = CampaignOrchestrator(
            chaos_spec(),
            chaos_config(tmp_path, "burst"),
            client_middleware=chaos_middleware(FaultPlan(rate=1.0, seed=1, limit=4)),
            breaker=CircuitBreaker(2, 0.05, name="llm", bus=bus),
            bus=bus,
        ).run()
        assert_identical(tmp_path, "burst", result, reference)
        names = [event.name for event in subscription.pop_all()]
        assert "open" in names and "close" in names
        assert result.breaker["opens"] >= 1


class TestStoreChaos:
    def test_enospc_bursts_are_buffered_and_flushed(self, tmp_path, reference):
        flaky = {}

        def wrapper(store):
            flaky["store"] = FlakyStore(store, rate=0.3, seed=9, limit=12)
            return ResilientStore(flaky["store"])

        result = CampaignOrchestrator(
            chaos_spec(),
            chaos_config(tmp_path, "enospc"),
            store_wrapper=wrapper,
        ).run()
        assert_identical(tmp_path, "enospc", result, reference)
        assert flaky["store"].injected > 0

    def test_torn_tail_is_truncated_on_resume(self, tmp_path, reference):
        config = chaos_config(tmp_path, "torn", llm_budget=4)
        stopped = CampaignOrchestrator(chaos_spec(), config).run()
        assert stopped.status == "budget-exhausted"
        tear_store_tail(config.store_path)
        resumed = CampaignOrchestrator(
            chaos_spec(), chaos_config(tmp_path, "torn")
        ).run()
        assert_identical(tmp_path, "torn", resumed, reference)


class TestBusChaos:
    def test_overloaded_bus_never_blocks_the_campaign(self, tmp_path, reference):
        bus = EventBus()
        jammed = overload_bus(bus, maxsize=1)
        result = CampaignOrchestrator(
            chaos_spec(), chaos_config(tmp_path, "bus"), bus=bus
        ).run()
        assert_identical(tmp_path, "bus", result, reference)
        assert jammed.dropped > 0  # the slow consumer lost events, not the run


class TestExecutorChaos:
    def test_executor_loss_degrades_to_serial(self, tmp_path, reference):
        class _DeadExecutor:
            def run_stream(self, units):
                raise TransportTimeout("fleet transport lost")
                yield  # pragma: no cover

            def shutdown(self):
                pass

        bus = EventBus()
        subscription = bus.subscribe("campaign")
        result = CampaignOrchestrator(
            chaos_spec(),
            chaos_config(tmp_path, "degrade"),
            executor=_DeadExecutor(),
            bus=bus,
        ).run()
        assert_identical(tmp_path, "degrade", result, reference)
        names = [event.name for event in subscription.pop_all()]
        assert "degrade" in names


class TestCombinedChaos:
    def test_everything_at_once_still_converges(self, tmp_path, reference):
        bus = EventBus()
        overload_bus(bus, maxsize=1)
        result = CampaignOrchestrator(
            chaos_spec(),
            chaos_config(tmp_path, "all"),
            client_middleware=chaos_middleware(FaultPlan(rate=0.25, seed=13, limit=8)),
            store_wrapper=lambda s: ResilientStore(FlakyStore(s, rate=0.25, seed=13, limit=8)),
            breaker=CircuitBreaker(2, 0.05, name="llm", bus=bus),
            bus=bus,
        ).run()
        assert_identical(tmp_path, "all", result, reference)
        assert result.llm_spent >= reference["result"].llm_spent
