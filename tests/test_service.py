"""Tests for the async generation service and the batching LLM dispatcher."""

import asyncio
import threading

import pytest

from repro.core.session import LLMCall, StepCounts, ToolCall, counting, drive
from repro.experiments.strategies import strategy_from_unit
from repro.experiments.work import WorkerContext, WorkUnit
from repro.llm.client import ChatMessage, EchoClient, RecordingClient
from repro.llm.dispatch import (
    BatchingDispatcher,
    LatencyClient,
    RetryPolicy,
    SyncClientAdapter,
    TokenBucket,
)
from repro.service import GenerationService, ServiceConfig, serve_units
from repro.service.config import (
    BATCH_WINDOW_ENV,
    MAX_INFLIGHT_ENV,
    RATE_LIMIT_ENV,
)
from repro.service.telemetry import percentile

RECHISEL_KNOBS = (
    ("enable_escape", True),
    ("feedback_detail", "full"),
    ("use_knowledge", True),
)


def make_units(samples=2):
    """A small mixed workload covering all three strategies and two models."""
    units = []
    specs = [
        ("zero_shot", (("language", "chisel"),), 0),
        ("zero_shot", (("language", "verilog"),), 0),
        ("rechisel", RECHISEL_KNOBS, 6),
        ("autochip", (), 6),
    ]
    for strategy, knobs, max_iterations in specs:
        for sample in range(samples):
            units.append(
                WorkUnit(strategy, "GPT-4o mini", "alu_w4", 0, sample, 0, max_iterations, knobs)
            )
            units.append(
                WorkUnit(
                    strategy, "Claude 3.5 Sonnet", "counter_w4", 1, sample, 0, max_iterations, knobs
                )
            )
    return units


def direct_payloads(units):
    context = WorkerContext()
    return [strategy_from_unit(unit).execute(context, unit) for unit in units]


class TestServiceEquivalence:
    """Service results must be bit-identical to blocking runs, all strategies."""

    @pytest.mark.parametrize("concurrency", [1, 4, 32])
    def test_all_strategies_bit_identical(self, concurrency):
        units = make_units()
        expected = direct_payloads(units)
        payloads, snapshot = serve_units(units, ServiceConfig(max_in_flight=concurrency))
        assert payloads == expected
        assert snapshot.completed == len(units)
        assert snapshot.failed == 0

    def test_latency_simulating_client_does_not_change_results(self):
        units = make_units(samples=1)
        expected = direct_payloads(units)
        context = WorkerContext()
        payloads, _ = serve_units(
            units,
            ServiceConfig(max_in_flight=16),
            context=context,
            client_factory=lambda unit: LatencyClient(context.client_for(unit), 0.001),
        )
        assert payloads == expected

    def test_batch_window_and_rate_limit_do_not_change_results(self):
        units = make_units(samples=1)
        expected = direct_payloads(units)
        config = ServiceConfig(
            max_in_flight=8, batch_window=0.002, max_batch=4, rate_limit=5000.0
        )
        payloads, snapshot = serve_units(units, config)
        assert payloads == expected
        assert snapshot.dispatcher["max_batch_size"] <= 4


class TestServiceCaching:
    def test_duplicate_units_cost_no_extra_llm_calls(self):
        base = make_units(samples=1)
        units = base + base  # every unit twice
        payloads, snapshot = serve_units(units, ServiceConfig(max_in_flight=8))
        assert payloads[: len(base)] == payloads[len(base):]
        duplicates = len(base)
        assert snapshot.memo_hits + snapshot.coalesced_hits == duplicates

    def test_warm_store_serves_repeats_without_llm_calls(self, tmp_path):
        store_path = str(tmp_path / "service-results.jsonl")
        units = make_units(samples=1)
        cold, cold_snapshot = serve_units(units, ServiceConfig(store_path=store_path))
        assert cold_snapshot.dispatcher["requests"] > 0

        warm, warm_snapshot = serve_units(units, ServiceConfig(store_path=store_path))
        assert warm == cold
        assert warm_snapshot.dispatcher["requests"] == 0
        assert warm_snapshot.llm_calls == 0
        assert warm_snapshot.store_hits == len(units)

    def test_service_shares_store_with_sweep_engine(self, tmp_path):
        """A spec already swept by the engine is served from the store."""
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.engine import SweepEngine

        store_path = str(tmp_path / "shared.jsonl")
        units = make_units(samples=1)
        config = ExperimentConfig(store_path=store_path)
        engine = SweepEngine(config)
        engine.run(units)
        engine.close()

        payloads, snapshot = serve_units(units, ServiceConfig(store_path=store_path))
        assert snapshot.store_hits == len(units)
        assert snapshot.dispatcher["requests"] == 0
        assert payloads == direct_payloads(units)

    def test_close_fails_queued_jobs_instead_of_hanging(self):
        """Closing with jobs still queued resolves every submitter's future."""
        units = make_units(samples=2)[:6]

        class SlowClient:
            def __init__(self, inner):
                self.inner = inner

            async def complete(self, messages):
                await asyncio.sleep(0.2)
                return self.inner.complete(messages)

        async def main():
            context = WorkerContext()
            service = GenerationService(
                ServiceConfig(max_in_flight=1, queue_limit=2),
                context=context,
                client_factory=lambda unit: SlowClient(context.client_for(unit)),
            )
            await service.start()
            tasks = [asyncio.create_task(service.submit(unit)) for unit in units]
            await asyncio.sleep(0.02)  # one in flight, rest queued or awaiting a slot
            await service.close()
            return await asyncio.gather(*tasks, return_exceptions=True)

        results = asyncio.run(main())
        assert all(
            isinstance(result, (RuntimeError, asyncio.CancelledError)) for result in results
        ), results
        assert any(isinstance(result, RuntimeError) for result in results)

    def test_worker_killed_mid_job_never_strands_its_submitter(self):
        """Regression: a worker dying between dequeuing a job and resolving
        its future (a non-Exception escaping ``_execute``) used to leave the
        submitter awaiting forever; the in-flight registry must resolve it."""
        units = make_units(samples=1)[:2]

        class WorkerKiller(BaseException):
            """Not an Exception: escapes the worker's normal handler."""

        class LethalClient:
            async def complete(self, messages):
                await asyncio.sleep(0)
                raise WorkerKiller()

        async def main():
            service = GenerationService(
                ServiceConfig(max_in_flight=2),
                client_factory=lambda unit: LethalClient(),
            )
            await service.start()
            tasks = [asyncio.create_task(service.submit(unit)) for unit in units]
            done, pending = await asyncio.wait(tasks, timeout=5)
            assert not pending, "submitters were stranded by the dying worker"
            await service.close()
            return [task.exception() for task in tasks]

        results = asyncio.run(main())
        assert all(isinstance(result, RuntimeError) for result in results), results

    def test_close_resolves_futures_of_cancelled_in_flight_jobs(self):
        """Jobs being executed at close (not merely queued) must resolve too."""
        units = make_units(samples=1)[:3]
        entered = []

        class StuckClient:
            async def complete(self, messages):
                entered.append(True)
                await asyncio.sleep(3600)
                raise AssertionError("unreachable")

        async def main():
            service = GenerationService(
                ServiceConfig(max_in_flight=len(units)),
                client_factory=lambda unit: StuckClient(),
            )
            await service.start()
            tasks = [asyncio.create_task(service.submit(unit)) for unit in units]
            while len(entered) < len(units):
                await asyncio.sleep(0.01)
            await service.close()
            done, pending = await asyncio.wait(tasks, timeout=5)
            assert not pending, "in-flight submitters were left hanging at close"
            return await asyncio.gather(*tasks, return_exceptions=True)

        results = asyncio.run(main())
        assert all(
            isinstance(result, (RuntimeError, asyncio.CancelledError)) for result in results
        ), results

    def test_backpressure_queue_stays_bounded(self):
        units = make_units(samples=2)
        config = ServiceConfig(max_in_flight=2, queue_limit=2)
        payloads, snapshot = serve_units(units, config)
        assert len(payloads) == len(units)
        assert snapshot.failed == 0


class TestTelemetry:
    def test_snapshot_counts_llm_and_tool_steps(self):
        units = make_units(samples=1)
        _, snapshot = serve_units(units, ServiceConfig(max_in_flight=4))
        assert snapshot.llm_calls > 0
        assert snapshot.tool_calls > 0
        assert snapshot.max_latency >= snapshot.p99_latency >= snapshot.p95_latency
        assert snapshot.p95_latency >= snapshot.p50_latency >= 0.0
        assert snapshot.dispatcher["requests"] == snapshot.llm_calls
        rendered = snapshot.render()
        assert "session latency" in rendered
        assert "p99" in rendered and "max" in rendered

    def test_percentile_linear_interpolation(self):
        samples = [0.1, 0.2, 0.3, 0.4]
        assert percentile(samples, 0.5) == pytest.approx(0.25)
        assert percentile(samples, 0.95) == pytest.approx(0.385)
        assert percentile([], 0.5) == 0.0
        # Two samples: the median interpolates halfway between them instead of
        # collapsing onto the lower one like nearest-rank did.
        assert percentile([1.0, 2.0], 0.5) == pytest.approx(1.5)
        assert percentile(list(range(1, 101)), 0.95) == pytest.approx(95.05)
        # Exact-rank positions are returned verbatim, extremes clamp.
        assert percentile(samples, 0.0) == 0.1
        assert percentile(samples, 1.0) == 0.4
        assert percentile([7.0], 0.99) == 7.0


class TestDispatcher:
    def run(self, coro):
        return asyncio.run(coro)

    def test_microbatching_coalesces_concurrent_requests(self):
        client = EchoClient("ok")

        async def main():
            dispatcher = BatchingDispatcher(client, max_batch=32)
            results = await asyncio.gather(
                *(
                    dispatcher.complete([ChatMessage("user", f"q{i}")])
                    for i in range(16)
                )
            )
            return results, dispatcher.stats

        results, stats = self.run(main())
        assert results == ["ok"] * 16
        assert stats.requests == 16
        # All 16 requests were enqueued in one event-loop tick, so they
        # coalesce into far fewer batches than requests.
        assert stats.batches < 16
        assert stats.max_batch_size > 1

    def test_max_batch_is_respected(self):
        client = EchoClient("ok")

        async def main():
            dispatcher = BatchingDispatcher(client, max_batch=4)
            await asyncio.gather(
                *(dispatcher.complete([ChatMessage("user", str(i))]) for i in range(10))
            )
            return dispatcher.stats

        stats = self.run(main())
        assert stats.requests == 10
        assert stats.max_batch_size <= 4

    def test_native_batch_client_gets_grouped_call(self):
        class BatchClient:
            def __init__(self):
                self.batch_calls = []

            def complete(self, messages):
                return "single"

            def complete_batch(self, batches):
                self.batch_calls.append(len(batches))
                return [f"b{i}" for i in range(len(batches))]

        client = BatchClient()

        async def main():
            dispatcher = BatchingDispatcher(client, max_batch=8)
            return await asyncio.gather(
                *(dispatcher.complete([ChatMessage("user", str(i))]) for i in range(6))
            )

        results = self.run(main())
        assert sorted(results) == [f"b{i}" for i in range(6)]
        assert client.batch_calls and max(client.batch_calls) > 1

    def test_batch_failure_isolates_to_poisoned_request(self):
        """A failing complete_batch degrades to singles; batch-mates survive."""

        class PoisonBatchClient:
            def complete(self, messages):
                if messages[-1].content == "poison":
                    raise ValueError("bad request")
                return "ok"

            def complete_batch(self, batches):
                raise ValueError("bad request in batch")

        async def main():
            dispatcher = BatchingDispatcher(
                PoisonBatchClient(),
                max_batch=8,
                retry=RetryPolicy(attempts=1, base_delay=0.001),
                retry_seed=0,
            )
            contents = ["a", "poison", "b", "c"]
            return await asyncio.gather(
                *(dispatcher.complete([ChatMessage("user", text)]) for text in contents),
                return_exceptions=True,
            )

        results = self.run(main())
        assert results[0] == "ok" and results[2] == "ok" and results[3] == "ok"
        assert isinstance(results[1], ValueError)

    def test_retry_recovers_from_transient_failures(self):
        class FlakyClient:
            def __init__(self, failures):
                self.failures = failures
                self.calls = 0

            def complete(self, messages):
                self.calls += 1
                if self.calls <= self.failures:
                    raise ConnectionError("transient")
                return "recovered"

        client = FlakyClient(failures=2)

        async def main():
            dispatcher = BatchingDispatcher(
                client, retry=RetryPolicy(attempts=3, base_delay=0.001), retry_seed=0
            )
            return await dispatcher.complete([ChatMessage("user", "q")]), dispatcher.stats

        result, stats = self.run(main())
        assert result == "recovered"
        assert stats.retries == 2
        assert stats.failures == 0

    def test_retry_exhaustion_raises(self):
        class DeadClient:
            def complete(self, messages):
                raise ConnectionError("down")

        async def main():
            dispatcher = BatchingDispatcher(
                DeadClient(), retry=RetryPolicy(attempts=1, base_delay=0.001), retry_seed=0
            )
            with pytest.raises(ConnectionError):
                await dispatcher.complete([ChatMessage("user", "q")])
            return dispatcher.stats

        stats = self.run(main())
        assert stats.failures == 1
        assert stats.retries == 1

    def test_request_timeout_retries_then_succeeds(self):
        class SlowThenFastClient:
            def __init__(self):
                self.calls = 0

            async def complete(self, messages):
                self.calls += 1
                if self.calls <= 2:
                    await asyncio.sleep(60)
                return "eventually"

        async def main():
            dispatcher = BatchingDispatcher(
                request_timeout=0.02,
                retry=RetryPolicy(attempts=3, base_delay=0.001),
                retry_seed=0,
            )
            result = await dispatcher.complete(
                [ChatMessage("user", "q")], client=SlowThenFastClient()
            )
            return result, dispatcher.stats

        result, stats = self.run(main())
        assert result == "eventually"
        assert stats.timeouts == 2
        assert stats.retries == 2
        assert stats.failures == 0
        assert stats.snapshot()["timeouts"] == 2

    def test_request_timeout_exhaustion_raises_timeout_error(self):
        class WedgedClient:
            async def complete(self, messages):
                await asyncio.sleep(60)

        async def main():
            dispatcher = BatchingDispatcher(
                request_timeout=0.01,
                retry=RetryPolicy(attempts=1, base_delay=0.001),
                retry_seed=0,
            )
            with pytest.raises(TimeoutError):
                await dispatcher.complete([ChatMessage("user", "q")], client=WedgedClient())
            return dispatcher.stats

        stats = self.run(main())
        assert stats.failures == 1
        assert stats.timeouts == 2  # the first attempt and its one retry

    def test_request_timeout_rejects_nonpositive_values(self):
        with pytest.raises(ValueError):
            BatchingDispatcher(request_timeout=0)

    def test_caller_cancellation_propagates_and_is_skipped(self):
        class NeverClient:
            def __init__(self):
                self.started = asyncio.Event()
                self.calls = 0

            async def complete(self, messages):
                self.calls += 1
                self.started.set()
                await asyncio.sleep(60)

        async def main():
            dispatcher = BatchingDispatcher(retry=RetryPolicy(attempts=0))
            client = NeverClient()
            task = asyncio.create_task(
                dispatcher.complete([ChatMessage("user", "q")], client=client)
            )
            await client.started.wait()
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            return dispatcher.stats

        stats = self.run(main())
        assert stats.cancelled == 1

    def test_abandoned_request_is_not_attempted(self):
        """A request whose caller cancelled before its batch ran costs nothing."""

        class CountingClient:
            def __init__(self):
                self.calls = 0

            async def complete(self, messages):
                self.calls += 1
                return "ok"

        async def main():
            dispatcher = BatchingDispatcher(batch_window=0.05, max_batch=16)
            client = CountingClient()
            doomed = asyncio.create_task(
                dispatcher.complete([ChatMessage("user", "dead")], client=client)
            )
            await asyncio.sleep(0)  # enqueue it, batch window still open
            doomed.cancel()
            survivor = await dispatcher.complete([ChatMessage("user", "live")], client=client)
            with pytest.raises(asyncio.CancelledError):
                await doomed
            await dispatcher.drain()
            return survivor, client.calls, dispatcher.stats

        survivor, calls, stats = self.run(main())
        assert survivor == "ok"
        assert calls == 1
        assert stats.cancelled == 1

    def test_per_profile_concurrency_cap(self):
        class GaugeClient:
            def __init__(self):
                self.active = 0
                self.peak = 0

            async def complete(self, messages):
                self.active += 1
                self.peak = max(self.peak, self.active)
                await asyncio.sleep(0.002)
                self.active -= 1
                return "ok"

        client = GaugeClient()

        async def main():
            dispatcher = BatchingDispatcher(client, max_batch=1, per_profile_limit=2)
            await asyncio.gather(
                *(
                    dispatcher.complete([ChatMessage("user", str(i))], profile="m")
                    for i in range(8)
                )
            )
            return client.peak

        assert self.run(main()) <= 2

    def test_token_bucket_oversized_acquire_keeps_configured_rate(self):
        """Acquiring more than the bucket's capacity must not strand tokens
        earned while sleeping: after the debt is paid the balance is ~0, so
        sustained oversized acquires deliver the configured rate."""

        async def main():
            bucket = TokenBucket(rate=50.0, capacity=1.0)
            await bucket.acquire(5.0)
            return bucket._tokens

        balance = self.run(main())
        assert balance > -1.0  # the pre-fix debt model left it at ~-4

    def test_token_bucket_paces_requests(self):
        async def main():
            bucket = TokenBucket(rate=200.0, capacity=1.0)
            loop = asyncio.get_running_loop()
            start = loop.time()
            for _ in range(5):
                await bucket.acquire(1.0)
            return loop.time() - start

        # 5 tokens at 200/s with capacity 1 needs ~4 refills: >= ~20ms.
        assert self.run(main()) >= 0.015

    def test_sync_adapter_and_latency_client(self):
        inner = EchoClient("hello")

        async def main():
            adapted = SyncClientAdapter(inner)
            sim = LatencyClient(inner, 0.001)
            return (
                await adapted.complete([ChatMessage("user", "a")]),
                await sim.complete([ChatMessage("user", "b")]),
            )

        assert self.run(main()) == ("hello", "hello")
        assert inner.call_count() == 2

    def test_requires_some_client(self):
        async def main():
            dispatcher = BatchingDispatcher()
            with pytest.raises(ValueError):
                await dispatcher.complete([ChatMessage("user", "q")])

        self.run(main())


class TestSessionProtocol:
    def test_drive_answers_llm_and_tool_steps(self):
        def session():
            text = yield LLMCall([ChatMessage("user", "hi")], "generate")
            doubled = yield ToolCall(lambda: text * 2, "compile")
            return doubled

        assert drive(session(), EchoClient("x")) == "xx"

    def test_counting_wrapper_tallies_steps(self):
        def session():
            yield LLMCall([ChatMessage("user", "hi")], "generate")
            yield ToolCall(lambda: 1, "compile")
            yield ToolCall(lambda: 2, "simulate")
            return "done"

        counts = StepCounts()
        assert drive(counting(session(), counts), EchoClient("x")) == "done"
        assert counts.llm_calls == 1
        assert counts.tool_calls == 2
        assert counts.by_purpose == {"generate": 1, "compile": 1, "simulate": 1}


class TestConcurrentRecording:
    """Satellite: shared clients record calls safely across threads."""

    def test_echo_client_records_under_threads(self):
        client = EchoClient("ok")

        def worker():
            for i in range(200):
                client.complete([ChatMessage("user", str(i))])

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert client.call_count() == 8 * 200

    def test_recording_client_snapshots_exchanges(self):
        client = RecordingClient(EchoClient("pong"))

        def worker():
            for i in range(100):
                client.complete([ChatMessage("user", str(i))])

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        exchanges = client.exchanges()
        assert len(exchanges) == 400
        assert all(response == "pong" for _, response in exchanges)


class TestServiceConfig:
    def test_from_environment_reads_service_knobs(self, monkeypatch):
        monkeypatch.setenv(BATCH_WINDOW_ENV, "0.25")
        monkeypatch.setenv(MAX_INFLIGHT_ENV, "64")
        monkeypatch.setenv(RATE_LIMIT_ENV, "12.5")
        config = ServiceConfig.from_environment()
        assert config.batch_window == 0.25
        assert config.max_in_flight == 64
        assert config.rate_limit == 12.5

    def test_from_environment_disables_zero_rate(self, monkeypatch):
        monkeypatch.setenv(RATE_LIMIT_ENV, "0")
        assert ServiceConfig.from_environment().rate_limit is None

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            ServiceConfig(max_in_flight=0)
        with pytest.raises(ValueError):
            TokenBucket(rate=0)

    def test_submit_requires_started_service(self):
        service = GenerationService(ServiceConfig())
        unit = make_units(samples=1)[0]

        async def main():
            with pytest.raises(RuntimeError):
                await service.submit(unit)

        asyncio.run(main())


class TestGracefulDrain:
    """``close(drain=True)`` finishes in-flight work instead of failing it."""

    def test_drain_finishes_queued_jobs_bit_identically(self):
        units = make_units(samples=1)[:4]
        expected = direct_payloads(units)

        class SlowClient:
            def __init__(self, inner):
                self.inner = inner

            async def complete(self, messages):
                await asyncio.sleep(0.02)
                return self.inner.complete(messages)

        async def main():
            context = WorkerContext()
            service = GenerationService(
                ServiceConfig(max_in_flight=1),
                context=context,
                client_factory=lambda unit: SlowClient(context.client_for(unit)),
            )
            await service.start()
            tasks = [asyncio.create_task(service.submit(unit)) for unit in units]
            await asyncio.sleep(0.01)  # one in flight, the rest queued
            await service.close(drain=True)
            return await asyncio.gather(*tasks, return_exceptions=True)

        results = asyncio.run(main())
        assert results == expected  # every submitter got its real payload

    def test_submit_during_drain_is_rejected(self):
        units = make_units(samples=1)[:3]

        class SlowClient:
            def __init__(self, inner):
                self.inner = inner

            async def complete(self, messages):
                await asyncio.sleep(0.05)
                return self.inner.complete(messages)

        async def main():
            context = WorkerContext()
            service = GenerationService(
                ServiceConfig(max_in_flight=1),
                context=context,
                client_factory=lambda unit: SlowClient(context.client_for(unit)),
            )
            await service.start()
            tasks = [asyncio.create_task(service.submit(unit)) for unit in units[:2]]
            await asyncio.sleep(0.01)
            closer = asyncio.create_task(service.close(drain=True))
            await asyncio.sleep(0.01)
            with pytest.raises(RuntimeError, match="draining"):
                await service.submit(units[2])
            await closer
            return await asyncio.gather(*tasks, return_exceptions=True)

        results = asyncio.run(main())
        assert all(isinstance(result, dict) for result in results), results

    def test_drain_timeout_bounds_the_wait(self):
        units = make_units(samples=1)[:2]

        class StuckClient:
            async def complete(self, messages):
                await asyncio.sleep(3600)

        async def main():
            service = GenerationService(
                ServiceConfig(max_in_flight=2, drain_timeout=0.1),
                client_factory=lambda unit: StuckClient(),
            )
            await service.start()
            tasks = [asyncio.create_task(service.submit(unit)) for unit in units]
            await asyncio.sleep(0.01)
            await asyncio.wait_for(service.close(drain=True), timeout=5)
            done, pending = await asyncio.wait(tasks, timeout=5)
            assert not pending, "drain timeout must still resolve submitters"
            return await asyncio.gather(*tasks, return_exceptions=True)

        results = asyncio.run(main())
        assert all(
            isinstance(result, (RuntimeError, asyncio.CancelledError)) for result in results
        ), results


class TestCampaignHooks:
    """Campaign resilience knobs thread through the service config."""

    def test_real_executions_mark_the_priority_gate(self):
        from repro.campaign.scheduler import PriorityGate, set_priority_gate

        units = make_units(samples=1)[:4]
        gate = PriorityGate()
        set_priority_gate(gate)
        try:
            payloads, _ = serve_units(units, ServiceConfig(max_in_flight=2))
        finally:
            set_priority_gate(PriorityGate())
        assert len(payloads) == len(units)
        assert gate.marks == len(units)
        assert not gate.busy  # every interactive section was closed

    def test_llm_budget_is_charged_through_the_dispatcher(self):
        from repro.campaign.budget import Budget

        units = make_units(samples=1)[:4]
        budget = Budget()
        payloads, _ = serve_units(
            units, ServiceConfig(max_in_flight=2, llm_budget=budget)
        )
        assert len(payloads) == len(units)
        assert budget.spent > 0

    def test_breaker_opens_and_fails_fast_on_transport_storm(self):
        from repro.retry import BreakerOpenError, CircuitBreaker, TransportTimeout

        units = make_units(samples=1)[:3]
        attempts = []

        class DeadTransport:
            async def complete(self, messages):
                attempts.append(True)
                raise TransportTimeout("injected transport loss")

        breaker = CircuitBreaker(1, 3600.0, name="llm")
        config = ServiceConfig(
            max_in_flight=1,
            breaker=breaker,
            retry=RetryPolicy(attempts=0, base_delay=0.01),
        )

        async def main():
            service = GenerationService(
                config, client_factory=lambda unit: DeadTransport()
            )
            await service.start()
            results = await asyncio.gather(
                *(service.submit(unit) for unit in units), return_exceptions=True
            )
            await service.close()
            return results

        results = asyncio.run(main())
        assert all(isinstance(result, Exception) for result in results)
        assert breaker.state == "open"
        # Once open, jobs are rejected before touching the transport at all.
        assert any(
            isinstance(result, (BreakerOpenError, RuntimeError)) for result in results
        )
        assert len(attempts) < len(units) * 1 + 2
