"""Compiled simulation backend: differential tests and unit coverage.

The compiled backend must be bit-identical to the tree-walking interpreter,
which stays the semantic oracle.  The heavyweight test here sweeps the *full*
problem registry: every golden design is simulated point by point on both
backends and every declared signal (outputs and internal nets) is compared.
"""

from __future__ import annotations

import pytest

from repro.problems.registry import build_default_registry
from repro.sim.testbench import DeviceUnderTest, FunctionalPoint, Testbench, run_testbench
from repro.toolchain.compiler import ChiselCompiler
from repro.verilog.analysis import CombLoopError, ModuleAnalysis, module_fingerprint
from repro.verilog.compile_sim import (
    clear_kernel_cache,
    compile_kernel,
    get_kernel,
    kernel_cache_stats,
)
from repro.verilog.parser import parse_verilog
from repro.verilog.simulator import Simulation, SimulationError

REGISTRY = build_default_registry()
COMPILER = ChiselCompiler(top="TopModule")


def _differential_run(module, testbench) -> None:
    """Drive both backends through the testbench; compare every signal."""
    interp = Simulation(module, backend="interpreter")
    compiled = Simulation(module, backend="compiled")
    names = list(interp.signals)
    for sim in (interp, compiled):
        if module.port_named(testbench.reset) and testbench.reset_cycles > 0:
            sim.poke(testbench.reset, 1, settle=False)
            sim.step(testbench.clock, testbench.reset_cycles)
            sim.poke(testbench.reset, 0, settle=False)
    for index, point in enumerate(testbench.points):
        interp.poke_many(point.inputs)
        compiled.poke_many(point.inputs)
        if point.clock_cycles:
            interp.step(testbench.clock, point.clock_cycles)
            compiled.step(testbench.clock, point.clock_cycles)
        for name in names:
            expected = interp.peek(name)
            actual = compiled.peek(name)
            assert actual == expected, (
                f"point {index}, signal {name}: interpreter={expected} "
                f"compiled={actual} (inputs {point.inputs})"
            )


class TestDifferentialRegistry:
    def test_every_golden_design_matches_interpreter(self):
        """Compiled kernels are bit-identical on every functional point of
        every golden design in the 216-case registry."""
        for problem in REGISTRY:
            result = COMPILER.compile(problem.golden_chisel)
            assert result.success, problem.problem_id
            module = parse_verilog(result.verilog)[-1]
            _differential_run(module, problem.build_testbench())

    def test_every_golden_design_uses_compiled_backend(self):
        """No golden design should need the interpreter fallback."""
        fallbacks = []
        for problem in REGISTRY:
            result = COMPILER.compile(problem.golden_chisel)
            module = parse_verilog(result.verilog)[-1]
            if get_kernel(module) is None:
                fallbacks.append(problem.problem_id)
        assert fallbacks == []


HANDWRITTEN = {
    "case_and_blocking": """
module m(input [1:0] sel, input [3:0] a, input [3:0] b, output reg [4:0] y);
  reg [4:0] t;
  always @(*) begin
    t = a + b;
    case (sel)
      2'd0: y = t;
      2'd1: y = t + 1;
      default: y = {t[0], a};
    endcase
  end
endmodule
""",
    "partial_writes": """
module m(input [3:0] lo, input [3:0] hi, input [2:0] i, input b, output reg [7:0] y, output reg [7:0] z);
  always @(*) begin
    y[3:0] = lo;
    y[7:4] = hi;
    z = 8'h0;
    z[i] = b;
  end
endmodule
""",
    "signed_arith": """
module m(input signed [7:0] a, input signed [7:0] b, output signed [7:0] s, output signed [7:0] d, output signed [7:0] r, output signed [7:0] sr, output lt);
  assign s = a + b;
  assign d = a / b;
  assign r = a % b;
  assign sr = a >>> 3;
  assign lt = a < b;
endmodule
""",
    "reduction_concat": """
module m(input [7:0] a, output [2:0] red, output [15:0] cat);
  assign red = {&a, ^a, |a};
  assign cat = {a[3:0], 2'b10, ~a[7:6], {2{a[1:0]}}, 4'ha};
endmodule
""",
}


class TestDifferentialHandwritten:
    @pytest.mark.parametrize("name", sorted(HANDWRITTEN))
    def test_handwritten_idioms(self, name):
        import random

        module = parse_verilog(HANDWRITTEN[name])[0]
        interp = Simulation(module, backend="interpreter")
        compiled = Simulation(module, backend="compiled")
        inputs = [p for p in module.inputs()]
        rng = random.Random(name)
        for _ in range(100):
            stimuli = {p.name: rng.randrange(1 << p.width) for p in inputs}
            interp.poke_many(stimuli)
            compiled.poke_many(stimuli)
            for signal in interp.signals:
                assert interp.peek(signal) == compiled.peek(signal), (name, signal, stimuli)


class TestCombCycleDetection:
    def test_two_node_cycle_is_detected(self):
        module = parse_verilog(
            "module m(input a, output x, y);\n"
            "  assign x = y | a;\n"
            "  assign y = x & a;\n"
            "endmodule\n"
        )[0]
        with pytest.raises(CombLoopError):
            ModuleAnalysis(module).schedule()
        assert get_kernel(module) is None

    def test_self_read_is_detected(self):
        module = parse_verilog(
            "module m(input a, output x);\n  assign x = x ^ a;\nendmodule\n"
        )[0]
        with pytest.raises(CombLoopError):
            compile_kernel(module)

    def test_multiple_full_drivers_are_rejected(self):
        module = parse_verilog(
            "module m(input a, b, output y);\n"
            "  assign y = a;\n"
            "  assign y = b;\n"
            "endmodule\n"
        )[0]
        with pytest.raises(CombLoopError):
            compile_kernel(module)

    def test_auto_backend_falls_back_to_interpreter(self):
        module = parse_verilog(
            "module m(input a, output x, y);\n"
            "  assign x = y | a;\n"
            "  assign y = x & a;\n"
            "endmodule\n"
        )[0]
        sim = Simulation(module, backend="auto")
        assert sim.backend_in_use == "interpreter"
        # The cycle is value-stable at zero, so the bounded interpreter settles.
        sim.poke("a", 0)
        assert sim.peek("x") == 0

    def test_forced_compiled_backend_raises(self):
        module = parse_verilog(
            "module m(input a, output x);\n  assign x = x ^ a;\nendmodule\n"
        )[0]
        with pytest.raises(SimulationError):
            Simulation(module, backend="compiled")

    def test_oscillating_loop_still_raises_through_fallback(self):
        module = parse_verilog(
            "module m(input a, output x);\n  assign x = ~x;\nendmodule\n"
        )[0]
        with pytest.raises(SimulationError):
            Simulation(module)  # auto -> interpreter -> non-convergence


class TestKernelCache:
    @pytest.mark.cache_mutating
    def test_identical_sources_share_one_kernel(self):
        clear_kernel_cache()
        source = "module m(input [3:0] a, output [3:0] y);\n  assign y = ~a;\nendmodule\n"
        first = get_kernel(parse_verilog(source)[0])
        second = get_kernel(parse_verilog(source)[0])
        assert first is second
        stats = kernel_cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_fingerprint_is_structural(self):
        a = parse_verilog("module m(input x, output y);\n  assign y = x;\nendmodule\n")[0]
        b = parse_verilog("module m(input x, output y);\n  assign y = x;\nendmodule\n")[0]
        c = parse_verilog("module m(input x, output y);\n  assign y = ~x;\nendmodule\n")[0]
        assert module_fingerprint(a) == module_fingerprint(b)
        assert module_fingerprint(a) != module_fingerprint(c)

    @pytest.mark.cache_mutating
    def test_unsupported_modules_are_negatively_cached(self):
        clear_kernel_cache()
        source = "module m(input a, output x);\n  assign x = x ^ a;\nendmodule\n"
        assert get_kernel(parse_verilog(source)[0]) is None
        assert get_kernel(parse_verilog(source)[0]) is None
        stats = kernel_cache_stats()
        assert stats["fallbacks"] == 1 and stats["hits"] == 1


class TestDeferredSettle:
    def test_poke_with_deferred_settle_batches(self):
        module = parse_verilog(
            "module m(input [3:0] a, input [3:0] b, output [4:0] y);\n"
            "  assign y = a + b;\n"
            "endmodule\n"
        )[0]
        sim = Simulation(module, backend="interpreter")
        sim.poke("a", 3, settle=False)
        sim.poke("b", 4, settle=False)
        assert sim._needs_settle
        assert sim.peek("y") == 7  # read settles lazily
        assert not sim._needs_settle

    def test_deferred_settle_before_clock_edge(self):
        module = parse_verilog(
            "module m(input clock, input [3:0] d, output reg [3:0] q);\n"
            "  wire [3:0] n;\n"
            "  assign n = d + 1;\n"
            "  always @(posedge clock) q <= n;\n"
            "endmodule\n"
        )[0]
        for backend in ("interpreter", "compiled"):
            sim = Simulation(module, backend=backend)
            sim.poke("d", 6, settle=False)
            sim.step("clock")  # must settle n = 7 before the edge
            assert sim.peek("q") == 7, backend


class _EagerLatchModel(DeviceUnderTest):
    """Reference model of ``if (en) q = d`` with eager (seed) settle semantics."""

    def __init__(self):
        self.q = 0

    def drive(self, inputs):
        if inputs.get("en"):
            self.q = inputs.get("d", 0)

    def tick(self, clock, cycles):
        pass

    def reset_pulse(self, reset, clock, cycles):
        pass

    def read(self, name):
        return self.q

    def output_names(self):
        return ["q"]


class TestLatchSettleParity:
    """Deferred settles must not skip settles that latchy designs observe.

    An unchecked functional point triggers no reads; its stimulus must still
    be applied (settled) before the next point overwrites it, or a latch-like
    DUT diverges from the seed harness's eager-settle semantics.
    """

    LATCH = (
        "module m(input en, input [3:0] d, output reg [3:0] q);\n"
        "  always @(*) begin\n"
        "    if (en) q = d;\n"
        "  end\n"
        "endmodule\n"
    )

    @pytest.mark.parametrize("backend", ["auto", "interpreter"])
    def test_unchecked_point_stimulus_is_latched(self, backend, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_BACKEND", backend)
        module = parse_verilog(self.LATCH)[0]
        testbench = Testbench(
            points=[
                FunctionalPoint(inputs={"en": 1, "d": 5}, check=False),
                FunctionalPoint(inputs={"en": 0, "d": 0}),
            ],
            observed_outputs=["q"],
        )
        report = run_testbench(module, _EagerLatchModel(), testbench)
        assert report.passed, report.render()


class TestCompilerCache:
    def test_compile_results_are_memoized(self):
        compiler = ChiselCompiler(top="TopModule", cache_size=8)
        source = REGISTRY.by_id("alu_w8").golden_chisel
        first = compiler.compile(source)
        second = compiler.compile(source)
        assert first is second
        assert compiler.cache_stats == {"hits": 1, "misses": 1}

    def test_cache_can_be_disabled(self):
        compiler = ChiselCompiler(top="TopModule", cache_size=None)
        source = REGISTRY.by_id("alu_w8").golden_chisel
        assert compiler.compile(source) is not compiler.compile(source)
