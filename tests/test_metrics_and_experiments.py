"""Tests for the metrics and the experiment runners (quick-scale)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.experiments import fig1, fig6, fig7, fig8_case_study, table1, table2, table3, table4
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import EvaluationHarness
from repro.llm.profiles import CLAUDE_SONNET, GPT4O, GPT4O_MINI, GPT4_TURBO
from repro.metrics.errors import error_breakdown, per_iteration_error_mix
from repro.metrics.passk import aggregate_pass_at_k, pass_at_k

TINY = ExperimentConfig(
    samples_per_case=2,
    max_iterations=6,
    max_cases=10,
    models=(CLAUDE_SONNET, GPT4O_MINI),
    autochip_models=(CLAUDE_SONNET,),
    seed=0,
)
HARNESS = EvaluationHarness(TINY)


class TestPassAtK:
    def test_known_values(self):
        assert pass_at_k(10, 10, 1) == pytest.approx(1.0)
        assert pass_at_k(10, 0, 1) == pytest.approx(0.0)
        assert pass_at_k(10, 5, 1) == pytest.approx(0.5)
        assert pass_at_k(2, 1, 2) == pytest.approx(1.0)

    def test_k_larger_than_n_is_clamped(self):
        assert pass_at_k(3, 1, 10) == pytest.approx(1.0)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            pass_at_k(0, 0, 1)
        with pytest.raises(ValueError):
            pass_at_k(5, 6, 1)
        with pytest.raises(ValueError):
            pass_at_k(5, 1, 0)

    @given(st.integers(1, 20), st.integers(0, 20), st.integers(1, 20))
    def test_bounds_and_monotonicity_in_k(self, n, c, k):
        c = min(c, n)
        value = pass_at_k(n, c, k)
        assert 0.0 <= value <= 1.0
        if k < n:
            assert pass_at_k(n, c, k + 1) >= value - 1e-12

    @given(st.integers(1, 20), st.integers(0, 19), st.integers(1, 10))
    def test_monotonicity_in_c(self, n, c, k):
        c = min(c, n - 1)
        assert pass_at_k(n, c + 1, k) >= pass_at_k(n, c, k)

    def test_aggregate_is_percentage(self):
        value = aggregate_pass_at_k([(10, 5), (10, 10)], 1)
        assert value == pytest.approx(75.0)
        assert aggregate_pass_at_k([], 1) == 0.0


class TestErrorMetrics:
    def test_breakdown_sums_to_hundred(self):
        breakdown = error_breakdown(["syntax", "functional", "success", "success"])
        assert breakdown.syntax + breakdown.functional + breakdown.success == pytest.approx(100.0)

    def test_empty_breakdown(self):
        breakdown = error_breakdown([])
        assert breakdown.syntax == breakdown.functional == breakdown.success == 0.0

    def test_per_iteration_mix_holds_final_state(self):
        runs = [["syntax", "functional", "success"], ["syntax", "syntax", "syntax"]]
        mixes = per_iteration_error_mix(runs, 4)
        assert len(mixes) == 5
        assert mixes[0].syntax == pytest.approx(100.0)
        assert mixes[4].success == pytest.approx(50.0)


class TestExperimentRunners:
    """Quick-scale smoke runs of every table/figure runner (shared harness)."""

    @pytest.fixture(scope="class")
    def table3_result(self):
        return table3.run(TINY, HARNESS)

    def test_table1_rows_and_shape(self):
        result = table1.run(TINY, HARNESS)
        assert len(result.rows) == len(TINY.models)
        for row in result.rows:
            # Chisel zero-shot never beats Verilog zero-shot for the same model.
            assert row.chisel[1] <= row.verilog[1] + 15.0
            assert 0.0 <= row.chisel[1] <= 100.0
        assert "Table I" in result.render()

    def test_fig1_breakdowns(self):
        result = fig1.run(TINY, HARNESS)
        for model in TINY.models:
            breakdown = result.breakdowns[model]
            total = breakdown.syntax + breakdown.functional + breakdown.success
            assert total == pytest.approx(100.0, abs=0.5)
        mini = result.breakdowns[GPT4O_MINI]
        sonnet = result.breakdowns[CLAUDE_SONNET]
        assert mini.success < sonnet.success

    def test_table2_reproduces_compilable_rows(self):
        result = table2.run()
        reproduced = {row.entry.code for row in result.rows if row.reproduced}
        assert {"A1", "A2", "A3", "B1", "B2", "B3", "B5", "B6", "B7", "C2"} <= reproduced
        assert "Table II" in result.render()

    def test_table3_reflection_improves_over_baseline(self, table3_result):
        for model in TINY.models:
            rates = table3_result.rates[model][1]
            assert rates[table3.ITERATION_CAPS[-1]] >= rates[0]
        assert "Table III" in table3_result.render()

    def test_table3_sonnet_beats_mini(self, table3_result):
        cap = table3.ITERATION_CAPS[-1]
        assert (
            table3_result.rates[CLAUDE_SONNET][1][cap]
            > table3_result.rates[GPT4O_MINI][1][cap]
        )

    def test_fig6_curves_are_monotone(self, table3_result):
        result = fig6.run(TINY, HARNESS, rechisel_cases=table3_result.raw)
        for model in TINY.models:
            curve = result.series[model][1]
            assert all(b >= a - 1e-9 for a, b in zip(curve, curve[1:]))
        assert "Fig. 6" in result.render()

    def test_fig7_error_mix_shrinks(self, table3_result):
        result = fig7.run(TINY, HARNESS, rechisel_cases=table3_result.raw[CLAUDE_SONNET], model=CLAUDE_SONNET)
        first, last = result.mixes[0], result.mixes[-1]
        assert last.syntax + last.functional <= first.syntax + first.functional
        assert "Fig. 7" in result.render()

    def test_table4_compares_three_columns(self, table3_result):
        result = table4.run(TINY, HARNESS, rechisel_cases=table3_result.raw)
        assert CLAUDE_SONNET in result.rechisel
        assert CLAUDE_SONNET in result.autochip
        assert "AutoChip" in result.render()

    def test_fig8_case_study_matches_paper_trajectory(self):
        result = fig8_case_study.run()
        outcomes = [step.outcome for step in result.steps]
        assert outcomes == ["syntax", "syntax", "functional", "success"]
        assert result.result is not None and result.result.success_iteration == 3
        assert "Vector5" in result.render()

    def test_config_quick_vs_paper_scale(self):
        assert ExperimentConfig.quick().max_cases is not None
        assert ExperimentConfig.paper_scale().max_cases is None
        assert ExperimentConfig.paper_scale().samples_per_case == 10

    def test_harness_problem_subsetting(self):
        subset = HARNESS.problems()
        assert len(subset) == TINY.max_cases
        # The stratified subset is deterministic and spans all three suites.
        assert [p.problem_id for p in subset] == [p.problem_id for p in HARNESS.problems()]
        assert {p.suite for p in subset} == {p.suite for p in HARNESS.registry}
        full = EvaluationHarness(ExperimentConfig.paper_scale())
        assert len(full.problems()) == 216
