"""Property-style tests for the content-fingerprint helpers in repro.caching.

``stable_fingerprint`` keys the sweep result store and the fuzz corpus;
``structural_fingerprint`` keys the stage-level compile caches.  These tests
pin the properties the cache layers rely on: invariance under dict ordering
and source-location shifts, sensitivity to genuine structural edits, and the
absence of collisions across a generated fuzz corpus.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.caching import stable_fingerprint, structural_fingerprint
from repro.chisel.parser import parse_source
from repro.fuzz import FuzzConfig, generate_program


class TestStableFingerprint:
    def test_invariant_under_dict_insertion_order(self):
        rng = random.Random(7)
        for _ in range(50):
            items = [(f"k{i}", rng.randrange(1000)) for i in range(rng.randint(1, 8))]
            document = {"nested": dict(items), "list": [dict(items)], "flag": True}
            shuffled_items = list(items)
            rng.shuffle(shuffled_items)
            shuffled = {"flag": True, "list": [dict(shuffled_items)], "nested": dict(shuffled_items)}
            assert stable_fingerprint(document) == stable_fingerprint(shuffled)

    def test_sensitive_to_value_and_key_changes(self):
        base = {"a": 1, "b": [1, 2, 3]}
        assert stable_fingerprint(base) != stable_fingerprint({"a": 2, "b": [1, 2, 3]})
        assert stable_fingerprint(base) != stable_fingerprint({"a": 1, "b": [1, 2]})
        assert stable_fingerprint(base) != stable_fingerprint({"c": 1, "b": [1, 2, 3]})

    def test_type_distinctions_survive_serialization(self):
        # str(1) == "1" would collide under a naive default=str scheme for
        # top-level values; JSON keeps the int/str distinction.
        assert stable_fingerprint({"x": 1}) != stable_fingerprint({"x": "1"})


@dataclass(frozen=True)
class _Leaf:
    name: str
    value: int
    location: str = "here"


@dataclass(frozen=True)
class _Tree:
    children: tuple
    table: dict = field(default_factory=dict)
    location: str = "root"


class TestStructuralFingerprint:
    def test_skip_fields_are_ignored_everywhere(self):
        a = _Tree((_Leaf("x", 1, "file:1"), _Leaf("y", 2, "file:2")), location="file:0")
        b = _Tree((_Leaf("x", 1, "other:9"), _Leaf("y", 2, "other:10")), location="other:0")
        assert structural_fingerprint(a) == structural_fingerprint(b)

    def test_sensitive_to_structural_edits(self):
        base = _Tree((_Leaf("x", 1), _Leaf("y", 2)))
        assert structural_fingerprint(base) != structural_fingerprint(
            _Tree((_Leaf("x", 1), _Leaf("y", 3)))
        )
        assert structural_fingerprint(base) != structural_fingerprint(
            _Tree((_Leaf("y", 2), _Leaf("x", 1)))  # order matters
        )
        assert structural_fingerprint(base) != structural_fingerprint(
            _Tree((_Leaf("x", 1),))
        )

    def test_parse_trees_hash_identically_across_cosmetic_edits(self):
        """Shifted lines, comments and whitespace must not change the key."""
        source = (
            "import chisel3._\n"
            "class TopModule extends Module {\n"
            "  val io = IO(new Bundle { val a = Input(UInt(4.W)); val y = Output(UInt(4.W)) })\n"
            "  io.y := io.a + 1.U\n"
            "}\n"
        )
        cosmetic = "// revised attempt\n\n\n" + source.replace(" + ", "  +  ")
        structural = source.replace("1.U", "2.U")
        fp = structural_fingerprint(parse_source(source))
        assert fp == structural_fingerprint(parse_source(cosmetic))
        assert fp != structural_fingerprint(parse_source(structural))


class TestCorpusCollisionSmoke:
    def test_no_fingerprint_collisions_over_fuzz_corpus(self):
        """Distinct generated programs must get distinct cache keys.

        This is the property the stage caches (and therefore the warm/cold
        conformance pass of the fuzzer) depend on: a collision here is a
        cache-poisoning bug of the kind the differential engine exists to
        catch.
        """
        config = FuzzConfig(seed=11, features=frozenset(
            ("arith", "bitops", "mux", "reg", "when", "switch", "vec", "sint")
        ))
        sources = {generate_program(config, index).source for index in range(80)}
        structural = {
            structural_fingerprint(parse_source(source)) for source in sources
        }
        stable = {stable_fingerprint({"source": source}) for source in sources}
        assert len(structural) == len(sources)
        assert len(stable) == len(sources)
