"""Tests for the testbench harness and the toolchain facades."""

import pytest

from repro.problems.families.combinational import adder, mux2
from repro.problems.families.sequential import counter
from repro.sim.reference import BehavioralDevice
from repro.sim.testbench import FunctionalPoint, Testbench, run_testbench
from repro.toolchain.compiler import ChiselCompiler
from repro.toolchain.simulator import Simulator
from repro.verilog.parser import parse_verilog

COMPILER = ChiselCompiler(top="TopModule")
SIMULATOR = Simulator(top="TopModule")


def golden_verilog(problem):
    result = COMPILER.compile(problem.golden_chisel)
    assert result.success, result.render_feedback()
    return result.verilog


class TestTestbenchHarness:
    def test_identical_modules_pass(self):
        problem = mux2(8, "verilogeval_s2r")
        verilog = golden_verilog(problem)
        report = run_testbench(
            parse_verilog(verilog)[0], parse_verilog(verilog)[0], problem.build_testbench()
        )
        assert report.passed
        assert report.checked_points > 0

    def test_mismatching_dut_reports_failures(self):
        problem = mux2(8, "verilogeval_s2r")
        fault = problem.functional_faults[0]
        broken = COMPILER.compile(fault.apply(problem.golden_chisel)).verilog
        report = run_testbench(
            parse_verilog(broken)[0],
            parse_verilog(golden_verilog(problem))[0],
            problem.build_testbench(),
        )
        assert not report.passed
        assert report.failed_points > 0
        mismatch = report.mismatches[0]
        assert mismatch.signal == "io_out"
        assert "expected" in mismatch.render()

    def test_missing_port_is_a_runtime_error(self):
        problem = mux2(8, "verilogeval_s2r")
        wrong_io = """
        module TopModule(input [7:0] io_x, output [7:0] io_out);
          assign io_out = io_x;
        endmodule
        """
        report = run_testbench(
            parse_verilog(wrong_io)[0],
            parse_verilog(golden_verilog(problem))[0],
            problem.build_testbench(),
        )
        assert not report.passed
        assert report.runtime_error is not None

    def test_behavioral_reference_matches_golden_counter(self):
        problem = counter(4, "hdlbits")
        verilog = golden_verilog(problem)

        def step(inputs, state):
            if inputs.get("io_en", 0):
                state["count"] = (state.get("count", 0) + 1) % 16

        reference = BehavioralDevice(
            output_widths={"io_count": 4},
            combinational=lambda inputs, state: {"io_count": state.get("count", 0)},
            sequential=step,
            reset_state=lambda: {"count": 0},
        )
        report = run_testbench(parse_verilog(verilog)[0], reference, problem.build_testbench(seed=5))
        assert report.passed, report.render()

    def test_behavioral_reference_matches_golden_adder(self):
        problem = adder(8, "verilogeval_s2r")
        verilog = golden_verilog(problem)
        reference = BehavioralDevice(
            output_widths={"io_sum": 8, "io_cout": 1},
            combinational=lambda inputs, state: {
                "io_sum": inputs["io_a"] + inputs["io_b"] + inputs["io_cin"],
                "io_cout": (inputs["io_a"] + inputs["io_b"] + inputs["io_cin"]) >> 8,
            },
        )
        report = run_testbench(parse_verilog(verilog)[0], reference, problem.build_testbench(seed=3))
        assert report.passed, report.render()

    def test_unchecked_points_are_not_compared(self):
        testbench = Testbench(points=[FunctionalPoint({"io_a": 1}, check=False)], reset_cycles=0)
        problem = mux2(8, "verilogeval_s2r")
        verilog = golden_verilog(problem)
        report = run_testbench(parse_verilog(verilog)[0], parse_verilog(verilog)[0], testbench)
        assert report.checked_points == 0


class TestCompilerFacade:
    def test_successful_compile_produces_verilog(self):
        problem = mux2(4, "verilogeval_s2r")
        result = COMPILER.compile(problem.golden_chisel)
        assert result.success
        assert "module TopModule" in result.verilog
        assert result.stage == "ok"

    def test_parse_failure_reports_parse_stage(self):
        result = COMPILER.compile("class TopModule extends Module { val x = ( }")
        assert not result.success
        assert result.stage == "parse"

    def test_elaboration_failure_reports_stage(self):
        result = COMPILER.compile(
            "import chisel3._\nclass TopModule extends Module {\n"
            "  val io = IO(new Bundle { val out = Output(UInt(4.W)) })\n"
            "  io.out := missing\n}"
        )
        assert result.stage == "elaborate"

    def test_firrtl_failure_reports_stage(self):
        result = COMPILER.compile(
            "import chisel3._\nclass TopModule extends Module {\n"
            "  val io = IO(new Bundle { val out = Output(UInt(4.W)) })\n"
            "  val w = Wire(UInt(4.W))\n"
            "  when (w(0)) { w := 1.U }\n"
            "  io.out := w\n}"
        )
        assert result.stage == "firrtl"

    def test_feedback_ends_with_compilation_failed(self):
        result = COMPILER.compile("class TopModule extends Module { val x = ( }")
        assert result.render_feedback().endswith("Compilation failed")


class TestSimulatorFacade:
    def test_simulate_golden_against_itself(self):
        problem = mux2(4, "verilogeval_s2r")
        verilog = golden_verilog(problem)
        outcome = SIMULATOR.simulate(verilog, verilog, problem.build_testbench())
        assert outcome.success

    def test_unparseable_dut_is_reported(self):
        problem = mux2(4, "verilogeval_s2r")
        outcome = SIMULATOR.simulate("module broken(", golden_verilog(problem), problem.build_testbench())
        assert not outcome.success
        assert "could not be parsed" in outcome.render_feedback()

    def test_functional_mismatch_is_reported(self):
        problem = mux2(4, "verilogeval_s2r")
        fault = problem.functional_faults[0]
        broken = COMPILER.compile(fault.apply(problem.golden_chisel)).verilog
        outcome = SIMULATOR.simulate(broken, golden_verilog(problem), problem.build_testbench())
        assert not outcome.success
        assert "functional point" in outcome.render_feedback()
