"""Memories end-to-end: ``Mem``/``SyncReadMem`` through every backend.

Covers the full pipeline added for the memory language surface — frontend
elaboration and diagnostics, Verilog emission and re-parse of memory arrays,
bit-identical semantics across the interpreter, scalar trace kernels and
vectorized SoA kernels (including the batched ``run_testbenches`` path and
warm/cold stage caches), read-during-write pinning for ``SyncReadMem``, the
width-63/64 lane-boundary seams of the vector backend, and the ``memory``
problem family riding the standard sweep path.
"""

from __future__ import annotations

import pytest

from repro.fuzz.config import ALL_FEATURES, FuzzConfig
from repro.fuzz.differential import check_program, check_source
from repro.fuzz.generate import generate_program
from repro.problems.base import SUITE_MEMORY
from repro.problems.registry import (
    EXPECTED_PROBLEM_COUNT,
    MEMORY_PROBLEM_COUNT,
    build_default_registry,
    build_extended_registry,
    build_memory_family,
)
from repro.sim.testbench import run_testbench, run_testbenches
from repro.toolchain.compiler import ChiselCompiler
from repro.verilog.parser import VerilogParseError, parse_verilog
from repro.verilog.simulator import Simulation

HEADER = "import chisel3._\nimport chisel3.util._\n\n"

COMPILER = ChiselCompiler(top="TopModule")

REGFILE = HEADER + """class TopModule extends Module {
  val io = IO(new Bundle {
    val wen = Input(Bool())
    val waddr = Input(UInt(3.W))
    val wdata = Input(UInt(8.W))
    val raddr = Input(UInt(3.W))
    val rdata = Output(UInt(8.W))
  })
  val mem = Mem(8, UInt(8.W))
  when (io.wen) {
    mem(io.waddr) := io.wdata
  }
  io.rdata := mem(io.raddr)
}
"""

SYNC_REGFILE = HEADER + """class TopModule extends Module {
  val io = IO(new Bundle {
    val wen = Input(Bool())
    val waddr = Input(UInt(3.W))
    val wdata = Input(UInt(8.W))
    val ren = Input(Bool())
    val raddr = Input(UInt(3.W))
    val rdata = Output(UInt(8.W))
  })
  val mem = SyncReadMem(8, UInt(8.W))
  when (io.wen) {
    mem.write(io.waddr, io.wdata)
  }
  io.rdata := mem.read(io.raddr, io.ren)
}
"""


def _module(source: str):
    result = COMPILER.compile(source)
    assert result.success, result.render_feedback()
    return parse_verilog(result.verilog)[-1]


def assert_error(result, code, fragment):
    assert not result.success
    codes = {d.code for d in result.errors}
    assert code in codes, f"expected {code} in {codes}: {result.render_feedback()}"
    assert fragment.lower() in result.render_feedback().lower()


# ---------------------------------------------------------------------------
# Frontend: elaboration and diagnostics
# ---------------------------------------------------------------------------


class TestMemFrontend:
    def test_mem_compiles_to_verilog_array(self):
        result = COMPILER.compile(REGFILE)
        assert result.success, result.render_feedback()
        assert "reg [7:0] mem [0:7];" in result.verilog
        assert "mem[io_waddr] <= io_wdata;" in result.verilog
        assert "assign io_rdata = mem[io_raddr];" in result.verilog

    def test_sync_read_mem_emits_read_register(self):
        result = COMPILER.compile(SYNC_REGFILE)
        assert result.success, result.render_feedback()
        # The synchronous read port is an explicit register clocked off the
        # memory array, which is what gives read-first semantics everywhere.
        assert "reg [7:0] mem [0:7];" in result.verilog
        assert "mem[io_raddr]" in result.verilog
        assert "assign io_rdata" in result.verilog

    def test_memory_arrays_reparse(self):
        result = COMPILER.compile(REGFILE)
        module = parse_verilog(result.verilog)[-1]
        mems = [net for net in module.nets if net.depth is not None]
        assert len(mems) == 1
        assert mems[0].name == "mem"
        assert mems[0].depth == 8
        assert mems[0].width == 8

    def test_mem_size_must_be_positive(self):
        result = COMPILER.compile(
            HEADER + "class TopModule extends Module {\n"
            "  val io = IO(new Bundle { val out = Output(UInt(4.W)) })\n"
            "  val m = Mem(0, UInt(4.W))\n"
            "  io.out := m(0.U)\n}\n"
        )
        assert_error(result, "A3", "positive")

    def test_mem_element_must_be_ground_type(self):
        result = COMPILER.compile(
            HEADER + "class TopModule extends Module {\n"
            "  val io = IO(new Bundle { val out = Output(UInt(4.W)) })\n"
            "  val m = Mem(4, Vec(2, UInt(4.W)))\n"
            "  io.out := 0.U\n}\n"
        )
        assert_error(result, "UNSUPPORTED", "ground types")

    def test_mem_element_needs_explicit_width(self):
        result = COMPILER.compile(
            HEADER + "class TopModule extends Module {\n"
            "  val io = IO(new Bundle { val out = Output(UInt(4.W)) })\n"
            "  val m = Mem(4, UInt())\n"
            "  io.out := 0.U\n}\n"
        )
        assert_error(result, "A3", "explicit width")

    def test_mem_address_must_be_uint(self):
        result = COMPILER.compile(
            HEADER + "class TopModule extends Module {\n"
            "  val io = IO(new Bundle {\n"
            "    val a = Input(SInt(3.W))\n"
            "    val out = Output(UInt(4.W))\n"
            "  })\n"
            "  val m = Mem(4, UInt(4.W))\n"
            "  io.out := m(io.a)\n}\n"
        )
        assert_error(result, "B5", "addresses must be UInt")

    def test_sync_read_mem_apply_is_rejected_with_guidance(self):
        result = COMPILER.compile(
            HEADER + "class TopModule extends Module {\n"
            "  val io = IO(new Bundle {\n"
            "    val a = Input(UInt(2.W))\n"
            "    val out = Output(UInt(4.W))\n"
            "  })\n"
            "  val m = SyncReadMem(4, UInt(4.W))\n"
            "  io.out := m(io.a)\n}\n"
        )
        assert_error(result, "UNSUPPORTED", ".read(addr)")

    def test_mem_cannot_be_connected_wholesale(self):
        result = COMPILER.compile(
            HEADER + "class TopModule extends Module {\n"
            "  val io = IO(new Bundle { val out = Output(UInt(4.W)) })\n"
            "  val m = Mem(4, UInt(4.W))\n"
            "  m := 0.U\n"
            "  io.out := 0.U\n}\n"
        )
        assert not result.success

    def test_mem_write_signedness_mismatch(self):
        result = COMPILER.compile(
            HEADER + "class TopModule extends Module {\n"
            "  val io = IO(new Bundle {\n"
            "    val d = Input(SInt(4.W))\n"
            "    val out = Output(UInt(4.W))\n"
            "  })\n"
            "  val m = Mem(4, UInt(4.W))\n"
            "  m.write(1.U, io.d)\n"
            "  io.out := m(0.U)\n}\n"
        )
        assert_error(result, "B5", "type mismatch")


class TestIntrinsicDiagnostics:
    """Satellite: log2* argument validation and the split UNSUPPORTED list."""

    @pytest.mark.parametrize("fn", ["log2Ceil", "log2Up", "log2Floor"])
    @pytest.mark.parametrize("arg", [0, -1, -8])
    def test_log2_rejects_non_positive(self, fn, arg):
        result = COMPILER.compile(
            HEADER + "class TopModule extends Module {\n"
            "  val io = IO(new Bundle { val out = Output(UInt(8.W)) })\n"
            f"  val n = {fn}({arg})\n"
            "  io.out := n.U\n}\n"
        )
        assert_error(result, "A3", "positive")

    @pytest.mark.parametrize(
        "fn,arg,expected",
        [
            ("log2Ceil", 1, 0), ("log2Ceil", 5, 3), ("log2Ceil", 8, 3),
            ("log2Up", 1, 1), ("log2Up", 5, 3), ("log2Up", 8, 3),
            ("log2Floor", 1, 0), ("log2Floor", 5, 2), ("log2Floor", 8, 3),
        ],
    )
    def test_log2_positive_values(self, fn, arg, expected):
        result = COMPILER.compile(
            HEADER + "class TopModule extends Module {\n"
            "  val io = IO(new Bundle { val out = Output(UInt(8.W)) })\n"
            f"  io.out := {fn}({arg}).U(8.W)\n}}\n"
        )
        assert result.success, result.render_feedback()
        sim = Simulation(parse_verilog(result.verilog)[-1])
        assert sim.peek("io_out") == expected

    @pytest.mark.parametrize(
        "arg,expected", [(0, False), (-4, False), (1, True), (3, False), (8, True)]
    )
    def test_ispow2(self, arg, expected):
        result = COMPILER.compile(
            HEADER + "class TopModule extends Module {\n"
            "  val io = IO(new Bundle { val out = Output(Bool()) })\n"
            f"  io.out := isPow2({arg}).B\n}}\n"
        )
        assert result.success, result.render_feedback()
        sim = Simulation(parse_verilog(result.verilog)[-1])
        assert sim.peek("io_out") == (1 if expected else 0)

    @pytest.mark.parametrize(
        "construct,hint",
        [
            ("Queue(io.out, 4)", "FIFO"),
            ("Counter(4)", "RegInit"),
            ("MuxCase(0.U, Seq())", "nested Mux"),
            ("MuxLookup(0.U, 0.U)", "nested Mux"),
        ],
    )
    def test_unsupported_rejections_name_nearest_construct(self, construct, hint):
        result = COMPILER.compile(
            HEADER + "class TopModule extends Module {\n"
            "  val io = IO(new Bundle { val out = Output(UInt(4.W)) })\n"
            f"  val x = {construct}\n"
            "  io.out := 0.U\n}\n"
        )
        # The code stays UNSUPPORTED (shrinker signatures key on it) while
        # the message now names the nearest supported construct.
        assert_error(result, "UNSUPPORTED", hint)

    def test_mem_no_longer_unsupported(self):
        result = COMPILER.compile(REGFILE)
        assert result.success
        assert "UNSUPPORTED" not in {d.code for d in result.diagnostics}


# ---------------------------------------------------------------------------
# Verilog layer: parser guards
# ---------------------------------------------------------------------------


class TestMemoryVerilogParsing:
    def test_wire_memory_array_rejected(self):
        with pytest.raises(VerilogParseError, match="declared as reg"):
            parse_verilog(
                "module m(input clock);\n  wire [3:0] mem [0:3];\nendmodule\n"
            )

    def test_non_zero_based_array_rejected(self):
        with pytest.raises(VerilogParseError, match="zero-based"):
            parse_verilog(
                "module m(input clock);\n  reg [3:0] mem [1:4];\nendmodule\n"
            )

    def test_memory_initializer_rejected(self):
        with pytest.raises(VerilogParseError):
            parse_verilog(
                "module m(input clock);\n  reg [3:0] mem [0:3] = 0;\nendmodule\n"
            )

    def test_reversed_range_normalises(self):
        module = parse_verilog(
            "module m(input clock);\n  reg [3:0] mem [3:0];\nendmodule\n"
        )[-1]
        net = [n for n in module.nets if n.name == "mem"][0]
        assert net.depth == 4


# ---------------------------------------------------------------------------
# Backends: bit-identity across every seam
# ---------------------------------------------------------------------------


class TestMemoryBackends:
    @pytest.mark.cache_mutating
    @pytest.mark.parametrize("source", [REGFILE, SYNC_REGFILE], ids=["mem", "sync"])
    def test_full_conformance(self, source):
        """Interpreter, trace, vector (single + batched), warm + cold caches."""
        report = check_source(source, points=48, sequential=True)
        assert report.ok, report.render()
        assert report.compiled_eligible
        assert report.trace_eligible
        assert report.vector_eligible

    def test_mem_interpreter_semantics(self):
        """Direct interpreter checks: comb read, sync write, reset-immunity."""
        sim = Simulation(_module(REGFILE))
        sim.poke_many({"io_wen": 1, "io_waddr": 3, "io_wdata": 0xAB, "io_raddr": 3})
        # Combinational read sees the old contents until the clock edge.
        assert sim.peek("io_rdata") == 0
        sim.step()
        assert sim.peek("io_rdata") == 0xAB
        # Reset does not clear memory contents.
        sim.poke_many({"io_wen": 0, "reset": 1})
        sim.step()
        sim.poke("reset", 0)
        assert sim.peek("io_rdata") == 0xAB

    def test_mem_write_enable_gates_write(self):
        sim = Simulation(_module(REGFILE))
        sim.poke_many({"io_wen": 0, "io_waddr": 2, "io_wdata": 0x55, "io_raddr": 2})
        sim.step()
        assert sim.peek("io_rdata") == 0

    def test_last_write_wins_on_same_address(self):
        source = HEADER + """class TopModule extends Module {
  val io = IO(new Bundle {
    val addr = Input(UInt(2.W))
    val rdata = Output(UInt(8.W))
  })
  val mem = Mem(4, UInt(8.W))
  mem(io.addr) := 1.U
  mem(io.addr) := 2.U
  io.rdata := mem(io.addr)
}
"""
        report = check_source(source, points=16, sequential=True, check_cold=False)
        assert report.ok, report.render()
        sim = Simulation(_module(source))
        sim.poke("io_addr", 1)
        sim.step()
        assert sim.peek("io_rdata") == 2

    def test_distinct_addressed_writes_both_land(self):
        """Two writes to different (dynamic) addresses must not fold."""
        source = HEADER + """class TopModule extends Module {
  val io = IO(new Bundle {
    val a = Input(UInt(2.W))
    val b = Input(UInt(2.W))
    val ra = Input(UInt(2.W))
    val rdata = Output(UInt(8.W))
  })
  val mem = Mem(4, UInt(8.W))
  mem(io.a) := 10.U
  mem(io.b) := 20.U
  io.rdata := mem(io.ra)
}
"""
        report = check_source(source, points=24, sequential=True, check_cold=False)
        assert report.ok, report.render()
        sim = Simulation(_module(source))
        sim.poke_many({"io_a": 1, "io_b": 2, "io_ra": 1})
        sim.step()
        assert sim.peek("io_rdata") == 10
        sim.poke("io_ra", 2)
        assert sim.peek("io_rdata") == 20

    def test_signed_memory_elements(self):
        source = HEADER + """class TopModule extends Module {
  val io = IO(new Bundle {
    val waddr = Input(UInt(2.W))
    val wdata = Input(SInt(6.W))
    val raddr = Input(UInt(2.W))
    val rdata = Output(SInt(6.W))
    val neg = Output(Bool())
  })
  val mem = Mem(4, SInt(6.W))
  mem.write(io.waddr, io.wdata)
  io.rdata := mem(io.raddr)
  io.neg := mem(io.raddr) < 0.S
}
"""
        report = check_source(source, points=32, sequential=True, check_cold=False)
        assert report.ok, report.render()
        sim = Simulation(_module(source))
        sim.poke_many({"io_waddr": 0, "io_wdata": 0x3F, "io_raddr": 0})  # -1
        sim.step()
        assert sim.peek_signed("io_rdata") == -1
        assert sim.peek("io_neg") == 1

    def test_batched_vector_runs_match(self):
        module = _module(REGFILE)
        from repro.fuzz.differential import build_testbench

        tb = build_testbench(module, "mem-batch", 32, sequential=True)
        stepwise = run_testbench(module, module, tb, backend="stepwise")
        batched = run_testbenches(
            [(module, module, tb), (module, module, tb)], backend="vector"
        )
        assert batched[0] == stepwise
        assert batched[1] == stepwise


class TestSyncReadMemReadDuringWrite:
    """Satellite: pin read-first semantics across backends and cache states."""

    RDW = HEADER + """class TopModule extends Module {
  val io = IO(new Bundle {
    val addr = Input(UInt(2.W))
    val wdata = Input(UInt(8.W))
    val wen = Input(Bool())
    val rdata = Output(UInt(8.W))
  })
  val mem = SyncReadMem(4, UInt(8.W))
  when (io.wen) {
    mem.write(io.addr, io.wdata)
  }
  io.rdata := mem.read(io.addr)
}
"""

    def test_read_during_write_returns_old_data(self):
        """Same-address read+write in one cycle yields the pre-write contents."""
        sim = Simulation(_module(self.RDW))
        sim.poke_many({"io_wen": 1, "io_addr": 2, "io_wdata": 7})
        sim.step()
        # The write landed and the read port captured the OLD contents (0).
        assert sim.peek("io_rdata") == 0
        sim.poke("io_wdata", 9)
        sim.step()
        # Now the read register shows the first write, not the second.
        assert sim.peek("io_rdata") == 7
        sim.poke("io_wen", 0)
        sim.step()
        assert sim.peek("io_rdata") == 9

    @pytest.mark.cache_mutating
    @pytest.mark.parametrize("with_enable", [False, True], ids=["plain", "enabled"])
    def test_rdw_identical_across_backends_and_caches(self, with_enable):
        source = self.RDW
        if with_enable:
            source = source.replace(
                "val wen = Input(Bool())",
                "val wen = Input(Bool())\n    val ren = Input(Bool())",
            ).replace("mem.read(io.addr)", "mem.read(io.addr, io.ren)")
        report = check_source(source, points=64, sequential=True)
        assert report.ok, report.render()
        assert report.vector_eligible and report.trace_eligible

    @pytest.mark.parametrize("backend", ["stepwise", "trace", "vector"])
    def test_rdw_sequence_per_backend(self, backend):
        """The same directed RDW sequence observed identically per backend."""
        from repro.sim.testbench import FunctionalPoint, Testbench

        module = _module(self.RDW)
        points = [
            FunctionalPoint({"io_wen": 1, "io_addr": 2, "io_wdata": 7}, clock_cycles=1),
            FunctionalPoint({"io_wen": 1, "io_addr": 2, "io_wdata": 9}, clock_cycles=1),
            FunctionalPoint({"io_wen": 0, "io_addr": 2, "io_wdata": 0}, clock_cycles=1),
        ]
        tb = Testbench(points=points, reset_cycles=2)
        report = run_testbench(module, module, tb, backend=backend)
        assert report.passed and report.runtime_error is None


# ---------------------------------------------------------------------------
# Satellite: width-63/64 lane-boundary semantics of the vector backend
# ---------------------------------------------------------------------------


class TestLaneBoundaryWidths:
    """Signals exactly at LANE_WIDTH exercise the shift-by-64 guard and the
    full-lane mask path; every op must match the interpreter bit for bit."""

    @pytest.mark.cache_mutating
    @pytest.mark.parametrize("width", [63, 64])
    def test_add_sub_at_boundary(self, width):
        source = HEADER + f"""class TopModule extends Module {{
  val io = IO(new Bundle {{
    val a = Input(UInt({width}.W))
    val b = Input(UInt({width}.W))
    val sum = Output(UInt({width}.W))
    val diff = Output(UInt({width}.W))
  }})
  io.sum := io.a + io.b
  io.diff := io.a - io.b
}}
"""
        report = check_source(source, points=48, sequential=False)
        assert report.ok, report.render()
        assert report.vector_eligible

    @pytest.mark.cache_mutating
    @pytest.mark.parametrize("width", [63, 64])
    def test_dynamic_shifts_at_boundary(self, width):
        """Shift amounts range past 64, hitting the shift-by-width guard."""
        source = HEADER + f"""class TopModule extends Module {{
  val io = IO(new Bundle {{
    val a = Input(UInt({width}.W))
    val amt = Input(UInt(7.W))
    val right = Output(UInt({width}.W))
    val left = Output(UInt({width}.W))
  }})
  io.right := io.a >> io.amt
  io.left := (io.a << io.amt)({width - 1}, 0)
}}
"""
        report = check_source(source, points=48, sequential=False)
        assert report.ok, report.render()
        assert report.vector_eligible

    @pytest.mark.cache_mutating
    @pytest.mark.parametrize("width", [63, 64])
    def test_signed_compare_at_boundary(self, width):
        source = HEADER + f"""class TopModule extends Module {{
  val io = IO(new Bundle {{
    val a = Input(SInt({width}.W))
    val b = Input(SInt({width}.W))
    val lt = Output(Bool())
    val ge = Output(Bool())
    val eq = Output(Bool())
  }})
  io.lt := io.a < io.b
  io.ge := io.a >= io.b
  io.eq := io.a === io.b
}}
"""
        report = check_source(source, points=48, sequential=False)
        assert report.ok, report.render()
        assert report.vector_eligible

    @pytest.mark.cache_mutating
    @pytest.mark.parametrize("wa,wb", [(32, 32), (31, 32)])
    def test_multiply_products_fill_the_lane(self, wa, wb):
        """32x32 products land exactly on the 64-bit lane boundary."""
        source = HEADER + f"""class TopModule extends Module {{
  val io = IO(new Bundle {{
    val a = Input(UInt({wa}.W))
    val b = Input(UInt({wb}.W))
    val p = Output(UInt({wa + wb}.W))
  }})
  io.p := io.a * io.b
}}
"""
        report = check_source(source, points=48, sequential=False)
        assert report.ok, report.render()
        assert report.vector_eligible

    def test_width_65_is_vector_ineligible_not_wrong(self):
        """One past the boundary falls back by design — reported, not broken."""
        source = HEADER + """class TopModule extends Module {
  val io = IO(new Bundle {
    val a = Input(UInt(65.W))
    val out = Output(UInt(65.W))
  })
  io.out := io.a
}
"""
        report = check_source(source, points=8, sequential=False, check_cold=False)
        assert report.ok, report.render()
        assert not report.vector_eligible


# ---------------------------------------------------------------------------
# Fuzz integration: the mem feature family
# ---------------------------------------------------------------------------


class TestMemFuzzFamily:
    def test_mem_is_a_known_feature(self):
        assert "mem" in ALL_FEATURES

    def test_mem_only_session_generates_memories(self):
        config = FuzzConfig(seed=7, features=frozenset({"mem"}))
        found = 0
        for index in range(12):
            program = generate_program(config, index)
            if "mem" in program.features:
                found += 1
                assert "Mem(" in program.source or "SyncReadMem(" in program.source
                assert program.sequential
        assert found >= 6

    @pytest.mark.cache_mutating
    def test_mem_programs_conform(self):
        """A bounded mem-featured differential session with zero findings."""
        config = FuzzConfig(seed=11, features=frozenset({"mem", "arith", "mux"}))
        compiler = ChiselCompiler()
        checked = 0
        for index in range(8):
            program = generate_program(config, index)
            report = check_program(program, config, compiler=compiler)
            assert report.ok, f"index {index}: {report.render()}"
            checked += 1
        assert checked == 8


# ---------------------------------------------------------------------------
# The memory problem family through the standard verification path
# ---------------------------------------------------------------------------


class TestMemoryProblemFamily:
    def test_default_registry_unchanged(self):
        assert len(build_default_registry()) == EXPECTED_PROBLEM_COUNT

    def test_extended_registry_appends_memory_suite(self):
        registry = build_extended_registry()
        assert len(registry) == EXPECTED_PROBLEM_COUNT + MEMORY_PROBLEM_COUNT
        memory_problems = registry.by_suite(SUITE_MEMORY)
        assert len(memory_problems) == MEMORY_PROBLEM_COUNT
        assert all(p.sequential for p in memory_problems)

    def test_goldens_pass_their_testbenches_on_every_backend(self):
        for problem in build_memory_family():
            result = COMPILER.compile(problem.golden_chisel)
            assert result.success, f"{problem.problem_id}: {result.render_feedback()}"
            module = parse_verilog(result.verilog)[-1]
            testbench = problem.build_testbench(seed=3)
            stepwise = run_testbench(module, module, testbench, backend="stepwise")
            trace = run_testbench(module, module, testbench, backend="trace")
            vector = run_testbench(module, module, testbench, backend="vector")
            assert stepwise.passed, f"{problem.problem_id}: {stepwise.render()}"
            assert stepwise == trace == vector, problem.problem_id

    def test_functional_faults_compile_and_fail(self):
        for problem in build_memory_family():
            golden = parse_verilog(COMPILER.compile(problem.golden_chisel).verilog)[-1]
            for fault in problem.functional_faults:
                faulty_source = fault.apply(problem.golden_chisel)
                result = COMPILER.compile(faulty_source)
                assert result.success, f"{problem.problem_id}/{fault.fault_id}"
                faulty = parse_verilog(result.verilog)[-1]
                # Deep-state faults (e.g. push-when-full) need the right
                # stimulus to surface; require detection within a few seeds.
                caught = False
                for seed in (1, 3, 5, 7):
                    testbench = problem.build_testbench(seed=seed)
                    report = run_testbench(faulty, golden, testbench, backend="stepwise")
                    if not report.passed:
                        caught = True
                        break
                assert caught, f"{problem.problem_id}/{fault.fault_id} undetected"

    def test_memory_problems_run_through_sweep_engine(self):
        """The extension suite rides the standard sweep/campaign path."""
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.engine import SweepEngine
        from repro.experiments.work import WorkUnit
        from repro.llm.profiles import CLAUDE_SONNET

        registry = build_extended_registry()
        problem = registry.by_id("regfile_w4_d4")
        assert problem.suite == SUITE_MEMORY
        config = ExperimentConfig(
            samples_per_case=1,
            max_iterations=2,
            models=(CLAUDE_SONNET,),
            seed=0,
        )
        engine = SweepEngine(config, registry=registry)
        unit = WorkUnit(
            strategy="zero_shot",
            model=CLAUDE_SONNET,
            problem_id="regfile_w4_d4",
            case_index=0,
            sample=0,
            seed=0,
            max_iterations=0,
            knobs=(("language", "chisel"),),
        )
        results = engine.run([unit])
        assert len(results) == 1
        assert "outcome" in results[0]
        assert engine.stats.executed == 1
