"""Tests for the benchmark registry: every golden solution must compile and
self-verify, every declared fault must behave as documented."""

import pytest

from repro.problems.base import SUITES
from repro.problems.mutations import SYNTAX_FAULTS, applicable_syntax_faults
from repro.problems.registry import EXPECTED_PROBLEM_COUNT, build_default_registry
from repro.toolchain.compiler import ChiselCompiler
from repro.toolchain.simulator import Simulator

REGISTRY = build_default_registry()
COMPILER = ChiselCompiler(top="TopModule")
SIMULATOR = Simulator(top="TopModule")
ALL_PROBLEMS = list(REGISTRY)
PROBLEM_IDS = [p.problem_id for p in ALL_PROBLEMS]


class TestRegistryStructure:
    def test_exactly_216_cases(self):
        assert len(REGISTRY) == EXPECTED_PROBLEM_COUNT == 216

    def test_three_suites_are_populated(self):
        for suite in SUITES:
            assert len(REGISTRY.by_suite(suite)) > 10

    def test_ids_are_unique(self):
        assert len(set(PROBLEM_IDS)) == len(PROBLEM_IDS)

    def test_lookup_by_id(self):
        assert REGISTRY.by_id("vector5").name.startswith("Vector5")
        with pytest.raises(KeyError):
            REGISTRY.by_id("does_not_exist")

    def test_every_problem_has_a_functional_fault(self):
        for problem in ALL_PROBLEMS:
            assert problem.functional_faults, problem.problem_id

    def test_spec_text_lists_all_ports(self):
        problem = REGISTRY.by_id("adder_w8")
        spec = problem.spec_text()
        for port in problem.inputs + problem.outputs:
            assert port.name in spec

    def test_sequential_problems_mention_clocking(self):
        problem = REGISTRY.by_id("counter_w4")
        assert "reset" in problem.spec_text().lower()

    def test_testbench_is_deterministic_per_seed(self):
        problem = REGISTRY.by_id("alu_w8")
        first = problem.build_testbench(seed=3)
        second = problem.build_testbench(seed=3)
        assert [p.inputs for p in first.points] == [p.inputs for p in second.points]


@pytest.mark.parametrize("problem", ALL_PROBLEMS, ids=PROBLEM_IDS)
def test_golden_solution_compiles(problem):
    result = COMPILER.compile(problem.golden_chisel)
    assert result.success, f"{problem.problem_id}: {result.render_feedback()}"


@pytest.mark.parametrize(
    "problem",
    [p for p in ALL_PROBLEMS if p.problem_id.endswith(("_w8", "_w4")) or not p.problem_id[-1].isdigit()],
    ids=lambda p: p.problem_id,
)
def test_golden_solution_passes_its_own_testbench(problem):
    verilog = COMPILER.compile(problem.golden_chisel).verilog
    outcome = SIMULATOR.simulate(verilog, verilog, problem.build_testbench(seed=1))
    assert outcome.success, f"{problem.problem_id}: {outcome.render_feedback()}"


@pytest.mark.parametrize(
    "problem",
    [REGISTRY.by_id(pid) for pid in (
        "vector5", "adder_w8", "mux4_w8", "counter_w4", "alu_w8", "seq_detect_101",
        "priority_encoder_8", "mac_w4", "rr_arbiter_2", "sat_adder_w8",
    )],
    ids=lambda p: p.problem_id,
)
def test_functional_faults_compile_but_fail_simulation(problem):
    golden_verilog = COMPILER.compile(problem.golden_chisel).verilog
    for fault in problem.functional_faults:
        assert fault.applies_to(problem.golden_chisel), fault.fault_id
        faulty = fault.apply(problem.golden_chisel)
        compiled = COMPILER.compile(faulty)
        assert compiled.success, f"{fault.fault_id} should still compile"
        outcome = SIMULATOR.simulate(compiled.verilog, golden_verilog, problem.build_testbench(seed=2))
        assert not outcome.success, f"{fault.fault_id} should change behaviour"


class TestSyntaxFaultInjectors:
    @pytest.mark.parametrize("fault", SYNTAX_FAULTS, ids=lambda f: f.fault_id)
    def test_each_injector_produces_its_error_class(self, fault):
        problem = REGISTRY.by_id("alu_w8")
        if not fault.applies(problem.golden_chisel, problem):
            problem = REGISTRY.by_id("adder_w8")
        if not fault.applies(problem.golden_chisel, problem):
            pytest.skip(f"{fault.fault_id} does not apply to the sampled problems")
        faulty = fault.apply(problem.golden_chisel, problem)
        result = COMPILER.compile(faulty)
        assert not result.success, fault.fault_id
        if fault.error_class != "PARSE":
            assert any(d.code == fault.error_class for d in result.errors), (
                fault.fault_id,
                result.render_feedback(),
            )

    def test_applicable_faults_listed_for_every_problem(self):
        for problem in ALL_PROBLEMS[:40]:
            faults = applicable_syntax_faults(problem.golden_chisel, problem)
            assert len(faults) >= 5, problem.problem_id

    def test_injectors_do_not_modify_golden_in_place(self):
        problem = REGISTRY.by_id("adder_w8")
        original = problem.golden_chisel
        for fault in applicable_syntax_faults(original, problem):
            fault.apply(original, problem)
        assert problem.golden_chisel == original
