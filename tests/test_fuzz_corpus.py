"""Replay the committed fuzz corpus as a parameterized regression suite.

``tests/data/fuzz_corpus.jsonl`` holds interesting survivors found by
``python -m repro.fuzz`` (feature-diverse generated designs that passed every
conformance seam when they were committed).  Each entry is replayed through
the full differential engine — compile, Verilog re-parse, interpreter vs
compiled vs trace backends, warm vs cold stage caches — so any semantic
drift in the simulator, the FIRRTL passes or the caches fails here with a
one-line repro before it ships.
"""

from __future__ import annotations

import os

import pytest

from repro.fuzz import load_corpus_entries, replay_entry

CORPUS_PATH = os.path.join(os.path.dirname(__file__), "data", "fuzz_corpus.jsonl")
ENTRIES = load_corpus_entries(CORPUS_PATH)
SURVIVORS = [entry for entry in ENTRIES if entry.kind == "survivor"]


def test_corpus_is_populated():
    """The committed corpus must stay a meaningful regression net."""
    assert len(SURVIVORS) >= 50
    features = set()
    for entry in SURVIVORS:
        features.update(entry.features)
    assert len(features) >= 8  # diverse, not 50 copies of the same shape


@pytest.mark.cache_mutating
@pytest.mark.parametrize(
    "entry",
    SURVIVORS,
    ids=[f"seed{entry.seed}_idx{entry.index}" for entry in SURVIVORS],
)
def test_corpus_survivor_still_conforms(entry):
    report = replay_entry(entry, points=8)
    assert report.ok, (
        f"corpus regression ({entry.kind}, seed={entry.seed}, index={entry.index}, "
        f"features={','.join(entry.features)}):\n{report.render()}\n{entry.source}"
    )
