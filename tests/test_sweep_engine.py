"""Tests for the sweep execution engine: units, executors, store, resume."""

import dataclasses
import json

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.engine import SweepEngine
from repro.experiments.executors import ParallelExecutor, SerialExecutor
from repro.experiments.runner import EvaluationHarness, problem_family, stratified_subset
from repro.experiments.store import ResultStore
from repro.experiments.strategies import ReChiselStrategy, ZeroShotStrategy, strategy_from_unit
from repro.experiments.work import PAYLOAD_VERSION, WorkerContext, WorkUnit, unit_fingerprint
from repro.llm.profiles import CLAUDE_SONNET, GPT4O_MINI
from repro.problems.registry import build_default_registry

SMALL = ExperimentConfig(
    samples_per_case=2,
    max_iterations=4,
    max_cases=8,
    models=(CLAUDE_SONNET,),
    autochip_models=(CLAUDE_SONNET,),
    seed=0,
)


def _unit(**overrides) -> WorkUnit:
    base = dict(
        strategy="zero_shot",
        model=CLAUDE_SONNET,
        problem_id="passthrough_w8",
        case_index=3,
        sample=1,
        seed=0,
        max_iterations=0,
        knobs=(("language", "chisel"),),
    )
    base.update(overrides)
    return WorkUnit(**base)


class TestWorkUnits:
    def test_client_seed_matches_historical_derivation(self):
        assert _unit(case_index=3, sample=1, seed=7).client_seed == 7 + 3000 + 1

    def test_fingerprint_is_stable(self):
        assert unit_fingerprint(_unit(), "g1") == unit_fingerprint(_unit(), "g1")

    def test_fingerprint_covers_every_input(self):
        reference = unit_fingerprint(_unit(), "g1")
        assert unit_fingerprint(_unit(), "g2") != reference
        for change in (
            {"model": GPT4O_MINI},
            {"strategy": "rechisel"},
            {"sample": 0},
            {"case_index": 4},
            {"seed": 1},
            {"max_iterations": 10},
            {"knobs": (("language", "verilog"),)},
        ):
            assert unit_fingerprint(_unit(**change), "g1") != reference, change

    def test_strategy_round_trip_from_unit(self):
        strategy = ReChiselStrategy(enable_escape=False, feedback_detail="summary")
        unit = _unit(strategy=strategy.name, knobs=strategy.knob_items(), max_iterations=4)
        rebuilt = strategy_from_unit(unit)
        assert rebuilt.knob_items() == strategy.knob_items()


class TestResultStore:
    def test_round_trip_across_instances(self, tmp_path):
        path = tmp_path / "results.jsonl"
        with ResultStore(path) as store:
            store.put("fp1", _unit(), {"outcome": "success"})
        reloaded = ResultStore(path)
        assert reloaded.get("fp1") == {"outcome": "success"}
        assert len(reloaded) == 1

    def test_torn_trailing_line_is_skipped(self, tmp_path):
        path = tmp_path / "results.jsonl"
        with ResultStore(path) as store:
            store.put("fp1", _unit(), {"outcome": "success"})
            store.put("fp2", _unit(sample=0), {"outcome": "syntax"})
        # Simulate a run killed mid-write: a torn, undecodable trailing line
        # in the active tail segment.
        with (path / "tail.jsonl").open("a") as handle:
            handle.write('{"v": 1, "fp": "tor')
        reloaded = ResultStore(path)
        assert reloaded.get("fp1") == {"outcome": "success"}
        assert "fp2" in reloaded
        assert len(reloaded) == 2
        assert reloaded.stats()["truncated_bytes"] > 0

    def test_incompatible_version_is_ignored(self, tmp_path):
        # A legacy single-file store is migrated on open; stale-version
        # records are dropped during the migration.
        path = tmp_path / "results.jsonl"
        record = {"v": PAYLOAD_VERSION + 1, "fp": "fp1", "payload": {"outcome": "success"}}
        path.write_text(json.dumps(record) + "\n")
        assert ResultStore(path).get("fp1") is None


def _zero_shot_units(config, harness, language="chisel", model=CLAUDE_SONNET):
    strategy = ZeroShotStrategy(language)
    return [
        WorkUnit(
            strategy=strategy.name,
            model=model,
            problem_id=problem.problem_id,
            case_index=case_index,
            sample=sample,
            seed=config.seed,
            max_iterations=0,
            knobs=strategy.knob_items(),
        )
        for case_index, problem in enumerate(harness.problems())
        for sample in range(config.samples_per_case)
    ]


class TestExecutorEquivalence:
    """Serial and parallel executors must be bit-identical."""

    def _snapshot_rechisel(self, cases):
        return [
            (
                case.problem_id,
                [
                    (
                        result.success,
                        result.success_iteration,
                        [(r.iteration, r.outcome, r.escaped) for r in result.records],
                        result.escapes,
                    )
                    for result in case.results
                ],
            )
            for case in cases
        ]

    def test_zero_shot_serial_vs_parallel(self):
        serial = EvaluationHarness(SMALL)
        parallel = EvaluationHarness(dataclasses.replace(SMALL, jobs=4))
        for language in ("chisel", "verilog"):
            expected = [
                (c.problem_id, c.outcomes) for c in serial.run_zero_shot(CLAUDE_SONNET, language)
            ]
            actual = [
                (c.problem_id, c.outcomes) for c in parallel.run_zero_shot(CLAUDE_SONNET, language)
            ]
            assert actual == expected

    def test_rechisel_serial_vs_parallel(self):
        serial = EvaluationHarness(SMALL)
        parallel = EvaluationHarness(dataclasses.replace(SMALL, jobs=4))
        expected = self._snapshot_rechisel(serial.run_rechisel(CLAUDE_SONNET))
        actual = self._snapshot_rechisel(parallel.run_rechisel(CLAUDE_SONNET))
        assert actual == expected

    def test_autochip_serial_vs_parallel(self):
        serial = EvaluationHarness(SMALL)
        parallel = EvaluationHarness(dataclasses.replace(SMALL, jobs=4))
        expected = [
            (c.problem_id, [(r.success, r.success_iteration, r.outcomes) for r in c.results])
            for c in serial.run_autochip(CLAUDE_SONNET)
        ]
        actual = [
            (c.problem_id, [(r.success, r.success_iteration, r.outcomes) for r in c.results])
            for c in parallel.run_autochip(CLAUDE_SONNET)
        ]
        assert actual == expected

    def test_custom_registry_falls_back_to_serial(self):
        engine = SweepEngine(dataclasses.replace(SMALL, jobs=4), registry=build_default_registry())
        assert isinstance(engine._select_executor(pending_count=10), SerialExecutor)

    def test_default_registry_selects_parallel(self):
        engine = SweepEngine(dataclasses.replace(SMALL, jobs=4))
        assert isinstance(engine._select_executor(pending_count=10), ParallelExecutor)

    def test_parallel_executor_and_pool_persist_across_batches(self):
        engine = SweepEngine(dataclasses.replace(SMALL, jobs=2))
        engine.run([_unit(case_index=0, sample=0), _unit(case_index=0, sample=1)])
        first = engine._parallel
        assert first is not None and first._pool is not None
        pool = first._pool
        engine.run([_unit(case_index=1, sample=0), _unit(case_index=1, sample=1)])
        assert engine._parallel is first
        assert first._pool is pool  # same warm workers, no cold restart
        engine.close()
        assert engine._parallel is None


class TestStoreAndResume:
    def test_warm_store_rerun_executes_nothing(self, tmp_path):
        config = dataclasses.replace(SMALL, store_path=str(tmp_path / "results.jsonl"))
        cold = EvaluationHarness(config)
        expected = [(c.problem_id, c.outcomes) for c in cold.run_zero_shot(CLAUDE_SONNET, "chisel")]
        assert cold.engine.stats.executed > 0

        warm = EvaluationHarness(config)
        actual = [(c.problem_id, c.outcomes) for c in warm.run_zero_shot(CLAUDE_SONNET, "chisel")]
        assert actual == expected
        assert warm.engine.stats.executed == 0
        assert warm.engine.stats.store_hits == len(expected) * config.samples_per_case

    def test_interrupted_sweep_resumes_without_recomputing(self, tmp_path):
        store_path = tmp_path / "results.jsonl"
        config = dataclasses.replace(SMALL, store_path=str(store_path))
        harness = EvaluationHarness(config)
        units = _zero_shot_units(config, harness)

        # "Kill" the sweep partway: only the first half of the units ran.
        first_half = units[: len(units) // 2]
        engine = SweepEngine(config)
        assert engine.store is not None  # resolved from config.store_path
        engine.run(first_half)
        assert engine.stats.executed == len(first_half)
        engine.close()

        # Rerun the full sweep in a fresh engine: only the second half executes.
        resumed = SweepEngine(config)
        resumed.run(units)
        assert resumed.stats.executed == len(units) - len(first_half)
        assert resumed.stats.store_hits == len(first_half)
        resumed.close()

        # A third run recomputes nothing at all.
        warm = SweepEngine(config)
        warm.run(units)
        assert warm.stats.executed == 0
        warm.close()

    def test_overlapping_sweeps_share_the_memo(self):
        harness = EvaluationHarness(SMALL)
        harness.run_rechisel(CLAUDE_SONNET)
        executed = harness.engine.stats.executed
        harness.run_rechisel(CLAUDE_SONNET)  # e.g. Table III then Fig. 6
        assert harness.engine.stats.executed == executed
        assert harness.engine.stats.memo_hits == executed

    def test_duplicate_units_in_one_batch_execute_once(self):
        engine = SweepEngine(SMALL)
        unit = _unit(case_index=0, sample=0)
        payloads = engine.run([unit, unit])
        assert engine.stats.executed == 1
        assert payloads[0] == payloads[1]

    def test_knob_changes_miss_the_store(self, tmp_path):
        config = dataclasses.replace(SMALL, store_path=str(tmp_path / "results.jsonl"))
        first = EvaluationHarness(config)
        first.run_rechisel(CLAUDE_SONNET, enable_escape=True)
        executed = first.engine.stats.executed

        second = EvaluationHarness(config)
        second.run_rechisel(CLAUDE_SONNET, enable_escape=False)
        assert second.engine.stats.executed == executed
        assert second.engine.stats.store_hits == 0


class TestStratifiedSubsetting:
    def test_subset_is_deterministic_and_sized(self):
        problems = list(build_default_registry())
        subset = stratified_subset(problems, 36)
        again = stratified_subset(problems, 36)
        assert [p.problem_id for p in subset] == [p.problem_id for p in again]
        assert len(subset) == 36
        assert len({p.problem_id for p in subset}) == 36

    def test_subset_preserves_registry_order(self):
        problems = list(build_default_registry())
        subset = stratified_subset(problems, 36)
        order = {p.problem_id: i for i, p in enumerate(problems)}
        indices = [order[p.problem_id] for p in subset]
        assert indices == sorted(indices)

    @pytest.mark.parametrize("max_cases", [12, 36, 100])
    def test_family_shares_are_proportional_within_one(self, max_cases):
        problems = list(build_default_registry())
        subset = stratified_subset(problems, max_cases)
        assert len(subset) == max_cases

        full_counts: dict[str, int] = {}
        for problem in problems:
            full_counts[problem_family(problem)] = full_counts.get(problem_family(problem), 0) + 1
        subset_counts: dict[str, int] = {}
        for problem in subset:
            subset_counts[problem_family(problem)] = (
                subset_counts.get(problem_family(problem), 0) + 1
            )

        total = len(problems)
        for family, count in full_counts.items():
            share = count * max_cases / total
            taken = subset_counts.get(family, 0)
            assert abs(taken - share) <= 1.0, (family, share, taken)

    def test_suites_are_all_represented(self):
        harness = EvaluationHarness(ExperimentConfig.quick())
        suites = {p.suite for p in harness.problems()}
        assert suites == {p.suite for p in build_default_registry()}
