"""Differential fuzzing subsystem: generator, conformance engine, shrinker,
corpus store and session driver.

The long adversarial sessions live behind the ``fuzz`` marker (excluded from
tier-1; CI runs them as the bounded fuzz smoke job).  The tests here are the
quick structural guarantees: determinism, feature masking, seam detection
(via injected faults — both source-level mutations from
``problems/mutations.py`` and a simulated backend bug), shrink quality and
corpus persistence.
"""

from __future__ import annotations

import json

import pytest

from repro.fuzz import (
    ALL_FEATURES,
    CorpusEntry,
    CorpusStore,
    FuzzConfig,
    check_program,
    check_source,
    count_significant_lines,
    generate_program,
    load_corpus_entries,
    parse_feature_mask,
    run_session,
    shrink,
    shrink_failure,
)
from repro.fuzz.config import CORPUS_ENV, FEATURES_ENV, ITERATIONS_ENV, SEED_ENV
from repro.problems.mutations import SYNTAX_FAULTS_BY_ID
from repro.toolchain.compiler import ChiselCompiler
from repro.verilog.simulator import Simulation


class TestFuzzConfig:
    def test_environment_knobs(self, monkeypatch):
        monkeypatch.setenv(SEED_ENV, "42")
        monkeypatch.setenv(ITERATIONS_ENV, "17")
        monkeypatch.setenv(FEATURES_ENV, "arith,mux")
        monkeypatch.setenv(CORPUS_ENV, "/tmp/corpus.jsonl")
        config = FuzzConfig.from_environment()
        assert config.seed == 42
        assert config.iterations == 17
        assert config.features == frozenset(("arith", "mux"))
        assert config.corpus_path == "/tmp/corpus.jsonl"

    def test_feature_mask_parsing(self):
        assert parse_feature_mask("all") == frozenset(ALL_FEATURES)
        assert parse_feature_mask("reg, vec") == frozenset(("reg", "vec"))
        with pytest.raises(ValueError, match="unknown fuzz feature"):
            parse_feature_mask("reg,warp_drive")

    def test_fingerprint_excludes_session_knobs(self):
        base = FuzzConfig(seed=1)
        assert base.fingerprint() == FuzzConfig(seed=1, iterations=9999).fingerprint()
        assert base.fingerprint() != FuzzConfig(seed=2).fingerprint()
        assert base.fingerprint() != FuzzConfig(seed=1, max_statements=3).fingerprint()


class TestGenerator:
    def test_deterministic_per_config_and_index(self):
        config = FuzzConfig(seed=3)
        for index in range(10):
            first = generate_program(config, index)
            second = generate_program(config, index)
            assert first == second
        assert generate_program(config, 0).source != generate_program(config, 1).source

    def test_every_program_compiles(self):
        config = FuzzConfig(seed=5)
        compiler = ChiselCompiler()
        for index in range(25):
            program = generate_program(config, index)
            for top in program.tops:
                result = compiler.compile(program.source, top=top)
                assert result.success, (
                    f"index {index} top {top}: {result.render_feedback()}\n{program.source}"
                )

    def test_feature_mask_constrains_constructs(self):
        config = FuzzConfig(seed=9, features=frozenset(("arith", "bitops")))
        for index in range(15):
            program = generate_program(config, index)
            assert not program.sequential
            assert "Reg" not in program.source
            assert "switch" not in program.source
            assert "when" not in program.source
            assert ".asSInt" not in program.source and "SInt(" not in program.source
            assert program.tops == ("TopModule",)

    def test_features_are_recorded(self):
        config = FuzzConfig(seed=0)
        seen: set[str] = set()
        for index in range(40):
            seen.update(generate_program(config, index).features)
        # Every toggled family should show up somewhere in a 40-program run.
        assert seen.issuperset(
            {"arith", "bitops", "mux", "reg", "when", "vec", "sint"}
        )


@pytest.mark.cache_mutating
class TestConformance:
    def test_clean_programs_pass_every_seam(self):
        config = FuzzConfig(seed=1, points=12)
        compiler = ChiselCompiler()
        for index in range(6):
            program = generate_program(config, index)
            report = check_program(program, config, compiler=compiler)
            assert report.ok, report.render()
            assert report.checks > 0

    def test_injected_source_fault_is_caught(self):
        """A mutations.py fault makes a well-typed program fail loudly."""
        config = FuzzConfig(seed=1)
        program = generate_program(config, 2)
        fault = SYNTAX_FAULTS_BY_ID["C2_combinational_loop"]
        mutated = fault.apply(program.source, None)
        report = check_source(
            mutated, program.tops, tb_seed="t", points=6, sequential=program.sequential
        )
        assert not report.ok
        assert report.failures[0].kind == "compile"
        assert report.failures[0].code == "C2"

    def test_injected_backend_bug_is_caught(self, monkeypatch):
        """A simulated compiled-backend bug must surface as a divergence."""
        original = Simulation.peek

        def corrupted_peek(self, name):
            value = original(self, name)
            if self._kernel is not None and name.startswith("io_out"):
                return value ^ 1
            return value

        monkeypatch.setattr(Simulation, "peek", corrupted_peek)
        config = FuzzConfig(seed=1, points=8)
        program = generate_program(config, 0)
        report = check_program(program, config, check_cold=False)
        assert not report.ok
        kinds = {failure.kind for failure in report.failures}
        assert "backend" in kinds


@pytest.mark.cache_mutating
class TestShrinker:
    def test_shrink_requires_a_failing_source(self):
        with pytest.raises(ValueError):
            shrink("class TopModule extends Module {\n}\n", lambda source: False)

    def test_injected_fault_shrinks_to_minimal_repro(self):
        """The acceptance bar: a mutations.py fault shrinks to <= 15 lines."""
        config = FuzzConfig(seed=0)
        fault = SYNTAX_FAULTS_BY_ID["C2_combinational_loop"]
        for index in range(3):
            program = generate_program(config, index)
            mutated = fault.apply(program.source, None)
            report = check_source(
                mutated, program.tops, tb_seed="t", points=6,
                sequential=program.sequential,
            )
            assert not report.ok
            shrunk = shrink_failure(
                mutated, program.tops, report, config,
                tb_seed="t", sequential=program.sequential,
            )
            assert count_significant_lines(shrunk) <= 15, shrunk
            # The minimized program must still fail with the same signature.
            replay = check_source(
                shrunk, ("TopModule",), tb_seed="t", points=6,
                sequential=program.sequential,
            )
            assert report.failures[0].signature in {
                failure.signature for failure in replay.failures
            }

    def test_shrunk_backend_bug_keeps_diverging(self, monkeypatch):
        original = Simulation.peek

        def corrupted_peek(self, name):
            value = original(self, name)
            if self._kernel is not None and name.startswith("io_out"):
                return value ^ 1
            return value

        monkeypatch.setattr(Simulation, "peek", corrupted_peek)
        config = FuzzConfig(seed=1, points=6)
        program = generate_program(config, 0)
        report = check_program(program, config, check_cold=False)
        assert not report.ok
        shrunk = shrink_failure(
            program.source, program.tops, report, config,
            tb_seed=f"fuzz-tb:{program.seed}:{program.index}",
            sequential=program.sequential,
        )
        assert count_significant_lines(shrunk) <= 15, shrunk
        assert "class TopModule" in shrunk


class TestCorpusStore:
    def _entry(self, kind: str = "survivor", source: str = "class TopModule {}\n"):
        return CorpusEntry(
            kind=kind,
            source=source,
            top="TopModule",
            tops=("TopModule",),
            sequential=False,
            seed=0,
            index=0,
            config_fingerprint="cfg",
            features=("arith",),
        )

    def test_round_trip_and_dedup(self, tmp_path):
        path = tmp_path / "corpus.jsonl"
        with CorpusStore(path) as store:
            assert store.add(self._entry())
            assert not store.add(self._entry())  # same fingerprint
            assert store.add(self._entry(source="class TopModule { val x = 1 }\n"))
            assert store.add(
                self._entry(kind="failure", source="class Broken {}\n")
            )
        reloaded = CorpusStore(path)
        assert len(reloaded) == 3
        assert len(reloaded.survivors()) == 2
        assert len(reloaded.failures()) == 1
        reloaded.close()

    def test_torn_trailing_line_and_versioning_are_tolerated(self, tmp_path):
        path = tmp_path / "corpus.jsonl"
        with CorpusStore(path) as store:
            store.add(self._entry())
        with path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps({"v": 999, "kind": "survivor", "source": "x"}) + "\n")
            handle.write('{"v": 1, "kind": "surv')  # torn write
        entries = load_corpus_entries(path)
        assert len(entries) == 1


@pytest.mark.cache_mutating
class TestSession:
    def test_clean_session_records_survivors(self, tmp_path):
        corpus = tmp_path / "corpus.jsonl"
        config = FuzzConfig(
            seed=2,
            iterations=5,
            points=8,
            corpus_path=str(corpus),
            interesting_min_features=2,
        )
        result = run_session(config)
        assert result.ok, result.render()
        assert result.programs == 5
        assert result.survivors_stored >= 1
        assert len(load_corpus_entries(corpus)) == result.survivors_stored
        assert "feature coverage" in result.render()

    def test_session_shrinks_and_stores_findings(self, tmp_path, monkeypatch):
        original = Simulation.peek

        def corrupted_peek(self, name):
            value = original(self, name)
            if self._kernel is not None and name.startswith("io_out"):
                return value ^ 1
            return value

        monkeypatch.setattr(Simulation, "peek", corrupted_peek)
        corpus = tmp_path / "corpus.jsonl"
        config = FuzzConfig(
            seed=1, iterations=1, points=6, corpus_path=str(corpus)
        )
        result = run_session(config)
        assert not result.ok
        finding = result.findings[0]
        assert count_significant_lines(finding.shrunk_source) <= 15
        stored = load_corpus_entries(corpus)
        assert len(stored) == 1 and stored[0].kind == "failure"
        assert stored[0].failure["kind"] == "backend"
        assert stored[0].shrunk_source is not None
        assert "repro: python -m repro.fuzz" in result.render()


@pytest.mark.fuzz
@pytest.mark.cache_mutating
class TestFuzzSessionLong:
    def test_bounded_adversarial_session_is_clean(self):
        """The CI smoke bar: 200 programs, every seam, zero divergences."""
        config = FuzzConfig(seed=0, iterations=200)
        result = run_session(config)
        assert result.ok, result.render()
        assert result.programs == 200
