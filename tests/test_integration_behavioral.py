"""Cross-validation of the whole toolchain against independent Python models.

For a representative subset of benchmark families, the golden Chisel solution
is compiled and simulated and its outputs are compared with a behavioural
model written directly in Python (independent of the Chisel source).  This
guards against the failure mode where a bug in the compiler and a matching bug
in the golden design cancel out when the design is only checked against its
own compiled form.  Property-based stimulus comes from hypothesis.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.problems.registry import build_default_registry
from repro.toolchain.compiler import ChiselCompiler
from repro.verilog.parser import parse_verilog
from repro.verilog.simulator import Simulation

REGISTRY = build_default_registry()
COMPILER = ChiselCompiler(top="TopModule")


def simulate(problem_id: str) -> Simulation:
    problem = REGISTRY.by_id(problem_id)
    verilog = COMPILER.compile(problem.golden_chisel).verilog
    return Simulation(parse_verilog(verilog)[0])


class TestCombinationalAgainstPython:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 1))
    def test_adder(self, a, b, cin):
        sim = simulate("adder_w8")
        sim.poke_many({"io_a": a, "io_b": b, "io_cin": cin})
        total = a + b + cin
        assert sim.peek("io_sum") == total & 0xFF
        assert sim.peek("io_cout") == total >> 8

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 7))
    def test_alu(self, a, b, op):
        sim = simulate("alu_w8")
        sim.poke_many({"io_a": a, "io_b": b, "io_op": op})
        expected = {
            0: (a + b) & 0xFF,
            1: (a - b) & 0xFF,
            2: a & b,
            3: a | b,
            4: a ^ b,
            5: 1 if a < b else 0,
            6: (a << (b & 7)) & 0xFF,
            7: a >> (b & 7),
        }[op]
        assert sim.peek("io_result") == expected
        assert sim.peek("io_zero") == (1 if expected == 0 else 0)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 31))
    def test_vector5_pairwise_equality(self, packed):
        bits = [(packed >> i) & 1 for i in range(5)]  # a..e
        sim = simulate("vector5")
        sim.poke_many(
            {"io_a": bits[0], "io_b": bits[1], "io_c": bits[2], "io_d": bits[3], "io_e": bits[4]}
        )
        expected = 0
        index = 0
        for i in range(5):
            for j in range(5):
                if bits[i] == bits[j]:
                    expected |= 1 << (24 - index)
                index += 1
        assert sim.peek("io_out") == expected

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 255), st.integers(0, 255))
    def test_saturating_adder(self, a, b):
        sim = simulate("sat_adder_w8")
        sim.poke_many({"io_a": a, "io_b": b})
        assert sim.peek("io_sum") == min(a + b, 255)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 65535))
    def test_popcount(self, value):
        sim = simulate("popcount_w16")
        sim.poke("io_in", value)
        assert sim.peek("io_count") == bin(value).count("1")

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 255))
    def test_gray_encoder(self, value):
        sim = simulate("gray_encoder_w8")
        sim.poke("io_in", value)
        assert sim.peek("io_out") == value ^ (value >> 1)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 15))
    def test_priority_encoder(self, value):
        sim = simulate("priority_encoder_4")
        sim.poke("io_in", value)
        expected = max((i for i in range(4) if value >> i & 1), default=0)
        assert sim.peek("io_out") == expected
        assert sim.peek("io_valid") == (1 if value else 0)


class TestSequentialAgainstPython:
    def test_counter_follows_enable_pattern(self):
        sim = simulate("counter_w4")
        sim.poke("reset", 1)
        sim.step("clock")
        sim.poke("reset", 0)
        expected = 0
        for cycle in range(40):
            enable = (cycle * 7) % 3 != 0
            sim.poke("io_en", 1 if enable else 0)
            sim.step("clock")
            if enable:
                expected = (expected + 1) % 16
            assert sim.peek("io_count") == expected

    def test_shift_register_delay(self):
        sim = simulate("shift_register_w8_d4")
        sim.poke("reset", 1)
        sim.step("clock")
        sim.poke_many({"reset": 0, "io_en": 1})
        history = []
        for value in [3, 7, 11, 19, 23, 29, 31, 37]:
            sim.poke("io_in", value)
            sim.step("clock")
            history.append(value)
            if len(history) >= 4:
                assert sim.peek("io_out") == history[-4]

    def test_sequence_detector_101(self):
        sim = simulate("seq_detect_101")
        sim.poke("reset", 1)
        sim.step("clock")
        sim.poke("reset", 0)
        stream = [1, 0, 1, 0, 1, 1, 0, 1, 0, 0, 1, 0, 1]
        history = 0
        for bit in stream:
            sim.poke("io_in", bit)
            # Detection is combinational on the stored history plus the current
            # bit, i.e. it asserts during the cycle the final bit arrives.
            history = ((history << 1) | bit) & 0b111
            assert sim.peek("io_detected") == (1 if history == 0b101 else 0)
            sim.step("clock")

    def test_mac_accumulates_products(self):
        sim = simulate("mac_w4")
        sim.poke("reset", 1)
        sim.step("clock")
        sim.poke_many({"reset": 0, "io_clear": 0, "io_en": 1})
        accumulator = 0
        for a, b in [(3, 5), (15, 15), (7, 2), (9, 11)]:
            sim.poke_many({"io_a": a, "io_b": b})
            sim.step("clock")
            accumulator = (accumulator + a * b) % (1 << 12)
            assert sim.peek("io_acc") == accumulator
        sim.poke("io_clear", 1)
        sim.step("clock")
        assert sim.peek("io_acc") == 0

    def test_traffic_light_cycle(self):
        sim = simulate("traffic_light_3_1_2")
        sim.poke("reset", 1)
        sim.step("clock")
        sim.poke("reset", 0)
        phases = []
        for _ in range(12):
            state = (sim.peek("io_green"), sim.peek("io_yellow"), sim.peek("io_red"))
            phases.append(state)
            assert sum(state) == 1  # exactly one light on
            sim.step("clock")
        # Green for 3, yellow for 1, red for 2, then green again.
        assert phases[0][0] == 1 and phases[2][0] == 1
        assert phases[3][1] == 1
        assert phases[4][2] == 1 and phases[5][2] == 1
        assert phases[6][0] == 1
