"""Tests for the structured event bus, tracing spans, transports and metrics."""

import asyncio
import threading

import pytest

from repro.fleet.config import FleetConfig
from repro.fleet.events import EventLog
from repro.fleet.supervisor import FleetSupervisor
from repro.obs import (
    Event,
    EventBus,
    JsonlWriter,
    MetricsRegistry,
    MetricsSink,
    SocketEventServer,
    build_timeline,
    current_span,
    get_bus,
    iter_socket_events,
    parse_endpoint,
    set_bus,
    span,
)


class TestEventBus:
    def test_publish_without_subscribers_is_a_noop(self):
        bus = EventBus()
        assert not bus.active
        assert bus.publish("service.job", "completed", problem="alu") is None
        assert bus.published == 0

    def test_topic_prefixes_route_events(self):
        bus = EventBus()
        service = bus.subscribe("service")
        everything = bus.subscribe()
        trace = bus.subscribe(["trace", "fleet"])

        bus.publish("service.job", "completed")
        bus.publish("service.snapshot", "update")
        bus.publish("trace", "span.start")
        bus.publish("servicex", "decoy")  # prefix match is on dot boundaries

        assert [e.topic for e in service.pop_all()] == ["service.job", "service.snapshot"]
        assert [e.topic for e in everything.pop_all()] == [
            "service.job", "service.snapshot", "trace", "servicex",
        ]
        assert [e.topic for e in trace.pop_all()] == ["trace"]

    def test_events_carry_ordering_and_roundtrip_json(self):
        bus = EventBus()
        sub = bus.subscribe("t")
        bus.publish("t", "one", n=1)
        bus.publish("t", "two", n=2, label="x")
        first, second = sub.pop_all()
        assert second.seq > first.seq
        decoded = Event.from_json(second.to_json())
        assert decoded == second

    def test_bounded_subscriber_drops_oldest_and_counts(self):
        bus = EventBus()
        sub = bus.subscribe("t", maxsize=4)
        for index in range(10):
            bus.publish("t", "tick", index=index)
        assert sub.dropped == 6
        kept = sub.pop_all()
        assert [event.attrs["index"] for event in kept] == [6, 7, 8, 9]
        stats = bus.stats()
        assert stats["published"] == 10
        assert stats["subscribers"][0]["dropped"] == 6

    def test_unsubscribe_stops_delivery_and_invalidates_routes(self):
        bus = EventBus()
        sub = bus.subscribe("t")
        bus.publish("t", "before")
        bus.unsubscribe(sub)
        assert bus.publish("t", "after") is None
        assert [event.name for event in sub.pop_all()] == ["before"]

    def test_get_blocks_until_event_or_timeout(self):
        bus = EventBus()
        sub = bus.subscribe("t")
        assert sub.get(timeout=0.01) is None

        def late_publish():
            bus.publish("t", "late")

        timer = threading.Timer(0.05, late_publish)
        timer.start()
        try:
            event = sub.get(timeout=2.0)
        finally:
            timer.join()
        assert event is not None and event.name == "late"

    def test_global_bus_swap(self):
        replacement = EventBus()
        previous = set_bus(replacement)
        try:
            assert get_bus() is replacement
        finally:
            set_bus(previous)

    def test_parse_endpoint(self):
        assert parse_endpoint("localhost:9000") == ("localhost", 9000)
        assert parse_endpoint(":9000") == ("127.0.0.1", 9000)
        assert parse_endpoint("9000") == ("127.0.0.1", 9000)


class TestSpans:
    def test_nested_spans_reconstruct_into_a_tree(self):
        bus = EventBus()
        sub = bus.subscribe("trace")
        with span("session", bus=bus, problem="alu_w4"):
            with span("llm.generate", bus=bus):
                pass
            with span("tool.compile", bus=bus):
                with span("tool.simulate", bus=bus):
                    pass
        roots = build_timeline(sub.pop_all())
        assert len(roots) == 1
        root = roots[0]
        assert root.name == "session"
        assert root.attrs["problem"] == "alu_w4"
        assert [child.name for child in root.children] == ["llm.generate", "tool.compile"]
        assert [child.name for child in root.children[1].children] == ["tool.simulate"]
        assert all(node.complete for node in [root] + root.children)
        assert root.duration >= root.children[1].duration
        assert len(root.find("tool.simulate")) == 1
        assert "session" in root.render()

    def test_span_records_error_on_exception(self):
        bus = EventBus()
        sub = bus.subscribe("trace")
        with pytest.raises(ValueError):
            with span("session", bus=bus):
                raise ValueError("boom")
        end = [e for e in sub.pop_all() if e.name == "span.end"][0]
        assert end.attrs["error"] == "ValueError"

    def test_spans_are_inert_without_subscribers(self):
        bus = EventBus()
        with span("session", bus=bus) as outer:
            assert current_span() is None
            assert outer.span_id == ""
        assert bus.published == 0

    def test_asyncio_tasks_get_independent_lineage(self):
        bus = EventBus()
        sub = bus.subscribe("trace")

        async def session(name):
            with span("session", bus=bus, who=name):
                await asyncio.sleep(0)
                with span("llm.generate", bus=bus):
                    await asyncio.sleep(0)

        async def main():
            await asyncio.gather(session("a"), session("b"))

        asyncio.run(main())
        roots = build_timeline(sub.pop_all())
        assert sorted(root.attrs["who"] for root in roots) == ["a", "b"]
        for root in roots:
            assert [child.name for child in root.children] == ["llm.generate"]
            assert root.trace_id != ""
        assert roots[0].trace_id != roots[1].trace_id

    def test_timeline_tolerates_truncated_streams(self):
        bus = EventBus()
        sub = bus.subscribe("trace")
        with span("outer", bus=bus):
            with span("inner", bus=bus):
                pass
        events = sub.pop_all()
        # Drop the outer start (ring-buffer loss): inner still reconstructs,
        # outer shows up incomplete from its end event.
        truncated = events[1:]
        roots = build_timeline(truncated)
        names = {root.name for root in roots}
        assert "outer" in names


class TestTransports:
    def test_jsonl_writer_roundtrip(self, tmp_path):
        bus = EventBus()
        writer = JsonlWriter(bus, tmp_path / "events.jsonl", topics=["t"])
        for index in range(5):
            bus.publish("t", "tick", index=index)
        writer.close()
        lines = (tmp_path / "events.jsonl").read_text().strip().splitlines()
        events = [Event.from_json(line) for line in lines]
        assert [event.attrs["index"] for event in events] == [0, 1, 2, 3, 4]

    def test_socket_transport_roundtrip(self):
        bus = EventBus()
        server = SocketEventServer(bus, port=0, topics=["t"])
        received: list[Event] = []

        def client():
            host, port = server.address
            for event in iter_socket_events(host, port, timeout=5.0):
                received.append(event)
                if len(received) == 3:
                    return

        thread = threading.Thread(target=client, daemon=True)
        thread.start()
        # Wait for the server to register the client's subscription.
        for _ in range(200):
            if bus.active:
                break
            threading.Event().wait(0.01)
        assert bus.active, "socket client never subscribed"
        for index in range(3):
            bus.publish("t", "tick", index=index)
        thread.join(timeout=10.0)
        server.close()
        assert [event.attrs["index"] for event in received] == [0, 1, 2]
        assert all(event.topic == "t" for event in received)


class TestMetrics:
    def test_prometheus_exposition(self):
        registry = MetricsRegistry()
        registry.counter("repro_jobs_total", "jobs").inc(state="done")
        registry.counter("repro_jobs_total").inc(state="done")
        registry.gauge("repro_queue_depth", "depth").set(7)
        histogram = registry.histogram("repro_latency_seconds", "lat", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(5.0)
        text = registry.render()
        assert '# TYPE repro_jobs_total counter' in text
        assert 'repro_jobs_total{state="done"} 2' in text
        assert 'repro_queue_depth 7' in text
        assert 'repro_latency_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_latency_seconds_bucket{le="1"} 2' in text
        assert 'repro_latency_seconds_bucket{le="+Inf"} 3' in text
        assert 'repro_latency_seconds_count 3' in text
        assert registry.histogram("repro_latency_seconds").count() == 3

    def test_metric_name_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_thing")
        with pytest.raises(TypeError):
            registry.gauge("repro_thing")

    def test_sink_derives_metrics_from_events(self):
        bus = EventBus()
        sink = MetricsSink().attach(bus)
        bus.publish("service.job", "completed")
        bus.publish("service.job", "completed")
        bus.publish("service.job", "cache-hit", tier="memo")
        bus.publish("service.snapshot", "update", queue_depth=3, in_flight=2)
        bus.publish("trace", "span.end", span="s", parent="", trace="t",
                    op="tool.simulate", duration=0.02)
        bus.publish("llm.batch", "flush", size=4)
        bus.publish("llm.retry", "retry", attempt=1, reason="timeout")
        bus.publish("cache.stats", "snapshot", caches={"sim_kernel": {"hits": 9, "misses": 1}})
        bus.publish("fleet", "spawn", slot=0)
        bus.publish("fuzz.program", "checked", index=0, ok=True)
        consumed = sink.pump()
        assert consumed == 10
        registry = sink.registry
        assert registry.counter("repro_service_jobs_total").value(state="completed") == 2
        assert registry.counter("repro_service_cache_hits_total").value(tier="memo") == 1
        assert registry.gauge("repro_service_queue_depth").value() == 3
        assert registry.histogram("repro_span_seconds").count(op="tool.simulate") == 1
        assert registry.counter("repro_llm_retries_total").value(reason="timeout") == 1
        assert registry.gauge("repro_cache_hits").value(cache="sim_kernel") == 9
        assert registry.counter("repro_fuzz_programs_total").value(ok="true") == 1
        sink.detach()


class TestFleetEventBridge:
    def test_eventlog_mirrors_records_onto_the_bus(self):
        bus = EventBus()
        sub = bus.subscribe("fleet")
        log = EventLog(limit=2, bus=bus)
        log.record("spawn", slot=0)
        log.record("ready", slot=0, pid=123)
        log.record("dispatch", job="j-1", slot=0)
        # In-memory window is bounded, the bus saw everything.
        assert [entry["event"] for entry in log.events()] == ["ready", "dispatch"]
        assert log.dropped == 1
        published = sub.pop_all()
        assert [event.name for event in published] == ["spawn", "ready", "dispatch"]
        assert published[1].attrs == {"slot": 0, "pid": 123}

    def test_supervisor_health_reports_event_drops(self):
        bus = EventBus()
        supervisor = FleetSupervisor(FleetConfig(workers=1), bus=bus)
        health = supervisor.health()
        assert health["events_dropped"] == 0
        supervisor.events.limit = 1
        supervisor.events.record("spawn", slot=0)
        supervisor.events.record("ready", slot=0)
        assert supervisor.health()["events_dropped"] == 1


class TestResilienceMetrics:
    def test_breaker_retry_and_campaign_events_become_series(self):
        bus = EventBus()
        sink = MetricsSink().attach(bus)
        bus.publish("llm.breaker", "open", state="open", failures=3)
        bus.publish("llm.breaker", "close", state="closed")
        bus.publish("retry", "attempt", source="campaign", attempt=1)
        bus.publish("retry", "attempt", source="fleet", attempt=2)
        bus.publish("campaign", "budget", campaign="abc", spent=7, limit=10)
        bus.publish("campaign", "progress", campaign="abc", stage="generate", done=3, total=4)
        bus.publish("campaign", "checkpoint", campaign="abc", seq=2)
        assert sink.pump() == 7
        registry = sink.registry
        assert registry.counter("repro_breaker_transitions_total").value(transition="open") == 1
        assert registry.counter("repro_breaker_transitions_total").value(transition="close") == 1
        assert registry.counter("repro_retries_total").value(source="campaign") == 1
        assert registry.counter("repro_retries_total").value(source="fleet") == 1
        assert registry.gauge("repro_campaign_llm_spent").value() == 7
        assert registry.gauge("repro_campaign_stage_done").value(stage="generate") == 3
        assert registry.counter("repro_campaign_events_total").value(event="checkpoint") == 1
        sink.detach()
