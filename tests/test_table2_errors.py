"""Every Table II error class must be reproduced by the toolchain with the
expected error code and a message resembling the paper's feedback column."""

import pytest

from repro.toolchain.compiler import ChiselCompiler

HEADER = "import chisel3._\nimport chisel3.util._\n\n"


def compile_body(body: str, io_fields: str = "") -> "CompileResult":
    compiler = ChiselCompiler(top="TopModule")
    source = HEADER + (
        "class TopModule extends Module {\n"
        "  val io = IO(new Bundle {\n"
        "    val in = Input(UInt(4.W))\n"
        "    val out = Output(UInt(4.W))\n"
        f"{io_fields}"
        "  })\n"
        f"{body}\n"
        "}\n"
    )
    return compiler.compile(source)


def assert_error(result, code, fragment):
    assert not result.success
    codes = {d.code for d in result.errors}
    assert code in codes, f"expected {code} in {codes}: {result.render_feedback()}"
    assert fragment.lower() in result.render_feedback().lower()


class TestStructuralErrors:
    def test_a1_misspelled_identifier_with_suggestion(self):
        result = compile_body("  val signal = Wire(UInt(4.W))\n  sgnal := 0.U\n  io.out := signal")
        assert_error(result, "A1", "not found: value sgnal")
        assert "Did you mean signal" in result.render_feedback()

    def test_a2_scala_cast(self):
        result = compile_body("  io.out := io.in.asInstanceOf[SInt].asUInt")
        assert_error(result, "A2", "cannot be cast")

    def test_a2_scala_equality_operator(self):
        result = compile_body("  io.out := Mux(io.in == 0.U, 1.U, 0.U)")
        assert_error(result, "A2", "===")

    def test_a3_seq_apply_arity(self):
        result = compile_body("  val r = Seq.fill(5)(0.U)\n  io.out := r(0, 2)")
        assert_error(result, "A3", "Too many arguments")

    def test_a3_uint_bit_extract_with_hardware_indices(self):
        result = compile_body("  val startIdx = io.in\n  io.out := io.in((startIdx + 3.U), startIdx)")
        assert_error(result, "A3", "overloaded method apply")


class TestSignalErrors:
    def test_b1_abstract_reset_port(self):
        result = compile_body(
            "  io.out := io.in",
            io_fields="    val rst = Input(Reset())\n",
        )
        assert_error(result, "B1", "abstract reset")

    def test_b2_bare_type_not_wrapped(self):
        result = compile_body("  val temp = UInt(4.W)\n  temp := io.in\n  io.out := temp")
        assert_error(result, "B2", "bare Chisel type")

    def test_b2_clock_not_wrapped_in_io(self):
        result = compile_body(
            "  val clk = Input(Clock())\n  withClock (clk) { val r = RegNext(io.in) }\n  io.out := io.in"
        )
        assert_error(result, "B2", "must be hardware")

    def test_b3_wire_not_fully_initialized(self):
        result = compile_body(
            "  val w = Wire(UInt(4.W))\n"
            "  when (io.in(0)) { w := 1.U }\n"
            "  io.out := w"
        )
        assert_error(result, "B3", "not fully initialized")

    def test_b3_output_never_driven(self):
        result = compile_body("  val unused = io.in")
        assert_error(result, "B3", "never driven")

    def test_b4_bundle_field_mismatch(self):
        source = HEADER + (
            "class OneBdl extends Bundle { val a = UInt(4.W)\n val c = UInt(4.W) }\n"
            "class AnotherBdl extends Bundle { val a = UInt(4.W) }\n"
            "class TopModule extends Module {\n"
            "  val io = IO(new Bundle {\n"
            "    val in = Input(UInt(4.W))\n"
            "    val out = Output(UInt(4.W))\n"
            "  })\n"
            "  val x = Wire(new OneBdl)\n"
            "  val y = Wire(new AnotherBdl)\n"
            "  y.a := io.in\n"
            "  x := y\n"
            "  io.out := x.a\n"
            "}\n"
        )
        result = ChiselCompiler(top="TopModule").compile(source)
        assert_error(result, "B4", "missing field")

    def test_b5_bool_arithmetic(self):
        result = compile_body(
            "  val oks = VecInit(io.in(0), io.in(1))\n  io.out := oks.reduce(_ +& _)"
        )
        assert_error(result, "B5", "chisel3.Bool")

    def test_b5_uint_condition_for_when(self):
        result = compile_body("  when (io.in) { io.out := 1.U } .otherwise { io.out := 0.U }")
        assert_error(result, "B5", "required: chisel3.Bool")

    def test_b6_asclock_on_uint(self):
        result = compile_body(
            "  val invertedClk = (io.in + 1.U).asClock\n  io.out := io.in"
        )
        assert_error(result, "B6", "asClock is not a member")

    def test_b7_vec_index_out_of_bounds(self):
        result = compile_body(
            "  val vector = Wire(Vec(4, UInt(4.W)))\n"
            "  for (i <- 0 until 4) { vector(i) := i.U }\n"
            "  vector(4) := 0.U\n"
            "  io.out := vector(0)"
        )
        assert_error(result, "B7", "out of bounds")

    def test_b7_negative_index(self):
        result = compile_body(
            "  val vector = Wire(Vec(4, UInt(4.W)))\n"
            "  vector(-1) := 0.U\n"
            "  io.out := vector(0)"
        )
        assert_error(result, "B7", "out of bounds")


class TestMiscellaneousErrors:
    def test_c1_no_implicit_clock_in_raw_module(self):
        source = HEADER + (
            "class TopModule extends RawModule {\n"
            "  val in = IO(Input(UInt(4.W)))\n"
            "  val out = IO(Output(UInt(4.W)))\n"
            "  val r = RegNext(in)\n"
            "  out := r\n"
            "}\n"
        )
        result = ChiselCompiler(top="TopModule").compile(source)
        assert_error(result, "C1", "No implicit clock")

    def test_c2_combinational_loop(self):
        result = compile_body(
            "  val a = Wire(UInt(4.W))\n  a := a + 1.U\n  io.out := a"
        )
        assert_error(result, "C2", "combinational cycle")

    def test_switch_default_clause_is_rejected(self):
        # The Fig. 4 non-progress loop: Chisel's switch has no default case.
        result = compile_body(
            "  val nextState = Wire(Bool())\n"
            "  switch (io.in) {\n"
            "    is (0.U) { nextState := false.B }\n"
            "    default { nextState := false.B }\n"
            "  }\n"
            "  io.out := nextState.asUInt"
        )
        assert_error(result, "A1", "not found: value default")

    def test_parse_error_reports_location(self):
        compiler = ChiselCompiler(top="TopModule")
        result = compiler.compile("class TopModule extends Module {\n  val x = (1 +\n}")
        assert not result.success
        assert result.stage == "parse"

    def test_success_feedback_mentions_success(self):
        result = compile_body("  io.out := io.in")
        assert result.success
        assert "success" in result.render_feedback().lower()
