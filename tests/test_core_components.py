"""Tests for the ReChisel core components: knowledge, feedback, trace, agents."""

import pytest

from repro.core.feedback import (
    ErrorSignature,
    Feedback,
    FeedbackKind,
    feedback_from_compile,
    feedback_from_simulation,
    success_feedback,
)
from repro.core.generator import Generator
from repro.core.inspector import Inspector
from repro.core.knowledge import (
    KNOWLEDGE_BASE,
    KNOWLEDGE_BY_CODE,
    knowledge_for_codes,
    render_knowledge,
    wrap_snippet,
)
from repro.core.reviewer import Reviewer
from repro.core.trace import Trace, TraceEntry
from repro.llm.client import EchoClient
from repro.problems.families.combinational import mux2
from repro.toolchain.compiler import ChiselCompiler
from repro.toolchain.simulator import Simulator

COMPILER = ChiselCompiler(top="TopModule")


class TestKnowledgeBase:
    def test_covers_all_table2_classes(self):
        codes = {entry.code for entry in KNOWLEDGE_BASE}
        assert codes == {"A1", "A2", "A3", "B1", "B2", "B3", "B4", "B5", "B6", "B7", "C1", "C2"}

    def test_every_entry_has_incorrect_and_corrected(self):
        for entry in KNOWLEDGE_BASE:
            assert entry.incorrect
            assert entry.corrected
            assert entry.guidance

    def test_lookup_by_code_subset(self):
        entries = knowledge_for_codes({"B3", "C2"})
        assert [e.code for e in entries] == ["B3", "C2"]

    def test_unknown_codes_fall_back_to_full_catalogue(self):
        assert len(knowledge_for_codes({"WHATEVER"})) == len(KNOWLEDGE_BASE)

    def test_render_contains_guidance(self):
        text = render_knowledge([KNOWLEDGE_BY_CODE["B3"]])
        assert "WireDefault" in text

    @pytest.mark.parametrize(
        "code", [e.code for e in KNOWLEDGE_BASE if not e.incorrect.lstrip().startswith("//")]
    )
    def test_incorrect_snippets_reproduce_their_error(self, code):
        entry = KNOWLEDGE_BY_CODE[code]
        result = COMPILER.compile(wrap_snippet(entry.incorrect))
        assert not result.success
        assert any(d.code == code for d in result.errors), result.render_feedback()

    @pytest.mark.parametrize(
        "code", [e.code for e in KNOWLEDGE_BASE if not e.corrected.lstrip().startswith("//")]
    )
    def test_corrected_snippets_compile(self, code):
        entry = KNOWLEDGE_BY_CODE[code]
        result = COMPILER.compile(wrap_snippet(entry.corrected))
        assert result.success, result.render_feedback()


class TestFeedback:
    def test_compile_feedback_carries_signatures_and_codes(self):
        result = COMPILER.compile(
            "import chisel3._\nclass TopModule extends Module {\n"
            "  val io = IO(new Bundle { val out = Output(UInt(4.W)) })\n"
            "  val w = Wire(UInt(4.W))\n  io.out := w\n}"
        )
        feedback = feedback_from_compile(result)
        assert feedback.kind is FeedbackKind.SYNTAX
        assert feedback.signatures
        assert "B3" in feedback.error_codes

    def test_simulation_feedback_lists_mismatches(self):
        problem = mux2(4, "verilogeval_s2r")
        golden = COMPILER.compile(problem.golden_chisel).verilog
        broken = COMPILER.compile(problem.functional_faults[0].apply(problem.golden_chisel)).verilog
        outcome = Simulator(top="TopModule").simulate(broken, golden, problem.build_testbench())
        feedback = feedback_from_simulation(outcome)
        assert feedback.kind is FeedbackKind.FUNCTIONAL
        assert any(sig.code == "FUNC" for sig in feedback.signatures)
        assert "expected" in feedback.text

    def test_success_feedback(self):
        assert success_feedback().is_success


class TestTrace:
    def _entry(self, iteration, kind=FeedbackKind.SYNTAX, signature="Main.scala:3 [B3] x"):
        location, rest = signature.split(" [", 1)
        code, summary = rest.split("] ", 1)
        feedback = Feedback(kind, "text", [ErrorSignature(location, code, summary)], {code})
        return TraceEntry(iteration, f"code{iteration}", feedback)

    def test_append_and_summary(self):
        trace = Trace()
        trace.append(self._entry(0))
        trace.append(self._entry(1))
        summary = trace.summary()
        assert "iteration 0" in summary and "iteration 1" in summary

    def test_discard_from_moves_entries(self):
        trace = Trace()
        for i in range(4):
            trace.append(self._entry(i))
        dropped = trace.discard_from(2)
        assert len(dropped) == 2
        assert len(trace) == 2
        assert trace.escapes == 1

    def test_summary_limits_length(self):
        trace = Trace()
        for i in range(20):
            trace.append(self._entry(i))
        assert "omitted" in trace.summary(limit=5)


class TestInspector:
    def _feedback(self, signature: str) -> Feedback:
        location, rest = signature.split(" [", 1)
        code, summary = rest.split("] ", 1)
        return Feedback(
            FeedbackKind.SYNTAX, "text", [ErrorSignature(location, code, summary)], {code}
        )

    def test_no_loop_on_distinct_errors(self):
        inspector = Inspector()
        trace = Trace()
        inspector.record(trace, 0, "c0", self._feedback("a.scala:1 [B3] w not init"))
        feedback = self._feedback("a.scala:9 [C2] comb loop")
        inspector.record(trace, 1, "c1", feedback)
        assert not inspector.check_for_loop(trace, feedback).detected

    def test_loop_detected_on_repeated_error(self):
        inspector = Inspector()
        trace = Trace()
        same = "a.scala:5 [B3] w not init"
        inspector.record(trace, 0, "c0", self._feedback(same))
        feedback = self._feedback(same)
        inspector.record(trace, 1, "c1", feedback)
        detection = inspector.check_for_loop(trace, feedback)
        assert detection.detected
        assert detection.loop_start == 0

    def test_escape_discards_looping_iterations(self):
        inspector = Inspector()
        trace = Trace()
        same = "a.scala:5 [B3] w not init"
        inspector.record(trace, 0, "c0", self._feedback(same))
        inspector.record(trace, 1, "c1", self._feedback(same))
        inspector.record(trace, 2, "c2", feedback := self._feedback(same))
        detection = inspector.check_for_loop(trace, feedback)
        assert inspector.escape(trace, detection)
        assert len(trace) == 1
        assert trace.escapes == 1

    def test_escape_disabled(self):
        inspector = Inspector(enable_escape=False)
        trace = Trace()
        same = "a.scala:5 [B3] w not init"
        inspector.record(trace, 0, "c0", self._feedback(same))
        feedback = self._feedback(same)
        inspector.record(trace, 1, "c1", feedback)
        assert not inspector.check_for_loop(trace, feedback).detected

    def test_success_feedback_never_loops(self):
        inspector = Inspector()
        trace = Trace()
        inspector.record(trace, 0, "c0", self._feedback("a [B3] x"))
        inspector.record(trace, 1, "c1", success_feedback())
        assert not inspector.check_for_loop(trace, success_feedback()).detected


class TestAgents:
    def test_generator_extracts_code_from_fenced_response(self):
        client = EchoClient("```scala\nclass TopModule extends Module {}\n```")
        generator = Generator(client)
        code = generator.generate("spec", "case_id")
        assert code.startswith("class TopModule")
        assert "case_id" in client.calls[0][-1].content

    def test_generator_revision_includes_plan_and_previous_code(self):
        client = EchoClient("```scala\nnew code\n```")
        generator = Generator(client)
        generator.revise("spec", "old code", "the plan", "case_id", escaped=True)
        content = client.calls[0][-1].content
        assert "old code" in content
        assert "the plan" in content
        assert "ESCAPE NOTICE" in content

    def test_reviewer_includes_knowledge_when_enabled(self):
        client = EchoClient("plan text")
        reviewer = Reviewer(client, use_knowledge=True)
        feedback = Feedback(FeedbackKind.SYNTAX, "[error] x", [], {"B3"})
        reviewer.review("spec", "code", feedback, Trace(), "case")
        assert "WireDefault" in client.calls[0][-1].content

    def test_reviewer_omits_knowledge_when_disabled(self):
        client = EchoClient("plan text")
        reviewer = Reviewer(client, use_knowledge=False)
        feedback = Feedback(FeedbackKind.SYNTAX, "[error] x", [], {"B3"})
        reviewer.review("spec", "code", feedback, Trace(), "case")
        assert "(disabled)" in client.calls[0][-1].content
