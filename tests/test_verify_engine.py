"""Batched verification engine: trace-backend differential suite and
incremental-compile coverage.

The trace backend must produce bit-identical :class:`SimulationReport`s to the
step-wise oracle — same mismatch ordering, same unchecked-point flush
semantics — for every golden design and for injected-fault mutants.  The
stage-level compile caches must replay identical results (including failures)
and re-run only the stages whose input structurally changed.
"""

from __future__ import annotations

import pytest

from repro.caching import cache_stats, clear_registered_caches
from repro.problems.mutations import applicable_syntax_faults
from repro.problems.registry import build_default_registry
from repro.sim.testbench import FunctionalPoint, Testbench, run_testbench
from repro.toolchain.compiler import ChiselCompiler
from repro.verilog.compile_sim import (
    clear_kernel_cache,
    get_trace_kernel,
    kernel_cache_stats,
)
from repro.verilog.parser import parse_verilog
from repro.verilog.simulator import SimulationError

REGISTRY = build_default_registry()
COMPILER = ChiselCompiler(top="TopModule")


def _golden_module(problem):
    result = COMPILER.compile(problem.golden_chisel)
    assert result.success, problem.problem_id
    return parse_verilog(result.verilog)[-1]


class TestTraceDifferentialGoldens:
    def test_every_golden_design_matches_stepwise(self):
        """Trace and step-wise reports are equal on all 216 golden designs."""
        for problem in REGISTRY:
            module = _golden_module(problem)
            testbench = problem.build_testbench()
            stepwise = run_testbench(module, module, testbench, backend="stepwise")
            trace = run_testbench(module, module, testbench, backend="trace")
            assert stepwise == trace, problem.problem_id
            assert trace.passed, problem.problem_id

    def test_every_golden_design_is_trace_eligible(self):
        """No golden pairing should need the step-wise fallback."""
        fallbacks = []
        for problem in REGISTRY:
            module = _golden_module(problem)
            testbench = problem.build_testbench()
            observed = tuple(port.name for port in module.outputs())
            from repro.sim.testbench import _trace_plan

            schedule, _ = _trace_plan(testbench, observed)
            if get_trace_kernel(module, schedule) is None:
                fallbacks.append(problem.problem_id)
        assert fallbacks == []


class TestTraceDifferentialMutants:
    def test_behavior_breaking_mutants_match_stepwise(self):
        """Functional-fault mutants produce identical mismatch reports.

        This is the path that matters for ReChisel: a faulty candidate against
        the golden reference, with real mismatches, truncation at
        ``max_mismatches`` and identical mismatch ordering.
        """
        compared = failing = 0
        for problem in REGISTRY:
            golden = _golden_module(problem)
            testbench = problem.build_testbench()
            for fault in problem.functional_faults:
                if not fault.applies_to(problem.golden_chisel):
                    continue
                result = COMPILER.compile(fault.apply(problem.golden_chisel))
                if not result.success:
                    continue
                mutant = parse_verilog(result.verilog)[-1]
                stepwise = run_testbench(mutant, golden, testbench, backend="stepwise")
                trace = run_testbench(mutant, golden, testbench, backend="trace")
                assert stepwise == trace, (problem.problem_id, fault.fault_id)
                compared += 1
                failing += 0 if stepwise.passed else 1
        assert compared >= 200
        assert failing >= 150  # the suite must actually exercise mismatch paths

    def test_compile_breaking_mutants_replay_identically(self):
        """Syntax-fault mutants fail compilation the same through warm caches.

        The staged pipeline memoizes failures per stage; a second compiler
        instance hitting those caches must render byte-identical feedback.
        """
        checked = 0
        for problem in list(REGISTRY)[::9]:  # stride: one per family bucket
            for fault in applicable_syntax_faults(problem.golden_chisel, problem)[:3]:
                source = fault.apply(problem.golden_chisel, problem)
                cold = ChiselCompiler(top="TopModule", cache_size=None).compile(source)
                warm = ChiselCompiler(top="TopModule", cache_size=None).compile(source)
                assert cold.success == warm.success
                assert cold.stage == warm.stage
                assert cold.render_feedback() == warm.render_feedback()
                checked += 1
        assert checked >= 30


LATCH = """
module m(input en, input [3:0] d, output reg [3:0] q);
  always @(*) begin
    if (en) q = d;
  end
endmodule
"""

PASSTHROUGH = """
module m(input en, input [3:0] d, output [3:0] q);
  assign q = d;
endmodule
"""


class TestTraceSemantics:
    def test_unchecked_point_flush_semantics(self):
        """Unchecked stimuli must settle before the next point (latch parity)."""
        latch = parse_verilog(LATCH)[0]
        testbench = Testbench(
            points=[
                FunctionalPoint(inputs={"en": 1, "d": 5}, check=False),
                FunctionalPoint(inputs={"en": 0, "d": 0}),
            ],
            observed_outputs=["q"],
            reset_cycles=0,
        )
        stepwise = run_testbench(latch, latch, testbench, backend="stepwise")
        trace = run_testbench(latch, latch, testbench, backend="trace")
        assert stepwise == trace
        assert trace.passed

    def test_mismatch_cap_and_ordering(self):
        dut = parse_verilog("module m(input [3:0] d, output [3:0] q);\n  assign q = d + 1;\nendmodule\n")[0]
        ref = parse_verilog("module m(input [3:0] d, output [3:0] q);\n  assign q = d;\nendmodule\n")[0]
        testbench = Testbench(
            points=[FunctionalPoint(inputs={"d": value}) for value in range(16)],
            observed_outputs=["q"],
            reset_cycles=0,
            max_mismatches=5,
        )
        stepwise = run_testbench(dut, ref, testbench, backend="stepwise")
        trace = run_testbench(dut, ref, testbench, backend="trace")
        assert stepwise == trace
        assert trace.failed_points == 16 and len(trace.mismatches) == 5
        assert [m.point_index for m in trace.mismatches] == list(range(5))

    def test_trace_falls_back_for_interpreter_modules(self):
        """A combinational cycle keeps the step-wise/interpreter path."""
        loop = parse_verilog(
            "module m(input a, output x, y);\n"
            "  assign x = y | a;\n  assign y = x & a;\nendmodule\n"
        )[0]
        testbench = Testbench(points=[FunctionalPoint(inputs={"a": 0})], reset_cycles=0)
        report = run_testbench(loop, loop, testbench, backend="trace")
        assert report.passed  # value-stable cycle settles in the interpreter

    def test_trace_falls_back_on_port_mismatch_error(self):
        """Port mismatches must reproduce the step-wise error report exactly."""
        dut = parse_verilog("module m(input a, output x);\n  assign x = a;\nendmodule\n")[0]
        ref = parse_verilog("module m(input a, input b, output x);\n  assign x = a & b;\nendmodule\n")[0]
        testbench = Testbench(
            points=[FunctionalPoint(inputs={"a": 1, "b": 1})], reset_cycles=0
        )
        stepwise = run_testbench(dut, ref, testbench, backend="stepwise")
        trace = run_testbench(dut, ref, testbench, backend="trace")
        assert stepwise == trace
        assert trace.runtime_error is not None and "no port named 'b'" in trace.runtime_error

    def test_backend_env_override(self, monkeypatch):
        module = parse_verilog(PASSTHROUGH)[0]
        testbench = Testbench(
            points=[FunctionalPoint(inputs={"en": 0, "d": 3})],
            observed_outputs=["q"],
            reset_cycles=0,
        )
        monkeypatch.setenv("REPRO_TB_BACKEND", "stepwise")
        before = kernel_cache_stats()
        assert run_testbench(module, module, testbench).passed
        after = kernel_cache_stats()
        assert after["trace_hits"] == before["trace_hits"]
        assert after["trace_misses"] == before["trace_misses"]

    def test_forced_interpreter_disables_trace_under_auto(self, monkeypatch):
        module = parse_verilog(PASSTHROUGH)[0]
        testbench = Testbench(
            points=[FunctionalPoint(inputs={"en": 0, "d": 3})],
            observed_outputs=["q"],
            reset_cycles=0,
        )
        monkeypatch.setenv("REPRO_SIM_BACKEND", "interpreter")
        before = kernel_cache_stats()
        assert run_testbench(module, module, testbench).passed
        after = kernel_cache_stats()
        assert after["trace_misses"] == before["trace_misses"]

    def test_behavioural_reference_falls_back_to_stepwise(self):
        """A non-VModule device can never trace; auto must go step-wise."""
        from repro.sim.reference import BehavioralDevice

        module = parse_verilog(PASSTHROUGH)[0]
        reference = BehavioralDevice(
            {"q": 4}, lambda inputs, state: {"q": inputs.get("d", 0)}
        )
        testbench = Testbench(
            points=[FunctionalPoint(inputs={"en": 0, "d": 9})],
            observed_outputs=["q"],
            reset_cycles=0,
        )
        before = kernel_cache_stats()
        report = run_testbench(module, reference, testbench)
        after = kernel_cache_stats()
        assert report.passed
        assert after["trace_hits"] == before["trace_hits"]
        assert after["trace_misses"] == before["trace_misses"]

    def test_env_forced_trace_raises_for_behavioural_reference(self, monkeypatch):
        """REPRO_TB_BACKEND=trace must fail loudly, not silently degrade."""
        from repro.sim.reference import BehavioralDevice

        module = parse_verilog(PASSTHROUGH)[0]
        reference = BehavioralDevice(
            {"q": 4}, lambda inputs, state: {"q": inputs.get("d", 0)}
        )
        testbench = Testbench(
            points=[FunctionalPoint(inputs={"en": 0, "d": 9})],
            observed_outputs=["q"],
            reset_cycles=0,
        )
        monkeypatch.setenv("REPRO_TB_BACKEND", "trace")
        with pytest.raises(SimulationError, match="behavioural references"):
            run_testbench(module, reference, testbench)

    def test_env_forced_trace_raises_for_interpreter_only_module(self, monkeypatch):
        """Combinational-cycle modules are interpreter-only: strict trace raises."""
        loop = parse_verilog(
            "module m(input a, output x, y);\n"
            "  assign x = y | a;\n  assign y = x & a;\nendmodule\n"
        )[0]
        testbench = Testbench(points=[FunctionalPoint(inputs={"a": 0})], reset_cycles=0)
        monkeypatch.setenv("REPRO_TB_BACKEND", "trace")
        with pytest.raises(SimulationError, match="not trace-eligible"):
            run_testbench(loop, loop, testbench)
        # The explicit argument keeps the documented prefer-trace fallback.
        assert run_testbench(loop, loop, testbench, backend="trace").passed

    def test_env_forced_trace_runs_eligible_pairings(self, monkeypatch):
        module = parse_verilog(PASSTHROUGH)[0]
        testbench = Testbench(
            points=[FunctionalPoint(inputs={"en": 0, "d": 3})],
            observed_outputs=["q"],
            reset_cycles=0,
        )
        monkeypatch.setenv("REPRO_TB_BACKEND", "trace")
        report = run_testbench(module, module, testbench)
        assert report == run_testbench(module, module, testbench, backend="stepwise")

    def test_consecutive_empty_points_do_not_break_codegen(self):
        """Runs of points that compile to no code must not emit empty loops."""
        module = parse_verilog(PASSTHROUGH)[0]
        testbench = Testbench(
            points=[
                FunctionalPoint(inputs={"en": 0, "d": 7}),
                FunctionalPoint(inputs={}, check=False),
                FunctionalPoint(inputs={}, check=False),
                FunctionalPoint(inputs={"en": 0, "d": 3}),
            ],
            observed_outputs=["q"],
            reset_cycles=0,
        )
        stepwise = run_testbench(module, module, testbench, backend="stepwise")
        trace = run_testbench(module, module, testbench, backend="trace")
        assert stepwise == trace
        assert trace.checked_points == 2

    def test_huge_clock_cycle_counts_fall_back(self):
        """Unrollable-but-enormous schedules must fall back, not allocate."""
        module = parse_verilog(
            "module m(input clock, input [3:0] d, output reg [3:0] q);\n"
            "  always @(posedge clock) q <= d;\nendmodule\n"
        )[0]
        testbench = Testbench(
            points=[FunctionalPoint(inputs={"d": 9}, clock_cycles=70_000)],
            observed_outputs=["q"],
            reset_cycles=0,
        )
        stepwise = run_testbench(module, module, testbench, backend="stepwise")
        trace = run_testbench(module, module, testbench, backend="trace")
        assert stepwise == trace
        assert trace.passed

    def test_unknown_backend_raises(self):
        module = parse_verilog(PASSTHROUGH)[0]
        testbench = Testbench(points=[], reset_cycles=0)
        with pytest.raises(SimulationError):
            run_testbench(module, module, testbench, backend="warp")

    @pytest.mark.cache_mutating
    def test_trace_kernels_are_cached_per_module_and_shape(self):
        clear_kernel_cache()
        module = parse_verilog(PASSTHROUGH)[0]
        testbench = Testbench(
            points=[FunctionalPoint(inputs={"en": 0, "d": value}) for value in range(4)],
            observed_outputs=["q"],
            reset_cycles=0,
        )
        first = run_testbench(module, module, testbench, backend="trace")
        second = run_testbench(module, module, testbench, backend="trace")
        assert first == second
        stats = kernel_cache_stats()
        # dut and reference share the module: one compile, three cache hits.
        assert stats["trace_misses"] == 1 and stats["trace_hits"] == 3
        clear_kernel_cache()
        assert kernel_cache_stats()["trace_size"] == 0


TWO_MODULES = """class Helper extends Module {
  val io = IO(new Bundle { val a = Input(UInt(4.W)); val y = Output(UInt(4.W)) })
  io.y := io.a + 1.U
}
class TopModule extends Module {
  val io = IO(new Bundle { val a = Input(UInt(4.W)); val y = Output(UInt(4.W)) })
  io.y := io.a - 1.U
}
"""


class TestIncrementalCompile:
    def test_cosmetic_revision_skips_every_stage_after_parse(self):
        source = REGISTRY.by_id("alu_w8").golden_chisel
        compiler = ChiselCompiler(top="TopModule", cache_size=None)
        first = compiler.compile(source)
        before = cache_stats()
        second = compiler.compile("// revised attempt k+1\n\n" + source)
        after = cache_stats()
        assert first.success and second.success
        assert first.verilog == second.verilog
        for stage in ("chisel_elaborate", "firrtl_passes", "verilog_emit"):
            assert after[stage]["hits"] == before[stage]["hits"] + 1, stage
            assert after[stage]["misses"] == before[stage]["misses"], stage
        assert after["chisel_parse"]["misses"] == before["chisel_parse"]["misses"] + 1

    def test_one_module_edit_reelaborates_only_that_module(self):
        compiler = ChiselCompiler(cache_size=None)
        for top in ("Helper", "TopModule"):
            assert compiler.compile(TWO_MODULES, top=top).success
        before = cache_stats()["chisel_elaborate"]
        edited = TWO_MODULES.replace("io.a - 1.U", "io.a - 2.U")  # edits TopModule
        for top in ("Helper", "TopModule"):
            assert compiler.compile(edited, top=top).success
        after = cache_stats()["chisel_elaborate"]
        assert after["misses"] == before["misses"] + 1  # only TopModule re-ran
        assert after["hits"] >= before["hits"] + 1  # Helper was reused

    def test_elaboration_failures_replay(self):
        source = REGISTRY.by_id("alu_w8").golden_chisel.replace(" := ", " == ", 1)
        cold = ChiselCompiler(top="TopModule", cache_size=None).compile(source)
        warm = ChiselCompiler(top="TopModule", cache_size=None).compile(source)
        assert not cold.success and not warm.success
        assert cold.render_feedback() == warm.render_feedback()


class TestCacheRegistry:
    def test_registry_covers_every_stage(self):
        COMPILER.compile(REGISTRY.by_id("alu_w8").golden_chisel)
        stats = cache_stats()
        for name in (
            "chisel_parse",
            "chisel_elaborate",
            "chisel_compile",
            "firrtl_passes",
            "verilog_emit",
            "verilog_parse",
            "sim_kernel",
            "sim_trace",
        ):
            assert name in stats, name
            counters = stats[name]
            assert set(counters) == {"hits", "misses", "size", "instances"}

    @pytest.mark.cache_mutating
    def test_clear_registered_caches_resets_counters(self):
        compiler = ChiselCompiler(top="TopModule")
        source = REGISTRY.by_id("alu_w8").golden_chisel
        compiler.compile(source)
        compiler.compile(source)
        assert compiler.cache_stats["hits"] >= 1
        clear_registered_caches()
        stats = cache_stats()
        for counters in stats.values():
            assert counters["hits"] == 0 and counters["misses"] == 0 and counters["size"] == 0

    def test_snapshot_surfaces_cache_stats(self):
        from repro.service.telemetry import Telemetry

        snapshot = Telemetry().snapshot()
        assert "sim_trace" in snapshot.caches
        assert "toolchain caches" in snapshot.render()
