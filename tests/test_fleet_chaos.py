"""Fault-injection (chaos) tests for the generation fleet.

Every scenario asserts the same two things:

1. **bit-identity** — whatever is killed, hung, frozen or poisoned, the
   payloads the supervisor returns are exactly what ``SerialExecutor`` would
   have produced;
2. **supervision evidence** — the event log shows the supervisor actually
   detected and recovered from the fault (worker-lost, lease-requeue,
   restart, quarantine, …), so a scenario that accidentally stops injecting
   faults fails loudly instead of passing vacuously.

Set ``REPRO_FLEET_EVENT_DIR`` to a directory to dump each scenario's full
supervisor event log as JSON lines (the CI chaos-smoke job uploads these as
artifacts on failure).
"""

import os
import signal
import time

import pytest

from repro.experiments.executors import SerialExecutor
from repro.experiments.work import WorkerContext, WorkUnit
from repro.fleet import (
    FAULT_CRASH,
    FAULT_ERROR,
    FAULT_FREEZE,
    FAULT_HANG,
    FAULT_SLOW,
    FleetConfig,
    FleetJobError,
    FleetSupervisor,
)

pytestmark = pytest.mark.chaos

EVENT_DIR_ENV = "REPRO_FLEET_EVENT_DIR"

RECHISEL_KNOBS = (
    ("enable_escape", True),
    ("feedback_detail", "full"),
    ("use_knowledge", True),
)


def make_units(samples=2):
    units = []
    specs = [
        ("zero_shot", (("language", "chisel"),), 0),
        ("rechisel", RECHISEL_KNOBS, 4),
        ("autochip", (), 4),
    ]
    for strategy, knobs, max_iterations in specs:
        for sample in range(samples):
            units.append(
                WorkUnit(strategy, "GPT-4o mini", "alu_w4", 0, sample, 0, max_iterations, knobs)
            )
    return units


def serial_payloads(units):
    executor = SerialExecutor(WorkerContext())
    ordered = [None] * len(units)
    for index, payload in executor.run_stream(units):
        ordered[index] = payload
    return ordered


def wait_for_event(supervisor, kind, count=1, timeout=10.0):
    """Recovery (e.g. a restart after backoff) may outlive the sweep itself."""
    deadline = time.monotonic() + timeout
    while supervisor.events.count(kind) < count:
        assert time.monotonic() < deadline, f"never saw {count}x {kind!r}"
        time.sleep(0.02)


FAST = FleetConfig(
    workers=2,
    heartbeat_interval=0.1,
    heartbeat_misses=3,
    lease_timeout=30.0,
    restart_backoff=0.05,
    restart_backoff_max=0.2,
)


@pytest.fixture
def supervised(request):
    """Build supervisors, always close them, dump event logs if asked to."""
    supervisors = []

    def build(config: FleetConfig, **kwargs) -> FleetSupervisor:
        supervisor = FleetSupervisor(config, **kwargs)
        supervisors.append(supervisor)
        return supervisor.start()

    yield build
    event_dir = os.environ.get(EVENT_DIR_ENV, "").strip()
    for number, supervisor in enumerate(supervisors):
        if event_dir:
            name = f"{request.node.name}-{number}.jsonl".replace("/", "_")
            supervisor.events.dump(os.path.join(event_dir, name))
        supervisor.close()


class TestCrashRecovery:
    def test_injected_crash_mid_job_requeues_and_matches_serial(self, supervised):
        """A worker that dies executing a job: re-queue, restart, same bits."""
        units = make_units()
        expected = serial_payloads(units)
        crash_unit = units[0]

        def injector(unit, attempt):
            if unit == crash_unit and attempt == 0:
                return FAULT_CRASH
            return None

        supervisor = supervised(FAST, fault_injector=injector)
        assert supervisor.run(units) == expected
        assert supervisor.events.count("worker-lost") >= 1
        wait_for_event(supervisor, "restart")
        requeued = {
            job
            for entry in supervisor.events.events("lease-requeue")
            for job in [entry["job"]]
        }
        assert requeued, "the crashed worker's lease was never re-queued"
        assert supervisor.health()["counters"]["crashes"] >= 1

    def test_sigkill_random_worker_mid_sweep_matches_serial(self, supervised):
        """An external SIGKILL (the acceptance scenario): bit-identical results."""
        units = make_units(samples=3)
        expected = serial_payloads(units)

        # Slow every first attempt slightly so the kill reliably lands while
        # jobs are in flight, without changing any payload.
        def injector(unit, attempt):
            return FAULT_SLOW if attempt == 0 else None

        supervisor = supervised(FAST, fault_injector=injector)
        futures = [supervisor.submit(unit) for unit in units]
        deadline = time.monotonic() + 10.0
        while not supervisor.worker_pids():
            assert time.monotonic() < deadline
            time.sleep(0.01)
        victim = sorted(supervisor.worker_pids().items())[0][1]
        time.sleep(0.1)  # let jobs start executing
        os.kill(victim, signal.SIGKILL)

        payloads = [future.result(timeout=120) for future in futures]
        assert payloads == expected
        assert supervisor.events.count("worker-lost") >= 1
        wait_for_event(supervisor, "restart")


class TestHangsAndFreezes:
    def test_hung_job_expires_its_lease(self, supervised):
        """A hang with healthy heartbeats is caught by the lease timeout."""
        units = make_units(samples=1)
        expected = serial_payloads(units)
        hung = units[-1]

        def injector(unit, attempt):
            if unit == hung and attempt == 0:
                return FAULT_HANG
            return None

        config = FleetConfig(
            workers=2,
            heartbeat_interval=0.1,
            heartbeat_misses=50,  # heartbeats stay healthy; the lease must trip
            lease_timeout=0.6,
            restart_backoff=0.05,
        )
        supervisor = supervised(config, fault_injector=injector)
        assert supervisor.run(units) == expected
        assert supervisor.events.count("lease-expired") >= 1
        assert supervisor.health()["counters"]["lease_expirations"] >= 1

    def test_frozen_worker_is_caught_by_heartbeats(self, supervised):
        """A wedged process that stops heartbeating is killed and replaced."""
        units = make_units(samples=1)
        expected = serial_payloads(units)
        frozen = units[0]

        def injector(unit, attempt):
            if unit == frozen and attempt == 0:
                return FAULT_FREEZE
            return None

        supervisor = supervised(FAST, fault_injector=injector)
        assert supervisor.run(units) == expected
        assert supervisor.events.count("heartbeat-miss") >= 1
        assert supervisor.health()["counters"]["heartbeat_misses"] >= 1


class TestPoisonAndDegradation:
    def test_poisoned_job_is_quarantined_not_fatal(self, supervised):
        """A job that always kills its worker runs in-process after N deaths."""
        units = make_units()
        expected = serial_payloads(units)
        poison = units[1]

        def injector(unit, attempt):
            return FAULT_CRASH if unit == poison else None

        supervisor = supervised(FAST, fault_injector=injector)
        assert supervisor.run(units) == expected
        assert supervisor.events.count("quarantine") == 1
        assert supervisor.events.count("inline-execution") == 1
        # Quarantine must blame only the poisoned job, never its pipe-mates.
        assert supervisor.health()["counters"]["quarantined"] == 1

    def test_clean_job_failure_does_not_kill_the_worker(self, supervised):
        units = make_units(samples=1)
        failing = units[0]

        def injector(unit, attempt):
            return FAULT_ERROR if unit == failing else None

        supervisor = supervised(FAST, fault_injector=injector)
        futures = [supervisor.submit(unit) for unit in units]
        with pytest.raises(FleetJobError):
            futures[0].result(timeout=60)
        expected = serial_payloads(units[1:])
        assert [f.result(timeout=60) for f in futures[1:]] == expected
        assert supervisor.events.count("worker-lost") == 0
        assert supervisor.health()["counters"]["failed"] == 1

    def test_full_eviction_degrades_to_inline_execution(self, supervised):
        """Every worker evicted -> supervisor executes in-process, same bits.

        One unit crashes its worker on *every* attempt, and quarantine is
        disabled, so it marches through the fleet killing each worker twice
        (``max_restarts=1``) until every slot is evicted; the supervisor must
        then degrade to in-process execution and still return serial bits.
        """
        units = make_units(samples=1)
        expected = serial_payloads(units)
        wrecker = units[0]

        def injector(unit, attempt):
            return FAULT_CRASH if unit == wrecker else None

        config = FleetConfig(
            workers=2,
            heartbeat_interval=0.1,
            heartbeat_misses=3,
            restart_backoff=0.02,
            restart_backoff_max=0.05,
            max_restarts=1,
            poison_threshold=100,  # never quarantine; force evictions instead
        )
        supervisor = supervised(config, fault_injector=injector)
        assert supervisor.run(units) == expected
        health = supervisor.health()
        assert health["degraded"] is True
        assert health["alive"] == 0
        assert supervisor.events.count("evict") == 2
        assert supervisor.events.count("fleet-degraded") == 1
        assert supervisor.events.count("inline-execution") >= 1
        # A degraded supervisor still serves new work correctly.
        more = make_units(samples=2)
        assert supervisor.run(more) == serial_payloads(more)
