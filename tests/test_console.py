"""Console tests: the headless model against a live service, plus the TUI.

The headless tests are the acceptance path: a real
:class:`~repro.service.service.GenerationService` run (synthetic
EchoClient-backed clients, real toolchain) publishes onto a private bus, and
the :class:`~repro.console.model.ConsoleModel` attached to it must show live
session rows with per-stage latencies, the fleet worker panel and the cache
panel.  The Textual pilot test at the bottom runs only where the optional
``textual`` dependency is installed (the CI console-smoke job).
"""

import asyncio

import pytest

from repro.console import ConsoleModel, sparkline
from repro.experiments.work import WorkUnit
from repro.obs import EventBus, build_timeline
from repro.service import ServiceConfig, serve_units

RECHISEL_KNOBS = (
    ("enable_escape", True),
    ("feedback_detail", "full"),
    ("use_knowledge", True),
)


def make_units(samples=2):
    units = []
    for strategy, knobs, max_iterations in (
        ("zero_shot", (("language", "chisel"),), 0),
        ("rechisel", RECHISEL_KNOBS, 6),
    ):
        for sample in range(samples):
            units.append(
                WorkUnit(strategy, "GPT-4o mini", "alu_w4", 0, sample, 0, max_iterations, knobs)
            )
    return units


def serve_watched(units, config, model=None):
    """Run ``units`` through a fresh service with a console model attached."""
    bus = EventBus()
    model = model if model is not None else ConsoleModel()
    model.attach(bus)
    try:
        payloads, snapshot = serve_units(units, config, bus=bus)
        model.pump()
    finally:
        model.detach()
    return model, payloads, snapshot


class TestConsoleModel:
    def test_live_service_run_populates_session_rows(self):
        units = make_units()
        model, payloads, _ = serve_watched(units, ServiceConfig(max_in_flight=4))
        assert len(payloads) == len(units)
        rows = model.session_rows()
        assert len(rows) == len(units)
        problems = {row[0] for row in rows}
        strategies = {row[1] for row in rows}
        assert problems == {"alu_w4"}
        assert strategies == {"zero_shot", "rechisel"}
        assert all(row[4] == "done" for row in rows)
        # Per-stage latencies: every session spent measurable time in LLM
        # calls and in the toolchain.
        assert all(float(row[5]) > 0 for row in rows), "llm ms column empty"
        assert any(float(row[6]) > 0 for row in rows), "compile ms column empty"
        assert model.counters["completed"] == len(units)

    def test_cache_panel_reflects_stage_caches(self):
        units = make_units(samples=1)
        model, _, _ = serve_watched(units, ServiceConfig(max_in_flight=4))
        cache_rows = model.cache_rows()
        assert cache_rows, "cache.stats snapshots never reached the model"
        names = {row[0] for row in cache_rows}
        assert "chisel_parse" in names
        rendered = model.render()
        assert "caches:" in rendered
        assert "sessions (newest first):" in rendered

    def test_fleet_panel_shows_worker_rows(self):
        units = make_units(samples=1)
        model, _, snapshot = serve_watched(
            units, ServiceConfig(max_in_flight=4, fleet_workers=1)
        )
        assert snapshot.fleet
        workers = model.worker_rows()
        assert len(workers) == 1
        slot, state, pid, _restarts, _leases, _age = workers[0]
        assert slot == "0"
        assert state in ("ready", "starting")
        assert pid not in ("-", "None")
        assert "workers-alive=1" in model.headline()

    def test_batch_sparkline_tracks_llm_batches(self):
        units = make_units()
        model, _, _ = serve_watched(units, ServiceConfig(max_in_flight=8))
        assert len(model.llm_batches) > 0
        assert sparkline(model.llm_batches) != ""

    def test_sparkline_rendering(self):
        assert sparkline([]) == ""
        assert sparkline([0, 0]) == "▁▁"
        line = sparkline([1, 2, 4, 8], width=3)
        assert len(line) == 3
        assert line[-1] == "█"

    def test_eviction_keeps_the_newest_sessions(self):
        model = ConsoleModel(max_sessions=2)
        bus = EventBus()
        sub = bus.subscribe("trace")
        from repro.obs import span

        for index in range(4):
            with span("session", bus=bus, problem=f"p{index}"):
                pass
        for event in sub.pop_all():
            model.apply(event)
        assert [row.problem for row in model.sessions.values()] == ["p2", "p3"]


class TestSessionTimelines:
    def test_session_timeline_covers_llm_tool_and_simulate_steps(self):
        bus = EventBus()
        trace = bus.subscribe("trace", maxsize=65536)
        # This spec's synthetic candidate compiles, so the repair loop reaches
        # the simulate step (alu_w4's fails at compile and never simulates).
        units = [
            WorkUnit("rechisel", "Claude 3.5 Sonnet", "counter_w4", 1, 0, 0, 6, RECHISEL_KNOBS)
        ]
        serve_units(units, ServiceConfig(max_in_flight=1), bus=bus)
        roots = build_timeline(trace.pop_all())
        sessions = [root for root in roots if root.name == "session"]
        assert len(sessions) == 1
        session = sessions[0]
        assert session.complete
        assert session.attrs["problem"] == "counter_w4"
        child_ops = {child.name for child in session.children}
        assert any(op.startswith("llm.") for op in child_ops), child_ops
        assert any(op.startswith("tool.") for op in child_ops), child_ops
        assert "tool.simulate" in child_ops, child_ops
        # Parent/child integrity: every child's duration fits in the session.
        for child in session.children:
            assert child.complete
            assert child.duration <= session.duration


@pytest.mark.filterwarnings("ignore::DeprecationWarning")
def test_textual_app_shows_live_session_table():
    """Pilot-drive the real TUI over a model fed by a live service run."""
    pytest.importorskip("textual")
    from textual.widgets import DataTable, Static

    from repro.console.app import ConsoleApp

    units = make_units(samples=1)
    bus = EventBus()
    model = ConsoleModel()
    model.attach(bus)
    serve_units(units, ServiceConfig(max_in_flight=4), bus=bus)

    async def drive():
        app = ConsoleApp(model, interval=0.05)
        async with app.run_test(size=(120, 40)) as pilot:
            await pilot.pause(0.3)
            sessions = app.query_one("#sessions", DataTable)
            assert sessions.row_count == len(units)
            caches = app.query_one("#caches", DataTable)
            assert caches.row_count > 0
            headline = app.query_one("#headline", Static)
            assert "done=" in str(headline.renderable)

    try:
        asyncio.run(drive())
    finally:
        model.detach()


class TestResiliencePanel:
    def test_breaker_and_retry_events_populate_the_panel(self):
        from repro.retry import CircuitBreaker, emit_retry

        bus = EventBus()
        model = ConsoleModel()
        model.attach(bus)
        try:
            breaker = CircuitBreaker(1, 3600.0, name="llm", bus=bus)
            breaker.record_failure()
            emit_retry(bus, "campaign", 1, "TransportTimeout", 0.1)
            emit_retry(bus, "llm", 2, "HttpError", 0.2)
            model.pump()
        finally:
            model.detach()
        lines = model.resilience_lines()
        assert any(line.startswith("llm breaker: open") for line in lines)
        assert any("retries=2" in line for line in lines)
        assert "breaker=open" in model.headline()
        assert "resilience:" in model.render()

    def test_live_campaign_feeds_stage_progress_and_budget(self, tmp_path):
        from repro.campaign.config import CampaignConfig
        from repro.campaign.orchestrator import CampaignOrchestrator
        from repro.campaign.spec import default_campaign

        bus = EventBus()
        model = ConsoleModel()
        model.attach(bus)
        try:
            result = CampaignOrchestrator(
                default_campaign(samples=1, fuzz_programs=2),
                CampaignConfig(store_path=str(tmp_path / "store"), chunk_size=2),
                bus=bus,
            ).run()
            model.pump()
        finally:
            model.detach()
        assert result.status == "complete"
        assert model.campaign_id == result.campaign_id
        assert model.campaign_status == "complete"
        lines = "\n".join(model.resilience_lines())
        assert f"campaign {result.campaign_id}: complete" in lines
        assert "llm budget: spent=" in lines
        for stage in ("generate", "verify", "fuzz", "benchmark"):
            assert f"stage {stage}: complete" in lines

    def test_empty_panel_stays_out_of_render(self):
        model = ConsoleModel()
        assert model.resilience_lines() == []
        assert "resilience:" not in model.render()
