"""Tests for Chisel elaboration: structure of the produced FIRRTL."""

import pytest

from repro.chisel.diagnostics import ChiselError
from repro.chisel.elaborator import elaborate
from repro.chisel.parser import parse_source
from repro.firrtl import ir

HEADER = "import chisel3._\nimport chisel3.util._\n\n"


def elaborate_source(body: str, io_fields: str = "") -> ir.Module:
    source = HEADER + (
        "class TopModule extends Module {\n"
        "  val io = IO(new Bundle {\n"
        "    val in = Input(UInt(8.W))\n"
        "    val out = Output(UInt(8.W))\n"
        f"{io_fields}"
        "  })\n"
        f"{body}\n"
        "}\n"
    )
    circuit = elaborate(parse_source(source))
    return circuit.main


class TestPortsAndImplicits:
    def test_implicit_clock_and_reset_ports(self):
        module = elaborate_source("  io.out := io.in")
        names = [p.name for p in module.ports]
        assert names[:2] == ["clock", "reset"]

    def test_io_bundle_flattened_to_ports(self):
        module = elaborate_source("  io.out := io.in")
        names = {p.name for p in module.ports}
        assert {"io_in", "io_out"} <= names
        assert module.port_named("io_in").direction == ir.INPUT
        assert module.port_named("io_out").direction == ir.OUTPUT

    def test_vec_io_field_becomes_vector_port(self):
        module = elaborate_source(
            "  io.out := 0.U",
            io_fields="    val vecIn = Input(Vec(4, Bool()))\n",
        )
        port = module.port_named("io_vecIn")
        assert isinstance(port.type, ir.VectorType)
        assert port.type.size == 4

    def test_unknown_module_name_errors(self):
        program = parse_source(HEADER + "class Foo extends Module { }")
        with pytest.raises(ChiselError):
            elaborate(program, top="Bar")


class TestHardwareConstruction:
    def test_wire_and_connect(self):
        module = elaborate_source("  val w = Wire(UInt(8.W))\n  w := io.in\n  io.out := w")
        wires = [s for s in ir.walk_stmts(module.body) if isinstance(s, ir.DefWire)]
        assert [w.name for w in wires] == ["w"]

    def test_wiredefault_marks_default(self):
        module = elaborate_source("  val w = WireDefault(0.U(8.W))\n  io.out := w")
        wire = next(s for s in ir.walk_stmts(module.body) if isinstance(s, ir.DefWire))
        assert wire.has_default

    def test_reginit_uses_implicit_clock_and_reset(self):
        module = elaborate_source("  val r = RegInit(0.U(8.W))\n  r := io.in\n  io.out := r")
        reg = next(s for s in ir.walk_stmts(module.body) if isinstance(s, ir.DefRegister))
        assert reg.reset is not None
        assert reg.init is not None
        assert isinstance(reg.clock, ir.Reference)
        assert reg.clock.name == "clock"

    def test_regnext_emits_register_and_connect(self):
        module = elaborate_source("  val r = RegNext(io.in)\n  io.out := r")
        regs = [s for s in ir.walk_stmts(module.body) if isinstance(s, ir.DefRegister)]
        assert len(regs) == 1
        connects = [s for s in ir.walk_stmts(module.body) if isinstance(s, ir.Connect)]
        assert any(ir.root_reference(c.target).name == "r" for c in connects)

    def test_when_produces_conditionally(self):
        module = elaborate_source(
            "  val r = RegInit(0.U(8.W))\n"
            "  when (io.in(0)) { r := io.in } .otherwise { r := 0.U }\n"
            "  io.out := r"
        )
        conditionals = [s for s in ir.walk_stmts(module.body) if isinstance(s, ir.Conditionally)]
        assert len(conditionals) == 1
        assert len(conditionals[0].conseq) == 1
        assert len(conditionals[0].alt) == 1

    def test_switch_desugars_to_nested_whens(self):
        module = elaborate_source(
            "  val result = WireDefault(0.U(8.W))\n"
            "  switch (io.in) {\n"
            "    is (0.U) { result := 1.U }\n"
            "    is (1.U) { result := 2.U }\n"
            "  }\n"
            "  io.out := result"
        )
        conditionals = [s for s in ir.walk_stmts(module.body) if isinstance(s, ir.Conditionally)]
        assert len(conditionals) == 2

    def test_for_loop_unrolls(self):
        module = elaborate_source(
            "  val v = Wire(Vec(4, UInt(8.W)))\n"
            "  for (i <- 0 until 4) { v(i) := io.in }\n"
            "  io.out := v(0)"
        )
        connects = [s for s in ir.walk_stmts(module.body) if isinstance(s, ir.Connect)]
        vec_connects = [c for c in connects if isinstance(c.target, ir.SubIndex)]
        assert len(vec_connects) == 4

    def test_scala_if_resolved_at_elaboration(self):
        module = elaborate_source(
            "  val n = 4\n"
            "  if (n > 2) { io.out := io.in } else { io.out := 0.U }"
        )
        conditionals = [s for s in ir.walk_stmts(module.body) if isinstance(s, ir.Conditionally)]
        assert not conditionals  # the Scala if does not create hardware muxing

    def test_named_expression_becomes_node(self):
        module = elaborate_source("  val total = io.in + 1.U\n  io.out := total")
        nodes = [s for s in ir.walk_stmts(module.body) if isinstance(s, ir.DefNode)]
        assert [n.name for n in nodes] == ["total"]

    def test_vecinit_creates_initialised_vector(self):
        module = elaborate_source(
            "  val v = VecInit(io.in(0), io.in(1), io.in(2))\n  io.out := v.asUInt"
        )
        wire = next(s for s in ir.walk_stmts(module.body) if isinstance(s, ir.DefWire))
        assert isinstance(wire.type, ir.VectorType)
        assert wire.type.size == 3

    def test_dontcare_produces_invalidate(self):
        module = elaborate_source("  io.out := DontCare")
        invalidates = [s for s in ir.walk_stmts(module.body) if isinstance(s, ir.Invalidate)]
        assert len(invalidates) == 1

    def test_name_collision_gets_suffix(self):
        module = elaborate_source(
            "  val w = Wire(UInt(8.W))\n"
            "  w := io.in\n"
            "  io.out := w"
        )
        # The io port already reserved io_* names; the wire keeps its own name.
        wire = next(s for s in ir.walk_stmts(module.body) if isinstance(s, ir.DefWire))
        assert wire.name == "w"


class TestScalaSemantics:
    def test_var_reassignment_in_loop(self):
        module = elaborate_source(
            "  var idx = 0\n"
            "  val v = Wire(Vec(4, Bool()))\n"
            "  for (i <- 0 until 4) {\n"
            "    v(idx) := io.in(i)\n"
            "    idx += 1\n"
            "  }\n"
            "  io.out := v.asUInt"
        )
        connects = [
            s
            for s in ir.walk_stmts(module.body)
            if isinstance(s, ir.Connect) and isinstance(s.target, ir.SubIndex)
        ]
        assert sorted(c.target.index for c in connects) == [0, 1, 2, 3]

    def test_seq_map_reduce(self):
        module = elaborate_source(
            "  val bits = Seq(io.in(0), io.in(1), io.in(2))\n"
            "  io.out := bits.map(_.asUInt).reduce(_ +& _)"
        )
        assert module.port_named("io_out") is not None

    def test_log2ceil(self):
        module = elaborate_source(
            "  val width = log2Ceil(16)\n  io.out := io.in(width - 1, 0)"
        )
        assert module is not None

    def test_class_parameter_default_used(self):
        source = HEADER + (
            "class TopModule(val width: Int = 8) extends Module {\n"
            "  val io = IO(new Bundle {\n"
            "    val in = Input(UInt(width.W))\n"
            "    val out = Output(UInt(width.W))\n"
            "  })\n"
            "  io.out := io.in\n"
            "}\n"
        )
        module = elaborate(parse_source(source)).main
        port = module.port_named("io_in")
        assert isinstance(port.type, ir.UIntType)
        assert port.type.width == 8

    def test_user_bundle_class_as_wire(self):
        source = HEADER + (
            "class MyBundle extends Bundle {\n"
            "  val a = UInt(4.W)\n"
            "  val b = Bool()\n"
            "}\n"
            "class TopModule extends Module {\n"
            "  val io = IO(new Bundle {\n"
            "    val in = Input(UInt(4.W))\n"
            "    val out = Output(UInt(4.W))\n"
            "  })\n"
            "  val w = Wire(new MyBundle)\n"
            "  w.a := io.in\n"
            "  w.b := io.in(0)\n"
            "  io.out := w.a\n"
            "}\n"
        )
        module = elaborate(parse_source(source)).main
        wire = next(s for s in ir.walk_stmts(module.body) if isinstance(s, ir.DefWire))
        assert isinstance(wire.type, ir.BundleType)
