"""Tests for the LLM layer: clients, prompts, profiles and the synthetic backend."""

import pytest

from repro.llm import prompts
from repro.llm.client import CallableClient, ChatMessage, EchoClient
from repro.llm.profiles import (
    CLAUDE_HAIKU,
    CLAUDE_SONNET,
    GPT4O,
    GPT4O_MINI,
    GPT4_TURBO,
    MODEL_PROFILES,
    PAPER_MODELS,
    profile_named,
)
from repro.llm.synthetic import SyntheticChiselLLM
from repro.llm.verilog_faults import VERILOG_FAULTS, applicable_verilog_faults
from repro.problems.registry import build_default_registry
from repro.toolchain.compiler import ChiselCompiler
from repro.verilog.parser import VerilogParseError, parse_verilog

REGISTRY = build_default_registry()
COMPILER = ChiselCompiler(top="TopModule")


class TestClientsAndPrompts:
    def test_callable_client_delegates(self):
        client = CallableClient(lambda messages: f"echo:{messages[-1].content}")
        assert client.complete([ChatMessage("user", "hi")]) == "echo:hi"

    def test_echo_client_records_calls(self):
        client = EchoClient("fixed")
        client.complete([ChatMessage("user", "a")])
        assert len(client.calls) == 1

    def test_generation_prompt_contains_case_marker(self):
        messages = prompts.generation_prompt("spec text", "adder_w8")
        assert prompts.CASE_MARKER in messages[-1].content
        assert "adder_w8" in messages[-1].content

    def test_revision_prompt_includes_escape_notice_when_escaped(self):
        messages = prompts.revision_prompt("spec", "case", "code", "plan", escaped=True)
        assert prompts.ESCAPE_NOTICE in messages[-1].content

    def test_verilog_prompt_switches_system_and_target(self):
        messages = prompts.generation_prompt("spec", "case", language="verilog")
        assert prompts.TARGET_VERILOG in messages[-1].content
        assert "Verilog" in messages[0].content

    def test_extract_code_block_with_language_tag(self):
        text = "Here you go\n```scala\nval x = 1\n```\nthanks"
        assert prompts.extract_code_block(text) == "val x = 1"

    def test_extract_code_block_without_fence_returns_raw(self):
        assert prompts.extract_code_block("val x = 1") == "val x = 1"


class TestProfiles:
    def test_all_paper_models_have_profiles(self):
        assert set(PAPER_MODELS) == set(MODEL_PROFILES)

    def test_baselines_match_paper_table1(self):
        assert profile_named(GPT4_TURBO).chisel_baseline_success == pytest.approx(0.4554)
        assert profile_named(CLAUDE_SONNET).verilog_baseline_success == pytest.approx(0.7793)

    def test_chisel_baseline_below_verilog_baseline(self):
        for profile in MODEL_PROFILES.values():
            assert profile.chisel_baseline_success < profile.verilog_baseline_success

    def test_claude_models_have_strongest_reflection(self):
        sonnet = profile_named(CLAUDE_SONNET).chisel_fix_prob
        haiku = profile_named(CLAUDE_HAIKU).chisel_fix_prob
        for other in (GPT4_TURBO, GPT4O, GPT4O_MINI):
            assert sonnet > profile_named(other).chisel_fix_prob
            assert haiku > profile_named(other).chisel_fix_prob

    def test_mini_is_weakest(self):
        mini = profile_named(GPT4O_MINI)
        assert mini.chisel_baseline_success == min(
            p.chisel_baseline_success for p in MODEL_PROFILES.values()
        )
        assert mini.loop_prob == max(p.loop_prob for p in MODEL_PROFILES.values())

    def test_fix_probability_dispatch(self):
        profile = profile_named(GPT4O)
        assert profile.fix_probability("syntax") == profile.chisel_fix_prob
        assert profile.fix_probability("functional") == profile.functional_fix_prob
        assert profile.fix_probability("syntax", language="verilog") == profile.verilog_fix_prob


class TestVerilogFaults:
    def test_faults_apply_to_emitted_golden(self):
        golden = COMPILER.compile(REGISTRY.by_id("adder_w8").golden_chisel).verilog
        assert applicable_verilog_faults(golden, "syntax")
        assert applicable_verilog_faults(golden, "functional")

    @pytest.mark.parametrize("fault", VERILOG_FAULTS, ids=lambda f: f.fault_id)
    def test_syntax_faults_break_parsing_functional_do_not(self, fault):
        golden = COMPILER.compile(REGISTRY.by_id("adder_w8").golden_chisel).verilog
        if not fault.applies(golden):
            pytest.skip("not applicable to this design")
        mutated = fault.apply(golden)
        if fault.kind == "syntax":
            with pytest.raises(VerilogParseError):
                parse_verilog(mutated)
        else:
            parse_verilog(mutated)
            assert mutated != golden


class TestSyntheticBackend:
    def _client(self, model=CLAUDE_SONNET, seed=0):
        return SyntheticChiselLLM(REGISTRY, MODEL_PROFILES[model], seed=seed, compiler=COMPILER)

    def test_initial_generation_is_chisel_for_known_case(self):
        client = self._client()
        problem = REGISTRY.by_id("adder_w8")
        response = client.complete(prompts.generation_prompt(problem.spec_text(), problem.problem_id))
        code = prompts.extract_code_block(response)
        assert "class TopModule" in code

    def test_unknown_case_yields_placeholder(self):
        client = self._client()
        response = client.complete(prompts.generation_prompt("some spec", None))
        assert "unknown benchmark case" in response

    def test_baseline_success_rate_tracks_profile(self):
        client = self._client(CLAUDE_SONNET, seed=42)
        problem = REGISTRY.by_id("adder_w8")
        golden = problem.golden_chisel.strip()
        successes = 0
        trials = 300
        for _ in range(trials):
            response = client.complete(
                prompts.generation_prompt(problem.spec_text(), problem.problem_id)
            )
            if prompts.extract_code_block(response).strip() == golden:
                successes += 1
        rate = successes / trials
        expected = MODEL_PROFILES[CLAUDE_SONNET].chisel_baseline_success
        assert abs(rate - expected) < 0.10

    def test_revision_eventually_repairs_faulty_code(self):
        client = self._client(CLAUDE_SONNET, seed=1)
        problem = REGISTRY.by_id("mux2_w8")
        spec = problem.spec_text()
        # Force a faulty starting point by sampling until the attempt differs from golden.
        code = None
        for _ in range(50):
            candidate = prompts.extract_code_block(
                client.complete(prompts.generation_prompt(spec, problem.problem_id))
            )
            if candidate.strip() != problem.golden_chisel.strip():
                code = candidate
                break
        assert code is not None, "expected at least one faulty attempt"
        for _ in range(60):
            response = client.complete(
                prompts.revision_prompt(spec, problem.problem_id, code, "fix the error")
            )
            code = prompts.extract_code_block(response)
            if code.strip() == problem.golden_chisel.strip():
                break
        assert code.strip() == problem.golden_chisel.strip()

    def test_verilog_generation_produces_verilog(self):
        client = self._client()
        problem = REGISTRY.by_id("adder_w8")
        response = client.complete(
            prompts.generation_prompt(problem.spec_text(), problem.problem_id, language="verilog")
        )
        code = prompts.extract_code_block(response)
        assert "module TopModule" in code

    def test_reviewer_prompt_yields_plan(self):
        client = self._client()
        messages = prompts.review_prompt(
            "spec", "case", "code", "[error] something broke", "(no previous iterations)", "kb"
        )
        plan = client.complete(messages)
        assert "Location" in plan or "regenerate" in plan

    def test_inspector_prompt_answers_yes_for_identical_signatures(self):
        client = self._client()
        answer = client.complete(prompts.loop_check_prompt("loc [B3] x", "loc [B3] x"))
        assert answer.startswith("YES")
        answer = client.complete(prompts.loop_check_prompt("loc [B3] x", "other [B5] y"))
        assert answer.startswith("NO")
