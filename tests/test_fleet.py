"""Tests for the supervised generation fleet: ring, config, executor, wiring.

Fault-injection scenarios (crashes, hangs, poison jobs, degradation) live in
``tests/test_fleet_chaos.py``; this module covers the fault-free contract —
routing determinism, configuration, and bit-identity with the serial path.
"""

import dataclasses
import os

import pytest

from repro.experiments.config import ExperimentConfig, FLEET_ENV
from repro.experiments.engine import SweepEngine
from repro.experiments.executors import SerialExecutor
from repro.experiments.work import WorkerContext, WorkUnit
from repro.fleet import FleetConfig, FleetExecutor, FleetSupervisor, HashRing
from repro.fleet.config import (
    HEARTBEAT_ENV,
    MAX_RESTARTS_ENV,
    POISON_THRESHOLD_ENV,
    WORKERS_ENV,
)
from repro.service import ServiceConfig, serve_units

RECHISEL_KNOBS = (
    ("enable_escape", True),
    ("feedback_detail", "full"),
    ("use_knowledge", True),
)


def make_units(samples=2):
    """A small mixed workload covering all three strategies."""
    units = []
    specs = [
        ("zero_shot", (("language", "chisel"),), 0),
        ("rechisel", RECHISEL_KNOBS, 4),
        ("autochip", (), 4),
    ]
    for strategy, knobs, max_iterations in specs:
        for sample in range(samples):
            units.append(
                WorkUnit(strategy, "GPT-4o mini", "alu_w4", 0, sample, 0, max_iterations, knobs)
            )
    return units


def serial_payloads(units):
    executor = SerialExecutor(WorkerContext())
    ordered = [None] * len(units)
    for index, payload in executor.run_stream(units):
        ordered[index] = payload
    return ordered


FAST = FleetConfig(workers=2, heartbeat_interval=0.1, restart_backoff=0.05)


class TestHashRing:
    def test_routing_is_deterministic(self):
        first = HashRing()
        second = HashRing()
        for ring in (first, second):
            for node in ("a", "b", "c"):
                ring.add(node)
        keys = [f"unit-{i}" for i in range(64)]
        assert [first.node_for(k) for k in keys] == [second.node_for(k) for k in keys]

    def test_removal_only_remaps_removed_nodes_keys(self):
        ring = HashRing()
        for node in ("a", "b", "c"):
            ring.add(node)
        keys = [f"unit-{i}" for i in range(256)]
        before = {k: ring.node_for(k) for k in keys}
        ring.remove("b")
        after = {k: ring.node_for(k) for k in keys}
        for key in keys:
            if before[key] != "b":
                assert after[key] == before[key]
            else:
                assert after[key] in ("a", "c")

    def test_walk_yields_distinct_nodes(self):
        ring = HashRing()
        for node in range(4):
            ring.add(node)
        walked = list(ring.walk("some-key"))
        assert sorted(walked) == [0, 1, 2, 3]

    def test_empty_ring(self):
        ring = HashRing()
        assert ring.node_for("x") is None
        assert list(ring.walk("x")) == []


class TestFleetConfig:
    def test_defaults_are_valid(self):
        config = FleetConfig()
        assert config.heartbeat_timeout == pytest.approx(3.0)
        assert 0.005 <= config.tick <= 0.05

    def test_backoff_escalates_and_caps(self):
        config = FleetConfig(restart_backoff=0.1, restart_backoff_max=0.5)
        delays = [config.backoff_delay(n) for n in range(1, 6)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_validation(self):
        with pytest.raises(ValueError):
            FleetConfig(workers=0)
        with pytest.raises(ValueError):
            FleetConfig(heartbeat_interval=0)
        with pytest.raises(ValueError):
            FleetConfig(poison_threshold=0)

    def test_from_environment(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "7")
        monkeypatch.setenv(HEARTBEAT_ENV, "0.25")
        monkeypatch.setenv(MAX_RESTARTS_ENV, "2")
        monkeypatch.setenv(POISON_THRESHOLD_ENV, "3")
        config = FleetConfig.from_environment()
        assert config.workers == 7
        assert config.heartbeat_interval == 0.25
        assert config.max_restarts == 2
        assert config.poison_threshold == 3

    def test_environment_overrides_base(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        config = FleetConfig.from_environment(FleetConfig(workers=8, lease_timeout=9.0))
        assert config.workers == 3
        assert config.lease_timeout == 9.0


class TestFleetExecutor:
    def test_bit_identical_to_serial(self):
        units = make_units()
        expected = serial_payloads(units)
        executor = FleetExecutor(FAST)
        try:
            ordered = [None] * len(units)
            for index, payload in executor.run_stream(units):
                ordered[index] = payload
        finally:
            executor.shutdown()
        assert ordered == expected

    def test_supervisor_run_preserves_submission_order(self):
        units = make_units(samples=1)
        expected = serial_payloads(units)
        with FleetSupervisor(FAST) as supervisor:
            assert supervisor.run(units) == expected

    def test_duplicate_units_coalesce_routing(self):
        unit = make_units(samples=1)[0]
        with FleetSupervisor(FAST) as supervisor:
            payloads = supervisor.run([unit, unit, unit])
        assert payloads[0] == payloads[1] == payloads[2]

    def test_health_shape(self):
        with FleetSupervisor(FAST) as supervisor:
            supervisor.run(make_units(samples=1))
            health = supervisor.health()
        assert set(health) >= {"workers", "alive", "degraded", "pending_jobs", "counters"}
        assert len(health["workers"]) == FAST.workers
        assert health["alive"] == FAST.workers
        assert health["degraded"] is False
        for worker in health["workers"]:
            assert set(worker) >= {"slot", "state", "pid", "restarts", "leases"}
        counters = health["counters"]
        assert counters["dispatched"] >= len(make_units(samples=1))
        assert counters["completed"] == counters["dispatched"]
        assert counters["crashes"] == 0

    def test_worker_pids_are_live_children(self):
        with FleetSupervisor(FAST) as supervisor:
            pids = supervisor.worker_pids()
            assert len(pids) == FAST.workers
            for pid in pids.values():
                os.kill(pid, 0)  # raises if the process is gone


class TestEngineIntegration:
    def test_fleet_engine_matches_serial_engine(self):
        config = ExperimentConfig(
            samples_per_case=2, max_iterations=4, max_cases=4, jobs=1
        )
        units = make_units()
        serial_engine = SweepEngine(config)
        expected = serial_engine.run(units)
        serial_engine.close()

        fleet_engine = SweepEngine(dataclasses.replace(config, jobs=2, fleet=True))
        try:
            assert fleet_engine.run(units) == expected
            assert fleet_engine._fleet is not None
            # The fleet executor persists across sweeps (warm workers).
            assert fleet_engine.run(make_units(samples=1)) == expected[::2]
        finally:
            fleet_engine.close()
        assert fleet_engine._fleet is None

    def test_fleet_env_knob(self, monkeypatch):
        monkeypatch.setenv(FLEET_ENV, "1")
        assert ExperimentConfig.from_environment().fleet is True
        monkeypatch.setenv(FLEET_ENV, "0")
        assert ExperimentConfig.from_environment().fleet is False

    def test_single_job_config_never_builds_a_fleet(self):
        engine = SweepEngine(ExperimentConfig(samples_per_case=1, jobs=1, fleet=True))
        try:
            engine.run(make_units(samples=1))
            assert engine._fleet is None
        finally:
            engine.close()


class TestServiceIntegration:
    def test_fleet_backed_service_is_bit_identical(self):
        units = make_units()
        expected = serial_payloads(units)
        payloads, snapshot = serve_units(
            units,
            ServiceConfig(
                max_in_flight=8,
                fleet_workers=2,
            ),
        )
        assert list(payloads) == expected
        assert snapshot.fleet, "snapshot should carry the fleet health report"
        assert snapshot.fleet["alive"] == 2
        assert snapshot.fleet["degraded"] is False
        assert "fleet" in snapshot.render()

    def test_in_process_service_reports_no_fleet(self):
        payloads, snapshot = serve_units(make_units(samples=1), ServiceConfig(max_in_flight=4))
        assert snapshot.fleet == {}
        assert "fleet" not in snapshot.render()
