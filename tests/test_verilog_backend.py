"""Tests for Verilog emission, parsing and simulation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chisel.elaborator import elaborate
from repro.chisel.parser import parse_source
from repro.firrtl.pass_manager import run_default_pipeline
from repro.verilog.emitter import emit_verilog
from repro.verilog.parser import VerilogParseError, parse_verilog
from repro.verilog.simulator import Simulation, SimulationError

HEADER = "import chisel3._\nimport chisel3.util._\n\n"


def chisel_to_verilog(body: str, io_fields: str) -> str:
    source = HEADER + (
        "class TopModule extends Module {\n"
        "  val io = IO(new Bundle {\n"
        f"{io_fields}"
        "  })\n"
        f"{body}\n"
        "}\n"
    )
    result = run_default_pipeline(elaborate(parse_source(source)))
    assert not result.diagnostics.has_errors, result.diagnostics.render()
    return emit_verilog(result.circuit)


ADDER_VERILOG = chisel_to_verilog(
    "  io.sum := io.a +& io.b",
    "    val a = Input(UInt(8.W))\n    val b = Input(UInt(8.W))\n    val sum = Output(UInt(9.W))\n",
)


class TestEmitter:
    def test_module_header_and_ports(self):
        assert "module TopModule(" in ADDER_VERILOG
        assert "input [7:0] io_a" in ADDER_VERILOG
        assert "output [8:0] io_sum" in ADDER_VERILOG
        assert ADDER_VERILOG.rstrip().endswith("endmodule")

    def test_register_emits_clocked_always_block(self):
        verilog = chisel_to_verilog(
            "  val r = RegInit(0.U(4.W))\n  r := io.d\n  io.q := r",
            "    val d = Input(UInt(4.W))\n    val q = Output(UInt(4.W))\n",
        )
        assert "always @(posedge clock)" in verilog
        assert "if (reset)" in verilog
        assert "r <=" in verilog

    def test_conditional_drive_becomes_ternary(self):
        verilog = chisel_to_verilog(
            "  val w = WireDefault(0.U(4.W))\n  when (io.sel) { w := io.d }\n  io.q := w",
            "    val d = Input(UInt(4.W))\n    val sel = Input(Bool())\n    val q = Output(UInt(4.W))\n",
        )
        assert "?" in verilog

    def test_emitted_verilog_reparses(self):
        modules = parse_verilog(ADDER_VERILOG)
        assert modules[0].name == "TopModule"
        assert len(modules[0].inputs()) == 4  # clock, reset, a, b


class TestVerilogParser:
    def test_parse_handwritten_module(self):
        source = """
        module ref(input clk, input [3:0] a, output reg [3:0] q);
          wire [3:0] next;
          assign next = a + 4'd1;
          always @(posedge clk) begin
            q <= next;
          end
        endmodule
        """
        module = parse_verilog(source)[0]
        assert module.name == "ref"
        assert module.port_named("q").kind == "reg"
        assert len(module.always_blocks) == 1

    def test_parse_case_statement(self):
        source = """
        module dec(input [1:0] sel, output reg [3:0] out);
          always @(*) begin
            case (sel)
              2'd0: out = 4'b0001;
              2'd1: out = 4'b0010;
              default: out = 4'b0000;
            endcase
          end
        endmodule
        """
        module = parse_verilog(source)[0]
        assert module.always_blocks[0].is_combinational

    def test_parse_error_for_unsupported_construct(self):
        with pytest.raises(VerilogParseError):
            parse_verilog("module m(input a); initial begin end endmodule")

    def test_parse_error_reports_line(self):
        try:
            parse_verilog("module m(input a)\n  wire b;\nendmodule")
        except VerilogParseError as exc:
            assert exc.line >= 1
        else:
            pytest.fail("expected a parse error for the missing ';'")

    def test_parameters_are_resolved_in_ranges(self):
        source = """
        module p;
          localparam W = 4;
          wire [W-1:0] data;
          assign data = 4'd3;
        endmodule
        """
        module = parse_verilog(source)[0]
        assert module.nets[0].width == 4

    def test_concatenation_and_replication(self):
        source = "module c(input [1:0] a, output [5:0] y); assign y = {a, {2{a}}}; endmodule"
        module = parse_verilog(source)[0]
        assert module.assigns


class TestSimulator:
    def test_combinational_adder(self):
        sim = Simulation(parse_verilog(ADDER_VERILOG)[0])
        sim.poke_many({"io_a": 200, "io_b": 100})
        assert sim.peek("io_sum") == 300

    def test_register_updates_on_clock_edge(self):
        verilog = chisel_to_verilog(
            "  val r = RegInit(0.U(4.W))\n  r := io.d\n  io.q := r",
            "    val d = Input(UInt(4.W))\n    val q = Output(UInt(4.W))\n",
        )
        sim = Simulation(parse_verilog(verilog)[0])
        sim.poke_many({"io_d": 9, "reset": 0})
        assert sim.peek("io_q") == 0
        sim.step("clock")
        assert sim.peek("io_q") == 9

    def test_synchronous_reset(self):
        verilog = chisel_to_verilog(
            "  val r = RegInit(3.U(4.W))\n  r := io.d\n  io.q := r",
            "    val d = Input(UInt(4.W))\n    val q = Output(UInt(4.W))\n",
        )
        sim = Simulation(parse_verilog(verilog)[0])
        sim.poke_many({"io_d": 9, "reset": 1})
        sim.step("clock")
        assert sim.peek("io_q") == 3

    def test_unknown_signal_raises(self):
        sim = Simulation(parse_verilog(ADDER_VERILOG)[0])
        with pytest.raises(SimulationError):
            sim.peek("nonexistent")

    def test_comb_always_block(self):
        source = """
        module m(input [3:0] a, input [3:0] b, output reg [3:0] y);
          always @(*) begin
            if (a > b) y = a;
            else y = b;
          end
        endmodule
        """
        sim = Simulation(parse_verilog(source)[0])
        sim.poke_many({"a": 3, "b": 9})
        assert sim.peek("y") == 9
        sim.poke_many({"a": 12, "b": 9})
        assert sim.peek("y") == 12

    def test_case_statement_simulation(self):
        source = """
        module dec(input [1:0] sel, output reg [3:0] out);
          always @(*) begin
            case (sel)
              2'd0: out = 4'b0001;
              2'd1: out = 4'b0010;
              2'd2: out = 4'b0100;
              default: out = 4'b1000;
            endcase
          end
        endmodule
        """
        sim = Simulation(parse_verilog(source)[0])
        for sel, expected in [(0, 1), (1, 2), (2, 4), (3, 8)]:
            sim.poke("sel", sel)
            assert sim.peek("out") == expected

    def test_signed_comparison(self):
        source = """
        module s(input signed [3:0] a, input signed [3:0] b, output lt);
          assign lt = a < b;
        endmodule
        """
        sim = Simulation(parse_verilog(source)[0])
        sim.poke_many({"a": 0xF, "b": 1})  # a = -1 signed
        assert sim.peek("lt") == 1

    def test_assignment_context_preserves_carry(self):
        source = """
        module w(input [7:0] a, input [7:0] b, output [15:0] p);
          assign p = a * b;
        endmodule
        """
        sim = Simulation(parse_verilog(source)[0])
        sim.poke_many({"a": 200, "b": 100})
        assert sim.peek("p") == 20000

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=1),
    )
    def test_adder_matches_python_model(self, a, b, cin):
        source = """
        module add(input [7:0] a, input [7:0] b, input cin, output [7:0] sum, output cout);
          wire [8:0] total;
          assign total = a + b + cin;
          assign sum = total[7:0];
          assign cout = total[8];
        endmodule
        """
        sim = Simulation(parse_verilog(source)[0])
        sim.poke_many({"a": a, "b": b, "cin": cin})
        total = a + b + cin
        assert sim.peek("sum") == total & 0xFF
        assert sim.peek("cout") == (total >> 8) & 1
