"""Vectorized simulation backend: differential suite and lockstep batching.

The vector backend compiles NumPy structure-of-arrays kernels — one lane per
execution — and must produce bit-identical :class:`SimulationReport`s to the
scalar trace and step-wise oracles: same mismatch ordering, same
``max_mismatches`` capping, same unchecked-point flush semantics, for every
golden design and injected-fault mutant.  ``run_testbenches`` layers lockstep
candidate batching on top and must equal per-job ``run_testbench`` exactly,
in job order, at any ``REPRO_SIM_MAX_LANES`` chunking.
"""

from __future__ import annotations

import pytest

from repro.caching import cache_stats
from repro.problems.registry import build_default_registry
from repro.sim.testbench import (
    FunctionalPoint,
    Testbench,
    run_testbench,
    run_testbenches,
)
from repro.toolchain.compiler import ChiselCompiler
from repro.verilog import compile_vec
from repro.verilog.compile_sim import clear_kernel_cache, kernel_cache_stats
from repro.verilog.compile_vec import get_vec_kernel
from repro.verilog.parser import parse_verilog
from repro.verilog.simulator import SimulationError

REGISTRY = build_default_registry()
COMPILER = ChiselCompiler(top="TopModule")


def _golden_module(problem):
    result = COMPILER.compile(problem.golden_chisel)
    assert result.success, problem.problem_id
    return parse_verilog(result.verilog)[-1]


class TestVectorDifferentialGoldens:
    def test_every_golden_design_matches_stepwise_and_trace(self):
        """Vector, trace and step-wise reports are equal on all golden designs."""
        for problem in REGISTRY:
            module = _golden_module(problem)
            testbench = problem.build_testbench()
            stepwise = run_testbench(module, module, testbench, backend="stepwise")
            trace = run_testbench(module, module, testbench, backend="trace")
            vector = run_testbench(module, module, testbench, backend="vector")
            assert stepwise == trace == vector, problem.problem_id
            assert vector.passed, problem.problem_id

    def test_every_golden_design_is_vector_eligible(self):
        """No golden pairing should need the scalar fallback."""
        from repro.sim.testbench import _trace_plan

        fallbacks = []
        for problem in REGISTRY:
            module = _golden_module(problem)
            testbench = problem.build_testbench()
            observed = tuple(port.name for port in module.outputs())
            schedule, _ = _trace_plan(testbench, observed)
            if get_vec_kernel(module, schedule) is None:
                fallbacks.append(problem.problem_id)
        assert fallbacks == []

    def test_interpreter_oracle_agrees_on_stride_subset(self, monkeypatch):
        """Vector must also match the pure-interpreter step-wise oracle."""
        problems = list(REGISTRY)[::9]
        monkeypatch.setenv("REPRO_SIM_BACKEND", "interpreter")
        for problem in problems:
            module = _golden_module(problem)
            testbench = problem.build_testbench()
            interp = run_testbench(module, module, testbench, backend="stepwise")
            vector = run_testbench(module, module, testbench, backend="vector")
            assert interp == vector, problem.problem_id


class TestVectorDifferentialMutants:
    def test_behavior_breaking_mutants_match_stepwise(self):
        """Mutant-vs-golden reports agree: real mismatches, capping, ordering."""
        compared = failing = 0
        for problem in REGISTRY:
            golden = _golden_module(problem)
            testbench = problem.build_testbench()
            for fault in problem.functional_faults:
                if not fault.applies_to(problem.golden_chisel):
                    continue
                result = COMPILER.compile(fault.apply(problem.golden_chisel))
                if not result.success:
                    continue
                mutant = parse_verilog(result.verilog)[-1]
                stepwise = run_testbench(mutant, golden, testbench, backend="stepwise")
                vector = run_testbench(mutant, golden, testbench, backend="vector")
                assert stepwise == vector, (problem.problem_id, fault.fault_id)
                compared += 1
                failing += 0 if stepwise.passed else 1
        assert compared >= 200
        assert failing >= 150  # the suite must actually exercise mismatch paths


PASSTHROUGH = """
module m(input en, input [3:0] d, output [3:0] q);
  assign q = d;
endmodule
"""

WIDE = """
module m(input [70:0] d, output [70:0] q);
  assign q = d;
endmodule
"""

SEQ = """
module m(input clock, input [3:0] d, output reg [3:0] q);
  always @(posedge clock) q <= d;
endmodule
"""


def _tb(values, **kwargs):
    points = [FunctionalPoint(inputs={"en": 0, "d": v}) for v in values]
    return Testbench(points=points, observed_outputs=["q"], reset_cycles=0, **kwargs)


class TestVectorLaneEdgeCases:
    def test_single_point(self):
        module = parse_verilog(PASSTHROUGH)[0]
        testbench = _tb([9])
        stepwise = run_testbench(module, module, testbench, backend="stepwise")
        vector = run_testbench(module, module, testbench, backend="vector")
        assert stepwise == vector and vector.checked_points == 1

    def test_empty_testbench(self):
        module = parse_verilog(PASSTHROUGH)[0]
        testbench = Testbench(points=[], observed_outputs=["q"], reset_cycles=0)
        stepwise = run_testbench(module, module, testbench, backend="stepwise")
        vector = run_testbench(module, module, testbench, backend="vector")
        assert stepwise == vector and vector.total_points == 0

    def test_unchecked_points_and_input_carryover(self):
        """Unchecked stimuli settle; later points inherit undriven inputs."""
        module = parse_verilog(PASSTHROUGH)[0]
        testbench = Testbench(
            points=[
                FunctionalPoint(inputs={"en": 0, "d": 7}),
                FunctionalPoint(inputs={}, check=False),
                FunctionalPoint(inputs={"en": 1}),  # d carries over as 7
                FunctionalPoint(inputs={"d": 3}),
            ],
            observed_outputs=["q"],
            reset_cycles=0,
        )
        stepwise = run_testbench(module, module, testbench, backend="stepwise")
        vector = run_testbench(module, module, testbench, backend="vector")
        assert stepwise == vector
        assert vector.checked_points == 3

    def test_mismatch_cap_and_ordering(self):
        dut = parse_verilog("module m(input [3:0] d, output [3:0] q);\n  assign q = d + 1;\nendmodule\n")[0]
        ref = parse_verilog("module m(input [3:0] d, output [3:0] q);\n  assign q = d;\nendmodule\n")[0]
        testbench = Testbench(
            points=[FunctionalPoint(inputs={"d": value}) for value in range(16)],
            observed_outputs=["q"],
            reset_cycles=0,
            max_mismatches=5,
        )
        stepwise = run_testbench(dut, ref, testbench, backend="stepwise")
        vector = run_testbench(dut, ref, testbench, backend="vector")
        assert stepwise == vector
        assert vector.failed_points == 16 and len(vector.mismatches) == 5
        assert [m.point_index for m in vector.mismatches] == list(range(5))

    def test_ragged_lane_chunking(self, monkeypatch):
        """A lane budget smaller than the batch splits into ragged chunks."""
        module = parse_verilog(SEQ)[0]
        benches = [
            Testbench(
                points=[
                    FunctionalPoint(inputs={"d": (seed + i) % 16}, clock_cycles=1)
                    for i in range(5)
                ],
                observed_outputs=["q"],
                reset_cycles=1,
            )
            for seed in range(9)
        ]
        jobs = [(module, module, tb) for tb in benches]
        expected = [run_testbench(*job) for job in jobs]
        monkeypatch.setenv("REPRO_SIM_MAX_LANES", "2")
        assert run_testbenches(jobs, backend="vector") == expected

    def test_invalid_max_lanes_raises(self, monkeypatch):
        module = parse_verilog(SEQ)[0]
        testbench = Testbench(
            points=[FunctionalPoint(inputs={"d": 1}, clock_cycles=1)],
            observed_outputs=["q"],
            reset_cycles=1,
        )
        monkeypatch.setenv("REPRO_SIM_MAX_LANES", "many")
        with pytest.raises(SimulationError, match="REPRO_SIM_MAX_LANES"):
            run_testbenches([(module, module, testbench)], backend="vector")

    def test_huge_clock_cycle_counts_fall_back(self):
        """Unrollable-but-enormous schedules fall back under the argument."""
        module = parse_verilog(SEQ)[0]
        testbench = Testbench(
            points=[FunctionalPoint(inputs={"d": 9}, clock_cycles=70_000)],
            observed_outputs=["q"],
            reset_cycles=0,
        )
        stepwise = run_testbench(module, module, testbench, backend="stepwise")
        vector = run_testbench(module, module, testbench, backend="vector")
        assert stepwise == vector
        assert vector.passed


class TestVectorStrictness:
    def test_env_forced_vector_runs_eligible_pairings(self, monkeypatch):
        module = parse_verilog(PASSTHROUGH)[0]
        testbench = _tb([3, 5])
        monkeypatch.setenv("REPRO_TB_BACKEND", "vector")
        report = run_testbench(module, module, testbench)
        assert report == run_testbench(module, module, testbench, backend="stepwise")

    def test_env_forced_vector_raises_for_wide_signals(self, monkeypatch):
        """>64-bit signals exceed the uint64 lanes: strict vector must raise."""
        module = parse_verilog(WIDE)[0]
        testbench = Testbench(
            points=[FunctionalPoint(inputs={"d": (1 << 70) | 5})],
            observed_outputs=["q"],
            reset_cycles=0,
        )
        monkeypatch.setenv("REPRO_TB_BACKEND", "vector")
        with pytest.raises(SimulationError, match="not vector-eligible"):
            run_testbench(module, module, testbench)
        # The explicit argument keeps the documented silent fallback.
        report = run_testbench(module, module, testbench, backend="vector")
        assert report == run_testbench(module, module, testbench, backend="stepwise")

    def test_env_forced_vector_raises_for_behavioural_reference(self, monkeypatch):
        from repro.sim.reference import BehavioralDevice

        module = parse_verilog(PASSTHROUGH)[0]
        reference = BehavioralDevice(
            {"q": 4}, lambda inputs, state: {"q": inputs.get("d", 0)}
        )
        testbench = _tb([9])
        monkeypatch.setenv("REPRO_TB_BACKEND", "vector")
        with pytest.raises(SimulationError, match="behavioural references"):
            run_testbench(module, reference, testbench)

    def test_env_forced_vector_raises_for_interpreter_only_module(self, monkeypatch):
        loop = parse_verilog(
            "module m(input a, output x, y);\n"
            "  assign x = y | a;\n  assign y = x & a;\nendmodule\n"
        )[0]
        testbench = Testbench(points=[FunctionalPoint(inputs={"a": 0})], reset_cycles=0)
        monkeypatch.setenv("REPRO_TB_BACKEND", "vector")
        with pytest.raises(SimulationError, match="not vector-eligible"):
            run_testbench(loop, loop, testbench)
        assert run_testbench(loop, loop, testbench, backend="vector").passed

    def test_strictness_propagates_through_run_testbenches(self, monkeypatch):
        """Batched jobs under REPRO_TB_BACKEND=vector keep strict semantics."""
        from repro.sim.reference import BehavioralDevice

        module = parse_verilog(PASSTHROUGH)[0]
        reference = BehavioralDevice(
            {"q": 4}, lambda inputs, state: {"q": inputs.get("d", 0)}
        )
        monkeypatch.setenv("REPRO_TB_BACKEND", "vector")
        with pytest.raises(SimulationError, match="behavioural references"):
            run_testbenches([(module, reference, _tb([9]))])

    @pytest.mark.cache_mutating
    def test_numpy_absent_falls_back(self, monkeypatch):
        """Without NumPy the vector path degrades to trace, strict env raises."""
        module = parse_verilog(PASSTHROUGH)[0]
        testbench = _tb([4, 2])
        expected = run_testbench(module, module, testbench, backend="stepwise")
        monkeypatch.setattr(compile_vec, "np", None)
        monkeypatch.setattr(compile_vec, "HAVE_NUMPY", False)
        clear_kernel_cache()
        assert run_testbench(module, module, testbench, backend="vector") == expected
        assert run_testbench(module, module, testbench) == expected
        monkeypatch.setenv("REPRO_TB_BACKEND", "vector")
        with pytest.raises(SimulationError, match="not vector-eligible"):
            run_testbench(module, module, testbench)
        monkeypatch.undo()
        clear_kernel_cache()


class TestRunTestbenches:
    def test_empty_batch(self):
        assert run_testbenches([]) == []

    def test_mixed_eligibility_preserves_job_order(self):
        """Vector-eligible, wide, behavioural and loop jobs interleave freely."""
        from repro.sim.reference import BehavioralDevice

        narrow = parse_verilog(PASSTHROUGH)[0]
        wide = parse_verilog(WIDE)[0]
        loop = parse_verilog(
            "module m(input a, output x, y);\n"
            "  assign x = y | a;\n  assign y = x & a;\nendmodule\n"
        )[0]
        behavioural = BehavioralDevice(
            {"q": 4}, lambda inputs, state: {"q": inputs.get("d", 0)}
        )
        wide_tb = Testbench(
            points=[FunctionalPoint(inputs={"d": (1 << 69) + i}) for i in range(3)],
            observed_outputs=["q"],
            reset_cycles=0,
        )
        loop_tb = Testbench(points=[FunctionalPoint(inputs={"a": 0})], reset_cycles=0)
        jobs = [
            (narrow, narrow, _tb([1, 2, 3])),
            (wide, wide, wide_tb),
            (narrow, behavioural, _tb([7])),
            (loop, loop, loop_tb),
            (narrow, narrow, _tb([5, 6])),
        ]
        expected = [run_testbench(*job) for job in jobs]
        assert run_testbenches(jobs) == expected
        assert run_testbenches(jobs, backend="vector") == expected

    def test_sixteen_lockstep_candidates(self):
        """16 sequential candidates over one kernel equal per-job runs."""
        module = parse_verilog(SEQ)[0]
        faulty = parse_verilog(SEQ.replace("q <= d", "q <= d + 1"))[0]
        jobs = []
        for index in range(16):
            testbench = Testbench(
                points=[
                    FunctionalPoint(inputs={"d": (index * 3 + i) % 16}, clock_cycles=1)
                    for i in range(6)
                ],
                observed_outputs=["q"],
                reset_cycles=2,
            )
            jobs.append((module if index % 4 else faulty, module, testbench))
        expected = [run_testbench(*job) for job in jobs]
        batched = run_testbenches(jobs)
        assert batched == expected
        assert sum(0 if report.passed else 1 for report in batched) == 4

    def test_duplicate_rows_collapse_to_shared_lanes(self):
        """Identical (module, stimulus) jobs dedupe onto one lane set."""
        module = parse_verilog(SEQ)[0]
        testbench = Testbench(
            points=[FunctionalPoint(inputs={"d": i}, clock_cycles=1) for i in range(4)],
            observed_outputs=["q"],
            reset_cycles=1,
        )
        jobs = [(module, module, testbench)] * 8
        expected = run_testbench(module, module, testbench)
        assert run_testbenches(jobs, backend="vector") == [expected] * 8

    def test_unknown_backend_raises(self):
        with pytest.raises(SimulationError, match="unknown testbench backend"):
            run_testbenches([], backend="warp")


class TestVectorCaches:
    @pytest.mark.cache_mutating
    def test_vector_kernels_are_cached_per_module_and_shape(self):
        clear_kernel_cache()
        module = parse_verilog(PASSTHROUGH)[0]
        testbench = _tb([0, 1, 2, 3])
        first = run_testbench(module, module, testbench, backend="vector")
        second = run_testbench(module, module, testbench, backend="vector")
        assert first == second
        stats = kernel_cache_stats()
        # dut and reference share the module: one compile, three cache hits.
        assert stats["vec_misses"] == 1 and stats["vec_hits"] == 3
        clear_kernel_cache()
        stats = kernel_cache_stats()
        assert stats["vec_size"] == 0 and stats["vec_kernel_size"] == 0

    def test_cache_registry_and_snapshot_cover_vector_caches(self):
        module = parse_verilog(PASSTHROUGH)[0]
        run_testbench(module, module, _tb([1]), backend="vector")
        stats = cache_stats()
        assert "sim_vec" in stats and "sim_vec_kernel" in stats
        for key in ("vec_hits", "vec_misses", "vec_size", "vec_kernel_size"):
            assert key in kernel_cache_stats(), key

        from repro.service.telemetry import Telemetry

        snapshot = Telemetry().snapshot()
        assert "sim_vec" in snapshot.caches and "sim_vec_kernel" in snapshot.caches


class TestLockstepExecutor:
    def test_lockstep_executor_matches_serial(self):
        from repro.experiments.executors import LockstepExecutor, SerialExecutor
        from repro.experiments.work import (
            STRATEGY_RECHISEL,
            STRATEGY_ZERO_SHOT,
            WorkerContext,
            WorkUnit,
        )

        knobs = (
            ("enable_escape", True),
            ("feedback_detail", "full"),
            ("use_knowledge", True),
        )
        units = []
        for sample in range(3):
            for problem_id in ("alu_w4", "counter_w4"):
                units.append(
                    WorkUnit(STRATEGY_RECHISEL, "GPT-4o mini", problem_id, 0, sample, 0, 6, knobs)
                )
                units.append(
                    WorkUnit(
                        STRATEGY_ZERO_SHOT,
                        "GPT-4o mini",
                        problem_id,
                        0,
                        sample,
                        0,
                        1,
                        (("language", "chisel"),),
                    )
                )

        def collect(executor):
            ordered = [None] * len(units)
            for index, payload in executor.run_stream(units):
                ordered[index] = payload
            return ordered

        serial = collect(SerialExecutor(WorkerContext()))
        lockstep = collect(LockstepExecutor(WorkerContext()))
        assert serial == lockstep

    def test_engine_selects_lockstep_executor(self):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.engine import SweepEngine
        from repro.experiments.executors import LockstepExecutor, SerialExecutor

        engine = SweepEngine(ExperimentConfig(jobs=1, lockstep=True))
        assert isinstance(engine._select_executor(pending_count=10), LockstepExecutor)
        assert isinstance(engine._select_executor(pending_count=1), SerialExecutor)

    def test_lockstep_env_opt_in(self, monkeypatch):
        from repro.experiments.config import ExperimentConfig

        monkeypatch.setenv("REPRO_LOCKSTEP", "1")
        assert ExperimentConfig.from_environment().lockstep


class TestServiceSimBatching:
    def test_service_batches_simulations_bit_identically(self):
        from repro.experiments.executors import SerialExecutor
        from repro.experiments.work import STRATEGY_RECHISEL, WorkerContext, WorkUnit
        from repro.service.config import ServiceConfig
        from repro.service.service import serve_units

        knobs = (
            ("enable_escape", True),
            ("feedback_detail", "full"),
            ("use_knowledge", True),
        )
        units = [
            WorkUnit(STRATEGY_RECHISEL, "GPT-4o mini", problem_id, 0, sample, 0, 6, knobs)
            for sample in range(3)
            for problem_id in ("alu_w4", "counter_w4")
        ]
        serial = [None] * len(units)
        for index, payload in SerialExecutor(WorkerContext()).run_stream(units):
            serial[index] = payload

        payloads, snapshot = serve_units(
            units,
            ServiceConfig(max_in_flight=8, sim_batch_window=0.005, sim_max_batch=8),
        )
        assert payloads == serial
        assert snapshot.sim_batches >= 1
        assert snapshot.sim_batched_requests >= snapshot.sim_batches
        assert snapshot.max_sim_batch >= 2
        assert "sim batches" in snapshot.render()

    def test_sim_batching_disabled_below_two(self):
        from repro.experiments.work import STRATEGY_RECHISEL, WorkUnit
        from repro.service.config import ServiceConfig
        from repro.service.service import serve_units

        knobs = (
            ("enable_escape", True),
            ("feedback_detail", "full"),
            ("use_knowledge", True),
        )
        units = [WorkUnit(STRATEGY_RECHISEL, "GPT-4o mini", "alu_w4", 0, 0, 0, 4, knobs)]
        _payloads, snapshot = serve_units(units, ServiceConfig(sim_max_batch=1))
        assert snapshot.sim_batches == 0

    def test_sim_batch_env_knobs(self, monkeypatch):
        from repro.service.config import ServiceConfig

        monkeypatch.setenv("REPRO_SERVICE_SIM_BATCH_WINDOW", "0.25")
        monkeypatch.setenv("REPRO_SERVICE_SIM_MAX_BATCH", "32")
        config = ServiceConfig.from_environment()
        assert config.sim_batch_window == 0.25
        assert config.sim_max_batch == 32
