"""Edge-case tests for the syntax-fault injectors in ``problems/mutations.py``.

The synthetic LLM replays injectors during retries and service re-drives, so
two properties matter beyond "the fault compiles into the right error class":
injector application must be idempotent (re-invoking the same injector on the
same source always produces the identical mutant — no hidden state, no
randomness), and every registered golden design must admit at least one
applicable mutation (a problem no fault applies to would silently skew the
calibrated error mix).
"""

import pytest

from repro.problems.mutations import (
    SYNTAX_FAULTS,
    SYNTAX_FAULTS_BY_ID,
    applicable_syntax_faults,
)
from repro.problems.registry import build_default_registry
from repro.toolchain.compiler import ChiselCompiler

REGISTRY = build_default_registry()
PROBLEMS = list(REGISTRY)
COMPILER = ChiselCompiler(top="TopModule")

FAMILIES = sorted({fault.error_class for fault in SYNTAX_FAULTS})


def faults_in_family(family):
    return [fault for fault in SYNTAX_FAULTS if fault.error_class == family]


class TestRegistryCoverage:
    def test_every_golden_design_admits_a_mutation(self):
        uncovered = [
            problem.problem_id
            for problem in PROBLEMS
            if not applicable_syntax_faults(problem.golden_chisel, problem)
        ]
        assert uncovered == [], f"no applicable syntax fault for: {uncovered}"

    def test_registry_lookup_matches_fault_list(self):
        assert set(SYNTAX_FAULTS_BY_ID) == {fault.fault_id for fault in SYNTAX_FAULTS}
        assert len(SYNTAX_FAULTS_BY_ID) == len(SYNTAX_FAULTS)


class TestIdempotence:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_application_is_idempotent_per_family(self, family):
        """Re-invoking an injector on the same source yields the same mutant."""
        exercised = 0
        for fault in faults_in_family(family):
            for problem in PROBLEMS:
                source = problem.golden_chisel
                if not fault.applies(source, problem):
                    continue
                first = fault.apply(source, problem)
                second = fault.apply(source, problem)
                assert first == second, f"{fault.fault_id} is not idempotent on {problem.problem_id}"
                exercised += 1
        assert exercised > 0, f"family {family} never applied to any golden design"

    @pytest.mark.parametrize("family", FAMILIES)
    def test_application_changes_the_source(self, family):
        for fault in faults_in_family(family):
            for problem in PROBLEMS:
                source = problem.golden_chisel
                if not fault.applies(source, problem):
                    continue
                assert fault.apply(source, problem) != source, (
                    f"{fault.fault_id} was a no-op on {problem.problem_id}"
                )

    def test_applies_is_pure(self):
        """`applies` must not mutate its inputs or depend on call order."""
        problem = PROBLEMS[0]
        source = problem.golden_chisel
        first = [fault.fault_id for fault in applicable_syntax_faults(source, problem)]
        second = [fault.fault_id for fault in applicable_syntax_faults(source, problem)]
        assert first == second
        assert source == problem.golden_chisel


class TestFaultsBreakCompilation:
    @pytest.mark.parametrize("fault", SYNTAX_FAULTS, ids=lambda fault: fault.fault_id)
    def test_each_fault_breaks_some_golden_design(self, fault):
        """Every injector produces a compile failure on at least one design."""
        tried = 0
        for problem in PROBLEMS:
            source = problem.golden_chisel
            if not fault.applies(source, problem):
                continue
            mutated = fault.apply(source, problem)
            if not COMPILER.compile(mutated).success:
                return
            tried += 1
            if tried >= 5:
                break
        pytest.fail(f"{fault.fault_id} never broke compilation on sampled designs")
