"""Tests for the Chisel lexer and parser."""

import pytest

from repro.chisel import ast
from repro.chisel.diagnostics import ChiselError
from repro.chisel.lexer import TokenKind, tokenize
from repro.chisel.parser import parse_source

SIMPLE_MODULE = """
import chisel3._

class TopModule extends Module {
  val io = IO(new Bundle {
    val in = Input(UInt(8.W))
    val out = Output(UInt(8.W))
  })
  io.out := io.in + 1.U
}
"""


class TestLexer:
    def test_operators_are_maximal_munch(self):
        tokens = tokenize("a := b === c +& d")
        texts = [t.text for t in tokens if t.kind is TokenKind.OPERATOR]
        assert texts == [":=", "===", "+&"]

    def test_string_literals(self):
        tokens = tokenize('"b001".U')
        assert tokens[0].kind is TokenKind.STRING
        assert tokens[0].text == "b001"

    def test_line_comments_are_skipped(self):
        tokens = tokenize("val x = 1 // comment here\nval y = 2")
        assert all("comment" not in t.text for t in tokens)

    def test_block_comments_are_skipped(self):
        tokens = tokenize("val x = /* hidden */ 1")
        texts = [t.text for t in tokens]
        assert "hidden" not in " ".join(texts)

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(ChiselError):
            tokenize("val x = /* oops")

    def test_keywords_vs_identifiers(self):
        tokens = tokenize("class val when otherwise")
        kinds = [t.kind for t in tokens[:4]]
        assert kinds[0] is TokenKind.KEYWORD
        assert kinds[1] is TokenKind.KEYWORD
        assert kinds[2] is TokenKind.IDENT  # when is a Chisel function, not a Scala keyword
        assert kinds[3] is TokenKind.IDENT

    def test_numbers_with_underscores_and_hex(self):
        tokens = tokenize("1_000 0xFF")
        assert tokens[0].text == "1_000"
        assert tokens[1].text == "0xFF"

    def test_compound_assignment_operator(self):
        tokens = tokenize("idx += 1")
        assert any(t.text == "+=" for t in tokens)


class TestParserStructure:
    def test_parses_class_and_imports(self):
        program = parse_source(SIMPLE_MODULE)
        assert len(program.imports) == 1
        assert len(program.classes) == 1
        assert program.classes[0].name == "TopModule"
        assert program.classes[0].is_module

    def test_module_classes_helper(self):
        program = parse_source(SIMPLE_MODULE)
        assert [c.name for c in program.module_classes()] == ["TopModule"]

    def test_class_parameters_with_defaults(self):
        source = "class Foo(val n: Int = 4) extends Module { }"
        program = parse_source(source)
        assert program.classes[0].params[0].name == "n"
        assert program.classes[0].params[0].type_annotation == "Int"

    def test_bundle_literal_members(self):
        program = parse_source(SIMPLE_MODULE)
        io_def = program.classes[0].body[0]
        assert isinstance(io_def, ast.ValDef)
        bundle = io_def.value
        assert isinstance(bundle, ast.MethodCall)  # IO(...)
        assert isinstance(bundle.args[0], ast.BundleLiteral)
        assert [m.name for m in bundle.args[0].members] == ["in", "out"]

    def test_connect_statement(self):
        program = parse_source(SIMPLE_MODULE)
        connect = program.classes[0].body[-1]
        assert isinstance(connect, ast.Connect)

    def test_unbalanced_brace_raises(self):
        with pytest.raises(ChiselError):
            parse_source("class TopModule extends Module {\n  val x = 1\n")

    def test_def_is_rejected_with_clear_message(self):
        source = "class TopModule extends Module { def helper(x: Int) = x }"
        with pytest.raises(ChiselError) as excinfo:
            parse_source(source)
        assert "def" in str(excinfo.value)


class TestParserStatements:
    def _body(self, body_source: str):
        program = parse_source(
            "class TopModule extends Module {\n" + body_source + "\n}"
        )
        return program.classes[0].body

    def test_when_elsewhen_otherwise(self):
        body = self._body(
            "when (a) { x := 1.U } .elsewhen (b) { x := 2.U } .otherwise { x := 3.U }"
        )
        when = body[0]
        assert isinstance(when, ast.WhenStmt)
        assert len(when.branches) == 3
        assert when.branches[2].condition is None

    def test_when_otherwise_on_next_line(self):
        body = self._body("when (a) {\n  x := 1.U\n}\n.otherwise {\n  x := 0.U\n}")
        assert isinstance(body[0], ast.WhenStmt)
        assert len(body[0].branches) == 2

    def test_switch_with_is_clauses(self):
        body = self._body('switch (sel) {\n  is (0.U) { x := a }\n  is (1.U) { x := b }\n}')
        switch = body[0]
        assert isinstance(switch, ast.SwitchStmt)
        assert [case.keyword for case in switch.cases] == ["is", "is"]

    def test_switch_accepts_unknown_clause_for_later_diagnosis(self):
        body = self._body("switch (sel) {\n  is (0.U) { x := a }\n  default { x := b }\n}")
        switch = body[0]
        assert switch.cases[1].keyword == "default"

    def test_for_loop_with_range(self):
        body = self._body("for (i <- 0 until 5) { x := i.U }")
        loop = body[0]
        assert isinstance(loop, ast.ForStmt)
        assert loop.variable == "i"
        assert isinstance(loop.iterable, ast.BinaryOp)
        assert loop.iterable.op == "until"

    def test_scala_if_else(self):
        body = self._body("if (n > 2) { val x = 1 } else { val x = 2 }")
        assert isinstance(body[0], ast.IfStmt)
        assert len(body[0].else_body) == 1

    def test_compound_assignment_desugars(self):
        body = self._body("var idx = 0\nidx += 1")
        assign = body[1]
        assert isinstance(assign, ast.Assign)
        assert isinstance(assign.value, ast.BinaryOp)
        assert assign.value.op == "+"

    def test_with_clock_statement(self):
        body = self._body("withClock (clk) { val r = RegNext(x) }")
        assert isinstance(body[0], ast.WithClockStmt)

    def test_with_clock_expression(self):
        body = self._body("val out = withClock(clk) { RegNext(x) }")
        val = body[0]
        assert isinstance(val, ast.ValDef)
        assert isinstance(val.value, ast.WithClockExpr)


class TestParserExpressions:
    def _expr(self, text: str) -> ast.Expr:
        program = parse_source(f"class TopModule extends Module {{ val x = {text} }}")
        val = program.classes[0].body[0]
        assert isinstance(val, ast.ValDef)
        return val.value

    def test_operator_precedence_add_before_compare(self):
        expr = self._expr("a + b === c")
        assert isinstance(expr, ast.BinaryOp)
        assert expr.op == "==="
        assert isinstance(expr.left, ast.BinaryOp)
        assert expr.left.op == "+"

    def test_logical_precedence(self):
        expr = self._expr("a && b || c")
        assert expr.op == "||"

    def test_unary_operators(self):
        expr = self._expr("~a & !b")
        assert expr.op == "&"
        assert isinstance(expr.left, ast.UnaryOp)
        assert isinstance(expr.right, ast.UnaryOp)

    def test_method_chain(self):
        expr = self._expr("io.in.asUInt")
        assert isinstance(expr, ast.FieldSelect)
        assert expr.name == "asUInt"

    def test_call_with_width(self):
        expr = self._expr("3.U(8.W)")
        assert isinstance(expr, ast.MethodCall)
        assert expr.name == "U"

    def test_underscore_lambda_becomes_lambda(self):
        expr = self._expr("xs.reduce(_ +& _)")
        assert isinstance(expr, ast.MethodCall)
        lamb = expr.args[0]
        assert isinstance(lamb, ast.Lambda)
        assert len(lamb.params) == 2

    def test_explicit_lambda(self):
        expr = self._expr("xs.map(x => x + 1)")
        lamb = expr.args[0]
        assert isinstance(lamb, ast.Lambda)
        assert lamb.params == ["x"]

    def test_curried_call(self):
        expr = self._expr("Seq.fill(5)(0.U)")
        assert isinstance(expr, ast.MethodCall)
        assert expr.name == "fill"
        assert len(expr.extra_arg_lists) == 1

    def test_type_argument_call(self):
        expr = self._expr("x.asInstanceOf[SInt]")
        assert isinstance(expr, ast.MethodCall)
        assert expr.type_args == ["SInt"]

    def test_if_expression(self):
        expr = self._expr("if (n > 2) 8 else 4")
        assert isinstance(expr, ast.IfExpr)

    def test_string_literal_uint(self):
        expr = self._expr('"b1010".U')
        assert isinstance(expr, ast.FieldSelect)
        assert isinstance(expr.target, ast.StringLit)

    def test_indexing_expression(self):
        expr = self._expr("data(3, 0)")
        assert isinstance(expr, ast.MethodCall) or isinstance(expr, ast.Apply)
