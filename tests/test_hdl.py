"""Tests for the HDL value substrate (bits and literal parsing)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hdl.bits import Bits, mask, min_width_for, to_signed, to_unsigned
from repro.hdl.literals import LiteralError, parse_literal


class TestMaskAndWidths:
    def test_mask_values(self):
        assert mask(0) == 0
        assert mask(1) == 1
        assert mask(8) == 255

    def test_mask_rejects_negative(self):
        with pytest.raises(ValueError):
            mask(-1)

    @pytest.mark.parametrize(
        "value,width", [(0, 1), (1, 1), (2, 2), (255, 8), (256, 9)]
    )
    def test_min_width_unsigned(self, value, width):
        assert min_width_for(value) == width

    @pytest.mark.parametrize("value,width", [(0, 1), (1, 2), (-1, 1), (-2, 2), (127, 8), (-128, 8)])
    def test_min_width_signed(self, value, width):
        assert min_width_for(value, signed=True) == width

    def test_min_width_rejects_negative_unsigned(self):
        with pytest.raises(ValueError):
            min_width_for(-3)

    def test_to_signed_and_unsigned(self):
        assert to_unsigned(-1, 4) == 15
        assert to_signed(15, 4) == -1
        assert to_signed(7, 4) == 7


class TestBitsArithmetic:
    def test_wrapping_add_keeps_max_width(self):
        result = Bits(200, 8).add(Bits(100, 8))
        assert result.width == 8
        assert result.value == (300 & 0xFF)

    def test_expanding_add_keeps_carry(self):
        result = Bits(200, 8).add_expand(Bits(100, 8))
        assert result.width == 9
        assert result.value == 300

    def test_sub_wraps_two_complement(self):
        result = Bits(3, 4).sub(Bits(5, 4))
        assert result.value == (3 - 5) & 0xF

    def test_mul_width_is_sum(self):
        result = Bits(15, 4).mul(Bits(15, 4))
        assert result.width == 8
        assert result.value == 225

    def test_div_by_zero_yields_zero(self):
        assert Bits(9, 4).div(Bits(0, 4)).value == 0

    def test_signed_division_truncates_toward_zero(self):
        a = Bits(-7 & 0xF, 4, signed=True)
        b = Bits(2, 4, signed=True)
        assert a.div(b).as_int == -3

    def test_rem_sign_follows_dividend(self):
        a = Bits(-7 & 0xF, 4, signed=True)
        b = Bits(2, 4, signed=True)
        assert a.rem(b).as_int == -1

    def test_neg(self):
        assert Bits(3, 4).neg().as_int == -3


class TestBitsBitwise:
    def test_and_or_xor(self):
        a, b = Bits(0b1100, 4), Bits(0b1010, 4)
        assert a.bit_and(b).value == 0b1000
        assert a.bit_or(b).value == 0b1110
        assert a.bit_xor(b).value == 0b0110

    def test_not_truncates_to_width(self):
        assert Bits(0b1010, 4).bit_not().value == 0b0101

    def test_reductions(self):
        assert Bits(0b1111, 4).and_reduce().value == 1
        assert Bits(0b0111, 4).and_reduce().value == 0
        assert Bits(0, 4).or_reduce().value == 0
        assert Bits(0b0100, 4).or_reduce().value == 1
        assert Bits(0b0111, 4).xor_reduce().value == 1
        assert Bits(0b0011, 4).xor_reduce().value == 0

    def test_popcount(self):
        assert Bits(0b1011, 4).popcount().value == 3

    def test_reverse(self):
        assert Bits(0b0011, 4).reverse().value == 0b1100


class TestBitsStructure:
    def test_bit_and_extract(self):
        value = Bits(0b101101, 6)
        assert value.bit(0).value == 1
        assert value.bit(1).value == 0
        assert value.extract(3, 1).value == 0b110

    def test_bit_out_of_range(self):
        with pytest.raises(IndexError):
            Bits(0, 4).bit(4)

    def test_extract_out_of_range(self):
        with pytest.raises(IndexError):
            Bits(0, 4).extract(4, 0)

    def test_cat_orders_msb_first(self):
        assert Bits(0b10, 2).cat(Bits(0b01, 2)).value == 0b1001

    def test_replicate(self):
        assert Bits(0b1, 1).replicate(4).value == 0b1111
        assert Bits(0b1, 1).replicate(0).width == 0

    def test_resize_sign_extends(self):
        value = Bits(0b1000, 4, signed=True)
        assert value.resize(8).as_int == -8

    def test_comparisons_signed(self):
        a = Bits(0xF, 4, signed=True)  # -1
        b = Bits(1, 4, signed=True)
        assert a.lt(b).value == 1
        assert b.gt(a).value == 1
        assert a.eq(Bits(0xF, 4, signed=True)).value == 1


class TestBitsProperties:
    @given(st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=255))
    def test_add_matches_python_mod_256(self, a, b):
        assert Bits(a, 8).add(Bits(b, 8)).value == (a + b) % 256

    @given(st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=255))
    def test_expanding_add_exact(self, a, b):
        assert Bits(a, 8).add_expand(Bits(b, 8)).value == a + b

    @given(st.integers(min_value=0, max_value=2**16 - 1))
    def test_reverse_is_involution(self, value):
        assert Bits(value, 16).reverse().reverse().value == value

    @given(st.integers(min_value=0, max_value=2**12 - 1))
    def test_cat_of_extracts_recomposes(self, value):
        bits = Bits(value, 12)
        high = bits.extract(11, 6)
        low = bits.extract(5, 0)
        assert high.cat(low).value == value

    @given(st.integers(min_value=1, max_value=32), st.integers(min_value=0))
    def test_roundtrip_signed_unsigned(self, width, raw):
        raw &= (1 << width) - 1
        assert to_unsigned(to_signed(raw, width), width) == raw


class TestLiterals:
    @pytest.mark.parametrize(
        "text,value,width",
        [
            ("b001", 1, 3),
            ("b1010", 10, 4),
            ("hff", 255, 8),
            ("hFF", 255, 8),
            ("d42", 42, 6),
            ("o17", 15, 6),
            ("42", 42, 6),
            ("0", 0, 1),
        ],
    )
    def test_chisel_style_literals(self, text, value, width):
        bits = parse_literal(text)
        assert bits.value == value
        assert bits.width == width

    @pytest.mark.parametrize(
        "text,value,width",
        [("8'hff", 255, 8), ("4'b1010", 10, 4), ("16'd100", 100, 16), ("3'o7", 7, 3)],
    )
    def test_verilog_sized_literals(self, text, value, width):
        bits = parse_literal(text)
        assert bits.value == value
        assert bits.width == width

    def test_explicit_width_override(self):
        assert parse_literal("b001", width=8).width == 8

    def test_width_too_small_raises(self):
        with pytest.raises(LiteralError):
            parse_literal("hff", width=4)

    def test_empty_literal_raises(self):
        with pytest.raises(LiteralError):
            parse_literal("")

    def test_garbage_literal_raises(self):
        with pytest.raises(LiteralError):
            parse_literal("bxyz")

    def test_signed_verilog_literal(self):
        bits = parse_literal("4'sb1111", signed=True)
        assert bits.signed
        assert bits.as_int == -1
