"""Crash-safety and concurrency tests for the segmented result store.

The store's contract under fault: any ``put`` that returned is durable across
a crash of the writing process (modulo the final torn line, which recovery
truncates), readers never observe torn records, and two processes appending
to one store directory lose nothing.
"""

import json
import multiprocessing
import os
import signal
import time

import pytest

from repro.experiments.store import (
    SEGMENT_BYTES_ENV,
    SEGMENT_RECORDS_ENV,
    ResultStore,
)
from repro.experiments.work import PAYLOAD_VERSION, WorkUnit

_FORK = multiprocessing.get_context("fork")


def _unit(**overrides) -> WorkUnit:
    base = dict(
        strategy="zero_shot",
        model="Claude 3.5 Sonnet",
        problem_id="passthrough_w8",
        case_index=3,
        sample=1,
        seed=0,
        max_iterations=0,
        knobs=(("language", "chisel"),),
    )
    base.update(overrides)
    return WorkUnit(**base)


def _fill(store: ResultStore, count: int, prefix: str = "fp") -> None:
    for index in range(count):
        store.put(f"{prefix}{index}", _unit(), {"index": index})


class TestSegmentation:
    def test_rotation_seals_segments(self, tmp_path):
        store = ResultStore(tmp_path / "store", segment_records=3)
        _fill(store, 10)
        stats = store.stats()
        assert stats["records"] == 10
        assert stats["segments"] == 3
        assert stats["rotations"] == 3
        assert sorted(p.name for p in (tmp_path / "store").glob("seg-*.jsonl")) == [
            "seg-000001.jsonl",
            "seg-000002.jsonl",
            "seg-000003.jsonl",
        ]
        store.close()

    def test_sealed_segments_have_index_sidecars(self, tmp_path):
        store = ResultStore(tmp_path / "store", segment_records=2)
        _fill(store, 5)
        store.close()
        for segment in (tmp_path / "store").glob("seg-*.jsonl"):
            sidecar = segment.with_name(segment.name + ".idx")
            assert sidecar.exists()
            index = json.loads(sidecar.read_text())
            assert index["v"] == PAYLOAD_VERSION
            assert index["records"]

    def test_reload_reads_every_segment(self, tmp_path):
        with ResultStore(tmp_path / "store", segment_records=3) as store:
            _fill(store, 10)
        reloaded = ResultStore(tmp_path / "store")
        assert len(reloaded) == 10
        for index in range(10):
            assert reloaded.get(f"fp{index}") == {"index": index}
        reloaded.close()

    def test_byte_threshold_rotates(self, tmp_path):
        store = ResultStore(tmp_path / "store", segment_bytes=1)
        _fill(store, 3)
        assert store.stats()["rotations"] == 3
        store.close()

    def test_duplicate_put_is_ignored(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put("fp0", _unit(), {"first": True})
        store.put("fp0", _unit(), {"second": True})
        assert store.get("fp0") == {"first": True}
        assert len(store) == 1
        store.close()

    def test_environment_knobs(self, tmp_path, monkeypatch):
        monkeypatch.setenv(SEGMENT_RECORDS_ENV, "2")
        monkeypatch.setenv(SEGMENT_BYTES_ENV, str(64 * 1024 * 1024))
        store = ResultStore(tmp_path / "store")
        _fill(store, 4)
        assert store.stats()["segments"] == 2
        store.close()


class TestRecovery:
    def test_corrupt_index_sidecar_is_rebuilt(self, tmp_path):
        with ResultStore(tmp_path / "store", segment_records=2) as store:
            _fill(store, 4)
        sidecar = sorted((tmp_path / "store").glob("seg-*.idx"))[0]
        sidecar.write_text("not json at all")
        reloaded = ResultStore(tmp_path / "store")
        assert all(reloaded.get(f"fp{i}") == {"index": i} for i in range(4))
        reloaded.close()

    def test_torn_tail_truncated_but_committed_records_survive(self, tmp_path):
        with ResultStore(tmp_path / "store") as store:
            _fill(store, 3)
        tail = tmp_path / "store" / "tail.jsonl"
        with tail.open("ab") as handle:
            handle.write(b'{"v": 1, "fp": "torn-mid-wri')
        reloaded = ResultStore(tmp_path / "store")
        assert len(reloaded) == 3
        assert reloaded.stats()["truncated_bytes"] > 0
        # The store keeps accepting appends at the truncated offset.
        reloaded.put("after", _unit(), {"ok": True})
        reloaded.close()
        assert ResultStore(tmp_path / "store").get("after") == {"ok": True}

    def test_legacy_single_file_store_is_migrated(self, tmp_path):
        legacy = tmp_path / "results.jsonl"
        lines = [
            json.dumps(
                {
                    "v": PAYLOAD_VERSION,
                    "fp": f"fp{i}",
                    "strategy": "zero_shot",
                    "model": "m",
                    "problem_id": "p",
                    "sample": 0,
                    "payload": {"index": i},
                }
            )
            for i in range(3)
        ]
        legacy.write_text("\n".join(lines) + "\n" + '{"torn')
        store = ResultStore(legacy)
        assert legacy.is_dir()
        assert all(store.get(f"fp{i}") == {"index": i} for i in range(3))
        assert not (tmp_path / "results.jsonl.migrating").exists()
        store.close()

    def test_writer_killed_mid_append_loses_no_acked_record(self, tmp_path):
        """SIGKILL the store writer mid-append; every acked put must survive."""
        path = tmp_path / "store"
        ack = tmp_path / "acked.txt"

        def writer() -> None:
            store = ResultStore(path, segment_records=5)
            with ack.open("a") as acks:
                for index in range(10_000):
                    store.put(f"fp{index}", _unit(), {"index": index})
                    acks.write(f"fp{index}\n")
                    acks.flush()

        process = _FORK.Process(target=writer)
        process.start()
        deadline = time.monotonic() + 30.0
        while not ack.exists() or not ack.read_text():
            assert time.monotonic() < deadline, "writer never produced a record"
            time.sleep(0.01)
        time.sleep(0.05)  # let it get deeper into the run, ideally mid-write
        os.kill(process.pid, signal.SIGKILL)
        process.join(timeout=10)

        acked = [line for line in ack.read_text().splitlines() if line]
        assert acked, "nothing was acked before the kill"
        recovered = ResultStore(path)
        missing = [fp for fp in acked if fp not in recovered]
        assert missing == []
        # And the recovered store is still writable.
        recovered.put("post-crash", _unit(), {"ok": True})
        assert recovered.get("post-crash") == {"ok": True}
        recovered.close()


class TestCompaction:
    def test_compaction_drops_superseded_records(self, tmp_path):
        store = ResultStore(tmp_path / "store", segment_records=4)
        _fill(store, 8)
        # Simulate a superseding duplicate (e.g. a racing writer): append a
        # second line for fp0 directly; journal semantics are last-wins.
        duplicate = {
            "v": PAYLOAD_VERSION,
            "fp": "fp0",
            "strategy": "zero_shot",
            "model": "m",
            "problem_id": "p",
            "sample": 0,
            "payload": {"newer": True},
        }
        with (tmp_path / "store" / "tail.jsonl").open("a") as handle:
            handle.write(json.dumps(duplicate) + "\n")
        store.close()

        store = ResultStore(tmp_path / "store", segment_records=4)
        report = store.compact()
        assert report["records"] == 8
        assert store.get("fp0") == {"newer": True}
        assert store.stats()["compactions"] == 1
        store.close()
        reloaded = ResultStore(tmp_path / "store")
        assert len(reloaded) == 8
        assert reloaded.get("fp0") == {"newer": True}
        assert all(reloaded.get(f"fp{i}") == {"index": i} for i in range(1, 8))
        # The compacted store holds exactly one line per fingerprint.
        fp0_lines = [
            line
            for file in (tmp_path / "store").glob("*.jsonl")
            for line in file.read_bytes().splitlines()
            if json.loads(line)["fp"] == "fp0"
        ]
        assert len(fp0_lines) == 1
        reloaded.close()

    def test_store_usable_after_compaction(self, tmp_path):
        store = ResultStore(tmp_path / "store", segment_records=2)
        _fill(store, 6)
        store.compact()
        store.put("new", _unit(), {"fresh": True})
        store.close()
        assert ResultStore(tmp_path / "store").get("new") == {"fresh": True}


def _concurrent_writer(path, which: int, count: int) -> None:
    store = ResultStore(path, segment_records=7)
    for index in range(count):
        store.put(f"w{which}-{index}", _unit(), {"writer": which, "index": index})
    store.close()


class TestConcurrency:
    def test_two_processes_append_without_losing_records(self, tmp_path):
        path = tmp_path / "store"
        count = 60
        writers = [
            _FORK.Process(target=_concurrent_writer, args=(path, which, count))
            for which in range(2)
        ]
        for process in writers:
            process.start()
        for process in writers:
            process.join(timeout=60)
            assert process.exitcode == 0

        store = ResultStore(path)
        assert len(store) == 2 * count
        for which in range(2):
            for index in range(count):
                assert store.get(f"w{which}-{index}") == {"writer": which, "index": index}
        # No torn lines anywhere: every line in every file decodes.
        for file in sorted(path.glob("*.jsonl")):
            for line in file.read_bytes().splitlines():
                json.loads(line)
        store.close()

    def test_writer_sees_peer_rotation(self, tmp_path):
        path = tmp_path / "store"
        first = ResultStore(path, segment_records=2)
        second = ResultStore(path, segment_records=2)
        first.put("a", _unit(), {"n": 1})
        first.put("b", _unit(), {"n": 2})  # rotates under first
        second.put("c", _unit(), {"n": 3})  # must land in the fresh tail
        first.close()
        second.close()
        reloaded = ResultStore(path)
        assert {fp: reloaded.get(fp)["n"] for fp in ("a", "b", "c")} == {
            "a": 1,
            "b": 2,
            "c": 3,
        }
        reloaded.close()
