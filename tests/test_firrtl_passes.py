"""Tests for the FIRRTL pass pipeline on hand-built and elaborated circuits."""

import pytest

from repro.chisel.elaborator import elaborate
from repro.chisel.parser import parse_source
from repro.diagnostics import DiagnosticList
from repro.firrtl import ir
from repro.firrtl.pass_manager import PassManager, run_default_pipeline
from repro.firrtl.passes import (
    CheckCombLoops,
    CheckInitialization,
    InferResets,
    InferWidths,
    LowerTypes,
)
from repro.firrtl.typing import SymbolTable, type_of, width_of

HEADER = "import chisel3._\nimport chisel3.util._\n\n"


def build_circuit(body: str, io_fields: str = "") -> ir.Circuit:
    source = HEADER + (
        "class TopModule extends Module {\n"
        "  val io = IO(new Bundle {\n"
        "    val in = Input(UInt(8.W))\n"
        "    val out = Output(UInt(8.W))\n"
        f"{io_fields}"
        "  })\n"
        f"{body}\n"
        "}\n"
    )
    return elaborate(parse_source(source))


class TestTyping:
    def test_widths_of_primitive_ops(self):
        circuit = build_circuit("  io.out := io.in + 1.U")
        module = circuit.main
        table = SymbolTable(module)
        connect = next(s for s in ir.walk_stmts(module.body) if isinstance(s, ir.Connect))
        tpe = type_of(connect.value, table)
        assert width_of(tpe) == 8  # wrapping add keeps max width

    def test_expanding_add_width(self):
        circuit = build_circuit("  io.out := (io.in +& io.in)(7, 0)")
        module = circuit.main
        table = SymbolTable(module)
        connect = next(s for s in ir.walk_stmts(module.body) if isinstance(s, ir.Connect))
        assert width_of(type_of(connect.value, table)) == 8

    def test_cat_width_is_sum(self):
        table = SymbolTable(ir.Module("m", [ir.Port("a", ir.INPUT, ir.UIntType(3)),
                                            ir.Port("b", ir.INPUT, ir.UIntType(5))]))
        expr = ir.DoPrim("cat", (ir.Reference("a"), ir.Reference("b")))
        assert width_of(type_of(expr, table)) == 8

    def test_comparison_width_is_one(self):
        table = SymbolTable(ir.Module("m", [ir.Port("a", ir.INPUT, ir.UIntType(9))]))
        expr = ir.DoPrim("lt", (ir.Reference("a"), ir.UIntLiteral(3, 9)))
        assert width_of(type_of(expr, table)) == 1


class TestLowerTypes:
    def test_vec_wire_flattened(self):
        circuit = build_circuit(
            "  val v = Wire(Vec(3, UInt(8.W)))\n"
            "  for (i <- 0 until 3) { v(i) := io.in }\n"
            "  io.out := v(1)"
        )
        diags = DiagnosticList()
        lowered = LowerTypes().run(circuit, diags)
        names = {s.name for s in ir.walk_stmts(lowered.main.body) if isinstance(s, ir.DefWire)}
        assert names == {"v_0", "v_1", "v_2"}
        assert not diags.has_errors

    def test_vec_port_flattened(self):
        circuit = build_circuit(
            "  io.out := io.vecIn(0).asUInt",
            io_fields="    val vecIn = Input(Vec(4, Bool()))\n",
        )
        lowered = LowerTypes().run(circuit, DiagnosticList())
        port_names = {p.name for p in lowered.main.ports}
        assert {"io_vecIn_0", "io_vecIn_1", "io_vecIn_2", "io_vecIn_3"} <= port_names

    def test_dynamic_read_becomes_mux_chain(self):
        circuit = build_circuit(
            "  val v = Wire(Vec(4, UInt(8.W)))\n"
            "  for (i <- 0 until 4) { v(i) := i.U }\n"
            "  io.out := v(io.in(1, 0))"
        )
        lowered = LowerTypes().run(circuit, DiagnosticList())
        connects = [
            s for s in ir.walk_stmts(lowered.main.body)
            if isinstance(s, ir.Connect) and ir.root_reference(s.target).name == "io_out"
        ]
        assert len(connects) == 1
        assert isinstance(connects[0].value, ir.Mux)

    def test_dynamic_write_becomes_conditional_writes(self):
        circuit = build_circuit(
            "  val v = Wire(Vec(4, UInt(8.W)))\n"
            "  for (i <- 0 until 4) { v(i) := 0.U }\n"
            "  v(io.in(1, 0)) := io.in\n"
            "  io.out := v(0)"
        )
        lowered = LowerTypes().run(circuit, DiagnosticList())
        conditionals = [
            s for s in ir.walk_stmts(lowered.main.body) if isinstance(s, ir.Conditionally)
        ]
        assert len(conditionals) == 4

    def test_bundle_wire_flattened(self):
        source = HEADER + (
            "class MyBundle extends Bundle { val a = UInt(4.W)\n val b = Bool() }\n"
            "class TopModule extends Module {\n"
            "  val io = IO(new Bundle {\n"
            "    val in = Input(UInt(4.W))\n"
            "    val out = Output(UInt(4.W))\n"
            "  })\n"
            "  val w = Wire(new MyBundle)\n"
            "  w.a := io.in\n"
            "  w.b := io.in(0)\n"
            "  io.out := w.a\n"
            "}\n"
        )
        circuit = elaborate(parse_source(source))
        lowered = LowerTypes().run(circuit, DiagnosticList())
        names = {s.name for s in ir.walk_stmts(lowered.main.body) if isinstance(s, ir.DefWire)}
        assert names == {"w_a", "w_b"}


class TestInferWidths:
    def test_unsized_wire_gets_width_from_driver(self):
        circuit = build_circuit("  val w = Wire(UInt())\n  w := io.in\n  io.out := w")
        result = PassManager([InferResets(), LowerTypes(), InferWidths()]).run(circuit)
        assert result.ok
        wire = next(s for s in ir.walk_stmts(result.circuit.main.body) if isinstance(s, ir.DefWire))
        assert wire.type.width == 8

    def test_reginit_literal_width_inferred(self):
        circuit = build_circuit("  val r = RegInit(0.U)\n  r := io.in\n  io.out := r")
        result = PassManager([InferResets(), LowerTypes(), InferWidths()]).run(circuit)
        reg = next(s for s in ir.walk_stmts(result.circuit.main.body) if isinstance(s, ir.DefRegister))
        assert reg.type.width == 8

    def test_never_driven_unsized_wire_is_reported(self):
        circuit = build_circuit("  val w = Wire(UInt())\n  io.out := io.in")
        result = PassManager([InferResets(), LowerTypes(), InferWidths()]).run(circuit)
        assert not result.ok
        assert any(d.code == "WIDTH" for d in result.diagnostics.errors)


class TestChecks:
    def test_abstract_reset_port_reported(self):
        circuit = build_circuit(
            "  io.out := io.in", io_fields="    val rst = Input(Reset())\n"
        )
        diags = DiagnosticList()
        InferResets().run(circuit, diags)
        assert any(d.code == "B1" for d in diags.errors)

    def test_partial_initialization_detected(self):
        circuit = build_circuit(
            "  val w = Wire(UInt(8.W))\n"
            "  when (io.in(0)) { w := io.in }\n"
            "  io.out := w"
        )
        result = run_default_pipeline(circuit)
        assert not result.ok
        assert any(d.code == "B3" for d in result.diagnostics.errors)

    def test_wiredefault_is_considered_initialized(self):
        circuit = build_circuit(
            "  val w = WireDefault(0.U(8.W))\n"
            "  when (io.in(0)) { w := io.in }\n"
            "  io.out := w"
        )
        result = run_default_pipeline(circuit)
        assert result.ok

    def test_register_without_otherwise_is_fine(self):
        circuit = build_circuit(
            "  val r = RegInit(0.U(8.W))\n"
            "  when (io.in(0)) { r := io.in }\n"
            "  io.out := r"
        )
        result = run_default_pipeline(circuit)
        assert result.ok

    def test_comb_loop_detected_with_sample_path(self):
        circuit = build_circuit("  val a = Wire(UInt(8.W))\n  a := a + 1.U\n  io.out := a")
        result = run_default_pipeline(circuit)
        assert not result.ok
        error = next(d for d in result.diagnostics.errors if d.code == "C2")
        assert "Sample path" in error.message

    def test_register_breaks_comb_loop(self):
        circuit = build_circuit(
            "  val r = RegInit(0.U(8.W))\n  r := r + 1.U\n  io.out := r"
        )
        result = run_default_pipeline(circuit)
        assert result.ok

    def test_two_wire_cycle_detected(self):
        circuit = build_circuit(
            "  val a = Wire(UInt(8.W))\n"
            "  val b = Wire(UInt(8.W))\n"
            "  a := b\n"
            "  b := a\n"
            "  io.out := a"
        )
        result = run_default_pipeline(circuit)
        assert any(d.code == "C2" for d in result.diagnostics.errors)

    def test_pipeline_stops_after_first_failing_pass(self):
        circuit = build_circuit(
            "  io.out := io.in", io_fields="    val rst = Input(Reset())\n"
        )
        result = run_default_pipeline(circuit)
        codes = {d.code for d in result.diagnostics.errors}
        assert codes == {"B1"}
