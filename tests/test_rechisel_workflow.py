"""End-to-end tests of the ReChisel workflow and the baselines."""

import pytest

from repro.baselines.autochip import AutoChip
from repro.baselines.zero_shot import ZeroShotRunner
from repro.core.rechisel import ReChisel
from repro.experiments.fig8_case_study import ITERATION_0, ITERATION_2, ScriptedClient
from repro.llm.profiles import CLAUDE_SONNET, GPT4O_MINI, MODEL_PROFILES
from repro.llm.synthetic import SyntheticChiselLLM
from repro.problems.registry import build_default_registry
from repro.toolchain.compiler import ChiselCompiler

REGISTRY = build_default_registry()
COMPILER = ChiselCompiler(top="TopModule")


def reference_for(problem):
    return COMPILER.compile(problem.golden_chisel).verilog


def synthetic(model=CLAUDE_SONNET, seed=0):
    return SyntheticChiselLLM(REGISTRY, MODEL_PROFILES[model], seed=seed, compiler=COMPILER)


class TestScriptedWorkflow:
    """Deterministic workflow behaviour using scripted generations."""

    def test_immediate_success_terminates_at_iteration_zero(self):
        problem = REGISTRY.by_id("mux2_w8")
        client = ScriptedClient([problem.golden_chisel])
        workflow = ReChisel(client, max_iterations=5)
        result = workflow.run(
            problem.spec_text(), problem.build_testbench(), reference_for(problem), problem.problem_id
        )
        assert result.success
        assert result.success_iteration == 0
        assert len(result.records) == 1

    def test_syntax_then_functional_then_success(self):
        problem = REGISTRY.by_id("vector5")
        client = ScriptedClient([ITERATION_0, ITERATION_2, problem.golden_chisel])
        workflow = ReChisel(client, max_iterations=5)
        result = workflow.run(
            problem.spec_text(), problem.build_testbench(), reference_for(problem), problem.problem_id
        )
        assert result.success
        assert [r.outcome for r in result.records] == ["syntax", "functional", "success"]

    def test_failure_when_iteration_cap_reached(self):
        problem = REGISTRY.by_id("mux2_w8")
        broken = problem.functional_faults[0].apply(problem.golden_chisel)
        client = ScriptedClient([broken])  # the same wrong code forever
        workflow = ReChisel(client, max_iterations=3)
        result = workflow.run(
            problem.spec_text(), problem.build_testbench(), reference_for(problem), problem.problem_id
        )
        assert not result.success
        assert result.success_iteration is None
        assert len(result.records) == 4  # initial + 3 reflections

    def test_repeated_error_triggers_escape(self):
        problem = REGISTRY.by_id("counter_w4")
        faulty = "class TopModule extends Module {\n  val w = Wire(UInt(4.W))\n}"
        client = ScriptedClient([faulty, faulty, faulty, faulty, problem.golden_chisel])
        workflow = ReChisel(client, max_iterations=6)
        result = workflow.run(
            problem.spec_text(), problem.build_testbench(), reference_for(problem), problem.problem_id
        )
        assert result.escapes >= 1
        assert result.success

    def test_escape_can_be_disabled(self):
        problem = REGISTRY.by_id("counter_w4")
        faulty = "class TopModule extends Module {\n  val w = Wire(UInt(4.W))\n}"
        client = ScriptedClient([faulty] * 4 + [problem.golden_chisel])
        workflow = ReChisel(client, max_iterations=6, enable_escape=False)
        result = workflow.run(
            problem.spec_text(), problem.build_testbench(), reference_for(problem), problem.problem_id
        )
        assert result.escapes == 0

    def test_outcome_at_holds_final_state(self):
        problem = REGISTRY.by_id("mux2_w8")
        client = ScriptedClient([problem.golden_chisel])
        result = ReChisel(client, max_iterations=5).run(
            problem.spec_text(), problem.build_testbench(), reference_for(problem), problem.problem_id
        )
        assert result.outcome_at(0) == "success"
        assert result.outcome_at(5) == "success"
        assert result.success_by(0) and result.success_by(10)


class TestSyntheticWorkflow:
    """Statistical workflow behaviour with the synthetic LLM."""

    @pytest.mark.parametrize("problem_id", ["adder_w8", "counter_w4", "alu_w8", "vector5"])
    def test_strong_model_solves_most_cases_within_ten_iterations(self, problem_id):
        problem = REGISTRY.by_id(problem_id)
        reference = reference_for(problem)
        successes = 0
        for seed in range(6):
            client = synthetic(CLAUDE_SONNET, seed=seed)
            result = ReChisel(client, max_iterations=10).run(
                problem.spec_text(), problem.build_testbench(), reference, problem.problem_id
            )
            successes += result.success
        assert successes >= 4

    def test_reflection_beats_zero_shot_for_weak_model(self):
        problem = REGISTRY.by_id("alu_w4")
        reference = reference_for(problem)
        zero_shot_successes = 0
        reflection_successes = 0
        for seed in range(10):
            client = synthetic(GPT4O_MINI, seed=seed)
            runner = ZeroShotRunner(client, language="chisel")
            zero_shot_successes += runner.run(problem, reference).success
            client = synthetic(GPT4O_MINI, seed=seed)
            result = ReChisel(client, max_iterations=10).run(
                problem.spec_text(), problem.build_testbench(), reference, problem.problem_id
            )
            reflection_successes += result.success
        assert reflection_successes >= zero_shot_successes

    def test_records_track_every_iteration(self):
        problem = REGISTRY.by_id("seq_detect_101")
        client = synthetic(GPT4O_MINI, seed=3)
        result = ReChisel(client, max_iterations=4).run(
            problem.spec_text(), problem.build_testbench(), reference_for(problem), problem.problem_id
        )
        assert len(result.records) <= 5
        assert all(r.outcome in ("success", "syntax", "functional") for r in result.records)


class TestBaselines:
    def test_zero_shot_chisel_classifies_outcomes(self):
        problem = REGISTRY.by_id("adder_w4")
        reference = reference_for(problem)
        outcomes = set()
        for seed in range(20):
            runner = ZeroShotRunner(synthetic(GPT4O_MINI, seed=seed), language="chisel")
            outcomes.add(runner.run(problem, reference).outcome)
        assert "success" in outcomes or "syntax" in outcomes

    def test_zero_shot_verilog_succeeds_more_than_chisel_for_mini(self):
        problem = REGISTRY.by_id("gate_and_w8")
        reference = reference_for(problem)
        chisel_wins = verilog_wins = 0
        for seed in range(25):
            chisel_wins += ZeroShotRunner(synthetic(GPT4O_MINI, seed=seed), "chisel").run(
                problem, reference
            ).success
            verilog_wins += ZeroShotRunner(synthetic(GPT4O_MINI, seed=seed), "verilog").run(
                problem, reference
            ).success
        assert verilog_wins > chisel_wins

    def test_autochip_loop_reaches_success(self):
        problem = REGISTRY.by_id("comparator_w8")
        reference = reference_for(problem)
        successes = 0
        for seed in range(8):
            runner = AutoChip(synthetic(CLAUDE_SONNET, seed=seed), max_iterations=10)
            successes += runner.run(problem, reference).success
        assert successes >= 5

    def test_autochip_result_tracks_outcomes(self):
        problem = REGISTRY.by_id("comparator_w8")
        runner = AutoChip(synthetic(GPT4O_MINI, seed=1), max_iterations=3)
        result = runner.run(problem, reference_for(problem))
        assert 1 <= len(result.outcomes) <= 4
        assert result.success_by(10) == result.success
