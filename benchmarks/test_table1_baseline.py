"""Benchmark: regenerate Table I (zero-shot baseline, Chisel vs Verilog)."""

from conftest import run_once

from repro.experiments import table1


def test_table1_baseline(benchmark, config, harness):
    result = run_once(benchmark, table1.run, config, harness)
    print()
    print(result.render())
    assert len(result.rows) == len(config.models)
    for row in result.rows:
        # Headline claim: zero-shot Chisel is markedly weaker than Verilog.
        assert row.chisel[1] < row.verilog[1]
