"""Benchmark: batched verification engine vs the step-wise/full-recompile path.

The verify step is the hottest loop in every sweep, repair iteration and
served job: compile the candidate, then drive a stimulus program against the
golden reference.  Three regimes are recorded into ``BENCH_toolchain.json`` by
``python benchmarks/run_benchmarks.py``, each verifying one candidate against
the golden ALU over a deep (8192-point) stimulus program:

* ``test_verify_cold_stepwise_full_recompile`` — the baseline: every cache
  cleared each round, candidate and reference recompiled from scratch, the
  testbench driven point by point;
* ``test_verify_cold_candidate_trace`` — the engine on a *new* candidate: the
  golden/testbench side is warm (the steady state of any running sweep), the
  unseen candidate pays parse→elaborate→passes→emit→kernel→trace compilation,
  and the schedule runs as one trace call.  Asserted ≥3x the baseline;
* ``test_verify_warm_iteration`` — iteration k+1 of a repair loop: the
  revision is structurally identical outside the edit, so every stage after
  parse replays from the content-addressed caches.  Asserted ≥5x the baseline.

``test_verify_trace_vs_stepwise`` isolates the testbench backends with a warm
compiler on both sides (trace asserted ≥2x step-wise).

The regression guard lives in the assertions: CI fails if the engine loses
its edge over the seed path.
"""

from __future__ import annotations

import os
import random
import statistics
import time

import pytest

from conftest import run_once

from repro.caching import clear_registered_caches
from repro.problems.registry import build_default_registry
from repro.sim.testbench import FunctionalPoint, Testbench
from repro.toolchain.compiler import ChiselCompiler
from repro.toolchain.simulator import Simulator
from repro.verilog.compile_sim import clear_kernel_cache

POINTS = 8192
ROUNDS = 10
MIN_COLD_SPEEDUP = 3.0
MIN_WARM_SPEEDUP = 5.0
MIN_TRACE_SPEEDUP = 2.0

REGISTRY = build_default_registry()
PROBLEM = REGISTRY.by_id("alu_w8")
SIMULATOR = Simulator(top="TopModule")

_rng = random.Random(0)
TESTBENCH = Testbench(
    points=[
        FunctionalPoint(
            {port.verilog_name: _rng.getrandbits(port.width) for port in PROBLEM.inputs}
        )
        for _ in range(POINTS)
    ],
    reset_cycles=0,
)

_timings: dict[str, float] = {}


def _candidate(index: int) -> str:
    """A structurally distinct candidate: forces a full candidate-side compile."""
    source = PROBLEM.golden_chisel
    brace = source.rfind("}")
    padding = f"  val pad{index} = Wire(UInt(4.W))\n  pad{index} := {index % 16}.U\n"
    return source[:brace] + padding + source[brace:]


def _revision(index: int) -> str:
    """Iteration k+1 of a repair loop: a cosmetically revised candidate."""
    return f"// attempt {index}: reviewer feedback applied\n" + PROBLEM.golden_chisel


def _verify(compiler: ChiselCompiler, source: str, backend: str) -> None:
    golden = compiler.compile(PROBLEM.golden_chisel)
    candidate = compiler.compile(source)
    os.environ["REPRO_TB_BACKEND"] = backend
    try:
        outcome = SIMULATOR.simulate(candidate.verilog, golden.verilog, TESTBENCH)
    finally:
        del os.environ["REPRO_TB_BACKEND"]
    assert outcome.success, outcome.error


def _median_rounds(round_fn) -> float:
    times = []
    for index in range(ROUNDS):
        start = time.perf_counter()
        round_fn(index)
        times.append(time.perf_counter() - start)
    return statistics.median(times)


def _run_baseline() -> float:
    compiler = ChiselCompiler(top="TopModule", cache_size=None)

    def round_fn(index: int) -> None:
        clear_registered_caches()
        clear_kernel_cache()
        _verify(compiler, _candidate(1000 + index), "stepwise")

    return _median_rounds(round_fn)


def _baseline() -> float:
    if "baseline" not in _timings:
        _timings["baseline"] = _run_baseline()
    return _timings["baseline"]


@pytest.mark.cache_mutating
def test_verify_cold_stepwise_full_recompile(benchmark):
    _timings["baseline"] = run_once(benchmark, _run_baseline)


@pytest.mark.cache_mutating
def test_verify_cold_candidate_trace(benchmark):
    compiler = ChiselCompiler(top="TopModule", cache_size=4096)
    clear_registered_caches()
    clear_kernel_cache()
    _verify(compiler, _candidate(2000), "auto")  # steady state: golden side warm

    def run() -> float:
        return _median_rounds(lambda index: _verify(compiler, _candidate(index), "auto"))

    elapsed = run_once(benchmark, run)
    speedup = _baseline() / elapsed
    assert speedup >= MIN_COLD_SPEEDUP, (
        f"cold-candidate verify speedup {speedup:.1f}x below {MIN_COLD_SPEEDUP}x "
        f"(baseline {_baseline() * 1000:.1f} ms, engine {elapsed * 1000:.1f} ms)"
    )


def test_verify_warm_iteration(benchmark):
    compiler = ChiselCompiler(top="TopModule", cache_size=4096)
    _verify(compiler, _revision(0), "auto")  # iteration k fills the stage caches

    def run() -> float:
        return _median_rounds(lambda index: _verify(compiler, _revision(1 + index), "auto"))

    elapsed = run_once(benchmark, run)
    speedup = _baseline() / elapsed
    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm iteration-k+1 verify speedup {speedup:.1f}x below {MIN_WARM_SPEEDUP}x "
        f"(baseline {_baseline() * 1000:.1f} ms, engine {elapsed * 1000:.1f} ms)"
    )


def test_verify_trace_vs_stepwise(benchmark):
    compiler = ChiselCompiler(top="TopModule", cache_size=4096)
    _verify(compiler, _candidate(3000), "auto")

    def stepwise() -> float:
        return _median_rounds(lambda index: _verify(compiler, _candidate(3000), "stepwise"))

    def trace() -> float:
        return _median_rounds(lambda index: _verify(compiler, _candidate(3000), "trace"))

    stepwise_elapsed = stepwise()
    trace_elapsed = run_once(benchmark, trace)
    speedup = stepwise_elapsed / trace_elapsed
    assert speedup >= MIN_TRACE_SPEEDUP, (
        f"trace backend speedup {speedup:.1f}x below {MIN_TRACE_SPEEDUP}x "
        f"(step-wise {stepwise_elapsed * 1000:.1f} ms, trace {trace_elapsed * 1000:.1f} ms)"
    )
