"""Benchmark: regenerate Table IV (ReChisel vs AutoChip at n = 10)."""

from conftest import run_once

from repro.experiments import table4


def test_table4_autochip(benchmark, config, harness):
    result = run_once(benchmark, table4.run, config, harness)
    print()
    print(result.render())
    for model in config.autochip_models:
        # ReChisel reaches a level comparable to direct Verilog generation.
        assert result.rechisel[model][10] >= result.autochip[model][10] - 20.0
