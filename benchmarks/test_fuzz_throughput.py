"""Fuzz-session throughput: generated programs conformance-checked per second.

Each program compiles cold and warm, re-parses its Verilog and runs three
backend pairings, so this benchmark tracks the end-to-end cost of the
differential engine — regressions here make the CI fuzz smoke job (and any
long adversarial session) proportionally slower.
"""

from __future__ import annotations

import pytest

from conftest import run_once

from repro.fuzz import FuzzConfig, run_session

_PROGRAMS = 25


@pytest.mark.cache_mutating
def test_fuzz_session_throughput(benchmark):
    config = FuzzConfig(seed=0, iterations=_PROGRAMS, points=12)
    result = run_once(benchmark, run_session, config)
    assert result.ok, result.render()
    assert result.programs == _PROGRAMS
