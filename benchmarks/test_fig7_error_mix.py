"""Benchmark: regenerate Fig. 7 (syntax/functional error mix per iteration)."""

from conftest import run_once

from repro.experiments import fig7


def test_fig7_error_mix(benchmark, config, harness):
    result = run_once(benchmark, fig7.run, config, harness)
    print()
    print(result.render())
    first, last = result.mixes[0], result.mixes[-1]
    assert last.syntax <= first.syntax
