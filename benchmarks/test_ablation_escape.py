"""Ablation: the escape mechanism (§IV-C) on vs off.

DESIGN.md lists this as the paper's key addition over plain reflection; the
benchmark runs the same reflection sweep with the Inspector's loop detection
disabled and compares final success rates for the weakest model (which loops
the most and therefore benefits the most).
"""

from conftest import run_once

from repro.experiments import table3
from repro.llm.profiles import GPT4O_MINI
from repro.metrics.passk import aggregate_pass_at_k


def _run(config, harness):
    samples = config.samples_per_case
    with_escape = harness.run_rechisel(GPT4O_MINI, enable_escape=True)
    without_escape = harness.run_rechisel(GPT4O_MINI, enable_escape=False)
    cap = config.max_iterations
    rate_with = aggregate_pass_at_k([(samples, c.pass_count_at(cap)) for c in with_escape], 1)
    rate_without = aggregate_pass_at_k([(samples, c.pass_count_at(cap)) for c in without_escape], 1)
    return rate_with, rate_without


def test_ablation_escape(benchmark, config, harness):
    rate_with, rate_without = run_once(benchmark, _run, config, harness)
    print()
    print(f"escape enabled : {rate_with:.2f}%")
    print(f"escape disabled: {rate_without:.2f}%")
    # The escape mechanism should never hurt, and typically helps the weak model.
    assert rate_with >= rate_without - 8.0
