"""Benchmark: the event bus must stay off the verification hot path.

The observability layer's contract is that instrumentation is safe to leave
on warm paths permanently: ``publish()`` early-outs when nothing subscribes,
and with a subscriber attached an emission is one bounded-deque enqueue — no
blocking I/O, no serialization.  Two regimes quantify that:

* ``test_warm_verify_with_bus_overhead`` — the warm iteration-k+1 verify loop
  (the hottest served path, same shape as
  ``test_verify_warm_iteration``), instrumented exactly like the generation
  service instruments it (a ``session`` span wrapping a ``tool.simulate``
  span plus a job-completion event), with a live subscriber attached.
  Interleaved A/B rounds against the uninstrumented loop; the median
  overhead is asserted below 5%.
* ``test_publish_throughput`` — raw emission cost: events published per
  second into one subscriber, recorded for the trend history.
"""

from __future__ import annotations

import random
import statistics
import time

from conftest import run_once

from repro.obs import EventBus, span
from repro.problems.registry import build_default_registry
from repro.sim.testbench import FunctionalPoint, Testbench
from repro.toolchain.compiler import ChiselCompiler
from repro.toolchain.simulator import Simulator

POINTS = 4096
ROUNDS = 14
MAX_OVERHEAD = 0.05

REGISTRY = build_default_registry()
PROBLEM = REGISTRY.by_id("alu_w8")
SIMULATOR = Simulator(top="TopModule")

_rng = random.Random(0)
TESTBENCH = Testbench(
    points=[
        FunctionalPoint(
            {port.verilog_name: _rng.getrandbits(port.width) for port in PROBLEM.inputs}
        )
        for _ in range(POINTS)
    ],
    reset_cycles=0,
)


def _revision(index: int) -> str:
    return f"// attempt {index}: reviewer feedback applied\n" + PROBLEM.golden_chisel


def _verify(compiler: ChiselCompiler, index: int) -> None:
    golden = compiler.compile(PROBLEM.golden_chisel)
    candidate = compiler.compile(_revision(index))
    outcome = SIMULATOR.simulate(candidate.verilog, golden.verilog, TESTBENCH)
    assert outcome.success, outcome.error


def test_warm_verify_with_bus_overhead(benchmark):
    compiler = ChiselCompiler(top="TopModule", cache_size=4096)
    _verify(compiler, 0)  # iteration k fills the stage caches

    bus = EventBus()
    subscription = bus.subscribe(("service", "trace"), maxsize=65536)

    def plain_round(index: int) -> None:
        _verify(compiler, index)

    def instrumented_round(index: int) -> None:
        # The service's per-session emission pattern: spans + completion event.
        with span("session", bus=bus, problem="alu_w8", strategy="rechisel"):
            with span("tool.simulate", bus=bus):
                _verify(compiler, index)
        bus.publish("service.job", "completed", problem="alu_w8")

    def measure() -> tuple[float, float]:
        # Interleave A/B rounds so machine drift hits both loops equally.
        plain, instrumented = [], []
        for index in range(ROUNDS):
            start = time.perf_counter()
            plain_round(1 + index)
            plain.append(time.perf_counter() - start)
            start = time.perf_counter()
            instrumented_round(1 + index)
            instrumented.append(time.perf_counter() - start)
            subscription.pop_all()  # a live (draining) subscriber, like the console
        return statistics.median(plain), statistics.median(instrumented)

    plain_median, instrumented_median = run_once(benchmark, measure)
    overhead = instrumented_median / plain_median - 1.0
    assert overhead < MAX_OVERHEAD, (
        f"event emission added {overhead * 100:.1f}% to the warm verify path "
        f"(plain {plain_median * 1000:.2f} ms, "
        f"instrumented {instrumented_median * 1000:.2f} ms; limit "
        f"{MAX_OVERHEAD * 100:.0f}%)"
    )


def test_publish_throughput(benchmark):
    bus = EventBus()
    subscription = bus.subscribe(("bench",), maxsize=1024)
    count = 50_000

    def run() -> float:
        start = time.perf_counter()
        for index in range(count):
            bus.publish("bench", "tick", index=index)
            if index % 512 == 0:
                subscription.pop_all()
        return time.perf_counter() - start

    elapsed = run_once(benchmark, run)
    rate = count / elapsed
    # Emission is a dict build + deque append; anything below 100k/s means
    # something blocking crept onto the publish path.
    assert rate > 100_000, f"publish rate {rate:,.0f}/s below 100k/s"
