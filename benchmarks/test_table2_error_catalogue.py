"""Benchmark: regenerate Table II (common errors and compiler feedback)."""

from conftest import run_once

from repro.experiments import table2


def test_table2_error_catalogue(benchmark):
    result = run_once(benchmark, table2.run)
    print()
    print(result.render())
    reproduced = sum(1 for row in result.rows if row.reproduced)
    assert reproduced >= 10
