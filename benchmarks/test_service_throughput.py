"""Benchmark: generation-service throughput vs serial session execution.

The service exists to overlap LLM round-trip latency across sessions, so the
benchmark models that latency explicitly: every completion waits
``LATENCY`` seconds (``time.sleep`` for the serial baseline,
``asyncio.sleep`` — overlappable — for the service) before the synthetic
backend answers.  Three regimes are recorded into ``BENCH_toolchain.json``
by ``python benchmarks/run_benchmarks.py``:

* ``test_service_serial_latency`` — the baseline: every session driven to
  completion one after another, paying the full latency serially;
* ``test_service_concurrent_32`` — the same workload through the service at
  concurrency 32; asserted bit-identical to the serial payloads and at least
  5x the serial throughput;
* ``test_service_warm_cache`` — a repeat wave against a persistent result
  store; asserted to issue zero new LLM requests.
"""

import time

from conftest import run_once

from repro.core.session import drive
from repro.experiments.strategies import strategy_from_unit
from repro.experiments.work import WorkerContext, WorkUnit
from repro.llm.dispatch import LatencyClient
from repro.service import ServiceConfig, serve_units

LATENCY = 0.015  # simulated LLM round-trip, seconds
CONCURRENCY = 32
N_JOBS = 64
MIN_SPEEDUP = 5.0
MODELS = ("GPT-4o", "Claude 3.5 Sonnet")

_serial_cache = None


class SleepClient:
    """Blocking latency-simulating client (the serial twin of LatencyClient)."""

    def __init__(self, inner, latency):
        self.inner = inner
        self.latency = latency

    def complete(self, messages):
        time.sleep(self.latency)
        return self.inner.complete(messages)


def _units(context):
    problems = list(context.registry)[:16]
    return [
        WorkUnit(
            strategy="zero_shot",
            model=MODELS[index % len(MODELS)],
            problem_id=problems[index % len(problems)].problem_id,
            case_index=index % len(problems),
            sample=index // len(problems),
            seed=0,
            max_iterations=0,
            knobs=(("language", "chisel"),),
        )
        for index in range(N_JOBS)
    ]


def _run_serial():
    context = WorkerContext()
    units = _units(context)
    start = time.perf_counter()
    payloads = []
    for unit in units:
        client = SleepClient(context.client_for(unit), LATENCY)
        session = strategy_from_unit(unit).session(context, unit, client)
        payloads.append(drive(session, client))
    return payloads, time.perf_counter() - start


def _serial_reference():
    global _serial_cache
    if _serial_cache is None:
        _serial_cache = _run_serial()
    return _serial_cache


def _run_service(store_path=None):
    context = WorkerContext()
    units = _units(context)
    start = time.perf_counter()
    payloads, snapshot = serve_units(
        units,
        ServiceConfig(max_in_flight=CONCURRENCY, store_path=store_path),
        context=context,
        client_factory=lambda unit: LatencyClient(context.client_for(unit), LATENCY),
    )
    return payloads, snapshot, time.perf_counter() - start


def test_service_serial_latency(benchmark):
    payloads, _ = run_once(benchmark, _run_serial)
    assert len(payloads) == N_JOBS
    global _serial_cache
    _serial_cache = None  # keep the timed run's payloads comparable but unshared


def test_service_concurrent_32(benchmark):
    serial_payloads, serial_elapsed = _serial_reference()
    payloads, snapshot, elapsed = run_once(benchmark, _run_service)
    assert payloads == serial_payloads  # bit-identical under concurrency
    assert snapshot.failed == 0
    speedup = serial_elapsed / elapsed
    assert speedup >= MIN_SPEEDUP, (
        f"service speedup {speedup:.1f}x below {MIN_SPEEDUP}x "
        f"(serial {serial_elapsed:.2f}s, service {elapsed:.2f}s)"
    )


def test_service_warm_cache(benchmark, tmp_path):
    store_path = str(tmp_path / "service-results.jsonl")
    cold_payloads, cold_snapshot, _ = _run_service(store_path)
    assert cold_snapshot.dispatcher["requests"] > 0

    payloads, snapshot, _ = run_once(benchmark, _run_service, store_path)
    assert payloads == cold_payloads
    assert snapshot.dispatcher["requests"] == 0  # repeats cost no LLM calls
    assert snapshot.store_hits == N_JOBS
