"""Benchmark: vectorized simulation backend vs the scalar trace kernels.

Two regimes are recorded into ``BENCH_toolchain.json`` by
``python benchmarks/run_benchmarks.py``:

* ``test_vector_deep_verify_speedup`` — one structurally distinct candidate
  against the golden ALU over a deep (4096-point) combinational stimulus
  program.  The scalar trace kernel loops over points in Python; the vector
  kernel evaluates every point as a NumPy lane in one call.  Asserted ≥3x
  the scalar trace backend;
* ``test_vector_lockstep_16_candidates`` — 16 structurally identical
  sequential candidates verified through ``run_testbenches``: jobs sharing a
  kernel run in lockstep (distinct stimulus rows become lanes; duplicate
  (module, stimulus) rows collapse onto shared lanes).  The multiple over 16
  per-job scalar trace runs is asserted above break-even and recorded — the
  lane count (16) is too small for the deep-verify margin, so the tight
  regression gate stays on the points-mode benchmark above.

The regression guard lives in the assertions: CI fails if the vector backend
loses its edge over the scalar trace path.
"""

from __future__ import annotations

import random
import statistics
import time

from conftest import run_once

from repro.problems.registry import build_default_registry
from repro.sim.testbench import (
    FunctionalPoint,
    Testbench,
    run_testbench,
    run_testbenches,
)
from repro.toolchain.compiler import ChiselCompiler
from repro.verilog.parser import parse_verilog

POINTS = 4096
ROUNDS = 10
MIN_DEEP_VERIFY_SPEEDUP = 3.0
MIN_LOCKSTEP_MULTIPLE = 1.1

REGISTRY = build_default_registry()
PROBLEM = REGISTRY.by_id("alu_w8")
COMPILER = ChiselCompiler(top="TopModule")

_rng = random.Random(0)
TESTBENCH = Testbench(
    points=[
        FunctionalPoint(
            {port.verilog_name: _rng.getrandbits(port.width) for port in PROBLEM.inputs}
        )
        for _ in range(POINTS)
    ],
    reset_cycles=0,
)

SEQ_MODULE = parse_verilog(
    "module m(input clock, input [7:0] d, output reg [7:0] q);\n"
    "  always @(posedge clock) q <= d;\nendmodule\n"
)[0]


def _module(source: str):
    result = COMPILER.compile(source)
    assert result.success
    return parse_verilog(result.verilog)[-1]


def _candidate(index: int) -> str:
    """A structurally distinct candidate: its own kernel, not the golden's."""
    source = PROBLEM.golden_chisel
    brace = source.rfind("}")
    padding = f"  val pad{index} = Wire(UInt(4.W))\n  pad{index} := {index % 16}.U\n"
    return source[:brace] + padding + source[brace:]


def _median_rounds(round_fn) -> float:
    times = []
    for index in range(ROUNDS):
        start = time.perf_counter()
        round_fn(index)
        times.append(time.perf_counter() - start)
    return statistics.median(times)


def test_vector_deep_verify_speedup(benchmark):
    candidate = _module(_candidate(0))
    golden = _module(PROBLEM.golden_chisel)
    for backend in ("trace", "vector"):  # warm both kernel caches
        assert run_testbench(candidate, golden, TESTBENCH, backend=backend).passed

    trace_elapsed = _median_rounds(
        lambda _i: run_testbench(candidate, golden, TESTBENCH, backend="trace")
    )

    def vector() -> float:
        return _median_rounds(
            lambda _i: run_testbench(candidate, golden, TESTBENCH, backend="vector")
        )

    vector_elapsed = run_once(benchmark, vector)
    speedup = trace_elapsed / vector_elapsed
    assert speedup >= MIN_DEEP_VERIFY_SPEEDUP, (
        f"vector deep-verify speedup {speedup:.1f}x below {MIN_DEEP_VERIFY_SPEEDUP}x "
        f"(trace {trace_elapsed * 1000:.1f} ms, vector {vector_elapsed * 1000:.1f} ms)"
    )


def test_vector_lockstep_16_candidates(benchmark):
    benches = []
    for seed in range(16):
        rng = random.Random(seed)
        benches.append(
            Testbench(
                points=[
                    FunctionalPoint({"d": rng.getrandbits(8)}, clock_cycles=1)
                    for _ in range(256)
                ],
                observed_outputs=["q"],
                reset_cycles=2,
            )
        )
    jobs = [(SEQ_MODULE, SEQ_MODULE, tb) for tb in benches]
    serial = [run_testbench(*job, backend="trace") for job in jobs]  # warm kernels
    assert run_testbenches(jobs, backend="vector") == serial

    serial_elapsed = _median_rounds(
        lambda _i: [run_testbench(*job, backend="trace") for job in jobs]
    )

    def lockstep() -> float:
        return _median_rounds(lambda _i: run_testbenches(jobs, backend="vector"))

    lockstep_elapsed = run_once(benchmark, lockstep)
    multiple = serial_elapsed / lockstep_elapsed
    assert multiple >= MIN_LOCKSTEP_MULTIPLE, (
        f"lockstep multiple {multiple:.2f}x below {MIN_LOCKSTEP_MULTIPLE}x "
        f"(serial {serial_elapsed * 1000:.1f} ms, lockstep {lockstep_elapsed * 1000:.1f} ms)"
    )
