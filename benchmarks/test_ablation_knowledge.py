"""Ablation: Table II in-context error knowledge in the Reviewer prompt, on vs off."""

from conftest import run_once

from repro.llm.profiles import GPT4O
from repro.metrics.passk import aggregate_pass_at_k


def _run(config, harness):
    samples = config.samples_per_case
    cap = config.max_iterations
    with_knowledge = harness.run_rechisel(GPT4O, use_knowledge=True)
    without_knowledge = harness.run_rechisel(GPT4O, use_knowledge=False)
    rate_with = aggregate_pass_at_k([(samples, c.pass_count_at(cap)) for c in with_knowledge], 1)
    rate_without = aggregate_pass_at_k([(samples, c.pass_count_at(cap)) for c in without_knowledge], 1)
    return rate_with, rate_without


def test_ablation_knowledge(benchmark, config, harness):
    rate_with, rate_without = run_once(benchmark, _run, config, harness)
    print()
    print(f"knowledge enabled : {rate_with:.2f}%")
    print(f"knowledge disabled: {rate_without:.2f}%")
    assert rate_with >= 0.0 and rate_without >= 0.0
