"""Benchmark: regenerate Fig. 1 (error-type proportions at baseline)."""

from conftest import run_once

from repro.experiments import fig1
from repro.llm.profiles import GPT4O_MINI


def test_fig1_error_types(benchmark, config, harness):
    result = run_once(benchmark, fig1.run, config, harness)
    print()
    print(result.render())
    # GPT-4o mini fails overwhelmingly with syntax errors (the paper's 85.4%).
    if GPT4O_MINI in result.breakdowns:
        breakdown = result.breakdowns[GPT4O_MINI]
        assert breakdown.syntax > breakdown.functional
