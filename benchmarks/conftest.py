"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures.  By default
the quick-scale configuration is used so ``pytest benchmarks/ --benchmark-only``
finishes in a few minutes; set ``REPRO_FULL_EVAL=1`` to run the paper-scale
sweep (216 cases x 10 samples x 10 iterations), as recorded in EXPERIMENTS.md.
"""

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.experiments.config import ExperimentConfig  # noqa: E402
from repro.experiments.runner import EvaluationHarness  # noqa: E402


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    return ExperimentConfig.from_environment()


@pytest.fixture(scope="session")
def harness(config) -> EvaluationHarness:
    return EvaluationHarness(config)


def run_once(benchmark, function, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
