"""Ablation: full compiler feedback vs one-line summaries in the Reviewer prompt."""

from conftest import run_once

from repro.llm.profiles import GPT4O
from repro.metrics.passk import aggregate_pass_at_k


def _run(config, harness):
    samples = config.samples_per_case
    cap = config.max_iterations
    full = harness.run_rechisel(GPT4O, feedback_detail="full")
    summary = harness.run_rechisel(GPT4O, feedback_detail="summary")
    rate_full = aggregate_pass_at_k([(samples, c.pass_count_at(cap)) for c in full], 1)
    rate_summary = aggregate_pass_at_k([(samples, c.pass_count_at(cap)) for c in summary], 1)
    return rate_full, rate_summary


def test_ablation_feedback(benchmark, config, harness):
    rate_full, rate_summary = run_once(benchmark, _run, config, harness)
    print()
    print(f"full feedback   : {rate_full:.2f}%")
    print(f"summary feedback: {rate_summary:.2f}%")
    assert rate_full >= 0.0 and rate_summary >= 0.0
