"""Benchmark: regenerate Fig. 6 (success rate vs number of iterations)."""

from conftest import run_once

from repro.experiments import fig6


def test_fig6_iteration_sweep(benchmark, config, harness):
    result = run_once(benchmark, fig6.run, config, harness)
    print()
    print(result.render())
    for model in config.models:
        curve = result.series[model][1]
        assert all(b >= a - 1e-9 for a, b in zip(curve, curve[1:]))
