"""Benchmark: campaign orchestration overhead and resume speed.

Recorded into ``BENCH_toolchain.json`` by ``python benchmarks/run_benchmarks.py``:

* ``test_campaign_cold_end_to_end`` — the default quick campaign (generate →
  verify → fuzz → benchmark) run cold through the orchestrator into a fresh
  checkpointed store; the resilience machinery (chunked scheduling, budget
  metering, manifest checkpoints, priority-gate polling) rides on top of the
  same sweep engine the other benchmarks time, so this is the end-to-end
  price of fault tolerance;
* ``test_campaign_warm_resume`` — re-running the identical campaign against
  its completed store must replay zero work units and finish in a small
  fraction of the cold time (the store is the frontier; resume cost is
  manifest loading plus digest verification);
* ``test_checkpoint_save_cost`` — one versioned manifest save through
  :class:`~repro.campaign.checkpoint.CheckpointLog`, amortized over a burst;
  checkpoints happen per chunk, so they must stay far below unit cost.
"""

import time

from conftest import run_once

from repro.campaign.checkpoint import CheckpointLog
from repro.campaign.config import CampaignConfig
from repro.campaign.orchestrator import CampaignOrchestrator
from repro.campaign.spec import default_campaign
from repro.experiments.store import ResultStore

SPEC = default_campaign(samples=1, fuzz_programs=2)

#: Warm resume does no generation, no simulation and no fuzzing; even with
#: store open/close and digest verification it must beat cold by this factor.
MIN_RESUME_SPEEDUP = 2.0

CHECKPOINT_BURST = 50


def _run_campaign(store_path: str):
    config = CampaignConfig(store_path=store_path, chunk_size=4)
    return CampaignOrchestrator(SPEC, config).run()


def test_campaign_cold_end_to_end(benchmark, tmp_path):
    result = run_once(benchmark, _run_campaign, str(tmp_path / "cold"))
    assert result.status == "complete"
    assert result.executed > 0


def test_campaign_warm_resume(benchmark, tmp_path):
    store = str(tmp_path / "warm")
    started = time.perf_counter()
    cold = _run_campaign(store)
    cold_elapsed = time.perf_counter() - started
    assert cold.status == "complete"

    warm = run_once(benchmark, _run_campaign, store)
    assert warm.status == "complete"
    assert warm.resumed is True
    assert warm.executed == 0
    warm_elapsed = benchmark.stats.stats.mean
    assert warm_elapsed * MIN_RESUME_SPEEDUP < cold_elapsed, (
        f"warm resume {warm_elapsed:.3f}s vs cold {cold_elapsed:.3f}s; "
        f"expected at least {MIN_RESUME_SPEEDUP}x"
    )


def test_checkpoint_save_cost(benchmark, tmp_path):
    store = ResultStore(str(tmp_path / "ckpt"))
    log = CheckpointLog(store, "bench")
    manifest = {
        "campaign": "bench",
        "status": "running",
        "stages": [{"name": f"stage-{i}", "status": "pending"} for i in range(4)],
        "llm_spent": 0,
    }

    def burst():
        for _ in range(CHECKPOINT_BURST):
            log.save(dict(manifest))

    try:
        run_once(benchmark, burst)
        assert log.load_latest()["seq"] >= CHECKPOINT_BURST
    finally:
        store.close()
