"""Benchmark: regenerate Table III (ReChisel success rates at n = 0, 1, 5, 10)."""

from conftest import run_once

from repro.experiments import table3


def test_table3_rechisel(benchmark, config, harness):
    result = run_once(benchmark, table3.run, config, harness)
    print()
    print(result.render())
    for model in config.models:
        rates = result.rates[model][1]
        # Reflection must improve on the zero-shot baseline for every model.
        assert rates[10] >= rates[0]
