#!/usr/bin/env python
"""Run the toolchain + sweep benchmarks and write ``BENCH_toolchain.json``.

Usage::

    python benchmarks/run_benchmarks.py [output.json] [--check-trend]

Covers the raw toolchain throughput (compile + simulate one case), the
batched verification engine (cold candidate, warm iteration-k+1 and trace vs
step-wise testbench backends, with asserted minimum speedups), the
vectorized simulation backend (deep-verify speedup over the scalar trace
kernels and the 16-candidate lockstep multiple), the
sweep-engine throughput (quick-scale Table I sweep: serial vs parallel
executors, cold vs warm result store), the supervised generation fleet
(warm-fleet throughput vs the serial baseline, O(1) result-store lookups),
the generation-service throughput
(serial latency baseline vs concurrency-32 service vs warm result cache),
the differential-fuzzing engine (generated programs conformance-checked per
second) and the campaign orchestrator (cold end-to-end campaign, warm
zero-replay resume and per-checkpoint manifest cost).
The output is pytest-benchmark's JSON
format (one entry per benchmark with min/mean/stddev/rounds), written to
``BENCH_toolchain.json`` at the repo root by default.  Commit-over-commit
comparisons then only need to diff that file; run it alongside the tier-1
suite when touching the simulator, the Verilog frontend, the toolchain
facades or the sweep engine.

Each successful run also appends one timestamped line to
``BENCH_history.jsonl`` at the repo root — benchmark name to mean/min
seconds, keyed by UTC time and the current commit — so the perf trajectory
is a queryable trend, not just the latest snapshot.  ``--check-trend`` then
compares the two most recent snapshots per benchmark (see
``bench_trend.py``) and exits nonzero when any mean slowed by more than 20%.
"""

from __future__ import annotations

import datetime
import json
import os
import subprocess
import sys

import pytest


def _current_commit(root: str) -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except OSError:
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def append_history(root: str, results_path: str, history_path: str | None = None) -> None:
    """Append one timestamped snapshot line per run to ``BENCH_history.jsonl``."""
    with open(results_path, "r", encoding="utf-8") as handle:
        results = json.load(handle)
    snapshot = {
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "commit": _current_commit(root),
        "benchmarks": {
            entry["name"]: {
                "mean": entry["stats"]["mean"],
                "min": entry["stats"]["min"],
                "rounds": entry["stats"]["rounds"],
            }
            for entry in results.get("benchmarks", [])
        },
    }
    path = history_path or os.path.join(root, "BENCH_history.jsonl")
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(snapshot, sort_keys=True) + "\n")


def main(argv: list[str]) -> int:
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    args = list(argv[1:])
    check_trend_after = "--check-trend" in args
    if check_trend_after:
        args.remove("--check-trend")
    output = args[0] if args else os.path.join(root, "BENCH_toolchain.json")
    src = os.path.join(root, "src")
    sys.path.insert(0, src)
    os.environ["PYTHONPATH"] = src + os.pathsep + os.environ.get("PYTHONPATH", "")
    status = pytest.main(
        [
            os.path.join(root, "benchmarks", "test_toolchain_throughput.py"),
            os.path.join(root, "benchmarks", "test_verify_throughput.py"),
            os.path.join(root, "benchmarks", "test_vector_throughput.py"),
            os.path.join(root, "benchmarks", "test_sweep_throughput.py"),
            os.path.join(root, "benchmarks", "test_fleet_throughput.py"),
            os.path.join(root, "benchmarks", "test_service_throughput.py"),
            os.path.join(root, "benchmarks", "test_fuzz_throughput.py"),
            os.path.join(root, "benchmarks", "test_campaign_throughput.py"),
            os.path.join(root, "benchmarks", "test_events_overhead.py"),
            "--benchmark-only",
            f"--benchmark-json={output}",
            "-q",
        ]
    )
    if status == 0:
        append_history(root, output)
        if check_trend_after:
            from bench_trend import check_trend

            if check_trend(os.path.join(root, "BENCH_history.jsonl")):
                return 1
    return status


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
