#!/usr/bin/env python
"""Run the toolchain + sweep benchmarks and write ``BENCH_toolchain.json``.

Usage::

    python benchmarks/run_benchmarks.py [output.json]

Covers the raw toolchain throughput (compile + simulate one case), the
batched verification engine (cold candidate, warm iteration-k+1 and trace vs
step-wise testbench backends, with asserted minimum speedups), the
sweep-engine throughput (quick-scale Table I sweep: serial vs parallel
executors, cold vs warm result store), the supervised generation fleet
(warm-fleet throughput vs the serial baseline, O(1) result-store lookups),
the generation-service throughput
(serial latency baseline vs concurrency-32 service vs warm result cache) and
the differential-fuzzing engine (generated programs conformance-checked per
second).
The output is pytest-benchmark's JSON
format (one entry per benchmark with min/mean/stddev/rounds), written to
``BENCH_toolchain.json`` at the repo root by default.  Commit-over-commit
comparisons then only need to diff that file; run it alongside the tier-1
suite when touching the simulator, the Verilog frontend, the toolchain
facades or the sweep engine.
"""

from __future__ import annotations

import os
import sys

import pytest


def main(argv: list[str]) -> int:
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    output = argv[1] if len(argv) > 1 else os.path.join(root, "BENCH_toolchain.json")
    src = os.path.join(root, "src")
    sys.path.insert(0, src)
    os.environ["PYTHONPATH"] = src + os.pathsep + os.environ.get("PYTHONPATH", "")
    return pytest.main(
        [
            os.path.join(root, "benchmarks", "test_toolchain_throughput.py"),
            os.path.join(root, "benchmarks", "test_verify_throughput.py"),
            os.path.join(root, "benchmarks", "test_sweep_throughput.py"),
            os.path.join(root, "benchmarks", "test_fleet_throughput.py"),
            os.path.join(root, "benchmarks", "test_service_throughput.py"),
            os.path.join(root, "benchmarks", "test_fuzz_throughput.py"),
            "--benchmark-only",
            f"--benchmark-json={output}",
            "-q",
        ]
    )


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
