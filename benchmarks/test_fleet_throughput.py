"""Benchmark: supervised-fleet throughput and result-store lookup cost.

Recorded into ``BENCH_toolchain.json`` by ``python benchmarks/run_benchmarks.py``:

* ``test_fleet_warm_throughput`` — the quick-scale Table I unit set executed
  through a warm :class:`~repro.fleet.supervisor.FleetExecutor` (workers
  spawned and contexts built before timing starts), asserted bit-identical
  to ``SerialExecutor`` and at least as fast as the serial baseline measured
  in the same process (the supervision layer must not cost throughput on a
  multi-core host);
* ``test_store_lookup_is_o1`` — ``get`` latency on the segmented result
  store measured at two store sizes an order of magnitude apart; the
  per-lookup cost must not scale with store size (the in-memory fingerprint
  index maps straight to one seek + read).
"""

import time

from conftest import run_once

from repro.caching import clear_registered_caches
from repro.experiments.config import ExperimentConfig
from repro.experiments.executors import SerialExecutor
from repro.experiments.runner import EvaluationHarness
from repro.experiments.store import ResultStore
from repro.experiments.work import WorkerContext, WorkUnit
from repro.fleet import FleetConfig, FleetExecutor
from repro.verilog.compile_sim import clear_kernel_cache

FLEET_WORKERS = 4

#: A single-core host can't overlap workers, and process scheduling adds
#: noise; demand the fleet stays within this factor of serial rather than
#: strictly faster when there's no parallelism to win.
MAX_SLOWDOWN = 1.25


def _table1_units(config: ExperimentConfig) -> list[WorkUnit]:
    harness = EvaluationHarness(config)
    units = []
    for language in ("chisel", "verilog"):
        for case_index, problem in enumerate(harness.problems()):
            for sample in range(config.samples_per_case):
                units.append(
                    WorkUnit(
                        strategy="zero_shot",
                        model=config.models[0],
                        problem_id=problem.problem_id,
                        case_index=case_index,
                        sample=sample,
                        seed=config.seed,
                        max_iterations=0,
                        knobs=(("language", language),),
                    )
                )
    return units


def _drain(executor, units):
    ordered = [None] * len(units)
    for index, payload in executor.run_stream(units):
        ordered[index] = payload
    return ordered


def test_fleet_warm_throughput(benchmark):
    config = ExperimentConfig.quick()
    units = _table1_units(config)

    # Pin the serial baseline to a cold-cache regime so the comparison does
    # not depend on which earlier tests warmed the process-global stage
    # caches (the warm fleet inherits the serial pass's caches via fork, so
    # its documented advantage is preserved either way).
    clear_registered_caches()
    clear_kernel_cache()
    serial = SerialExecutor(WorkerContext())
    started = time.perf_counter()
    expected = _drain(serial, units)
    serial_seconds = time.perf_counter() - started

    fleet = FleetExecutor(FleetConfig(workers=FLEET_WORKERS))
    try:
        # Warm the fleet: spawn workers, build their contexts, prime caches.
        _drain(fleet, units[: FLEET_WORKERS * 2])
        started = time.perf_counter()
        payloads = run_once(benchmark, _drain, fleet, units)
        fleet_seconds = time.perf_counter() - started
    finally:
        fleet.shutdown()

    assert payloads == expected, "fleet results must be bit-identical to serial"
    assert fleet_seconds <= serial_seconds * MAX_SLOWDOWN, (
        f"warm fleet took {fleet_seconds:.3f}s vs serial {serial_seconds:.3f}s "
        f"(allowed factor {MAX_SLOWDOWN})"
    )


def _unit(index: int) -> WorkUnit:
    return WorkUnit(
        strategy="zero_shot",
        model="Claude 3.5 Sonnet",
        problem_id="passthrough_w8",
        case_index=0,
        sample=index,
        seed=0,
        max_iterations=0,
        knobs=(("language", "chisel"),),
    )


def _fill_store(path, count: int) -> ResultStore:
    store = ResultStore(path, segment_records=1024)
    for index in range(count):
        store.put(f"fp{index:08d}", _unit(index), {"index": index})
    return store


def _mean_lookup_seconds(store: ResultStore, count: int, probes: int = 2000) -> float:
    stride = max(1, count // probes)
    fingerprints = [f"fp{index:08d}" for index in range(0, count, stride)][:probes]
    started = time.perf_counter()
    for fingerprint in fingerprints:
        assert store.get(fingerprint) is not None
    return (time.perf_counter() - started) / len(fingerprints)


def test_store_lookup_is_o1(benchmark, tmp_path):
    small_count, large_count = 1_000, 10_000
    small = _fill_store(tmp_path / "small", small_count)
    large = _fill_store(tmp_path / "large", large_count)
    try:
        small_mean = _mean_lookup_seconds(small, small_count)
        large_mean = run_once(benchmark, _mean_lookup_seconds, large, large_count)
        # 10x the records must not mean meaningfully slower lookups; allow
        # generous jitter headroom, which still rules out any O(n) scan
        # (that would show up as ~10x).
        assert large_mean <= small_mean * 3.0, (
            f"lookup slowed from {small_mean * 1e6:.1f}us to {large_mean * 1e6:.1f}us "
            f"when the store grew {large_count // small_count}x"
        )
    finally:
        small.close()
        large.close()
