#!/usr/bin/env python
"""Compare the last two ``BENCH_history.jsonl`` snapshots per benchmark.

Usage::

    python benchmarks/bench_trend.py [BENCH_history.jsonl] [--threshold 0.20]

``run_benchmarks.py`` appends one timestamped line per successful run, so the
perf trajectory is already on disk; this tool turns it into a regression
gate.  For every benchmark name it finds the two most recent history lines
containing that benchmark (runs covering different file subsets interleave
freely) and compares mean runtimes.  Exit status is nonzero when any
benchmark slowed by more than the threshold (default 20%), which is how
``run_benchmarks.py --check-trend`` fails a commit that quietly lost a
prior commit's speedup without tripping any absolute assertion.

Fewer than two snapshots for a benchmark is reported but never fails: a
fresh clone or a newly-added benchmark has no trend yet.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

DEFAULT_THRESHOLD = 0.20


def load_history(path: str) -> list[dict]:
    """Parse the JSONL history, skipping unparseable lines (partial writes)."""
    snapshots = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(entry, dict) and isinstance(entry.get("benchmarks"), dict):
                snapshots.append(entry)
    return snapshots


def compare_trend(snapshots: list[dict], threshold: float = DEFAULT_THRESHOLD):
    """Per-benchmark deltas between its last two appearances.

    Returns ``(regressions, report_lines)`` where each regression is
    ``(name, previous_mean, current_mean, ratio)``.
    """
    regressions = []
    lines = []
    names: dict[str, None] = {}
    for snapshot in snapshots:
        for name in snapshot["benchmarks"]:
            names.setdefault(name)
    for name in names:
        appearances = [
            (snapshot.get("timestamp", "?"), snapshot.get("commit"), snapshot["benchmarks"][name])
            for snapshot in snapshots
            if name in snapshot["benchmarks"]
        ]
        if len(appearances) < 2:
            lines.append(f"  {name}: only {len(appearances)} snapshot(s), no trend yet")
            continue
        (_, _, previous), (when, commit, current) = appearances[-2], appearances[-1]
        previous_mean = float(previous.get("mean", 0.0))
        current_mean = float(current.get("mean", 0.0))
        if previous_mean <= 0.0:
            lines.append(f"  {name}: previous mean is zero, skipped")
            continue
        ratio = current_mean / previous_mean
        delta = (ratio - 1.0) * 100.0
        marker = ""
        if ratio > 1.0 + threshold:
            marker = "  ** REGRESSION **"
            regressions.append((name, previous_mean, current_mean, ratio))
        lines.append(
            f"  {name}: {previous_mean * 1000:.2f} ms -> {current_mean * 1000:.2f} ms "
            f"({delta:+.1f}%) at {commit or '?'} {when}{marker}"
        )
    return regressions, lines


def check_trend(history_path: str, threshold: float = DEFAULT_THRESHOLD) -> int:
    """Print the trend report; return the number of regressions."""
    if not os.path.exists(history_path):
        print(f"bench-trend: no history at {history_path} (nothing to compare)")
        return 0
    snapshots = load_history(history_path)
    if len(snapshots) < 2:
        print(
            f"bench-trend: {len(snapshots)} snapshot(s) in {history_path}, "
            "need two runs for a trend"
        )
        return 0
    regressions, lines = compare_trend(snapshots, threshold)
    print(f"bench-trend: last-two-snapshot deltas (threshold {threshold * 100:.0f}%):")
    for line in lines:
        print(line)
    if regressions:
        print(
            f"bench-trend: {len(regressions)} benchmark(s) regressed "
            f"beyond {threshold * 100:.0f}%"
        )
    return len(regressions)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    default_history = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "BENCH_history.jsonl",
    )
    parser.add_argument("history", nargs="?", default=default_history)
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD)
    args = parser.parse_args(argv)
    return 1 if check_trend(args.history, args.threshold) else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
