"""Benchmark: sweep-engine throughput on the quick-scale Table I sweep.

Tracks the three regimes the sweep execution engine is built for, recorded
into ``BENCH_toolchain.json`` by ``python benchmarks/run_benchmarks.py``:

* ``test_sweep_serial_cold`` — jobs=1, empty result store: the baseline cost
  of executing every work unit;
* ``test_sweep_parallel_cold`` — jobs=4 over a process pool; asserted
  bit-identical to the serial run (on a single-core host this records the
  pool overhead rather than a speedup — the wall-clock delta is the point);
* ``test_sweep_warm_store`` — a rerun against the persisted store, asserted
  to execute zero new work units.
"""

import dataclasses

from conftest import run_once

from repro.experiments import table1
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import EvaluationHarness

PARALLEL_JOBS = 4

_reference_rows = None


def _sweep_config(store_path=None, jobs=1) -> ExperimentConfig:
    return dataclasses.replace(ExperimentConfig.quick(), jobs=jobs, store_path=store_path)


def _run_table1(config):
    harness = EvaluationHarness(config)
    result = table1.run(config, harness)
    return result, harness.engine.stats


def _rows(result) -> list[tuple]:
    return [(row.model, row.chisel, row.verilog) for row in result.rows]


def _expected_units(config) -> int:
    harness = EvaluationHarness(config)
    # chisel + verilog sweeps per model.
    return 2 * len(config.models) * len(harness.problems()) * config.samples_per_case


def _serial_reference() -> list[tuple]:
    global _reference_rows
    if _reference_rows is None:
        result, _ = _run_table1(_sweep_config())
        _reference_rows = _rows(result)
    return _reference_rows


def test_sweep_serial_cold(benchmark):
    config = _sweep_config()
    result, stats = run_once(benchmark, _run_table1, config)
    assert stats.executed == _expected_units(config)
    assert _rows(result) == _serial_reference()


def test_sweep_parallel_cold(benchmark):
    config = _sweep_config(jobs=PARALLEL_JOBS)
    result, stats = run_once(benchmark, _run_table1, config)
    assert stats.executed == _expected_units(config)
    assert _rows(result) == _serial_reference()


def test_sweep_warm_store(benchmark, tmp_path):
    store_path = str(tmp_path / "results.jsonl")
    cold_result, cold_stats = _run_table1(_sweep_config(store_path=store_path))
    assert cold_stats.executed == _expected_units(_sweep_config())

    result, stats = run_once(benchmark, _run_table1, _sweep_config(store_path=store_path))
    assert stats.executed == 0
    assert stats.store_hits == cold_stats.executed
    assert _rows(result) == _rows(cold_result)
