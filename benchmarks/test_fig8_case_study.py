"""Benchmark: regenerate Fig. 8 (the Vector5 reflection case study)."""

from conftest import run_once

from repro.experiments import fig8_case_study


def test_fig8_case_study(benchmark):
    result = run_once(benchmark, fig8_case_study.run)
    print()
    print(result.render())
    assert [step.outcome for step in result.steps] == ["syntax", "syntax", "functional", "success"]
