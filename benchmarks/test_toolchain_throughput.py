"""Benchmark: raw toolchain throughput (compile + simulate one benchmark case).

Not a paper table, but the number that determines how long the paper-scale
sweeps take; useful for tracking performance regressions in the substrate.
"""

from repro.problems.registry import build_default_registry
from repro.toolchain.compiler import ChiselCompiler
from repro.toolchain.simulator import Simulator

REGISTRY = build_default_registry()
COMPILER = ChiselCompiler(top="TopModule")
SIMULATOR = Simulator(top="TopModule")


def _compile_and_simulate():
    problem = REGISTRY.by_id("alu_w8")
    compiled = COMPILER.compile(problem.golden_chisel)
    outcome = SIMULATOR.simulate(compiled.verilog, compiled.verilog, problem.build_testbench())
    assert outcome.success


def test_compile_and_simulate_alu(benchmark):
    benchmark(_compile_and_simulate)
