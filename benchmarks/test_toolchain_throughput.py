"""Benchmark: raw toolchain throughput (compile + simulate one benchmark case).

Not a paper table, but the number that determines how long the paper-scale
sweeps take; useful for tracking performance regressions in the substrate.
``python benchmarks/run_benchmarks.py`` runs this file and writes the
pytest-benchmark JSON to ``BENCH_toolchain.json`` so the perf trajectory is
recorded PR over PR.

Three variants are tracked:

* ``test_compile_and_simulate_alu`` — the production path: compiled simulation
  kernels plus the compile/parse/kernel caches (steady-state, caches warm);
* ``test_compile_and_simulate_alu_interpreter`` — the same workload forced
  onto the tree-walking interpreter backend, to keep the compiled-vs-
  interpreter gap visible;
* ``test_simulate_alu_cold_compile`` — cache-defeating variant that pays the
  Chisel compile on every round.
"""

import pytest

from repro.problems.registry import build_default_registry
from repro.toolchain.compiler import ChiselCompiler
from repro.toolchain.simulator import Simulator

REGISTRY = build_default_registry()
COMPILER = ChiselCompiler(top="TopModule")
SIMULATOR = Simulator(top="TopModule")


def _compile_and_simulate():
    problem = REGISTRY.by_id("alu_w8")
    compiled = COMPILER.compile(problem.golden_chisel)
    outcome = SIMULATOR.simulate(compiled.verilog, compiled.verilog, problem.build_testbench())
    assert outcome.success


def test_compile_and_simulate_alu(benchmark):
    benchmark(_compile_and_simulate)


def test_compile_and_simulate_alu_interpreter(benchmark, monkeypatch):
    monkeypatch.setenv("REPRO_SIM_BACKEND", "interpreter")
    benchmark(_compile_and_simulate)


@pytest.mark.cache_mutating
def test_simulate_alu_cold_compile(benchmark):
    from repro.caching import clear_registered_caches
    from repro.verilog.compile_sim import clear_kernel_cache

    cold_compiler = ChiselCompiler(top="TopModule", cache_size=None)
    problem = REGISTRY.by_id("alu_w8")

    def run():
        # The compile pipeline is incrementally cached at every stage, so a
        # cache-less compiler alone no longer defeats memoization: clear the
        # shared stage/kernel caches to pay the full compile each round.
        clear_registered_caches()
        clear_kernel_cache()
        compiled = cold_compiler.compile(problem.golden_chisel)
        outcome = SIMULATOR.simulate(
            compiled.verilog, compiled.verilog, problem.build_testbench()
        )
        assert outcome.success

    benchmark(run)
