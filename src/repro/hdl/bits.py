"""Fixed-width two-state bit vector arithmetic.

The simulator and constant-folding passes are two-state (0/1): the paper's
pipeline only needs value comparison between a DUT and a reference module, so
X/Z propagation is unnecessary.  Widths follow Chisel/FIRRTL conventions:

* ``+`` / ``-`` produce ``max(w_a, w_b)`` bits (wrapping) while ``+&`` / ``-&``
  produce ``max(w_a, w_b) + 1`` bits (expanding);
* ``*`` produces ``w_a + w_b`` bits;
* comparison operators produce a 1-bit unsigned result;
* concatenation produces ``w_a + w_b`` bits.
"""

from __future__ import annotations

from dataclasses import dataclass


def mask(width: int) -> int:
    """Return an all-ones integer of ``width`` bits."""
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    return (1 << width) - 1


def min_width_for(value: int, signed: bool = False) -> int:
    """Return the minimum number of bits needed to represent ``value``.

    Unsigned values need ``value.bit_length()`` bits (at least 1).  Signed
    values need one extra sign bit; negative values follow two's complement.
    """
    if not signed:
        if value < 0:
            raise ValueError("unsigned literal cannot be negative")
        return max(1, value.bit_length())
    if value >= 0:
        return value.bit_length() + 1
    return (-value - 1).bit_length() + 1


def to_unsigned(value: int, width: int) -> int:
    """Truncate ``value`` to ``width`` bits, interpreting the result as unsigned."""
    return value & mask(width)


def to_signed(value: int, width: int) -> int:
    """Truncate ``value`` to ``width`` bits, interpreting the result as two's complement."""
    if width == 0:
        return 0
    value &= mask(width)
    if value & (1 << (width - 1)):
        return value - (1 << width)
    return value


@dataclass(frozen=True)
class Bits:
    """An immutable fixed-width hardware value.

    ``value`` is always stored as the unsigned (masked) representation;
    ``signed`` controls how arithmetic and comparisons interpret it.
    """

    value: int
    width: int
    signed: bool = False

    def __post_init__(self) -> None:
        if self.width < 0:
            raise ValueError(f"Bits width must be non-negative, got {self.width}")
        object.__setattr__(self, "value", self.value & mask(self.width))

    # -- interpretation ----------------------------------------------------

    @property
    def as_int(self) -> int:
        """The Python integer this value represents (sign-aware)."""
        if self.signed:
            return to_signed(self.value, self.width)
        return self.value

    @property
    def as_bool(self) -> bool:
        return self.value != 0

    def __index__(self) -> int:
        return self.value

    def __bool__(self) -> bool:
        return self.as_bool

    # -- construction helpers ----------------------------------------------

    @staticmethod
    def from_int(value: int, width: int | None = None, signed: bool = False) -> "Bits":
        """Build a :class:`Bits` from a Python int, inferring width if omitted."""
        if width is None:
            width = min_width_for(value, signed=signed)
        return Bits(value, width, signed)

    @staticmethod
    def bool_(flag: bool) -> "Bits":
        return Bits(1 if flag else 0, 1, False)

    # -- bit access ---------------------------------------------------------

    def bit(self, index: int) -> "Bits":
        """Extract a single bit as a 1-bit unsigned value."""
        if index < 0 or index >= self.width:
            raise IndexError(
                f"bit index {index} is out of bounds (min 0, max {self.width - 1})"
            )
        return Bits((self.value >> index) & 1, 1, False)

    def extract(self, hi: int, lo: int) -> "Bits":
        """Extract bits ``hi`` down to ``lo`` inclusive as an unsigned value."""
        if lo < 0 or hi >= self.width or hi < lo:
            raise IndexError(
                f"bit range [{hi}:{lo}] is out of bounds for width {self.width}"
            )
        return Bits((self.value >> lo) & mask(hi - lo + 1), hi - lo + 1, False)

    # -- width / sign conversion ---------------------------------------------

    def resize(self, width: int) -> "Bits":
        """Truncate or sign-/zero-extend to ``width`` bits, keeping signedness."""
        if width == self.width:
            return self
        if width > self.width:
            return Bits(to_unsigned(self.as_int, width), width, self.signed)
        return Bits(self.value & mask(width), width, self.signed)

    def as_unsigned(self) -> "Bits":
        return Bits(self.value, self.width, False)

    def as_signed(self) -> "Bits":
        return Bits(self.value, self.width, True)

    # -- arithmetic ----------------------------------------------------------

    def _result_width(self, other: "Bits") -> int:
        return max(self.width, other.width)

    def _binary_signed(self, other: "Bits") -> bool:
        return self.signed and other.signed

    def add(self, other: "Bits") -> "Bits":
        w = self._result_width(other)
        return Bits(self.as_int + other.as_int, w, self._binary_signed(other))

    def add_expand(self, other: "Bits") -> "Bits":
        w = self._result_width(other) + 1
        return Bits(self.as_int + other.as_int, w, self._binary_signed(other))

    def sub(self, other: "Bits") -> "Bits":
        w = self._result_width(other)
        return Bits(self.as_int - other.as_int, w, self._binary_signed(other))

    def sub_expand(self, other: "Bits") -> "Bits":
        w = self._result_width(other) + 1
        return Bits(self.as_int - other.as_int, w, self._binary_signed(other))

    def mul(self, other: "Bits") -> "Bits":
        w = self.width + other.width
        return Bits(self.as_int * other.as_int, w, self._binary_signed(other))

    def div(self, other: "Bits") -> "Bits":
        signed = self._binary_signed(other)
        w = self.width + (1 if signed else 0)
        if other.as_int == 0:
            return Bits(0, w, signed)
        quotient = abs(self.as_int) // abs(other.as_int)
        if (self.as_int < 0) != (other.as_int < 0):
            quotient = -quotient
        return Bits(quotient, w, signed)

    def rem(self, other: "Bits") -> "Bits":
        signed = self._binary_signed(other)
        w = min(self.width, other.width)
        if other.as_int == 0:
            return Bits(0, w, signed)
        remainder = abs(self.as_int) % abs(other.as_int)
        if self.as_int < 0:
            remainder = -remainder
        return Bits(remainder, w, signed)

    def neg(self) -> "Bits":
        return Bits(-self.as_int, self.width + 1, True)

    # -- bitwise ---------------------------------------------------------------

    def bit_and(self, other: "Bits") -> "Bits":
        w = self._result_width(other)
        return Bits(self.value & other.value, w, False)

    def bit_or(self, other: "Bits") -> "Bits":
        w = self._result_width(other)
        return Bits(self.value | other.value, w, False)

    def bit_xor(self, other: "Bits") -> "Bits":
        w = self._result_width(other)
        return Bits(self.value ^ other.value, w, False)

    def bit_not(self) -> "Bits":
        return Bits(~self.value, self.width, False)

    def and_reduce(self) -> "Bits":
        return Bits.bool_(self.value == mask(self.width) and self.width > 0)

    def or_reduce(self) -> "Bits":
        return Bits.bool_(self.value != 0)

    def xor_reduce(self) -> "Bits":
        return Bits.bool_(bin(self.value).count("1") % 2 == 1)

    def popcount(self) -> "Bits":
        count = bin(self.value).count("1")
        return Bits.from_int(count, max(1, min_width_for(self.width)))

    # -- shifts -----------------------------------------------------------------

    def shl(self, amount: int) -> "Bits":
        return Bits(self.value << amount, self.width + amount, self.signed)

    def shr(self, amount: int) -> "Bits":
        w = max(1, self.width - amount)
        return Bits(self.as_int >> amount, w, self.signed)

    def dshl(self, other: "Bits") -> "Bits":
        return Bits(self.value << other.value, self.width + mask(other.width).bit_length(), self.signed)

    def dshr(self, other: "Bits") -> "Bits":
        return Bits(self.as_int >> other.value, self.width, self.signed)

    # -- comparisons ------------------------------------------------------------

    def eq(self, other: "Bits") -> "Bits":
        return Bits.bool_(self.as_int == other.as_int)

    def neq(self, other: "Bits") -> "Bits":
        return Bits.bool_(self.as_int != other.as_int)

    def lt(self, other: "Bits") -> "Bits":
        return Bits.bool_(self.as_int < other.as_int)

    def le(self, other: "Bits") -> "Bits":
        return Bits.bool_(self.as_int <= other.as_int)

    def gt(self, other: "Bits") -> "Bits":
        return Bits.bool_(self.as_int > other.as_int)

    def ge(self, other: "Bits") -> "Bits":
        return Bits.bool_(self.as_int >= other.as_int)

    # -- structural -----------------------------------------------------------

    def cat(self, other: "Bits") -> "Bits":
        """Concatenate with ``self`` as the most-significant part."""
        return Bits((self.value << other.width) | other.value, self.width + other.width, False)

    def replicate(self, times: int) -> "Bits":
        if times < 0:
            raise ValueError("replication count must be non-negative")
        result = Bits(0, 0)
        for _ in range(times):
            result = result.cat(self)
        return result

    def reverse(self) -> "Bits":
        out = 0
        for i in range(self.width):
            out = (out << 1) | ((self.value >> i) & 1)
        return Bits(out, self.width, False)

    # -- misc --------------------------------------------------------------------

    def to_binary_string(self) -> str:
        if self.width == 0:
            return ""
        return format(self.value, f"0{self.width}b")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sign = "S" if self.signed else "U"
        return f"Bits({self.as_int}, {sign}{self.width})"
