"""Parsing of Chisel- and Verilog-style literal strings into :class:`Bits`.

Chisel string literals use a leading base character (``"b001".U``,
``"hff".U``, ``"o17".U``, ``"d42".U``); Verilog literals use the
``<width>'<base><digits>`` form (``8'hff``).  Both are normalised here so the
elaborator, the Verilog parser and the testbench stimuli share one code path.
"""

from __future__ import annotations

from repro.hdl.bits import Bits, min_width_for


class LiteralError(ValueError):
    """Raised when a literal string cannot be parsed."""


_BASES = {"b": 2, "o": 8, "d": 10, "h": 16, "x": 16}


def _clean(digits: str) -> str:
    return digits.replace("_", "").strip()


def parse_literal(text: str, width: int | None = None, signed: bool = False) -> Bits:
    """Parse a literal string into a :class:`Bits` value.

    Accepts Chisel-style strings (``b001``, ``hff``, ``d42``, plain ``42``),
    and Verilog sized literals (``8'hff``, ``4'b1010``).  ``width`` overrides
    the inferred width when given.
    """
    text = text.strip()
    if not text:
        raise LiteralError("empty literal")

    if "'" in text:
        return _parse_verilog_literal(text, signed=signed)

    base = 10
    digits = text
    if text[0].lower() in _BASES and not text.isdigit():
        base = _BASES[text[0].lower()]
        digits = text[1:]
    digits = _clean(digits)
    if not digits:
        raise LiteralError(f"literal {text!r} has no digits")
    try:
        value = int(digits, base)
    except ValueError as exc:
        raise LiteralError(f"cannot parse literal {text!r}: {exc}") from None

    # Binary/octal/hex string literals keep the width implied by their digit
    # count (so "b0010" is 4 bits wide); decimal literals use the minimal width.
    if base == 10:
        inferred = min_width_for(value, signed=signed)
    else:
        bits_per_digit = {2: 1, 8: 3, 16: 4}[base]
        inferred = max(len(digits) * bits_per_digit, min_width_for(value, signed=signed))
    if width is None:
        width = inferred
    elif width < inferred:
        raise LiteralError(
            f"literal {text!r} needs {inferred} bits but width {width} was requested"
        )
    return Bits(value, width, signed)


def _parse_verilog_literal(text: str, signed: bool = False) -> Bits:
    width_part, _, rest = text.partition("'")
    rest = rest.strip()
    if not rest:
        raise LiteralError(f"malformed Verilog literal {text!r}")
    if rest[0].lower() == "s":
        signed = True
        rest = rest[1:]
    if not rest:
        raise LiteralError(f"malformed Verilog literal {text!r}")
    base_char = rest[0].lower()
    if base_char in _BASES:
        base = _BASES[base_char]
        digits = _clean(rest[1:])
    else:
        base = 10
        digits = _clean(rest)
    try:
        value = int(digits, base)
    except ValueError as exc:
        raise LiteralError(f"cannot parse Verilog literal {text!r}: {exc}") from None

    width_part = width_part.strip()
    if width_part:
        try:
            width = int(width_part)
        except ValueError as exc:
            raise LiteralError(f"bad width in Verilog literal {text!r}: {exc}") from None
    else:
        width = min_width_for(value, signed=signed)
    return Bits(value, width, signed)
