"""Shared HDL value substrate: fixed-width two-state bit vectors and literals.

Every layer of the toolchain (Chisel elaboration, FIRRTL constant folding,
Verilog simulation, testbench comparison) manipulates hardware values through
the :class:`~repro.hdl.bits.Bits` type defined here, so width and signedness
semantics are consistent end to end.
"""

from repro.hdl.bits import Bits, mask, min_width_for, to_signed, to_unsigned
from repro.hdl.literals import LiteralError, parse_literal

__all__ = [
    "Bits",
    "mask",
    "min_width_for",
    "to_signed",
    "to_unsigned",
    "parse_literal",
    "LiteralError",
]
