"""One-time static analysis for the compiled simulation backend.

The tree-walking interpreter in :mod:`repro.verilog.simulator` re-derives
expression widths and signedness on every evaluation and settles combinational
logic with a bounded fixed-point loop.  Everything it derives is *static*: it
depends only on the module text, never on simulated values.  This module hoists
that work out of the simulation inner loop:

* :class:`ModuleAnalysis` builds the signal table once and memoizes the
  context-determined width and signedness of every sub-expression;
* combinational *nodes* (continuous assigns and ``always @(*)`` blocks) are
  topologically sorted by data dependency so a settle becomes one ordered
  pass; true combinational cycles are detected here, at compile time, and
  reported as :class:`CombLoopError` so the caller can fall back to the
  bounded-iteration interpreter;
* :func:`module_fingerprint` gives a stable content hash used to cache
  compiled kernels across repeated candidate attempts.

The analysis is deliberately conservative: any structure whose once-through
evaluation could diverge from the interpreter's fixed point (latch-like
self-reads, multiple full drivers of one net) is rejected as unsupported and
the interpreter remains the source of truth.
"""

from __future__ import annotations

import hashlib
import heapq
from dataclasses import dataclass, field

from repro.hdl.bits import mask as bit_mask
from repro.verilog import vast


class AnalysisError(Exception):
    """The module is outside what the compiled backend supports."""


class CombLoopError(AnalysisError):
    """A true combinational cycle (or a structure we must treat as one)."""


@dataclass(frozen=True)
class SignalMeta:
    """Static facts about one declared signal."""

    name: str
    slot: int
    width: int
    signed: bool
    is_input: bool
    depth: int | None = None  # memory arrays: number of elements

    @property
    def mask(self) -> int:
        return bit_mask(self.width)

    @property
    def is_memory(self) -> bool:
        return self.depth is not None


@dataclass
class CombNode:
    """One schedulable unit of combinational logic."""

    index: int  # position in source order (assigns first, then blocks)
    kind: str  # "assign" | "block"
    item: vast.VAssign | vast.VAlways
    reads: frozenset[str] = frozenset()
    writes: frozenset[str] = frozenset()
    full_writes: frozenset[str] = frozenset()


# Operators whose result is one self-determined bit.
_BOOL_BINOPS = ("==", "!=", "===", "!==", "<", "<=", ">", ">=", "&&", "||")
_REDUCTIONS = ("&", "|", "^", "~&", "~|", "~^", "!")


class ModuleAnalysis:
    """Width/signedness resolution and combinational scheduling for one module."""

    def __init__(self, module: vast.VModule):
        self.module = module
        self.signals: dict[str, SignalMeta] = {}
        # Memos key by id() but store the expression alongside the result,
        # pinning its lifetime so a freed node's address can never be reused
        # by a different expression and serve a stale entry.
        self._width_memo: dict[int, tuple[vast.VExpr, int]] = {}
        self._signed_memo: dict[int, tuple[vast.VExpr, bool]] = {}
        self._schedule: list[CombNode] | None = None
        self._build_signal_table()

    # ------------------------------------------------------------ signal table

    def _build_signal_table(self) -> None:
        # Mirrors Simulation.__post_init__: ports first, then nets; an
        # ``output reg q`` style re-declaration refines signedness only.
        widths: dict[str, tuple[int, bool, bool, int | None]] = {}
        order: list[str] = []
        for port in self.module.ports:
            widths[port.name] = (port.width, port.signed, port.direction == "input", None)
            order.append(port.name)
        for net in self.module.nets:
            if net.name in widths:
                width, signed, is_input, depth = widths[net.name]
                widths[net.name] = (width, signed or net.signed, is_input, depth)
                continue
            widths[net.name] = (net.width, net.signed, False, net.depth)
            order.append(net.name)
        for slot, name in enumerate(order):
            width, signed, is_input, depth = widths[name]
            self.signals[name] = SignalMeta(name, slot, width, signed, is_input, depth)

    def memories(self) -> list[SignalMeta]:
        """All declared memory arrays, in slot order."""
        return [meta for meta in self.signals.values() if meta.is_memory]

    def meta(self, name: str) -> SignalMeta:
        try:
            return self.signals[name]
        except KeyError:
            raise AnalysisError(
                f"reference to undeclared signal {name!r} in module {self.module.name}"
            ) from None

    # -------------------------------------------------------- width / signedness

    def width(self, expr: vast.VExpr) -> int:
        """Self-determined width of ``expr`` (memoized by node identity)."""
        cached = self._width_memo.get(id(expr))
        if cached is not None:
            return cached[1]
        width = self._width_of(expr)
        self._width_memo[id(expr)] = (expr, width)
        return width

    def _width_of(self, expr: vast.VExpr) -> int:
        if isinstance(expr, vast.VIdent):
            return self.meta(expr.name).width
        if isinstance(expr, vast.VLiteral):
            return expr.width if expr.width is not None else 32
        if isinstance(expr, vast.VUnary):
            if expr.op in _REDUCTIONS:
                return 1
            return self.width(expr.operand)
        if isinstance(expr, vast.VBinary):
            if expr.op in _BOOL_BINOPS:
                return 1
            if expr.op in ("<<", ">>", "<<<", ">>>"):
                return self.width(expr.left)
            return max(self.width(expr.left), self.width(expr.right))
        if isinstance(expr, vast.VTernary):
            return max(self.width(expr.true_value), self.width(expr.false_value))
        if isinstance(expr, vast.VConcat):
            return sum(self.width(p) for p in expr.parts)
        if isinstance(expr, vast.VRepeat):
            return expr.count * self.width(expr.value)
        if isinstance(expr, vast.VIndex):
            if isinstance(expr.target, vast.VIdent):
                meta = self.meta(expr.target.name)
                if meta.is_memory:
                    # Element select of a memory array yields the element width.
                    return meta.width
            return 1
        if isinstance(expr, vast.VRange):
            return expr.msb - expr.lsb + 1
        if isinstance(expr, vast.VCall):
            return self.width(expr.args[0])
        raise AnalysisError(f"cannot compute width of {expr!r}")

    def signedness(self, expr: vast.VExpr) -> bool:
        """Signedness of ``expr`` under the interpreter's rules (memoized)."""
        cached = self._signed_memo.get(id(expr))
        if cached is not None:
            return cached[1]
        signed = self._signed_of(expr)
        self._signed_memo[id(expr)] = (expr, signed)
        return signed

    def _signed_of(self, expr: vast.VExpr) -> bool:
        if isinstance(expr, vast.VIdent):
            return self.meta(expr.name).signed
        if isinstance(expr, vast.VLiteral):
            return expr.signed
        if isinstance(expr, vast.VCall):
            return expr.name == "$signed"
        if isinstance(expr, vast.VUnary):
            if expr.op in _REDUCTIONS:
                return False
            return self.signedness(expr.operand)
        if isinstance(expr, vast.VBinary):
            if expr.op in _BOOL_BINOPS:
                return False
            return self.signedness(expr.left) and self.signedness(expr.right)
        if isinstance(expr, vast.VTernary):
            return self.signedness(expr.true_value) and self.signedness(expr.false_value)
        if isinstance(expr, vast.VIndex) and isinstance(expr.target, vast.VIdent):
            meta = self.meta(expr.target.name)
            if meta.is_memory:
                # Element select of a signed memory array stays signed.
                return meta.signed
        return False

    # ------------------------------------------------------------- dependencies

    def _expr_reads(self, expr: vast.VExpr, defined: set[str], reads: set[str]) -> None:
        if isinstance(expr, vast.VIdent):
            if expr.name not in defined:
                reads.add(expr.name)
            return
        if isinstance(expr, vast.VLiteral):
            return
        if isinstance(expr, vast.VUnary):
            self._expr_reads(expr.operand, defined, reads)
        elif isinstance(expr, vast.VBinary):
            self._expr_reads(expr.left, defined, reads)
            self._expr_reads(expr.right, defined, reads)
        elif isinstance(expr, vast.VTernary):
            self._expr_reads(expr.condition, defined, reads)
            self._expr_reads(expr.true_value, defined, reads)
            self._expr_reads(expr.false_value, defined, reads)
        elif isinstance(expr, vast.VConcat):
            for part in expr.parts:
                self._expr_reads(part, defined, reads)
        elif isinstance(expr, vast.VRepeat):
            self._expr_reads(expr.value, defined, reads)
        elif isinstance(expr, vast.VIndex):
            self._expr_reads(expr.target, defined, reads)
            self._expr_reads(expr.index, defined, reads)
        elif isinstance(expr, vast.VRange):
            self._expr_reads(expr.target, defined, reads)
        elif isinstance(expr, vast.VCall):
            for arg in expr.args:
                self._expr_reads(arg, defined, reads)
        else:
            raise AnalysisError(f"unsupported expression {expr!r}")

    def _target_io(
        self,
        target: vast.VExpr,
        defined: set[str],
        reads: set[str],
        writes: set[str],
        full_writes: set[str],
    ) -> None:
        if isinstance(target, vast.VIdent):
            writes.add(target.name)
            full_writes.add(target.name)
            defined.add(target.name)
            return
        if isinstance(target, vast.VIndex):
            base = target.target
            if not isinstance(base, vast.VIdent):
                raise AnalysisError(f"unsupported assignment target {target!r}")
            self._expr_reads(target.index, defined, reads)
            # Partial writes read-modify-write the accumulated store; the
            # implicit base read does not constitute a data dependency.
            writes.add(base.name)
            return
        if isinstance(target, vast.VRange):
            base = target.target
            if not isinstance(base, vast.VIdent):
                raise AnalysisError(f"unsupported assignment target {target!r}")
            writes.add(base.name)
            return
        raise AnalysisError(f"unsupported assignment target {target!r}")

    def _stmts_io(
        self,
        stmts: list[vast.VStmt],
        defined: set[str],
        reads: set[str],
        writes: set[str],
        full_writes: set[str],
    ) -> None:
        """Use-before-def analysis over a statement list (mutates ``defined``)."""
        for stmt in stmts:
            if isinstance(stmt, (vast.VBlockingAssign, vast.VNonBlockingAssign)):
                if (
                    isinstance(stmt, vast.VBlockingAssign)
                    and isinstance(stmt.target, vast.VIdent)
                    and stmt.target.name == "_"
                ):
                    continue  # null statement placeholder, skipped by the interpreter
                self._expr_reads(stmt.value, defined, reads)
                self._target_io(stmt.target, defined, reads, writes, full_writes)
            elif isinstance(stmt, vast.VIf):
                self._expr_reads(stmt.condition, defined, reads)
                then_defined = set(defined)
                else_defined = set(defined)
                self._stmts_io(stmt.then_body, then_defined, reads, writes, full_writes)
                self._stmts_io(stmt.else_body, else_defined, reads, writes, full_writes)
                defined |= then_defined & else_defined
            elif isinstance(stmt, vast.VCase):
                self._expr_reads(stmt.subject, defined, reads)
                branch_defined: list[set[str]] = []
                has_default = False
                for item in stmt.items:
                    if item.patterns is None:
                        has_default = True
                    else:
                        for pattern in item.patterns:
                            self._expr_reads(pattern, defined, reads)
                    item_defined = set(defined)
                    self._stmts_io(item.body, item_defined, reads, writes, full_writes)
                    branch_defined.append(item_defined)
                if has_default and branch_defined:
                    common = set.intersection(*branch_defined)
                    defined |= common
            else:
                raise AnalysisError(f"unsupported statement {stmt!r}")

    def comb_nodes(self) -> list[CombNode]:
        """All combinational nodes with their read/write sets, in source order."""
        nodes: list[CombNode] = []
        for assign in self.module.assigns:
            reads: set[str] = set()
            writes: set[str] = set()
            full_writes: set[str] = set()
            defined: set[str] = set()
            self._expr_reads(assign.value, defined, reads)
            self._target_io(assign.target, defined, reads, writes, full_writes)
            nodes.append(
                CombNode(
                    len(nodes), "assign", assign,
                    frozenset(reads), frozenset(writes), frozenset(full_writes),
                )
            )
        for block in self.module.always_blocks:
            if not block.is_combinational:
                continue
            reads = set()
            writes = set()
            full_writes = set()
            defined = set()
            self._stmts_io(block.body, defined, reads, writes, full_writes)
            nodes.append(
                CombNode(
                    len(nodes), "block", block,
                    frozenset(reads), frozenset(writes), frozenset(full_writes),
                )
            )
        return nodes

    def schedule(self) -> list[CombNode]:
        """Topologically-ordered combinational nodes (one-pass settle order).

        Raises :class:`CombLoopError` for true cycles and for the conservative
        cases (self-reads, multiple full drivers) whose once-through evaluation
        could diverge from the interpreter's fixed point.
        """
        if self._schedule is not None:
            return self._schedule
        nodes = self.comb_nodes()

        writers: dict[str, list[CombNode]] = {}
        for node in nodes:
            if node.reads & node.writes:
                conflicted = sorted(node.reads & node.writes)
                raise CombLoopError(
                    f"combinational node reads its own output(s) {conflicted} "
                    f"in module {self.module.name}"
                )
            for name in node.writes:
                writers.setdefault(name, []).append(node)
        for name, node_list in writers.items():
            if len(node_list) > 1 and any(name in n.full_writes for n in node_list):
                raise CombLoopError(
                    f"signal {name!r} has multiple combinational drivers "
                    f"in module {self.module.name}"
                )

        successors: dict[int, set[int]] = {node.index: set() for node in nodes}
        indegree: dict[int, int] = {node.index: 0 for node in nodes}

        def add_edge(src: int, dst: int) -> None:
            if dst not in successors[src]:
                successors[src].add(dst)
                indegree[dst] += 1

        by_index = {node.index: node for node in nodes}
        for node in nodes:
            for name in node.reads:
                for writer in writers.get(name, ()):
                    if writer.index != node.index:
                        add_edge(writer.index, node.index)
        # Multiple (partial) writers of one signal keep their source order so a
        # once-through pass accumulates bits exactly like the interpreter.
        for node_list in writers.values():
            for earlier, later in zip(node_list, node_list[1:]):
                add_edge(earlier.index, later.index)

        ready = [index for index, degree in indegree.items() if degree == 0]
        heapq.heapify(ready)
        ordered: list[CombNode] = []
        while ready:
            index = heapq.heappop(ready)
            ordered.append(by_index[index])
            for succ in successors[index]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    heapq.heappush(ready, succ)
        if len(ordered) != len(nodes):
            stuck = sorted(set(by_index) - {node.index for node in ordered})
            names = sorted({name for i in stuck for name in by_index[i].writes})
            raise CombLoopError(
                f"combinational cycle through signal(s) {names} in module {self.module.name}"
            )
        self._schedule = ordered
        return ordered

    # ------------------------------------------------------------------ clocks

    def clocks(self) -> list[str]:
        """All signals used as a posedge trigger, in first-seen order."""
        seen: list[str] = []
        for block in self.module.always_blocks:
            for edge, signal in block.edges:
                if edge == "posedge" and signal not in seen:
                    seen.append(signal)
        return seen

    def clocked_blocks(self, clock: str) -> list[vast.VAlways]:
        """Blocks triggered by ``posedge clock`` (the interpreter's rule)."""
        return [
            block
            for block in self.module.always_blocks
            if any(edge == "posedge" and signal == clock for edge, signal in block.edges)
        ]


def module_fingerprint(module: vast.VModule) -> str:
    """Stable content hash of a module, for kernel caching.

    Dataclass ``repr`` is deterministic and covers every field recursively, so
    two structurally identical parses of the same source hash identically.
    """
    payload = repr(
        (
            module.name,
            module.parameters,
            module.ports,
            module.nets,
            module.assigns,
            module.always_blocks,
        )
    )
    return hashlib.sha256(payload.encode()).hexdigest()
