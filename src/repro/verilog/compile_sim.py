"""Compiled simulation backend: Verilog modules → native Python closures.

Where :class:`repro.verilog.simulator.Simulation` walks the AST and re-derives
widths on every evaluation, this module translates a :class:`vast.VModule`
*once* into straight-line Python source operating on a flat ``list[int]`` of
signal slots with all masks, widths and sign-extension constants folded in at
compile time:

* the combinational pass (``comb(s)``) executes the continuous assigns and
  ``always @(*)`` blocks in the topological order computed by
  :class:`~repro.verilog.analysis.ModuleAnalysis`, so settling is a single
  ordered sweep instead of a bounded fixed-point loop;
* one clocked pass per clock (``step(s)``) snapshots non-blocking targets,
  executes the triggered blocks, and commits — reproducing the interpreter's
  blocking/non-blocking semantics exactly;
* the generated source is ``compile()``/``exec``'d into closures and cached by
  module content hash, so repeated candidate attempts across samples and
  iterations never pay for analysis or codegen twice.

Modules using constructs whose once-through evaluation could diverge from the
interpreter (combinational cycles, latch-like self reads, multiple full
drivers) raise :class:`~repro.verilog.analysis.AnalysisError` from
:func:`compile_kernel`; :func:`get_kernel` converts that into ``None`` so the
caller falls back to the interpreter, which stays the semantic oracle.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from functools import cached_property
from typing import Callable, Sequence

from repro.caching import LruCache
from repro.hdl.bits import mask as _mask
from repro.verilog import vast
from repro.verilog.analysis import (
    AnalysisError,
    CombLoopError,
    ModuleAnalysis,
    SignalMeta,
    module_fingerprint,
)

__all__ = [
    "AnalysisError",
    "CombLoopError",
    "KernelTemplate",
    "TraceKernel",
    "TraceSchedule",
    "compile_kernel",
    "compile_trace",
    "get_kernel",
    "get_trace_kernel",
    "kernel_cache_stats",
    "clear_kernel_cache",
]


def _vdiv(a: int, b: int) -> int:
    """Verilog division: truncate toward zero, ``x / 0 == 0``."""
    if b == 0:
        return 0
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _vrem(a: int, b: int) -> int:
    """Verilog remainder: sign follows the dividend, ``x % 0 == 0``."""
    if b == 0:
        return 0
    r = abs(a) % abs(b)
    return -r if a < 0 else r


@dataclass
class KernelTemplate:
    """A compiled module: shared, immutable; per-instance state is a list."""

    module_name: str
    fingerprint: str
    slots: dict[str, SignalMeta]
    n_slots: int
    comb: Callable[[list[int]], None]
    steps: dict[str, Callable[[list[int]], None]] = field(default_factory=dict)
    source: str = ""
    memory_slots: dict[int, int] = field(default_factory=dict)  # slot -> depth

    def new_state(self) -> list[int]:
        state: list = [0] * self.n_slots
        for slot, depth in self.memory_slots.items():
            state[slot] = [0] * depth
        return state


def _sx(code: str, width: int) -> str:
    """Sign-extend a ``width``-bit masked value to a Python int."""
    if width <= 0:
        return code
    sign_bit = 1 << (width - 1)
    return f"((({code}) ^ {sign_bit}) - {sign_bit})"


_COMPARISONS = {
    "==": "==", "===": "==", "!=": "!=", "!==": "!=",
    "<": "<", "<=": "<=", ">": ">", ">=": ">=",
}


class _Store:
    """Where a statement context's writes go and where its RMW reads come from."""

    def __init__(self, lvalue: Callable[[SignalMeta], str]):
        self.lvalue = lvalue


class _Codegen:
    def __init__(self, analysis: ModuleAnalysis):
        self.a = analysis
        self.lines: list[str] = []
        self._tmp = 0

    # ------------------------------------------------------------------ output

    def emit(self, indent: int, text: str) -> None:
        self.lines.append("    " * indent + text)

    def fresh(self) -> str:
        self._tmp += 1
        return f"_t{self._tmp}"

    # ------------------------------------------------------------- expressions

    def gen(self, expr: vast.VExpr, w: int, read: Callable[[str], str]) -> str:
        """Python code for the unsigned value of ``expr`` masked to ``w`` bits.

        ``w`` must be >= the self-determined width of ``expr``; under that
        invariant the produced value matches ``Simulation._eval_sized``'s
        ``.value`` field bit for bit.
        """
        a = self.a
        if isinstance(expr, vast.VIdent):
            meta = a.meta(expr.name)
            if meta.is_memory:
                raise AnalysisError(
                    f"memory {expr.name!r} used as a plain value in module "
                    f"{self.a.module.name}"
                )
            base = read(expr.name)
            if w == meta.width:
                return base
            if w < meta.width:
                return f"({base} & {_mask(w)})"
            if meta.signed:
                return f"({_sx(base, meta.width)} & {_mask(w)})"
            return base
        if isinstance(expr, vast.VLiteral):
            return str(expr.value & _mask(w))
        if isinstance(expr, vast.VCall):
            # $signed / $unsigned only flip the static flag; the raw value
            # (already masked to w) is unchanged.
            return self.gen(expr.args[0], w, read)
        if isinstance(expr, vast.VUnary):
            return self._gen_unary(expr, w, read)
        if isinstance(expr, vast.VBinary):
            return self._gen_binary(expr, w, read)
        if isinstance(expr, vast.VTernary):
            c = self.gen(expr.condition, a.width(expr.condition), read)
            t = self.gen(expr.true_value, w, read)
            f = self.gen(expr.false_value, w, read)
            return f"(({t}) if ({c}) != 0 else ({f}))"
        if isinstance(expr, vast.VConcat):
            parts = []
            offset = sum(a.width(p) for p in expr.parts)
            for part in expr.parts:
                pw = a.width(part)
                offset -= pw
                code = self.gen(part, pw, read)
                parts.append(f"(({code}) << {offset})" if offset else f"({code})")
            return f"({' | '.join(parts)})" if parts else "0"
        if isinstance(expr, vast.VRepeat):
            if expr.count == 0:
                return "0"
            pw = a.width(expr.value)
            code = self.gen(expr.value, pw, read)
            # Multiplying a pw-wide value by 0b...0001_0001 replicates it.
            stamp = sum(1 << (i * pw) for i in range(expr.count))
            return f"(({code}) * {stamp})"
        if isinstance(expr, vast.VIndex):
            if isinstance(expr.target, vast.VIdent):
                meta = a.meta(expr.target.name)
                if meta.is_memory:
                    # Memory element gather; out-of-range reads collapse to 0.
                    t = read(expr.target.name)
                    i = self.gen(expr.index, a.width(expr.index), read)
                    base = f"(({t})[({i})] if ({i}) < {meta.depth} else 0)"
                    if w < meta.width:
                        return f"({base} & {_mask(w)})"
                    if w > meta.width and meta.signed:
                        return f"({_sx(base, meta.width)} & {_mask(w)})"
                    return base
            tw = a.width(expr.target)
            t = self.gen(expr.target, tw, read)
            if isinstance(expr.index, vast.VLiteral):
                index = expr.index.value & _mask(a.width(expr.index))
                if index >= tw:
                    return "0"
                return f"((({t}) >> {index}) & 1)"
            i = self.gen(expr.index, a.width(expr.index), read)
            return f"(((({t}) >> ({i})) & 1) if ({i}) < {tw} else 0)"
        if isinstance(expr, vast.VRange):
            t = self.gen(expr.target, a.width(expr.target), read)
            fw = expr.msb - expr.lsb + 1
            return f"((({t}) >> {expr.lsb}) & {_mask(fw)})"
        raise AnalysisError(f"unsupported expression {expr!r}")

    def _gen_unary(self, expr: vast.VUnary, w: int, read) -> str:
        a = self.a
        if expr.op in ("&", "|", "^", "~&", "~|", "~^"):
            ow = a.width(expr.operand)
            oc = self.gen(expr.operand, ow, read)
            if expr.op == "&":
                return f"(1 if ({oc}) == {_mask(ow)} else 0)" if ow > 0 else "0"
            if expr.op == "~&":
                return f"(0 if ({oc}) == {_mask(ow)} else 1)" if ow > 0 else "1"
            if expr.op == "|":
                return f"(1 if ({oc}) != 0 else 0)"
            if expr.op == "~|":
                return f"(0 if ({oc}) != 0 else 1)"
            if expr.op == "^":
                return f"(({oc}).bit_count() & 1)"
            return f"((({oc}).bit_count() & 1) ^ 1)"  # ~^
        if expr.op == "!":
            oc = self.gen(expr.operand, a.width(expr.operand), read)
            return f"(0 if ({oc}) != 0 else 1)"
        if expr.op == "~":
            oc = self.gen(expr.operand, w, read)
            return f"((~({oc})) & {_mask(w)})"
        if expr.op == "-":
            oc = self.gen(expr.operand, w, read)
            if self.a.signedness(expr.operand):
                oc = _sx(oc, w)
            return f"((-({oc})) & {_mask(w)})"
        raise AnalysisError(f"unsupported unary operator {expr.op}")

    def _gen_binary(self, expr: vast.VBinary, w: int, read) -> str:
        a = self.a
        op = expr.op
        if op in ("&&", "||"):
            l = self.gen(expr.left, a.width(expr.left), read)
            r = self.gen(expr.right, a.width(expr.right), read)
            joiner = "and" if op == "&&" else "or"
            return f"(1 if (({l}) != 0 {joiner} ({r}) != 0) else 0)"
        if op in _COMPARISONS:
            ow = max(a.width(expr.left), a.width(expr.right))
            operands_signed = a.signedness(expr.left) and a.signedness(expr.right)
            l = self.gen(expr.left, ow, read)
            r = self.gen(expr.right, ow, read)
            if operands_signed:
                l, r = _sx(l, ow), _sx(r, ow)
            return f"(1 if ({l}) {_COMPARISONS[op]} ({r}) else 0)"
        if op in ("<<", ">>", "<<<", ">>>"):
            l = self.gen(expr.left, w, read)
            amt = self.gen(expr.right, a.width(expr.right), read)
            if op in ("<<", "<<<"):
                return f"((({l}) << ({amt})) & {_mask(w)})"
            if op == ">>>" and a.signedness(expr.left):
                return f"((({_sx(l, w)}) >> ({amt})) & {_mask(w)})"
            return f"(({l}) >> ({amt}))"
        signed = a.signedness(expr)
        l = self.gen(expr.left, w, read)
        r = self.gen(expr.right, w, read)
        if op in ("&", "|"):
            return f"(({l}) {op} ({r}))"
        if op == "^":
            return f"(({l}) ^ ({r}))"
        if op in ("^~", "~^"):
            return f"((~(({l}) ^ ({r}))) & {_mask(w)})"
        lv, rv = (_sx(l, w), _sx(r, w)) if signed else (l, r)
        if op == "+":
            return f"((({lv}) + ({rv})) & {_mask(w)})"
        if op == "-":
            return f"((({lv}) - ({rv})) & {_mask(w)})"
        if op == "*":
            return f"((({lv}) * ({rv})) & {_mask(w)})"
        if op == "/":
            return f"((_vdiv({lv}, {rv})) & {_mask(w)})"
        if op == "%":
            return f"((_vrem({lv}, {rv})) & {_mask(w)})"
        raise AnalysisError(f"unsupported binary operator {op}")

    # -------------------------------------------------------------- statements

    def emit_assign(
        self,
        target: vast.VExpr,
        value: vast.VExpr,
        indent: int,
        read: Callable[[str], str],
        store: _Store,
    ) -> None:
        a = self.a
        if isinstance(target, vast.VIdent):
            meta = a.meta(target.name)
            if meta.is_memory:
                raise AnalysisError(
                    f"whole-memory assignment to {target.name!r} in module "
                    f"{self.a.module.name}"
                )
            cw = max(a.width(value), meta.width)
            code = self.gen(value, cw, read)
            if cw > meta.width:
                code = f"({code}) & {meta.mask}"
            self.emit(indent, f"{store.lvalue(meta)} = {code}")
            return
        if isinstance(target, vast.VIndex):
            if not isinstance(target.target, vast.VIdent):
                raise AnalysisError(f"unsupported assignment target {target!r}")
            meta = a.meta(target.target.name)
            if meta.is_memory:
                # Memory element scatter; out-of-range writes are dropped.
                cw = max(a.width(value), meta.width)
                code = self.gen(value, cw, read)
                if cw > meta.width:
                    code = f"({code}) & {meta.mask}"
                lv = store.lvalue(meta)
                tmp = self.fresh()
                self.emit(
                    indent, f"{tmp} = {self.gen(target.index, a.width(target.index), read)}"
                )
                self.emit(indent, f"if {tmp} < {meta.depth}:")
                self.emit(indent + 1, f"{lv}[{tmp}] = {code}")
                return
            cw = max(a.width(value), 1)
            bit = f"({self.gen(value, cw, read)}) & 1"
            lv = store.lvalue(meta)
            tmp = self.fresh()
            self.emit(indent, f"{tmp} = {self.gen(target.index, a.width(target.index), read)}")
            self.emit(indent, f"if {tmp} < {meta.width}:")
            self.emit(indent + 1, f"{lv} = ({lv} & ~(1 << {tmp})) | (({bit}) << {tmp})")
            return
        if isinstance(target, vast.VRange):
            if not isinstance(target.target, vast.VIdent):
                raise AnalysisError(f"unsupported assignment target {target!r}")
            meta = a.meta(target.target.name)
            fw = target.msb - target.lsb + 1
            cw = max(a.width(value), fw)
            code = self.gen(value, cw, read)
            fm = _mask(fw) << target.lsb
            lv = store.lvalue(meta)
            self.emit(
                indent,
                f"{lv} = (({lv} & ~{fm}) | ((({code}) & {_mask(fw)}) << {target.lsb}))"
                f" & {meta.mask}",
            )
            return
        raise AnalysisError(f"unsupported assignment target {target!r}")

    def emit_stmts(
        self,
        stmts: list[vast.VStmt],
        indent: int,
        read: Callable[[str], str],
        blocking: _Store,
        nonblocking: _Store,
    ) -> None:
        emitted = False
        for stmt in stmts:
            if isinstance(stmt, vast.VBlockingAssign):
                if isinstance(stmt.target, vast.VIdent) and stmt.target.name == "_":
                    continue  # null statement placeholder
                self.emit_assign(stmt.target, stmt.value, indent, read, blocking)
            elif isinstance(stmt, vast.VNonBlockingAssign):
                self.emit_assign(stmt.target, stmt.value, indent, read, nonblocking)
            elif isinstance(stmt, vast.VIf):
                cond = self.gen(stmt.condition, self.a.width(stmt.condition), read)
                self.emit(indent, f"if ({cond}) != 0:")
                self.emit_stmts(stmt.then_body, indent + 1, read, blocking, nonblocking)
                if stmt.else_body:
                    self.emit(indent, "else:")
                    self.emit_stmts(stmt.else_body, indent + 1, read, blocking, nonblocking)
            elif isinstance(stmt, vast.VCase):
                self._emit_case(stmt, indent, read, blocking, nonblocking)
            else:
                raise AnalysisError(f"unsupported statement {stmt!r}")
            emitted = True
        if not emitted:
            self.emit(indent, "pass")

    def _emit_case(
        self,
        stmt: vast.VCase,
        indent: int,
        read: Callable[[str], str],
        blocking: _Store,
        nonblocking: _Store,
    ) -> None:
        subject = self.fresh()
        self.emit(indent, f"{subject} = {self.gen(stmt.subject, self.a.width(stmt.subject), read)}")
        default_item = None
        keyword = "if"
        any_branch = False
        for item in stmt.items:
            if item.patterns is None:
                default_item = item
                continue
            tests = [
                f"{subject} == ({self.gen(p, self.a.width(p), read)})" for p in item.patterns
            ]
            condition = " or ".join(tests) if tests else "False"
            self.emit(indent, f"{keyword} {condition}:")
            self.emit_stmts(item.body, indent + 1, read, blocking, nonblocking)
            keyword = "elif"
            any_branch = True
        if default_item is not None:
            if any_branch:
                self.emit(indent, "else:")
                self.emit_stmts(default_item.body, indent + 1, read, blocking, nonblocking)
            else:
                self.emit_stmts(default_item.body, indent, read, blocking, nonblocking)


# ---------------------------------------------------------------------------
# Module compilation
# ---------------------------------------------------------------------------


def _blocking_targets(stmts: list[vast.VStmt], blocking: set[str], nonblocking: set[str]) -> None:
    """Collect base names of blocking / non-blocking targets in a block body."""
    for stmt in stmts:
        if isinstance(stmt, (vast.VBlockingAssign, vast.VNonBlockingAssign)):
            target = stmt.target
            if isinstance(target, vast.VIdent) and target.name == "_" and isinstance(
                stmt, vast.VBlockingAssign
            ):
                continue
            base = target
            if isinstance(target, (vast.VIndex, vast.VRange)):
                base = target.target
            if not isinstance(base, vast.VIdent):
                raise AnalysisError(f"unsupported assignment target {target!r}")
            bucket = blocking if isinstance(stmt, vast.VBlockingAssign) else nonblocking
            bucket.add(base.name)
        elif isinstance(stmt, vast.VIf):
            _blocking_targets(stmt.then_body, blocking, nonblocking)
            _blocking_targets(stmt.else_body, blocking, nonblocking)
        elif isinstance(stmt, vast.VCase):
            for item in stmt.items:
                _blocking_targets(item.body, blocking, nonblocking)
        else:
            raise AnalysisError(f"unsupported statement {stmt!r}")


def compile_kernel(module: vast.VModule, analysis: ModuleAnalysis | None = None) -> KernelTemplate:
    """Translate ``module`` to native closures; raises AnalysisError if unsupported."""
    analysis = analysis if analysis is not None else ModuleAnalysis(module)
    schedule = analysis.schedule()  # raises CombLoopError on true cycles
    gen = _Codegen(analysis)

    def comb_read(name: str) -> str:
        return f"s[{analysis.meta(name).slot}]"

    comb_store = _Store(lambda meta: f"s[{meta.slot}]")

    gen.emit(0, "def comb(s):")
    if schedule:
        for node in schedule:
            if node.kind == "assign":
                assign = node.item
                gen.emit_assign(assign.target, assign.value, 1, comb_read, comb_store)
            else:
                gen.emit_stmts(node.item.body, 1, comb_read, comb_store, comb_store)
    else:
        gen.emit(1, "pass")
    gen.emit(0, "")

    clocks = analysis.clocks()
    step_names: dict[str, str] = {}
    for clock_index, clock in enumerate(clocks):
        blocks = analysis.clocked_blocks(clock)
        function = f"_step_{clock_index}"
        step_names[clock] = function

        # All non-blocking target slots across the triggered blocks share one
        # pending set, exactly like the interpreter's shared ``pending`` dict.
        pending_slots: list[int] = []
        block_plans: list[tuple[vast.VAlways, set[str]]] = []
        seen_pending: set[int] = set()
        for block in blocks:
            blocking: set[str] = set()
            nonblocking: set[str] = set()
            _blocking_targets(block.body, blocking, nonblocking)
            overlap = blocking & nonblocking
            if overlap:
                raise AnalysisError(
                    f"signal(s) {sorted(overlap)} are both blocking and non-blocking "
                    f"targets in one always block of module {module.name}"
                )
            for name in nonblocking:
                slot = analysis.meta(name).slot
                if slot not in seen_pending:
                    seen_pending.add(slot)
                    pending_slots.append(slot)
            for name in blocking:
                if analysis.meta(name).is_memory:
                    # The interpreter persists blocking memory writes in
                    # clocked blocks; the _b temps here would discard them.
                    raise AnalysisError(
                        f"blocking write to memory {name!r} in a clocked block "
                        f"of module {module.name}"
                    )
            block_plans.append((block, blocking))

        memory_depth_by_slot = {m.slot: m.depth for m in analysis.memories()}
        gen.emit(0, f"def {function}(s):")
        if not blocks:
            gen.emit(1, "pass")
        for slot in pending_slots:
            if slot in memory_depth_by_slot:
                # Copy so same-edge reads via s observe the old contents.
                gen.emit(1, f"_n{slot} = s[{slot}][:]")
            else:
                gen.emit(1, f"_n{slot} = s[{slot}]")
        for block_index, (block, blocking) in enumerate(block_plans):
            blocking_slots = sorted(analysis.meta(name).slot for name in blocking)
            for slot in blocking_slots:
                gen.emit(1, f"_b{block_index}_{slot} = s[{slot}]")
            blocking_set = set(blocking)

            def clocked_read(name: str, _bi=block_index, _bset=blocking_set) -> str:
                meta = analysis.meta(name)
                if name in _bset:
                    return f"_b{_bi}_{meta.slot}"
                return f"s[{meta.slot}]"

            blocking_store = _Store(lambda meta, _bi=block_index: f"_b{_bi}_{meta.slot}")
            nonblocking_store = _Store(lambda meta: f"_n{meta.slot}")
            gen.emit_stmts(block.body, 1, clocked_read, blocking_store, nonblocking_store)
        for slot in pending_slots:
            gen.emit(1, f"s[{slot}] = _n{slot}")
        gen.emit(0, "")

    source = "\n".join(gen.lines)
    namespace: dict[str, object] = {"_vdiv": _vdiv, "_vrem": _vrem}
    exec(compile(source, f"<kernel:{module.name}>", "exec"), namespace)

    return KernelTemplate(
        module_name=module.name,
        fingerprint=module_fingerprint(module),
        slots=dict(analysis.signals),
        n_slots=len(analysis.signals),
        comb=namespace["comb"],
        steps={clock: namespace[function] for clock, function in step_names.items()},
        source=source,
        memory_slots={m.slot: m.depth for m in analysis.memories()},
    )


# ---------------------------------------------------------------------------
# Trace kernels: one compiled closure for a whole stimulus schedule
# ---------------------------------------------------------------------------
#
# run_testbench's step-wise loop pays dict/attr dispatch per functional point:
# a drive() walking an inputs dict, a tick() with per-cycle settle bookkeeping
# and one read() per observed output.  A *trace kernel* compiles the whole
# schedule for one (module, testbench shape) pair into a single generated
# function: stimulus values arrive as one flat array, the reset/drive/settle/
# tick sequence is unrolled (uniform runs of points are re-rolled into a tight
# loop so codegen stays O(distinct point shapes)), and every sampled output is
# appended to one flat result list.  The generated code replays exactly the
# comb()/step() call sequence the deferred-settle step-wise path performs, so
# sampled values are bit-identical by construction.


@dataclass(frozen=True)
class TraceSchedule:
    """Structural digest of a testbench: shapes, not stimulus values.

    ``points`` holds ``(input_names, clock_cycles, check)`` per functional
    point; the actual driven values are passed to :meth:`TraceKernel.run` as a
    flat array in the same order, so one compiled trace serves any stimulus
    with the same shape.
    """

    clock: str
    reset: str
    reset_cycles: int
    observed: tuple[str, ...]
    points: tuple[tuple[tuple[str, ...], int, bool], ...]

    @cached_property
    def digest(self) -> str:
        payload = repr(
            (self.clock, self.reset, self.reset_cycles, self.observed, self.points)
        )
        return hashlib.sha256(payload.encode()).hexdigest()


@dataclass
class TraceKernel:
    """A compiled (module, schedule) pair: the whole testbench in one call."""

    module_name: str
    fingerprint: str
    digest: str
    run: Callable[[Sequence[int]], list[int]]
    source: str = ""


_TRACE_LINE_BUDGET = 60_000


class _TraceGen:
    def __init__(self, kernel, schedule: TraceSchedule, has_edge: bool):
        self.kernel = kernel
        self.schedule = schedule
        self.has_edge = has_edge
        self.lines: list[str] = []

    def emit(self, indent: int, text: str) -> None:
        if len(self.lines) > _TRACE_LINE_BUDGET:
            raise AnalysisError(
                f"trace for module {self.kernel.module_name} exceeds the "
                "generated-code budget"
            )
        self.lines.append("    " * indent + text)

    def drive_code(self, meta: SignalMeta, index_code: str) -> str:
        """One stimulus drive; the vector backend overrides the array layout."""
        return f"s[{meta.slot}] = stim[{index_code}] & {meta.mask}"

    def point_body(
        self,
        names: tuple[str, ...],
        cycles: int,
        check: bool,
        needs_settle: bool,
        stim_index: Callable[[int], str],
    ) -> tuple[list[str], bool]:
        """Code for one functional point; returns (lines, needs_settle_after).

        Mirrors the step-wise path statically: drives defer their settle, each
        clock edge settles the pending state first, and a checked read (or the
        unchecked-point flush) settles once before sampling.
        """
        if cycles > _TRACE_LINE_BUDGET:
            # Guard before unrolling: the budget in emit() only sees lines
            # after this local list is fully built.
            raise AnalysisError(
                f"trace for module {self.kernel.module_name} exceeds the "
                "generated-code budget"
            )
        slots = self.kernel.slots
        lines: list[str] = []
        for position, name in enumerate(names):
            lines.append(self.drive_code(slots[name], stim_index(position)))
        if names:
            needs_settle = True
        for _ in range(cycles):
            if needs_settle:
                lines.append("comb(s)")
            if self.has_edge:
                lines.append("step(s)")
            needs_settle = True
        if check:
            if self.schedule.observed:
                if needs_settle:
                    lines.append("comb(s)")
                needs_settle = False
                for name in self.schedule.observed:
                    lines.append(f"ap(s[{slots[name].slot}])")
        else:
            # Unchecked points flush: the deferred stimulus must settle before
            # the next point overwrites it (latch-like designs observe this).
            if needs_settle:
                lines.append("comb(s)")
            needs_settle = False
        return lines, needs_settle


def check_schedule_ports(module: vast.VModule, schedule: TraceSchedule) -> set[str]:
    """Validate the schedule's port references; returns the module's port names.

    Raises :class:`AnalysisError` when the step-wise path could raise a
    runtime :class:`SimulationError` for this pairing (missing input/clock/
    observed port): those runs must keep their exact step-wise error report,
    so the caller falls back.  Shared by the scalar and vector trace codegens.
    """
    ports = {port.name for port in module.ports}
    for names, cycles, _check in schedule.points:
        for name in names:
            if name not in ports:
                raise AnalysisError(
                    f"module {module.name} has no port named {name!r}"
                )
        if cycles > 0 and schedule.clock not in ports:
            raise AnalysisError(
                f"module {module.name} has no clock port {schedule.clock!r}"
            )
    for name in schedule.observed:
        if name not in ports:
            raise AnalysisError(
                f"module {module.name} has no output port named {name!r}"
            )
    return ports


def emit_trace_body(gen: _TraceGen, ports: set[str]) -> None:
    """Emit the full ``def trace(s, stim, ap)`` body for ``gen``'s schedule.

    The reset preamble and point grouping are backend-independent; the stimulus
    drive layout is supplied by ``gen.drive_code``, so the vector backend reuses
    this emitter with array-shaped drives.
    """
    schedule = gen.schedule
    kernel = gen.kernel
    gen.emit(0, "def trace(s, stim, ap):")
    # Simulation.__post_init__ settles the freshly-zeroed state once.
    gen.emit(1, "comb(s)")
    needs_settle = False

    if schedule.reset_cycles > 0 and schedule.reset in ports:
        meta = kernel.slots[schedule.reset]
        gen.emit(1, f"s[{meta.slot}] = {1 & meta.mask}")
        needs_settle = True
        for _ in range(schedule.reset_cycles):
            if needs_settle:
                gen.emit(1, "comb(s)")
            if gen.has_edge:
                gen.emit(1, "step(s)")
            needs_settle = True
        if needs_settle:
            gen.emit(1, "comb(s)")  # deassertion-order flush
        gen.emit(1, f"s[{meta.slot}] = 0")
        gen.emit(1, "comb(s)")  # eager settle of the deasserted reset
        needs_settle = False

    # Group consecutive identical point shapes and re-roll them into loops.
    offset = 0
    index = 0
    points = schedule.points
    while index < len(points):
        spec = points[index]
        length = 1
        while index + length < len(points) and points[index + length] == spec:
            length += 1
        names, cycles, check = spec
        body, after = gen.point_body(
            names, cycles, check, needs_settle, lambda j: f"i + {j}" if j else "i"
        )
        stable = False
        if length > 1:
            body_next, after_next = gen.point_body(
                names, cycles, check, after, lambda j: f"i + {j}" if j else "i"
            )
            stable = body == body_next and after == after_next
        if stable:
            # A run can compile to nothing (no inputs, no cycles, nothing to
            # sample): emitting a bodyless for-loop would be a syntax error.
            if body:
                if names:
                    gen.emit(1, f"i = {offset}")
                gen.emit(1, f"for _ in range({length}):")
                for line in body:
                    gen.emit(2, line)
                if names:
                    gen.emit(2, f"i += {len(names)}")
            needs_settle = after
            offset += length * len(names)
            index += length
        else:
            for _ in range(length):
                body, needs_settle = gen.point_body(
                    names,
                    cycles,
                    check,
                    needs_settle,
                    lambda j, base=offset: str(base + j),
                )
                for line in body:
                    gen.emit(1, line)
                offset += len(names)
                index += 1
    gen.emit(1, "return None")


def compile_trace(
    module: vast.VModule, schedule: TraceSchedule, kernel: KernelTemplate | None = None
) -> TraceKernel:
    """Compile the whole ``schedule`` against ``module`` into one closure.

    Raises :class:`AnalysisError` on pairings whose step-wise run would raise
    (missing ports): the caller falls back to reproduce that report verbatim.
    """
    kernel = kernel if kernel is not None else compile_kernel(module)
    ports = check_schedule_ports(module, schedule)
    edge = kernel.steps.get(schedule.clock)
    gen = _TraceGen(kernel, schedule, has_edge=edge is not None)
    emit_trace_body(gen, ports)

    source = "\n".join(gen.lines)
    namespace: dict[str, object] = {"comb": kernel.comb}
    if edge is not None:
        namespace["step"] = edge
    exec(compile(source, f"<trace:{module.name}>", "exec"), namespace)
    trace_fn = namespace["trace"]
    new_state = kernel.new_state

    def run(stim: Sequence[int]) -> list[int]:
        state = new_state()
        out: list[int] = []
        trace_fn(state, stim, out.append)
        return out

    return TraceKernel(
        module_name=module.name,
        fingerprint=kernel.fingerprint,
        digest=schedule.digest,
        run=run,
        source=source,
    )


# ---------------------------------------------------------------------------
# Kernel caches
# ---------------------------------------------------------------------------

_cache: LruCache[KernelTemplate | None] = LruCache(256, name="sim_kernel")
_trace_cache: LruCache[TraceKernel | None] = LruCache(512, name="sim_trace")
_fallbacks = [0]
_MISSING = object()


def get_kernel(module: vast.VModule) -> KernelTemplate | None:
    """Cached kernel for ``module``; ``None`` means "use the interpreter".

    Unsupported modules are negatively cached so repeated attempts (the common
    case in iterative-repair sweeps) skip re-analysis too.  The fingerprint is
    memoized on the module object itself, so repeated Simulation construction
    over a shared parsed AST (the parse cache's normal hit path) costs one
    dict lookup, not an AST-sized repr + hash.
    """
    fingerprint = getattr(module, "_kernel_fingerprint", None)
    if fingerprint is None:
        fingerprint = module_fingerprint(module)
        module._kernel_fingerprint = fingerprint  # AST is immutable by convention
    cached = _cache.get(fingerprint, _MISSING)
    if cached is not _MISSING:
        return cached
    try:
        template: KernelTemplate | None = compile_kernel(module)
    except AnalysisError:
        # Deliberately unsupported: negatively cache so repeated attempts
        # (the common case in iterative-repair sweeps) skip re-analysis.
        _fallbacks[0] += 1
        return _cache.put(fingerprint, None)
    except (RecursionError, ValueError):
        # RecursionError depends on the caller's stack depth, and ValueError
        # covers degenerate widths the interpreter only rejects lazily — fall
        # back for this call, but don't demote the module permanently.
        _fallbacks[0] += 1
        return None
    return _cache.put(fingerprint, template)


def get_trace_kernel(module: vast.VModule, schedule: TraceSchedule) -> TraceKernel | None:
    """Cached trace kernel for ``(module, schedule)``; ``None`` means step-wise.

    Ineligible pairings (module outside the compiled subset, or a port mismatch
    whose step-wise run raises a :class:`SimulationError` that must be
    reproduced verbatim) are negatively cached, so iterative-repair sweeps that
    retry the same candidate skip re-analysis.
    """
    kernel = get_kernel(module)
    if kernel is None:
        return None
    key = f"{kernel.fingerprint}:{schedule.digest}"
    cached = _trace_cache.get(key, _MISSING)
    if cached is not _MISSING:
        return cached
    try:
        trace: TraceKernel | None = compile_trace(module, schedule, kernel)
    except (AnalysisError, SyntaxError):
        # SyntaxError is a codegen bug tripwire: deterministic for the
        # pairing, so demote it to the step-wise path rather than crash.
        return _trace_cache.put(key, None)
    except (RecursionError, ValueError):
        # Stack-depth dependent or degenerate-width failures: fall back for
        # this call without demoting the pairing permanently.
        return None
    return _trace_cache.put(key, trace)


def kernel_cache_stats() -> dict[str, int]:
    """Counters for the per-module kernel, trace-kernel and vector caches."""
    from repro.verilog import compile_vec

    return dict(
        _cache.stats,
        fallbacks=_fallbacks[0],
        size=len(_cache),
        trace_hits=_trace_cache.stats["hits"],
        trace_misses=_trace_cache.stats["misses"],
        trace_size=len(_trace_cache),
        **compile_vec.vec_cache_stats(),
    )


def clear_kernel_cache() -> None:
    """Empty the kernel, trace *and* vector caches (benchmarks force cold runs)."""
    from repro.verilog import compile_vec

    _cache.clear()
    _trace_cache.clear()
    _fallbacks[0] = 0
    compile_vec.clear_vec_cache()
