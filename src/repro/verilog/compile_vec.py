"""Vectorized simulation backend: structure-of-arrays NumPy trace kernels.

Where :mod:`repro.verilog.compile_sim` compiles a module into scalar Python
closures over a flat ``list[int]`` and still pays a Python-level loop per
stimulus point (and per candidate), this module emits NumPy code in which every
signal is a width-masked ``uint64`` array with **one lane per execution**, so
one kernel call covers many executions at once.  Two lane layouts:

* **point lanes** (``mode == "points"``) — modules with no clocked block on the
  schedule's clock are stateless between functional points, so every stimulus
  point of every batched row becomes an independent lane: stimulus carry-over
  (inputs keep their last driven value) is reproduced with a static
  forward-fill gather, and the whole testbench settles in a *single*
  combinational sweep;
* **lockstep lanes** (``mode == "lockstep"``) — sequential modules keep the
  scalar trace's time loop (points are time steps and cannot be reordered),
  but each batched row — structurally identical candidates and/or repeated
  stimulus programs that share one :func:`~repro.verilog.analysis.module_fingerprint`
  and :class:`~repro.verilog.compile_sim.TraceSchedule` digest — is one lane,
  so N candidates advance through the schedule in lockstep with N state
  columns and per-step array ops.

Bit-identity with the scalar backends is the contract: the generated code
replays exactly the ``comb()``/``step()`` sequence the scalar trace performs,
all arithmetic is carried out on masked unsigned 64-bit patterns (contexts
wider than 64 bits raise :class:`AnalysisError` and fall back), and signed
compare/divide/shift go through helpers that reinterpret the two's-complement
patterns exactly as the scalar ``_sx`` sign-extension does.  ``uint64``
wraparound is relied on deliberately for ``+``/``-``/``*`` (sign-extension is
a no-op modulo 2**w); division, remainder and shift counts are routed through
lane-safe helpers because NumPy's behaviour there (zero divisors, shifts
>= 64) is undefined or raising where Verilog semantics are total.

NumPy is optional: when it is missing, :func:`get_vec_kernel` returns ``None``
and callers fall back to the scalar trace / step-wise backends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

try:  # import-guarded: the toolchain must degrade gracefully without NumPy
    import numpy as np
except ImportError:  # pragma: no cover - exercised via monkeypatching in tests
    np = None

from repro.caching import LruCache
from repro.hdl.bits import mask as _mask
from repro.verilog import vast
from repro.verilog.analysis import (
    AnalysisError,
    ModuleAnalysis,
    SignalMeta,
)
from repro.verilog.compile_sim import (
    TraceSchedule,
    _blocking_targets,
    _Store,
    _sx,
    _TraceGen,
    check_schedule_ports,
    emit_trace_body,
    module_fingerprint,
)

__all__ = [
    "HAVE_NUMPY",
    "LANE_WIDTH",
    "VecKernelTemplate",
    "VecTraceKernel",
    "compile_vec_kernel",
    "compile_vec_trace",
    "get_vec_kernel",
    "vec_cache_stats",
    "clear_vec_cache",
]

HAVE_NUMPY = np is not None

#: Lanes are ``uint64``; any expression context wider than this falls back to
#: the scalar backends (which use arbitrary-precision Python ints).
LANE_WIDTH = 64


# ---------------------------------------------------------------------------
# Lane-safe runtime helpers (the generated code's vocabulary)
# ---------------------------------------------------------------------------
#
# dtype discipline: every helper returns uint64 (or bool for predicates).
# np.where with two weak Python-int operands promotes to int64 — which then
# poisons uint64 arithmetic into float64 — so _sel/_b2u force uint64 on the
# way out.  Shift counts >= 64 are undefined behaviour on uint64 operands, so
# _shl/_shr/_sra clamp-and-select.  Zero divisors are replaced before the
# NumPy op (which would raise) and the Verilog x/0 == x%0 == 0 result is
# selected afterwards.

if HAVE_NUMPY:
    _U64 = np.uint64
    _Z = np.uint64(0)
    _ONE = np.uint64(1)
    _SIXTY_FOUR = np.uint64(64)
    _SIXTY_THREE = np.uint64(63)

    def _u(x):
        """Coerce a non-negative operand to a uint64 array/scalar."""
        return np.asarray(x, dtype=_U64)

    def _i64(x):
        """Reinterpret a 64-bit two's-complement pattern as signed int64.

        Accepts uint64 patterns *and* plain Python ints (sign-extension of a
        literal produces a negative int); values always fit once wrapped.
        """
        a = np.asarray(x)
        return a if a.dtype == np.int64 else a.astype(np.int64)

    def _sel(c, t, f):
        """Predicated select yielding uint64 (bare np.where promotes badly)."""
        return np.where(c, np.asarray(t, dtype=_U64), np.asarray(f, dtype=_U64))

    def _b2u(c):
        """Bool predicate -> 0/1 as uint64."""
        return np.where(c, _ONE, _Z)

    def _shl(v, amt):
        a = _u(amt)
        big = a >= _SIXTY_FOUR
        return np.where(big, _Z, _u(v) << np.where(big, _Z, a))

    def _shr(v, amt):
        a = _u(amt)
        big = a >= _SIXTY_FOUR
        return np.where(big, _Z, _u(v) >> np.where(big, _Z, a))

    def _sra(v, amt):
        """Arithmetic shift of a 64-bit sign pattern; returns the uint64 pattern."""
        sh = np.minimum(_u(amt), _SIXTY_THREE).astype(np.int64)
        return (_i64(v) >> sh).astype(_U64)

    def _udiv(a, b):
        au, bu = _u(a), _u(b)
        bz = np.equal(bu, _Z)
        return np.where(bz, _Z, au // np.where(bz, _ONE, bu))

    def _urem(a, b):
        au, bu = _u(a), _u(b)
        bz = np.equal(bu, _Z)
        return np.where(bz, _Z, au % np.where(bz, _ONE, bu))

    def _sdiv(a, b):
        """Verilog signed division on two's-complement patterns.

        Magnitudes are computed in the uint64 domain (0 - x) so INT64_MIN
        does not overflow the way abs(int64) would.
        """
        ai, bi = _i64(a), _i64(b)
        au, bu = ai.astype(_U64), bi.astype(_U64)
        na, nb = ai < 0, bi < 0
        ma = np.where(na, _Z - au, au)
        mb = np.where(nb, _Z - bu, bu)
        bz = np.equal(bi, 0)
        q = ma // np.where(bz, _ONE, mb)
        q = np.where(np.logical_xor(na, nb), _Z - q, q)
        return np.where(bz, _Z, q)

    def _srem(a, b):
        """Verilog signed remainder: sign follows the dividend, x % 0 == 0."""
        ai, bi = _i64(a), _i64(b)
        au, bu = ai.astype(_U64), bi.astype(_U64)
        na = ai < 0
        ma = np.where(na, _Z - au, au)
        mb = np.where(bi < 0, _Z - bu, bu)
        bz = np.equal(bi, 0)
        r = ma % np.where(bz, _ONE, mb)
        r = np.where(na, _Z - r, r)
        return np.where(bz, _Z, r)

    def _parity(v):
        x = _u(v)
        for s in (32, 16, 8, 4, 2, 1):
            x = x ^ (x >> np.uint64(s))
        return x & _ONE

    def _mem_rd(plane, addr):
        """Per-lane gather from a (depth, lanes) memory plane; OOB reads 0."""
        depth, lanes = plane.shape
        a = np.broadcast_to(_u(addr), (lanes,))
        ok = a < np.uint64(depth)
        idx = np.where(ok, a, _Z).astype(np.int64)
        return np.where(ok, plane[idx, np.arange(lanes)], _Z)

    def _mem_wr(plane, addr, data, pred):
        """Lane-masked scatter returning a fresh plane; OOB writes dropped.

        Copying (never mutating) keeps the rebind-not-mutate discipline the
        clocked-block temps rely on: the pre-edge plane aliased by s[slot]
        stays intact until the non-blocking commit rebinds it.
        """
        depth, lanes = plane.shape
        a = np.broadcast_to(_u(addr), (lanes,))
        ok = a < np.uint64(depth)
        if pred is not True:
            ok = ok & np.broadcast_to(pred, (lanes,))
        d = np.broadcast_to(_u(data), (lanes,))
        new = plane.copy()
        sel = np.nonzero(ok)[0]
        new[a.astype(np.int64)[sel], sel] = d[sel]
        return new

    _NAMESPACE = {
        "np": np,
        "_u": _u,
        "_i64": _i64,
        "_sel": _sel,
        "_b2u": _b2u,
        "_shl": _shl,
        "_shr": _shr,
        "_sra": _sra,
        "_udiv": _udiv,
        "_urem": _urem,
        "_sdiv": _sdiv,
        "_srem": _srem,
        "_parity": _parity,
        "_mem_rd": _mem_rd,
        "_mem_wr": _mem_wr,
    }


_COMPARE_OPS = {
    "==": "np.equal", "===": "np.equal",
    "!=": "np.not_equal", "!==": "np.not_equal",
    "<": "np.less", "<=": "np.less_equal",
    ">": "np.greater", ">=": "np.greater_equal",
}


class _VecCodegen:
    """Mirror of compile_sim._Codegen emitting NumPy array expressions.

    Control flow is if-converted: VIf/VCase bodies run unconditionally on all
    lanes and their writes merge through bool predicate arrays (``pred``), so
    a single pass serves every lane regardless of which branch each lane
    takes.  All expressions are pure and all Verilog ops are total (x/0 == 0),
    so evaluating untaken branches can neither raise nor diverge.
    """

    def __init__(self, analysis: ModuleAnalysis):
        self.a = analysis
        self.lines: list[str] = []
        self._tmp = 0

    # ------------------------------------------------------------------ output

    def emit(self, indent: int, text: str) -> None:
        self.lines.append("    " * indent + text)

    def fresh(self) -> str:
        self._tmp += 1
        return f"_t{self._tmp}"

    # ------------------------------------------------------------- expressions

    def gen(self, expr: vast.VExpr, w: int, read: Callable[[str], str]) -> str:
        """NumPy code for the unsigned value of ``expr`` masked to ``w`` bits."""
        if w > LANE_WIDTH:
            raise AnalysisError(
                f"context width {w} exceeds the {LANE_WIDTH}-bit vector lanes"
            )
        a = self.a
        if isinstance(expr, vast.VIdent):
            meta = a.meta(expr.name)
            if meta.is_memory:
                raise AnalysisError(
                    f"memory {expr.name!r} used as a plain value in module "
                    f"{self.a.module.name}"
                )
            base = read(expr.name)
            if w == meta.width:
                return base
            if w < meta.width:
                return f"({base} & {_mask(w)})"
            if meta.signed:
                # The scalar _sx formula ((x ^ sb) - sb) is valid in both
                # domains: on uint64 it wraps to the 64-bit sign pattern.
                return f"({_sx(base, meta.width)} & {_mask(w)})"
            return base
        if isinstance(expr, vast.VLiteral):
            return str(expr.value & _mask(w))
        if isinstance(expr, vast.VCall):
            return self.gen(expr.args[0], w, read)
        if isinstance(expr, vast.VUnary):
            return self._gen_unary(expr, w, read)
        if isinstance(expr, vast.VBinary):
            return self._gen_binary(expr, w, read)
        if isinstance(expr, vast.VTernary):
            c = self.gen(expr.condition, a.width(expr.condition), read)
            t = self.gen(expr.true_value, w, read)
            f = self.gen(expr.false_value, w, read)
            return f"_sel(np.not_equal({c}, 0), {t}, {f})"
        if isinstance(expr, vast.VConcat):
            parts = []
            offset = sum(a.width(p) for p in expr.parts)
            for part in expr.parts:
                pw = a.width(part)
                offset -= pw
                code = self.gen(part, pw, read)
                if offset >= LANE_WIDTH:
                    raise AnalysisError(
                        f"concat offset {offset} exceeds the vector lanes"
                    )
                if offset:
                    parts.append(f"((_u({code})) << np.uint64({offset}))")
                else:
                    parts.append(f"({code})")
            return f"({' | '.join(parts)})" if parts else "0"
        if isinstance(expr, vast.VRepeat):
            if expr.count == 0:
                return "0"
            pw = a.width(expr.value)
            code = self.gen(expr.value, pw, read)
            stamp = sum(1 << (i * pw) for i in range(expr.count))
            return f"((_u({code})) * {stamp})"
        if isinstance(expr, vast.VIndex):
            if isinstance(expr.target, vast.VIdent):
                meta = a.meta(expr.target.name)
                if meta.is_memory:
                    i = self.gen(expr.index, a.width(expr.index), read)
                    base = f"_mem_rd({read(expr.target.name)}, {i})"
                    if w < meta.width:
                        return f"({base} & {_mask(w)})"
                    if w > meta.width and meta.signed:
                        return f"({_sx(base, meta.width)} & {_mask(w)})"
                    return base
            tw = a.width(expr.target)
            t = self.gen(expr.target, tw, read)
            if isinstance(expr.index, vast.VLiteral):
                index = expr.index.value & _mask(a.width(expr.index))
                if index >= tw:
                    return "0"
                return f"((_u({t}) >> np.uint64({index})) & 1)"
            i = self.gen(expr.index, a.width(expr.index), read)
            return f"_sel(np.less(_u({i}), np.uint64({tw})), _shr({t}, {i}) & 1, 0)"
        if isinstance(expr, vast.VRange):
            t = self.gen(expr.target, a.width(expr.target), read)
            fw = expr.msb - expr.lsb + 1
            if expr.lsb >= LANE_WIDTH:
                return "0"
            return f"((_u({t}) >> np.uint64({expr.lsb})) & {_mask(fw)})"
        raise AnalysisError(f"unsupported expression {expr!r}")

    def _gen_unary(self, expr: vast.VUnary, w: int, read) -> str:
        a = self.a
        if expr.op in ("&", "|", "^", "~&", "~|", "~^"):
            ow = a.width(expr.operand)
            oc = self.gen(expr.operand, ow, read)
            if expr.op == "&":
                return f"_b2u(np.equal({oc}, {_mask(ow)}))" if ow > 0 else "0"
            if expr.op == "~&":
                return f"_b2u(np.not_equal({oc}, {_mask(ow)}))" if ow > 0 else "1"
            if expr.op == "|":
                return f"_b2u(np.not_equal({oc}, 0))"
            if expr.op == "~|":
                return f"_b2u(np.equal({oc}, 0))"
            if expr.op == "^":
                return f"_parity({oc})"
            return f"(_parity({oc}) ^ 1)"  # ~^
        if expr.op == "!":
            oc = self.gen(expr.operand, a.width(expr.operand), read)
            return f"_b2u(np.equal({oc}, 0))"
        if expr.op == "~":
            oc = self.gen(expr.operand, w, read)
            return f"((~_u({oc})) & {_mask(w)})"
        if expr.op == "-":
            # Sign-extension is a no-op modulo 2**w, so the signed case needs
            # no _sx here (unlike scalar codegen, which works on Python ints).
            oc = self.gen(expr.operand, w, read)
            return f"((0 - _u({oc})) & {_mask(w)})"
        raise AnalysisError(f"unsupported unary operator {expr.op}")

    def _gen_binary(self, expr: vast.VBinary, w: int, read) -> str:
        a = self.a
        op = expr.op
        if op in ("&&", "||"):
            l = self.gen(expr.left, a.width(expr.left), read)
            r = self.gen(expr.right, a.width(expr.right), read)
            joiner = "logical_and" if op == "&&" else "logical_or"
            return (
                f"_b2u(np.{joiner}(np.not_equal({l}, 0), np.not_equal({r}, 0)))"
            )
        if op in _COMPARE_OPS:
            ow = max(a.width(expr.left), a.width(expr.right))
            operands_signed = a.signedness(expr.left) and a.signedness(expr.right)
            l = self.gen(expr.left, ow, read)
            r = self.gen(expr.right, ow, read)
            if operands_signed:
                l = f"_i64({_sx(l, ow)})"
                r = f"_i64({_sx(r, ow)})"
            else:
                l, r = f"_u({l})", f"_u({r})"
            return f"_b2u({_COMPARE_OPS[op]}({l}, {r}))"
        if op in ("<<", ">>", "<<<", ">>>"):
            l = self.gen(expr.left, w, read)
            amt = self.gen(expr.right, a.width(expr.right), read)
            if op in ("<<", "<<<"):
                return f"(_shl({l}, {amt}) & {_mask(w)})"
            if op == ">>>" and a.signedness(expr.left):
                return f"(_sra({_sx(l, w)}, {amt}) & {_mask(w)})"
            return f"_shr({l}, {amt})"
        signed = a.signedness(expr)
        l = self.gen(expr.left, w, read)
        r = self.gen(expr.right, w, read)
        if op in ("&", "|"):
            return f"((_u({l})) {op} ({r}))"
        if op == "^":
            return f"((_u({l})) ^ ({r}))"
        if op in ("^~", "~^"):
            return f"((~(_u({l}) ^ ({r}))) & {_mask(w)})"
        if op == "+":
            return f"(((_u({l})) + ({r})) & {_mask(w)})"
        if op == "-":
            return f"(((_u({l})) - ({r})) & {_mask(w)})"
        if op == "*":
            return f"(((_u({l})) * ({r})) & {_mask(w)})"
        if op in ("/", "%"):
            if signed:
                fn = "_sdiv" if op == "/" else "_srem"
                return f"({fn}({_sx(l, w)}, {_sx(r, w)}) & {_mask(w)})"
            fn = "_udiv" if op == "/" else "_urem"
            return f"({fn}({l}, {r}) & {_mask(w)})"
        raise AnalysisError(f"unsupported binary operator {op}")

    # -------------------------------------------------------------- statements

    def emit_assign(
        self,
        target: vast.VExpr,
        value: vast.VExpr,
        indent: int,
        read: Callable[[str], str],
        store: _Store,
        pred: str | None,
    ) -> None:
        a = self.a
        if isinstance(target, vast.VIdent):
            meta = a.meta(target.name)
            if meta.is_memory:
                raise AnalysisError(
                    f"whole-memory assignment to {target.name!r} in module "
                    f"{self.a.module.name}"
                )
            cw = max(a.width(value), meta.width)
            code = self.gen(value, cw, read)
            if cw > meta.width:
                code = f"({code}) & {meta.mask}"
            lv = store.lvalue(meta)
            if pred is None:
                self.emit(indent, f"{lv} = {code}")
            else:
                self.emit(indent, f"{lv} = _sel({pred}, {code}, {lv})")
            return
        if isinstance(target, vast.VIndex):
            if not isinstance(target.target, vast.VIdent):
                raise AnalysisError(f"unsupported assignment target {target!r}")
            meta = a.meta(target.target.name)
            if meta.is_memory:
                cw = max(a.width(value), meta.width)
                code = self.gen(value, cw, read)
                if cw > meta.width:
                    code = f"({code}) & {meta.mask}"
                lv = store.lvalue(meta)
                tmp = self.fresh()
                self.emit(
                    indent,
                    f"{tmp} = {self.gen(target.index, a.width(target.index), read)}",
                )
                p = "True" if pred is None else pred
                self.emit(indent, f"{lv} = _mem_wr({lv}, {tmp}, {code}, {p})")
                return
            cw = max(a.width(value), 1)
            bit = f"({self.gen(value, cw, read)}) & 1"
            lv = store.lvalue(meta)
            tmp = self.fresh()
            self.emit(
                indent,
                f"{tmp} = {self.gen(target.index, a.width(target.index), read)}",
            )
            in_range = f"np.less(_u({tmp}), np.uint64({meta.width}))"
            p = in_range if pred is None else f"(({pred}) & {in_range})"
            self.emit(
                indent,
                f"{lv} = _sel({p}, "
                f"(_u({lv}) & (~_shl(1, {tmp}))) | _shl({bit}, {tmp}), {lv})",
            )
            return
        if isinstance(target, vast.VRange):
            if not isinstance(target.target, vast.VIdent):
                raise AnalysisError(f"unsupported assignment target {target!r}")
            meta = a.meta(target.target.name)
            fw = target.msb - target.lsb + 1
            if target.lsb >= LANE_WIDTH:
                raise AnalysisError(
                    f"range assignment lsb {target.lsb} exceeds the vector lanes"
                )
            cw = max(a.width(value), fw)
            code = self.gen(value, cw, read)
            fm = _mask(fw) << target.lsb
            inv = (~fm) & _mask(LANE_WIDTH)
            lv = store.lvalue(meta)
            merged = (
                f"((_u({lv}) & {inv}) | "
                f"(((_u({code})) & {_mask(fw)}) << np.uint64({target.lsb})))"
                f" & {meta.mask}"
            )
            if pred is None:
                self.emit(indent, f"{lv} = {merged}")
            else:
                self.emit(indent, f"{lv} = _sel({pred}, {merged}, {lv})")
            return
        raise AnalysisError(f"unsupported assignment target {target!r}")

    def emit_stmts(
        self,
        stmts: list[vast.VStmt],
        indent: int,
        read: Callable[[str], str],
        blocking: _Store,
        nonblocking: _Store,
        pred: str | None,
    ) -> None:
        for stmt in stmts:
            if isinstance(stmt, vast.VBlockingAssign):
                if isinstance(stmt.target, vast.VIdent) and stmt.target.name == "_":
                    continue  # null statement placeholder
                self.emit_assign(stmt.target, stmt.value, indent, read, blocking, pred)
            elif isinstance(stmt, vast.VNonBlockingAssign):
                self.emit_assign(stmt.target, stmt.value, indent, read, nonblocking, pred)
            elif isinstance(stmt, vast.VIf):
                cond = self.gen(stmt.condition, self.a.width(stmt.condition), read)
                c = self.fresh()
                self.emit(indent, f"{c} = np.not_equal({cond}, 0)")
                if pred is None:
                    pt = c
                else:
                    pt = self.fresh()
                    self.emit(indent, f"{pt} = ({pred}) & {c}")
                self.emit_stmts(stmt.then_body, indent, read, blocking, nonblocking, pt)
                if stmt.else_body:
                    pe = self.fresh()
                    if pred is None:
                        self.emit(indent, f"{pe} = ~{c}")
                    else:
                        self.emit(indent, f"{pe} = ({pred}) & (~{c})")
                    self.emit_stmts(
                        stmt.else_body, indent, read, blocking, nonblocking, pe
                    )
            elif isinstance(stmt, vast.VCase):
                self._emit_case(stmt, indent, read, blocking, nonblocking, pred)
            else:
                raise AnalysisError(f"unsupported statement {stmt!r}")

    def _emit_case(
        self,
        stmt: vast.VCase,
        indent: int,
        read: Callable[[str], str],
        blocking: _Store,
        nonblocking: _Store,
        pred: str | None,
    ) -> None:
        subject = self.fresh()
        self.emit(
            indent,
            f"{subject} = {self.gen(stmt.subject, self.a.width(stmt.subject), read)}",
        )
        default_item = None
        reached = pred  # lanes still looking for a matching branch
        for item in stmt.items:
            if item.patterns is None:
                default_item = item
                continue
            tests = [
                f"np.equal({subject}, ({self.gen(p, self.a.width(p), read)}))"
                for p in item.patterns
            ]
            m = self.fresh()
            if tests:
                self.emit(indent, f"{m} = {' | '.join(tests)}")
            else:
                self.emit(indent, f"{m} = np.False_")
            if reached is None:
                pi = m
            else:
                pi = self.fresh()
                self.emit(indent, f"{pi} = ({reached}) & {m}")
            self.emit_stmts(item.body, indent, read, blocking, nonblocking, pi)
            nr = self.fresh()
            if reached is None:
                self.emit(indent, f"{nr} = ~{m}")
            else:
                self.emit(indent, f"{nr} = ({reached}) & (~{m})")
            reached = nr
        if default_item is not None:
            self.emit_stmts(
                default_item.body, indent, read, blocking, nonblocking, reached
            )


# ---------------------------------------------------------------------------
# Module compilation (SoA kernel template)
# ---------------------------------------------------------------------------


@dataclass
class VecKernelTemplate:
    """A vector-compiled module; per-batch state is a list of lane arrays."""

    module_name: str
    fingerprint: str
    slots: dict[str, SignalMeta]
    n_slots: int
    comb: Callable[[list], None]
    steps: dict[str, Callable[[list], None]]
    source: str = ""
    memory_slots: dict[int, int] = None  # slot -> depth; planes are (depth, lanes)

    def new_state(self, lanes: int) -> list:
        state = [np.zeros(lanes, dtype=np.uint64) for _ in range(self.n_slots)]
        for slot, depth in (self.memory_slots or {}).items():
            state[slot] = np.zeros((depth, lanes), dtype=np.uint64)
        return state


def compile_vec_kernel(
    module: vast.VModule, analysis: ModuleAnalysis | None = None
) -> VecKernelTemplate:
    """Translate ``module`` to NumPy SoA closures; AnalysisError if unsupported."""
    if not HAVE_NUMPY:
        raise AnalysisError("NumPy is unavailable; the vector backend is disabled")
    analysis = analysis if analysis is not None else ModuleAnalysis(module)
    schedule = analysis.schedule()  # raises CombLoopError on true cycles
    for meta in analysis.signals.values():
        if meta.width > LANE_WIDTH:
            raise AnalysisError(
                f"signal {meta.name!r} is {meta.width} bits wide; vector lanes "
                f"are {LANE_WIDTH}-bit"
            )
    gen = _VecCodegen(analysis)

    def comb_read(name: str) -> str:
        return f"s[{analysis.meta(name).slot}]"

    comb_store = _Store(lambda meta: f"s[{meta.slot}]")

    gen.emit(0, "def comb(s):")
    mark = len(gen.lines)
    for node in schedule:
        if node.kind == "assign":
            assign = node.item
            gen.emit_assign(assign.target, assign.value, 1, comb_read, comb_store, None)
        else:
            gen.emit_stmts(node.item.body, 1, comb_read, comb_store, comb_store, None)
    if len(gen.lines) == mark:
        gen.emit(1, "pass")
    gen.emit(0, "")

    clocks = analysis.clocks()
    step_names: dict[str, str] = {}
    for clock_index, clock in enumerate(clocks):
        blocks = analysis.clocked_blocks(clock)
        function = f"_step_{clock_index}"
        step_names[clock] = function

        pending_slots: list[int] = []
        block_plans: list[tuple[vast.VAlways, set[str]]] = []
        seen_pending: set[int] = set()
        for block in blocks:
            blocking: set[str] = set()
            nonblocking: set[str] = set()
            _blocking_targets(block.body, blocking, nonblocking)
            overlap = blocking & nonblocking
            if overlap:
                raise AnalysisError(
                    f"signal(s) {sorted(overlap)} are both blocking and non-blocking "
                    f"targets in one always block of module {module.name}"
                )
            for name in nonblocking:
                slot = analysis.meta(name).slot
                if slot not in seen_pending:
                    seen_pending.add(slot)
                    pending_slots.append(slot)
            for name in blocking:
                if analysis.meta(name).is_memory:
                    # Mirrors the scalar backend: the interpreter persists
                    # blocking memory writes; the _b temps here would not.
                    raise AnalysisError(
                        f"blocking write to memory {name!r} in a clocked block "
                        f"of module {module.name}"
                    )
            block_plans.append((block, blocking))

        gen.emit(0, f"def {function}(s):")
        if not blocks:
            gen.emit(1, "pass")
        for slot in pending_slots:
            gen.emit(1, f"_n{slot} = s[{slot}]")
        for block_index, (block, blocking) in enumerate(block_plans):
            blocking_slots = sorted(analysis.meta(name).slot for name in blocking)
            for slot in blocking_slots:
                gen.emit(1, f"_b{block_index}_{slot} = s[{slot}]")
            blocking_set = set(blocking)

            def clocked_read(name: str, _bi=block_index, _bset=blocking_set) -> str:
                meta = analysis.meta(name)
                if name in _bset:
                    return f"_b{_bi}_{meta.slot}"
                return f"s[{meta.slot}]"

            blocking_store = _Store(lambda meta, _bi=block_index: f"_b{_bi}_{meta.slot}")
            nonblocking_store = _Store(lambda meta: f"_n{meta.slot}")
            # Predicated writes rebind the temp to a fresh merged array (never
            # in-place), so the s[slot] arrays these temps alias stay intact.
            gen.emit_stmts(
                block.body, 1, clocked_read, blocking_store, nonblocking_store, None
            )
        for slot in pending_slots:
            gen.emit(1, f"s[{slot}] = _n{slot}")
        gen.emit(0, "")

    source = "\n".join(gen.lines)
    namespace: dict[str, object] = dict(_NAMESPACE)
    exec(compile(source, f"<veckernel:{module.name}>", "exec"), namespace)

    return VecKernelTemplate(
        module_name=module.name,
        fingerprint=module_fingerprint(module),
        slots=dict(analysis.signals),
        n_slots=len(analysis.signals),
        comb=namespace["comb"],
        steps={clock: namespace[function] for clock, function in step_names.items()},
        source=source,
        memory_slots={m.slot: m.depth for m in analysis.memories()},
    )

# ---------------------------------------------------------------------------
# Vector trace kernels: a whole stimulus schedule, all lanes at once
# ---------------------------------------------------------------------------


@dataclass
class VecTraceKernel:
    """A compiled (module, schedule) pair running many executions per call.

    ``run`` takes a batch of stimulus rows (each a flat sequence shaped like
    :meth:`TraceKernel.run`'s input) and returns a ``(rows, n_samples)``
    uint64 matrix whose row ``i`` equals, bit for bit, what the scalar trace
    kernel would return for stimulus row ``i``.  ``run`` also accepts the
    pre-masked matrix produced by ``pack`` (callers that re-run the same
    stimulus — repair iterations over one testbench — cache the packing).
    """

    module_name: str
    fingerprint: str
    digest: str
    mode: str  # "points" (stimulus points are lanes) | "lockstep" (rows are)
    lanes_per_row: int
    n_samples: int
    run: Callable[[Sequence[Sequence[int]]], "np.ndarray"]
    pack: Callable[[Sequence[Sequence[int]]], "np.ndarray"]
    source: str = ""


class _VecTraceGen(_TraceGen):
    """Scalar trace emitter with drives re-aimed at stimulus matrix columns."""

    def drive_code(self, meta: SignalMeta, index_code: str) -> str:
        # Columns are pre-masked by _pack, so no & here.
        return f"s[{meta.slot}] = stim[:, {index_code}]"


def _stim_masks(template: VecKernelTemplate, schedule: TraceSchedule) -> list[int]:
    masks: list[int] = []
    for names, _cycles, _check in schedule.points:
        masks.extend(template.slots[name].mask for name in names)
    return masks


def _pack(rows: Sequence[Sequence[int]], masks: list[int]) -> "np.ndarray":
    """Mask and stack stimulus rows into a (rows, stim_len) uint64 matrix.

    Masking happens in Python-int space *before* the uint64 conversion, so
    arbitrary-precision (or negative) stimulus values cannot overflow.
    """
    if not masks:
        return np.empty((len(rows), 0), dtype=np.uint64)
    return np.array(
        [[v & m for v, m in zip(row, masks)] for row in rows], dtype=np.uint64
    ).reshape(len(rows), len(masks))


def _sample_count(schedule: TraceSchedule) -> tuple[list[int], int]:
    checked = [
        index
        for index, (_names, _cycles, check) in enumerate(schedule.points)
        if check and schedule.observed
    ]
    return checked, len(checked) * len(schedule.observed)


def _compile_point_lanes(
    module: vast.VModule, schedule: TraceSchedule, template: VecKernelTemplate
) -> VecTraceKernel:
    """Mode A: no clocked block on the schedule clock, so ticks are no-ops and
    every functional point is an independent evaluation of the settled
    combinational function — one lane per (row, point).

    Input carry-over (a point only re-drives some inputs; the rest keep their
    last driven value, initially 0 — including the deasserted reset) is
    reproduced per input with a static forward-fill gather over the points
    that drive it.
    """
    points = schedule.points
    driven: dict[str, tuple[list[int], list[int]]] = {}
    offset = 0
    for p_index, (names, _cycles, _check) in enumerate(points):
        for j, name in enumerate(names):
            entry = driven.setdefault(name, ([], []))
            entry[0].append(p_index)
            entry[1].append(offset + j)
        offset += len(names)
    n_points = len(points)
    checked, n_samples = _sample_count(schedule)
    checked_arr = np.array(checked, dtype=np.int64)
    n_observed = len(schedule.observed)
    observed_slots = [template.slots[name].slot for name in schedule.observed]
    masks = _stim_masks(template, schedule)

    gathers: list[tuple[int, "np.ndarray", "np.ndarray"]] = []
    for name, (p_indices, offs) in driven.items():
        # marker[p] = 1 + rank of the latest drive at or before point p
        # (0 = never driven yet -> the prepended all-zeros column).
        marker = np.zeros(n_points, dtype=np.int64)
        marker[np.array(p_indices, dtype=np.int64)] = np.arange(
            1, len(p_indices) + 1, dtype=np.int64
        )
        marker = np.maximum.accumulate(marker)
        gathers.append(
            (template.slots[name].slot, np.array(offs, dtype=np.int64), marker)
        )

    comb = template.comb
    new_state = template.new_state

    def run(rows: Sequence[Sequence[int]]) -> "np.ndarray":
        stim = rows if isinstance(rows, np.ndarray) else _pack(rows, masks)
        n_rows = stim.shape[0]
        lanes = n_rows * n_points
        state = new_state(lanes)
        for slot, offs, marker in gathers:
            cols = np.concatenate(
                [np.zeros((n_rows, 1), dtype=np.uint64), stim[:, offs]], axis=1
            )
            state[slot] = cols[:, marker].reshape(lanes)
        # Wraparound on +/-/* is the masked-arithmetic contract, not an error.
        with np.errstate(over="ignore"):
            comb(state)
        out = np.empty((n_rows, n_samples), dtype=np.uint64)
        for w_index, slot in enumerate(observed_slots):
            value = np.broadcast_to(
                np.asarray(state[slot], dtype=np.uint64), (lanes,)
            ).reshape(n_rows, n_points)
            out[:, w_index::n_observed] = value[:, checked_arr]
        return out

    return VecTraceKernel(
        module_name=module.name,
        fingerprint=template.fingerprint,
        digest=schedule.digest,
        mode="points",
        lanes_per_row=max(1, n_points),
        n_samples=n_samples,
        run=run,
        pack=lambda rows: _pack(rows, masks),
        source=template.source,
    )


def _compile_lockstep(
    module: vast.VModule,
    schedule: TraceSchedule,
    template: VecKernelTemplate,
    ports: set[str],
) -> VecTraceKernel:
    """Mode B: the module is sequential on the schedule clock, so points stay
    a time loop — but every batched row is a lane, advancing N structurally
    identical executions through the schedule in lockstep.
    """
    edge = template.steps[schedule.clock]
    gen = _VecTraceGen(template, schedule, has_edge=True)
    emit_trace_body(gen, ports)
    source = "\n".join(gen.lines)
    namespace: dict[str, object] = {"comb": template.comb, "step": edge}
    exec(compile(source, f"<vectrace:{module.name}>", "exec"), namespace)
    trace_fn = namespace["trace"]
    _checked, n_samples = _sample_count(schedule)
    masks = _stim_masks(template, schedule)
    new_state = template.new_state

    def run(rows: Sequence[Sequence[int]]) -> "np.ndarray":
        stim = rows if isinstance(rows, np.ndarray) else _pack(rows, masks)
        n_rows = stim.shape[0]
        state = new_state(n_rows)
        samples: list = []

        def ap(value) -> None:
            samples.append(
                np.broadcast_to(np.asarray(value, dtype=np.uint64), (n_rows,))
            )

        # Wraparound on +/-/* is the masked-arithmetic contract, not an error.
        with np.errstate(over="ignore"):
            trace_fn(state, stim, ap)
        if not samples:
            return np.empty((n_rows, 0), dtype=np.uint64)
        return np.stack(samples, axis=1)

    return VecTraceKernel(
        module_name=module.name,
        fingerprint=template.fingerprint,
        digest=schedule.digest,
        mode="lockstep",
        lanes_per_row=1,
        n_samples=n_samples,
        run=run,
        pack=lambda rows: _pack(rows, masks),
        source=source,
    )


def compile_vec_trace(
    module: vast.VModule,
    schedule: TraceSchedule,
    template: VecKernelTemplate | None = None,
) -> VecTraceKernel:
    """Compile ``schedule`` against ``module`` into a batched lane kernel.

    Raises :class:`AnalysisError` on pairings the scalar trace would also
    reject (missing ports, unsupported constructs, oversized unrolls): the
    caller falls back so step-wise error reports are reproduced verbatim.
    """
    if not HAVE_NUMPY:
        raise AnalysisError("NumPy is unavailable; the vector backend is disabled")
    template = template if template is not None else compile_vec_kernel(module)
    ports = check_schedule_ports(module, schedule)
    if template.steps.get(schedule.clock) is None:
        return _compile_point_lanes(module, schedule, template)
    return _compile_lockstep(module, schedule, template, ports)


# ---------------------------------------------------------------------------
# Caches
# ---------------------------------------------------------------------------

_template_cache: LruCache = LruCache(256, name="sim_vec_kernel")
_vec_cache: LruCache = LruCache(512, name="sim_vec")
_MISSING = object()


def get_vec_template(module: vast.VModule) -> VecKernelTemplate | None:
    """Cached SoA template for ``module``; ``None`` means "fall back"."""
    if not HAVE_NUMPY:
        return None
    fingerprint = getattr(module, "_kernel_fingerprint", None)
    if fingerprint is None:
        fingerprint = module_fingerprint(module)
        module._kernel_fingerprint = fingerprint  # AST is immutable by convention
    cached = _template_cache.get(fingerprint, _MISSING)
    if cached is not _MISSING:
        return cached
    try:
        template: VecKernelTemplate | None = compile_vec_kernel(module)
    except AnalysisError:
        return _template_cache.put(fingerprint, None)
    except (RecursionError, ValueError):
        # Stack-depth dependent or degenerate-width failures: fall back for
        # this call without demoting the module permanently.
        return None
    return _template_cache.put(fingerprint, template)


def get_vec_kernel(
    module: vast.VModule, schedule: TraceSchedule
) -> VecTraceKernel | None:
    """Cached vector trace kernel; ``None`` means "use a scalar backend".

    Mirrors :func:`~repro.verilog.compile_sim.get_trace_kernel`: ineligible
    pairings are negatively cached so iterative-repair sweeps retrying the
    same candidate skip re-analysis.
    """
    if not HAVE_NUMPY:
        return None
    template = get_vec_template(module)
    if template is None:
        return None
    key = f"{template.fingerprint}:{schedule.digest}"
    cached = _vec_cache.get(key, _MISSING)
    if cached is not _MISSING:
        return cached
    try:
        kernel: VecTraceKernel | None = compile_vec_trace(module, schedule, template)
    except (AnalysisError, SyntaxError):
        # SyntaxError is a codegen bug tripwire: deterministic for the
        # pairing, so demote it to the scalar paths rather than crash.
        return _vec_cache.put(key, None)
    except (RecursionError, ValueError):
        return None
    return _vec_cache.put(key, kernel)


def vec_cache_stats() -> dict[str, int]:
    """Counters for the vector template and trace caches."""
    return {
        "vec_hits": _vec_cache.stats["hits"],
        "vec_misses": _vec_cache.stats["misses"],
        "vec_size": len(_vec_cache),
        "vec_kernel_size": len(_template_cache),
    }


def clear_vec_cache() -> None:
    """Empty the vector caches (benchmarks force cold runs here)."""
    _template_cache.clear()
    _vec_cache.clear()
