"""Verilog backend and frontend: emitter, parser, AST and simulator.

The emitter turns a lowered, width-inferred FIRRTL circuit into synthesizable
Verilog-2001; the parser and cycle-based simulator then execute that Verilog
(and the hand-written reference modules shipped with the benchmark problems)
so the testbench can compare DUT and reference outputs per functional point,
exactly as the paper's simulation step does.

Simulation has two backends behind one API: compiled kernels (modules
translated once to native Python closures, cached by content hash — see
:mod:`repro.verilog.compile_sim`) and the tree-walking interpreter, which
remains the fallback and differential-test oracle.
"""

from repro.verilog.compile_sim import (
    compile_kernel,
    clear_kernel_cache,
    get_kernel,
    kernel_cache_stats,
)
from repro.verilog.emitter import emit_verilog
from repro.verilog.parser import parse_verilog
from repro.verilog.simulator import Simulation, SimulationError

__all__ = [
    "emit_verilog",
    "parse_verilog",
    "Simulation",
    "SimulationError",
    "compile_kernel",
    "clear_kernel_cache",
    "get_kernel",
    "kernel_cache_stats",
]
