"""Parser for the Verilog-2001 subset (see :mod:`repro.verilog.vast`).

The parser is used on two kinds of input: the Verilog produced by
:mod:`repro.verilog.emitter` and the hand-written reference modules shipped
with the benchmark problems.  Unsupported constructs raise
:class:`VerilogParseError` with a line number so the toolchain facade can turn
them into a diagnostic.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.verilog import vast


class VerilogParseError(Exception):
    """Raised when the source is outside the supported Verilog subset."""

    def __init__(self, message: str, line: int = 0):
        super().__init__(f"line {line}: {message}" if line else message)
        self.line = line


# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<sized>\d*\s*'\s*[sS]?[bodhBODH][0-9a-fA-F_xXzZ?]+)
  | (?P<number>\d[\d_]*)
  | (?P<ident>[A-Za-z_$][A-Za-z0-9_$]*)
  | (?P<op><=|>=|==|!=|===|!==|&&|\|\||<<<|>>>|<<|>>|~&|~\||~\^|\^~|[-+*/%&|^~!<>=?:;,.(){}\[\]@#])
    """,
    re.VERBOSE | re.DOTALL,
)


@dataclass(frozen=True)
class VToken:
    kind: str  # "number", "sized", "ident", "op"
    text: str
    line: int


def tokenize_verilog(source: str) -> list[VToken]:
    tokens: list[VToken] = []
    pos = 0
    line = 1
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise VerilogParseError(f"illegal character {source[pos]!r}", line)
        text = match.group(0)
        kind = match.lastgroup or "op"
        if kind not in ("ws", "comment"):
            tokens.append(VToken(kind, text, line))
        line += text.count("\n")
        pos = match.end()
    tokens.append(VToken("eof", "", line))
    return tokens


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

_UNARY_OPS = {"~", "!", "-", "&", "|", "^", "~&", "~|", "~^"}

# Binary operator precedence, low to high.
_PRECEDENCE = [
    ["||"],
    ["&&"],
    ["|"],
    ["^", "^~", "~^"],
    ["&"],
    ["==", "!=", "===", "!=="],
    ["<", "<=", ">", ">="],
    ["<<", ">>", "<<<", ">>>"],
    ["+", "-"],
    ["*", "/", "%"],
]


class VerilogParser:
    def __init__(self, tokens: list[VToken]):
        self.tokens = tokens
        self.pos = 0

    # ------------------------------------------------------------------ utils

    def _peek(self, offset: int = 0) -> VToken:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def _advance(self) -> VToken:
        token = self.tokens[self.pos]
        if self.pos < len(self.tokens) - 1:
            self.pos += 1
        return token

    def _expect(self, text: str) -> VToken:
        token = self._peek()
        if token.text != text:
            raise VerilogParseError(f"expected {text!r}, found {token.text!r}", token.line)
        return self._advance()

    def _accept(self, text: str) -> bool:
        if self._peek().text == text:
            self._advance()
            return True
        return False

    # -------------------------------------------------------------- top level

    def parse_modules(self) -> list[vast.VModule]:
        modules: list[vast.VModule] = []
        while self._peek().kind != "eof":
            if self._peek().text == "module":
                modules.append(self.parse_module())
            elif self._peek().text == "`timescale":
                while self._peek().text != "\n" and self._peek().kind != "eof":
                    self._advance()
            else:
                raise VerilogParseError(
                    f"expected 'module', found {self._peek().text!r}", self._peek().line
                )
        return modules

    def parse_module(self) -> vast.VModule:
        self._expect("module")
        name = self._advance().text
        module = vast.VModule(name)
        if self._accept("#"):
            self._parse_parameter_list(module)
        if self._accept("("):
            if self._peek().text != ")":
                self._parse_port_list(module)
            self._expect(")")
        self._expect(";")
        while self._peek().text != "endmodule":
            if self._peek().kind == "eof":
                raise VerilogParseError("unexpected end of file (missing endmodule)", self._peek().line)
            self._parse_module_item(module)
        self._expect("endmodule")
        return module

    def _parse_parameter_list(self, module: vast.VModule) -> None:
        self._expect("(")
        while not self._accept(")"):
            self._expect("parameter")
            name = self._advance().text
            self._expect("=")
            value = self._parse_expression()
            module.parameters[name] = _const_value(value)
            self._accept(",")

    def _parse_port_list(self, module: vast.VModule) -> None:
        direction = None
        kind = "wire"
        while True:
            token = self._peek()
            if token.text in ("input", "output", "inout"):
                direction = self._advance().text
                kind = "wire"
                if self._peek().text in ("wire", "reg"):
                    kind = self._advance().text
            signed = False
            if self._peek().text == "signed":
                self._advance()
                signed = True
            msb = lsb = 0
            if self._peek().text == "[":
                msb, lsb = self._parse_range(module)
            port_name = self._advance().text
            if direction is None:
                raise VerilogParseError(
                    "non-ANSI port lists are not supported; declare directions inline",
                    token.line,
                )
            if direction == "inout":
                raise VerilogParseError("inout ports are not supported", token.line)
            module.ports.append(vast.VPort(port_name, direction, msb, lsb, signed, kind))
            if not self._accept(","):
                break

    def _parse_range(self, module: vast.VModule) -> tuple[int, int]:
        self._expect("[")
        msb = _const_value(self._parse_expression(), module.parameters)
        self._expect(":")
        lsb = _const_value(self._parse_expression(), module.parameters)
        self._expect("]")
        return msb, lsb

    # ------------------------------------------------------------ module items

    def _parse_module_item(self, module: vast.VModule) -> None:
        token = self._peek()
        if token.text in ("wire", "reg"):
            self._parse_net_decl(module)
            return
        if token.text in ("localparam", "parameter"):
            self._advance()
            if self._peek().text == "[":
                self._parse_range(module)
            name = self._advance().text
            self._expect("=")
            value = self._parse_expression()
            module.parameters[name] = _const_value(value, module.parameters)
            while self._accept(","):
                name = self._advance().text
                self._expect("=")
                value = self._parse_expression()
                module.parameters[name] = _const_value(value, module.parameters)
            self._expect(";")
            return
        if token.text == "assign":
            self._advance()
            target = self._parse_primary()
            self._expect("=")
            value = self._parse_expression()
            self._expect(";")
            module.assigns.append(vast.VAssign(target, value))
            return
        if token.text == "always":
            module.always_blocks.append(self._parse_always())
            return
        if token.text in ("integer", "genvar", "initial", "generate"):
            raise VerilogParseError(f"{token.text} blocks are not supported", token.line)
        raise VerilogParseError(f"unsupported module item {token.text!r}", token.line)

    def _parse_net_decl(self, module: vast.VModule) -> None:
        kind = self._advance().text
        signed = False
        if self._peek().text == "signed":
            self._advance()
            signed = True
        msb = lsb = 0
        if self._peek().text == "[":
            msb, lsb = self._parse_range(module)
        while True:
            name = self._advance().text
            depth: int | None = None
            if self._peek().text == "[":
                # Memory array: reg [w-1:0] name [lo:hi];
                if kind != "reg":
                    raise VerilogParseError(
                        "memory arrays must be declared as reg", self._peek().line
                    )
                line = self._peek().line
                lo, hi = self._parse_range(module)
                if lo > hi:
                    lo, hi = hi, lo
                if lo != 0:
                    raise VerilogParseError(
                        "memory arrays must be zero-based (e.g. [0:depth-1])", line
                    )
                depth = hi - lo + 1
            if self._accept("="):
                if depth is not None:
                    raise VerilogParseError(
                        "memory arrays cannot have initializers", self._peek().line
                    )
                value = self._parse_expression()
                module.assigns.append(vast.VAssign(vast.VIdent(name), value))
            module.nets.append(vast.VNet(name, kind, msb, lsb, signed, depth))
            if not self._accept(","):
                break
        self._expect(";")

    def _parse_always(self) -> vast.VAlways:
        self._expect("always")
        self._expect("@")
        block = vast.VAlways()
        self._expect("(")
        if self._peek().text == "*":
            self._advance()
        else:
            while True:
                token = self._peek()
                if token.text in ("posedge", "negedge"):
                    edge = self._advance().text
                    signal = self._advance().text
                    block.edges.append((edge, signal))
                else:
                    # A plain sensitivity list entry — treat as combinational.
                    self._advance()
                if not self._accept("or") and not self._accept(","):
                    break
        self._expect(")")
        block.body = self._parse_statement_block()
        return block

    # ---------------------------------------------------------------- statements

    def _parse_statement_block(self) -> list[vast.VStmt]:
        if self._accept("begin"):
            stmts: list[vast.VStmt] = []
            while not self._accept("end"):
                if self._peek().kind == "eof":
                    raise VerilogParseError("unexpected end of file inside begin/end", self._peek().line)
                stmts.append(self._parse_statement())
            return stmts
        return [self._parse_statement()]

    def _parse_statement(self) -> vast.VStmt:
        token = self._peek()
        if token.text == "if":
            self._advance()
            self._expect("(")
            condition = self._parse_expression()
            self._expect(")")
            then_body = self._parse_statement_block()
            else_body: list[vast.VStmt] = []
            if self._accept("else"):
                if self._peek().text == "if":
                    else_body = [self._parse_statement()]
                else:
                    else_body = self._parse_statement_block()
            return vast.VIf(condition, then_body, else_body)
        if token.text in ("case", "casez", "casex"):
            return self._parse_case()
        if token.text == ";":
            self._advance()
            return vast.VBlockingAssign(vast.VIdent("_"), vast.VIdent("_"))
        # Assignment statement.
        target = self._parse_primary()
        if self._accept("<="):
            value = self._parse_expression()
            self._expect(";")
            return vast.VNonBlockingAssign(target, value)
        self._expect("=")
        value = self._parse_expression()
        self._expect(";")
        return vast.VBlockingAssign(target, value)

    def _parse_case(self) -> vast.VCase:
        self._advance()  # case / casez / casex
        self._expect("(")
        subject = self._parse_expression()
        self._expect(")")
        items: list[vast.VCaseItem] = []
        while not self._accept("endcase"):
            if self._peek().kind == "eof":
                raise VerilogParseError("unexpected end of file inside case", self._peek().line)
            if self._peek().text == "default":
                self._advance()
                self._accept(":")
                body = self._parse_statement_block()
                items.append(vast.VCaseItem(None, body))
                continue
            patterns = [self._parse_expression()]
            while self._accept(","):
                patterns.append(self._parse_expression())
            self._expect(":")
            body = self._parse_statement_block()
            items.append(vast.VCaseItem(patterns, body))
        return vast.VCase(subject, items)

    # ---------------------------------------------------------------- expressions

    def _parse_expression(self) -> vast.VExpr:
        return self._parse_ternary()

    def _parse_ternary(self) -> vast.VExpr:
        condition = self._parse_binary(0)
        if self._accept("?"):
            true_value = self._parse_expression()
            self._expect(":")
            false_value = self._parse_expression()
            return vast.VTernary(condition, true_value, false_value)
        return condition

    def _parse_binary(self, level: int) -> vast.VExpr:
        if level >= len(_PRECEDENCE):
            return self._parse_unary()
        left = self._parse_binary(level + 1)
        while self._peek().text in _PRECEDENCE[level] and not self._is_assignment_context(level):
            op = self._advance().text
            right = self._parse_binary(level + 1)
            left = vast.VBinary(op, left, right)
        return left

    def _is_assignment_context(self, level: int) -> bool:
        # ``<=`` is both the non-blocking assignment token and less-or-equal;
        # inside expressions it is always the comparison, so no special case is
        # needed here (assignments are parsed before expressions).
        return False

    def _parse_unary(self) -> vast.VExpr:
        token = self._peek()
        if token.text in _UNARY_OPS:
            self._advance()
            operand = self._parse_unary()
            return vast.VUnary(token.text, operand)
        return self._parse_primary()

    def _parse_primary(self) -> vast.VExpr:
        token = self._peek()
        if token.kind == "sized":
            self._advance()
            return _parse_sized_literal(token.text, token.line)
        if token.kind == "number":
            self._advance()
            return vast.VLiteral(int(token.text.replace("_", "")), None, False)
        if token.text == "(":
            self._advance()
            expr = self._parse_expression()
            self._expect(")")
            return self._parse_postfix(expr)
        if token.text == "{":
            return self._parse_concat()
        if token.kind == "ident":
            self._advance()
            if token.text in ("$signed", "$unsigned"):
                self._expect("(")
                arg = self._parse_expression()
                self._expect(")")
                return vast.VCall(token.text, (arg,))
            return self._parse_postfix(vast.VIdent(token.text))
        raise VerilogParseError(f"unexpected token {token.text!r} in expression", token.line)

    def _parse_postfix(self, expr: vast.VExpr) -> vast.VExpr:
        while self._peek().text == "[":
            self._advance()
            first = self._parse_expression()
            if self._accept(":"):
                second = self._parse_expression()
                self._expect("]")
                expr = vast.VRange(expr, _const_value(first), _const_value(second))
            else:
                self._expect("]")
                expr = vast.VIndex(expr, first)
        return expr

    def _parse_concat(self) -> vast.VExpr:
        self._expect("{")
        first = self._parse_expression()
        # Replication: {N{expr}}
        if self._peek().text == "{":
            count = _const_value(first)
            self._expect("{")
            value = self._parse_expression()
            self._expect("}")
            self._expect("}")
            return vast.VRepeat(count, value)
        parts = [first]
        while self._accept(","):
            parts.append(self._parse_expression())
        self._expect("}")
        return vast.VConcat(tuple(parts))


# ---------------------------------------------------------------------------
# Literal / constant helpers
# ---------------------------------------------------------------------------


def _parse_sized_literal(text: str, line: int) -> vast.VLiteral:
    text = text.replace(" ", "").replace("_", "")
    width_part, _, rest = text.partition("'")
    signed = False
    if rest and rest[0] in "sS":
        signed = True
        rest = rest[1:]
    base_char = rest[0].lower()
    digits = rest[1:]
    bases = {"b": 2, "o": 8, "d": 10, "h": 16}
    if base_char not in bases:
        raise VerilogParseError(f"unsupported literal base {base_char!r}", line)
    if any(c in "xXzZ?" for c in digits):
        # Two-state simulation: x/z digits collapse to 0.
        digits = re.sub(r"[xXzZ?]", "0", digits)
    value = int(digits, bases[base_char])
    width = int(width_part) if width_part else None
    return vast.VLiteral(value, width, signed)


def _const_value(expr: vast.VExpr, parameters: dict[str, int] | None = None) -> int:
    parameters = parameters or {}
    if isinstance(expr, vast.VLiteral):
        return expr.value
    if isinstance(expr, vast.VIdent) and expr.name in parameters:
        return parameters[expr.name]
    if isinstance(expr, vast.VBinary):
        left = _const_value(expr.left, parameters)
        right = _const_value(expr.right, parameters)
        operations = {
            "+": lambda a, b: a + b,
            "-": lambda a, b: a - b,
            "*": lambda a, b: a * b,
            "/": lambda a, b: a // b,
        }
        if expr.op in operations:
            return operations[expr.op](left, right)
    if isinstance(expr, vast.VUnary) and expr.op == "-":
        return -_const_value(expr.operand, parameters)
    raise VerilogParseError(f"expected a constant expression, found {expr!r}")


def parse_verilog(source: str) -> list[vast.VModule]:
    """Parse Verilog source text into a list of module definitions."""
    tokens = tokenize_verilog(source)
    return VerilogParser(tokens).parse_modules()
