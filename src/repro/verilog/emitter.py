"""Emit synthesizable Verilog-2001 from a lowered FIRRTL circuit.

The emitter expects the circuit to have passed the default pipeline
(:func:`repro.firrtl.pass_manager.run_default_pipeline`): all signals are
ground-typed and width-inferred.  The output style is deliberately regular —
ANSI port lists, one ``assign`` per combinational signal (conditional drives
are folded into nested ternaries, i.e. the classic expand-whens lowering) and
one clocked ``always`` block per register — because the same Verilog is
consumed by :mod:`repro.verilog.parser`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.firrtl import ir
from repro.firrtl.typing import SymbolTable, TypeError_, type_of, width_of
from repro.hdl.bits import min_width_for


class EmitterError(Exception):
    """Raised when the circuit is not in emittable (lowered, sized) form."""


@dataclass
class _Driver:
    """Final expression driving a combinational signal or a register."""

    expression: ir.Expr | None


def emit_verilog(circuit: ir.Circuit) -> str:
    """Emit Verilog text for every module in ``circuit``."""
    return "\n\n".join(_ModuleEmitter(module).emit() for module in circuit.modules) + "\n"


class _ModuleEmitter:
    def __init__(self, module: ir.Module):
        self.module = module
        self.table = SymbolTable(module)

    # ------------------------------------------------------------------ emit

    def emit(self) -> str:
        lines: list[str] = []
        lines.append(f"module {self.module.name}(")
        port_lines = []
        for port in self.module.ports:
            direction = "input" if port.direction == ir.INPUT else "output"
            port_lines.append(f"  {direction} {self._range_of(port.type)}{port.name}")
        lines.append(",\n".join(port_lines))
        lines.append(");")

        wires, registers, nodes, memories = self._collect_declarations()

        for name, tpe in nodes:
            lines.append(f"  wire {self._range_of(tpe)}{name};")
        for name, tpe in wires:
            lines.append(f"  wire {self._range_of(tpe)}{name};")
        for stmt in registers:
            lines.append(f"  reg {self._range_of(stmt.type)}{stmt.name};")
        for stmt in memories:
            lines.append(
                f"  reg {self._range_of(stmt.type)}{stmt.name} [0:{stmt.depth - 1}];"
            )
        if wires or registers or nodes or memories:
            lines.append("")

        # Nodes: single unconditional assignment by construction.
        node_values = {stmt.name: stmt.value for stmt in self._walk_nodes()}
        for name, _ in nodes:
            lines.append(f"  assign {name} = {self._emit_expr(node_values[name])};")

        # Combinational sinks: wires and output ports.
        comb_sinks = [name for name, _ in wires]
        comb_sinks += [p.name for p in self.module.ports if p.direction == ir.OUTPUT]
        for name in comb_sinks:
            driver = self._final_expression(name, default=None)
            if driver is None:
                continue
            lines.append(f"  assign {name} = {self._emit_expr(driver)};")

        # Registers: one clocked always block each.
        for stmt in registers:
            lines.append("")
            lines.extend(self._emit_register(stmt))

        # Memories: one clocked always block per memory with every addressed
        # write retained (last-connect folding would drop distinct addresses).
        for stmt in memories:
            block = self._emit_memory(stmt)
            if block:
                lines.append("")
                lines.extend(block)

        lines.append("endmodule")
        return "\n".join(lines)

    # --------------------------------------------------------------- helpers

    def _collect_declarations(self):
        wires: list[tuple[str, ir.Type]] = []
        registers: list[ir.DefRegister] = []
        nodes: list[tuple[str, ir.Type]] = []
        memories: list[ir.DefMemory] = []
        for stmt in ir.walk_stmts(self.module.body):
            if isinstance(stmt, ir.DefWire):
                wires.append((stmt.name, stmt.type))
            elif isinstance(stmt, ir.DefRegister):
                registers.append(stmt)
            elif isinstance(stmt, ir.DefMemory):
                memories.append(stmt)
            elif isinstance(stmt, ir.DefNode):
                try:
                    tpe = type_of(stmt.value, self.table)
                except TypeError_ as exc:
                    raise EmitterError(str(exc)) from None
                nodes.append((stmt.name, tpe))
        return wires, registers, nodes, memories

    def _walk_nodes(self):
        for stmt in ir.walk_stmts(self.module.body):
            if isinstance(stmt, ir.DefNode):
                yield stmt

    def _range_of(self, tpe: ir.Type) -> str:
        width = width_of(tpe)
        if width is None:
            raise EmitterError("cannot emit a signal with unknown width; run InferWidths first")
        signed = "signed " if isinstance(tpe, ir.SIntType) else ""
        if width == 1:
            return signed
        return f"{signed}[{width - 1}:0] "

    # ------------------------------------------------------- expand-whens walk

    def _final_expression(self, name: str, default: ir.Expr | None) -> ir.Expr | None:
        """Fold last-connect semantics over the statement tree for ``name``."""
        return self._walk_for(name, self.module.body, default)

    def _walk_for(self, name: str, block: ir.Block, current: ir.Expr | None) -> ir.Expr | None:
        for stmt in block.stmts:
            if isinstance(stmt, ir.Connect):
                root = ir.root_reference(stmt.target)
                if root is not None and root.name == name:
                    current = stmt.value
            elif isinstance(stmt, ir.Invalidate):
                root = ir.root_reference(stmt.target)
                if root is not None and root.name == name:
                    current = ir.UIntLiteral(0, 1)
            elif isinstance(stmt, ir.Conditionally):
                conseq = self._walk_for(name, stmt.conseq, current)
                alt = self._walk_for(name, stmt.alt, current)
                if conseq is not current or alt is not current:
                    if conseq is None:
                        conseq = current
                    if alt is None:
                        alt = current
                    if conseq is None or alt is None:
                        # Partially driven: keep whatever branch drives it; the
                        # initialization check rejects this before emission.
                        current = conseq if conseq is not None else alt
                    else:
                        current = ir.Mux(stmt.predicate, conseq, alt)
            elif isinstance(stmt, ir.Block):
                current = self._walk_for(name, stmt, current)
        return current

    # --------------------------------------------------------------- registers

    def _emit_register(self, stmt: ir.DefRegister) -> list[str]:
        clock = self._emit_expr(stmt.clock)
        next_value = self._final_expression(stmt.name, default=ir.Reference(stmt.name))
        lines = [f"  always @(posedge {clock}) begin"]
        if stmt.reset is not None and stmt.init is not None:
            reset = self._emit_expr(stmt.reset)
            init = self._emit_expr(stmt.init)
            lines.append(f"    if ({reset}) begin")
            lines.append(f"      {stmt.name} <= {init};")
            lines.append("    end else begin")
            lines.append(f"      {stmt.name} <= {self._emit_expr(next_value)};")
            lines.append("    end")
        else:
            lines.append(f"    {stmt.name} <= {self._emit_expr(next_value)};")
        lines.append("  end")
        return lines

    # --------------------------------------------------------------- memories

    def _emit_memory(self, stmt: ir.DefMemory) -> list[str]:
        body = self._memory_writes(stmt.name, self.module.body, "    ")
        if not body:
            return []
        clock = self._emit_expr(stmt.clock)
        return [f"  always @(posedge {clock}) begin"] + body + ["  end"]

    def _memory_writes(self, name: str, block: ir.Block, indent: str) -> list[str]:
        """Emit every write to memory ``name``, preserving statement order.

        Unlike ``_final_expression`` this keeps *all* addressed writes: two
        connects to different (or even the same) dynamic addresses must each
        produce a non-blocking assign so the in-order last-write-wins
        semantics of the always block matches FIRRTL last-connect.
        """
        lines: list[str] = []
        for stmt in block.stmts:
            if isinstance(stmt, ir.Connect) and isinstance(stmt.target, ir.SubAccess):
                root = ir.root_reference(stmt.target)
                if root is not None and root.name == name:
                    addr = self._emit_expr(stmt.target.index)
                    lines.append(f"{indent}{name}[{addr}] <= {self._emit_expr(stmt.value)};")
            elif isinstance(stmt, ir.Conditionally):
                conseq = self._memory_writes(name, stmt.conseq, indent + "  ")
                alt = self._memory_writes(name, stmt.alt, indent + "  ")
                if not conseq and not alt:
                    continue
                pred = self._emit_expr(stmt.predicate)
                if conseq:
                    lines.append(f"{indent}if ({pred}) begin")
                    lines.extend(conseq)
                    if alt:
                        lines.append(f"{indent}end else begin")
                        lines.extend(alt)
                    lines.append(f"{indent}end")
                else:
                    lines.append(f"{indent}if ((~{pred})) begin")
                    lines.extend(alt)
                    lines.append(f"{indent}end")
            elif isinstance(stmt, ir.Block):
                lines.extend(self._memory_writes(name, stmt, indent))
        return lines

    # -------------------------------------------------------------- expressions

    def _emit_expr(self, expr: ir.Expr) -> str:
        if isinstance(expr, ir.Reference):
            return expr.name
        if isinstance(expr, ir.UIntLiteral):
            width = expr.width if expr.width is not None else min_width_for(expr.value)
            return f"{width}'h{expr.value:x}"
        if isinstance(expr, ir.SIntLiteral):
            width = expr.width if expr.width is not None else min_width_for(expr.value, signed=True)
            value = expr.value & ((1 << width) - 1)
            return f"$signed({width}'h{value:x})"
        if isinstance(expr, ir.Mux):
            return (
                f"({self._emit_expr(expr.condition)} ? "
                f"{self._emit_expr(expr.true_value)} : {self._emit_expr(expr.false_value)})"
            )
        if isinstance(expr, ir.SubIndex):
            return f"{self._emit_expr(expr.target)}[{expr.index}]"
        if isinstance(expr, ir.SubAccess):
            return f"{self._emit_expr(expr.target)}[{self._emit_expr(expr.index)}]"
        if isinstance(expr, ir.SubField):
            raise EmitterError("bundle subfield survived lowering; run LowerTypes first")
        if isinstance(expr, ir.DoPrim):
            return self._emit_prim(expr)
        raise EmitterError(f"cannot emit expression {expr!r}")

    def _emit_prim(self, expr: ir.DoPrim) -> str:
        op = expr.op
        args = [self._emit_expr(a) for a in expr.args]

        simple_binary = {
            "addw": "+",
            "subw": "-",
            "mul": "*",
            "div": "/",
            "rem": "%",
            "lt": "<",
            "leq": "<=",
            "gt": ">",
            "geq": ">=",
            "eq": "==",
            "neq": "!=",
            "and": "&",
            "or": "|",
            "xor": "^",
            "dshl": "<<",
            "dshr": ">>",
        }
        if op in simple_binary:
            return f"({args[0]} {simple_binary[op]} {args[1]})"
        if op in ("add", "sub"):
            # Expanding add/sub: make the carry bit explicit so self-determined
            # Verilog width semantics match FIRRTL.
            operator = "+" if op == "add" else "-"
            return f"({{1'b0, {args[0]}}} {operator} {{1'b0, {args[1]}}})"
        if op == "not":
            return f"(~{args[0]})"
        if op == "neg":
            return f"(-{args[0]})"
        if op == "andr":
            return f"(&{args[0]})"
        if op == "orr":
            return f"(|{args[0]})"
        if op == "xorr":
            return f"(^{args[0]})"
        if op == "cat":
            return f"{{{args[0]}, {args[1]}}}"
        if op == "bits":
            hi, lo = expr.consts
            return self._emit_bit_extract(expr.args[0], args[0], hi, lo)
        if op == "head":
            width = self._width_of_arg(expr.args[0])
            amount = expr.consts[0]
            return self._emit_bit_extract(expr.args[0], args[0], width - 1, width - amount)
        if op == "tail":
            width = self._width_of_arg(expr.args[0])
            amount = expr.consts[0]
            return self._emit_bit_extract(expr.args[0], args[0], width - amount - 1, 0)
        if op == "pad":
            return args[0]
        if op == "shl":
            return f"({args[0]} << {expr.consts[0]})"
        if op == "shr":
            return f"({args[0]} >> {expr.consts[0]})"
        if op == "asUInt":
            return f"$unsigned({args[0]})"
        if op == "asSInt":
            return f"$signed({args[0]})"
        if op in ("asClock", "asAsyncReset", "cvt"):
            return args[0]
        if op == "popcount":
            width = self._width_of_arg(expr.args[0])
            terms = [self._emit_bit_extract(expr.args[0], args[0], i, i) for i in range(width)]
            return "(" + " + ".join(terms) + ")"
        if op == "reverse":
            width = self._width_of_arg(expr.args[0])
            bits = [self._emit_bit_extract(expr.args[0], args[0], i, i) for i in range(width)]
            return "{" + ", ".join(bits) + "}"
        raise EmitterError(f"cannot emit primitive op {op}")

    def _width_of_arg(self, arg: ir.Expr) -> int:
        try:
            width = width_of(type_of(arg, self.table))
        except TypeError_ as exc:
            raise EmitterError(str(exc)) from None
        if width is None:
            raise EmitterError("operand width unknown during emission; run InferWidths first")
        return width

    def _emit_bit_extract(self, arg: ir.Expr, emitted: str, hi: int, lo: int) -> str:
        # Part-select is only legal on identifiers; other operands fall back to
        # a shift-and-mask form.
        if isinstance(arg, ir.Reference):
            if hi == lo:
                return f"{emitted}[{hi}]"
            return f"{emitted}[{hi}:{lo}]"
        width = hi - lo + 1
        mask = (1 << width) - 1
        if lo == 0:
            return f"(({emitted}) & {width}'h{mask:x})"
        return f"((({emitted}) >> {lo}) & {width}'h{mask:x})"
