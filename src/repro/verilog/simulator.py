"""Cycle-based two-state simulator for the supported Verilog subset.

The simulator executes a single module (no hierarchy): inputs are poked by
the testbench, combinational logic settles, and :meth:`Simulation.step`
advances registered logic by one clock edge.  Two backends share the same
poke/peek/step API:

* the **compiled** backend (:mod:`repro.verilog.compile_sim`) translates the
  module once into native Python closures over a flat slot array, with all
  widths and masks resolved at compile time and combinational logic settled in
  one topologically-ordered pass;
* the **interpreter** walks the AST and settles with a bounded fixed-point
  loop.  It is the fallback for modules the compiler rejects (combinational
  cycles, latch-like self reads, multiple drivers) and the differential-test
  oracle for the compiled backend.

Backend selection: ``Simulation(module, backend=...)`` accepts ``"auto"``
(compiled with interpreter fallback — the default), ``"compiled"`` (raise if
the module cannot be compiled) and ``"interpreter"``.  The environment
variable ``REPRO_SIM_BACKEND`` overrides the default for ``"auto"`` callers.

Expression evaluation follows Verilog's context-determined sizing rules in a
simplified form that is sufficient for the emitted and hand-written designs:

* arithmetic/bitwise operands are evaluated in the width of the widest
  operand or the assignment target, whichever is larger;
* comparisons and reductions are self-determined and produce one bit;
* everything is two-state (``x``/``z`` collapse to 0).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.hdl.bits import Bits, mask, to_signed
from repro.verilog import vast
from repro.verilog.analysis import AnalysisError, ModuleAnalysis
from repro.verilog.compile_sim import KernelTemplate, get_kernel


class SimulationError(Exception):
    """Raised for unresolvable references, non-convergence or unsupported forms."""


_MAX_SETTLE_ITERATIONS = 256

_BACKEND_ENV = "REPRO_SIM_BACKEND"
_BACKENDS = ("auto", "compiled", "interpreter")


@dataclass
class _SignalInfo:
    width: int
    signed: bool
    is_input: bool = False


@dataclass
class Simulation:
    """Simulate one Verilog module instance.

    ``values`` is the interpreter backend's state and stays empty when the
    compiled backend is active (state lives in a flat slot list instead);
    always read signals through :meth:`peek`/:meth:`peek_signed`.
    """

    module: vast.VModule
    signals: dict[str, _SignalInfo] = field(default_factory=dict)
    values: dict[str, Bits] = field(default_factory=dict)
    backend: str = "auto"

    def __post_init__(self) -> None:
        self.memory_depths: dict[str, int] = {}
        self.memories: dict[str, list[int]] = {}
        self._pending_mem_writes: list[tuple[str, int, int]] = []
        for port in self.module.ports:
            self.signals[port.name] = _SignalInfo(
                port.width, port.signed, is_input=(port.direction == "input")
            )
        for net in self.module.nets:
            if net.name in self.signals:
                # ``output reg q`` style double declarations refine the port.
                self.signals[net.name].signed = self.signals[net.name].signed or net.signed
                continue
            self.signals[net.name] = _SignalInfo(net.width, net.signed)
            if net.depth is not None:
                self.memory_depths[net.name] = net.depth

        resolved = self.backend
        if resolved == "auto":
            resolved = os.environ.get(_BACKEND_ENV, "auto")
        if resolved not in _BACKENDS:
            raise SimulationError(
                f"unknown simulation backend {resolved!r}; expected one of {_BACKENDS}"
            )
        self._kernel: KernelTemplate | None = None
        self._state: list[int] | None = None
        self._needs_settle = False
        # Lazily-built memoized static analysis for the interpreter path.
        self._analysis: ModuleAnalysis | None = None
        if resolved in ("auto", "compiled"):
            kernel = get_kernel(self.module)
            if kernel is None and resolved == "compiled":
                raise SimulationError(
                    f"module {self.module.name} is outside the compiled backend's "
                    "subset (combinational cycle, multiple drivers, or an "
                    "unsupported construct); use backend='auto' to fall back"
                )
            if kernel is not None:
                self._kernel = kernel
                self._state = kernel.new_state()
        if self._kernel is None:
            for name, info in self.signals.items():
                if name in self.memory_depths:
                    continue  # memory state lives element-wise in self.memories
                self.values[name] = Bits(0, info.width, info.signed)
            for name, depth in self.memory_depths.items():
                self.memories[name] = [0] * depth
        self.settle()

    @property
    def backend_in_use(self) -> str:
        """Which backend actually runs this instance."""
        return "compiled" if self._kernel is not None else "interpreter"

    # ------------------------------------------------------------------ access

    def poke(self, name: str, value: int, settle: bool = True) -> None:
        """Drive an input (or force any signal) to ``value``.

        With ``settle=False`` the combinational update is deferred until the
        next read, step or explicit :meth:`settle` — batching several writes
        (or a write that is immediately followed by a clock edge) into one
        settle pass.
        """
        info = self._info(name)
        if self._kernel is not None:
            meta = self._kernel.slots[name]
            self._state[meta.slot] = value & meta.mask
        else:
            self.values[name] = Bits(value, info.width, info.signed)
        if settle:
            self.settle()
        else:
            self._needs_settle = True

    def poke_many(self, assignments: dict[str, int], settle: bool = True) -> None:
        for name, value in assignments.items():
            self.poke(name, value, settle=False)
        if settle:
            self.settle()

    def peek(self, name: str) -> int:
        """Read the current (unsigned) value of a signal."""
        self._settle_if_needed()
        self._check_name(name)
        if self._kernel is not None:
            return self._state[self._kernel.slots[name].slot]
        return self.values[name].value

    def peek_signed(self, name: str) -> int:
        self._settle_if_needed()
        self._check_name(name)
        if self._kernel is not None:
            meta = self._kernel.slots[name]
            value = self._state[meta.slot]
            return to_signed(value, meta.width) if meta.signed else value
        return self.values[name].as_int

    def _check_name(self, name: str) -> str:
        if name not in self.signals:
            raise SimulationError(f"unknown signal {name!r} in module {self.module.name}")
        return name

    def _info(self, name: str) -> _SignalInfo:
        if name not in self.signals:
            raise SimulationError(f"unknown signal {name!r} in module {self.module.name}")
        return self.signals[name]

    # ---------------------------------------------------------------- execution

    def _settle_if_needed(self) -> None:
        if self._needs_settle:
            self.settle()

    def flush(self) -> None:
        """Apply any deferred pokes now (no-op if already settled).

        Call before overwriting inputs whose settled effect must be observed —
        latch-like combinational logic is path-dependent, so a deferred settle
        that is skipped entirely (rather than merged with an equivalent later
        one) could change behaviour.
        """
        self._settle_if_needed()

    def settle(self) -> None:
        """Propagate combinational logic (one ordered pass, or a fixed point)."""
        self._needs_settle = False
        if self._kernel is not None:
            self._kernel.comb(self._state)
            return
        for _ in range(_MAX_SETTLE_ITERATIONS):
            changed = False
            for assign in self.module.assigns:
                changed |= self._run_continuous_assign(assign)
            for block in self.module.always_blocks:
                if block.is_combinational:
                    changed |= self._run_comb_block(block)
            if not changed:
                return
        raise SimulationError(
            f"combinational logic did not settle in module {self.module.name}; "
            "the design probably contains a combinational loop"
        )

    def step(self, clock: str = "clock", cycles: int = 1) -> None:
        """Advance ``cycles`` positive edges of ``clock``.

        Combinational state is settled before each edge; the settle after the
        final edge is deferred until the next read.
        """
        if self._kernel is not None:
            edge = self._kernel.steps.get(clock)
            for _ in range(cycles):
                self._settle_if_needed()
                if edge is not None:
                    edge(self._state)
                self._needs_settle = True
            return
        for _ in range(cycles):
            self._settle_if_needed()
            pending: dict[str, Bits] = {}
            self._pending_mem_writes = []
            for block in self.module.always_blocks:
                if block.is_combinational:
                    continue
                if any(edge == "posedge" and signal == clock for edge, signal in block.edges):
                    env = dict(self.values)
                    self._exec_stmts(block.body, env, pending, nonblocking_to_pending=True)
            for name, value in pending.items():
                info = self._info(name)
                self.values[name] = Bits(value.value, info.width, info.signed)
            # Memory writes commit after every block ran, so same-edge reads
            # observed the old contents (read-first semantics).
            for name, index, raw in self._pending_mem_writes:
                self.memories[name][index] = raw
            self._pending_mem_writes = []
            self._needs_settle = True

    # --------------------------------------------------------- block execution

    def _run_continuous_assign(self, assign: vast.VAssign) -> bool:
        return self._write(assign.target, self._eval_for_target(assign.value, assign.target), self.values)

    def _run_comb_block(self, block: vast.VAlways) -> bool:
        env = dict(self.values)
        pending: dict[str, Bits] = {}
        self._exec_stmts(block.body, env, pending, nonblocking_to_pending=False)
        changed = False
        for name, value in env.items():
            if name not in self.values or self.values[name].value != value.value:
                info = self._info(name)
                self.values[name] = Bits(value.value, info.width, info.signed)
                changed = True
        return changed

    def _exec_stmts(
        self,
        stmts: list[vast.VStmt],
        env: dict[str, Bits],
        pending: dict[str, Bits],
        nonblocking_to_pending: bool,
    ) -> None:
        for stmt in stmts:
            if isinstance(stmt, vast.VBlockingAssign):
                if isinstance(stmt.target, vast.VIdent) and stmt.target.name == "_":
                    continue  # null statement placeholder
                self._write(stmt.target, self._eval_for_target(stmt.value, stmt.target, env), env)
            elif isinstance(stmt, vast.VNonBlockingAssign):
                value = self._eval_for_target(stmt.value, stmt.target, env)
                if nonblocking_to_pending:
                    self._write(stmt.target, value, pending, base=env)
                else:
                    self._write(stmt.target, value, env)
            elif isinstance(stmt, vast.VIf):
                condition = self._eval(stmt.condition, env)
                if condition.value != 0:
                    self._exec_stmts(stmt.then_body, env, pending, nonblocking_to_pending)
                else:
                    self._exec_stmts(stmt.else_body, env, pending, nonblocking_to_pending)
            elif isinstance(stmt, vast.VCase):
                self._exec_case(stmt, env, pending, nonblocking_to_pending)
            else:
                raise SimulationError(f"unsupported statement {stmt!r}")

    def _exec_case(self, stmt, env, pending, nonblocking_to_pending) -> None:
        subject = self._eval(stmt.subject, env)
        default_item = None
        for item in stmt.items:
            if item.patterns is None:
                default_item = item
                continue
            for pattern in item.patterns:
                value = self._eval(pattern, env)
                if value.value == subject.value:
                    self._exec_stmts(item.body, env, pending, nonblocking_to_pending)
                    return
        if default_item is not None:
            self._exec_stmts(default_item.body, env, pending, nonblocking_to_pending)

    # --------------------------------------------------------------- assignment

    def _write(
        self,
        target: vast.VExpr,
        value: Bits,
        store: dict[str, Bits],
        base: dict[str, Bits] | None = None,
    ) -> bool:
        source = base if base is not None else store
        if isinstance(target, vast.VIdent):
            info = self._info(target.name)
            new_value = Bits(value.as_int if value.signed else value.value, info.width, info.signed)
            old = store.get(target.name)
            store[target.name] = new_value
            return old is None or old.value != new_value.value
        if isinstance(target, vast.VIndex):
            name = _target_name(target.target)
            info = self._info(name)
            index = self._eval(target.index, source).value
            if name in self.memory_depths:
                # Memory element write; out-of-range addresses are dropped.
                if index >= self.memory_depths[name]:
                    return False
                raw = value.value & mask(info.width)
                if base is not None:
                    # Non-blocking inside a clocked block: defer the commit so
                    # same-edge reads still see the old element (read-first).
                    self._pending_mem_writes.append((name, index, raw))
                    return True
                changed = self.memories[name][index] != raw
                self.memories[name][index] = raw
                return changed
            current = store.get(name, source.get(name, Bits(0, info.width, info.signed)))
            if index >= info.width:
                return False
            bit = value.value & 1
            new_raw = (current.value & ~(1 << index)) | (bit << index)
            new_value = Bits(new_raw, info.width, info.signed)
            changed = current.value != new_value.value
            store[name] = new_value
            return changed
        if isinstance(target, vast.VRange):
            name = _target_name(target.target)
            info = self._info(name)
            current = store.get(name, source.get(name, Bits(0, info.width, info.signed)))
            width = target.msb - target.lsb + 1
            field_mask = mask(width) << target.lsb
            new_raw = (current.value & ~field_mask) | ((value.value & mask(width)) << target.lsb)
            new_value = Bits(new_raw, info.width, info.signed)
            changed = current.value != new_value.value
            store[name] = new_value
            return changed
        raise SimulationError(f"unsupported assignment target {target!r}")

    # --------------------------------------------------------------- evaluation

    def _eval_for_target(
        self, expr: vast.VExpr, target: vast.VExpr, env: dict[str, Bits] | None = None
    ) -> Bits:
        env = env if env is not None else self.values
        context = self._target_width(target)
        return self._eval(expr, env, context)

    def _target_width(self, target: vast.VExpr) -> int:
        if isinstance(target, vast.VIdent):
            return self._info(target.name).width
        if isinstance(target, vast.VIndex):
            if (
                isinstance(target.target, vast.VIdent)
                and target.target.name in self.memory_depths
            ):
                return self._info(target.target.name).width
            return 1
        if isinstance(target, vast.VRange):
            return target.msb - target.lsb + 1
        raise SimulationError(f"unsupported assignment target {target!r}")

    def _static_analysis(self) -> ModuleAnalysis:
        # The same (memoized) static analysis drives both backends: the
        # compiled codegen and the interpreter must agree on widths and
        # signedness by construction, not by keeping two copies in sync.
        if self._analysis is None:
            self._analysis = ModuleAnalysis(self.module)
        return self._analysis

    def self_width(self, expr: vast.VExpr, env: dict[str, Bits]) -> int:
        try:
            return self._static_analysis().width(expr)
        except AnalysisError as exc:
            raise SimulationError(str(exc)) from None

    def _is_signed(self, expr: vast.VExpr, env: dict[str, Bits]) -> bool:
        try:
            return self._static_analysis().signedness(expr)
        except AnalysisError as exc:
            raise SimulationError(str(exc)) from None

    def _eval(self, expr: vast.VExpr, env: dict[str, Bits], context: int | None = None) -> Bits:
        width = max(self.self_width(expr, env), context or 0)
        return self._eval_sized(expr, env, width)

    def _eval_sized(self, expr: vast.VExpr, env: dict[str, Bits], width: int) -> Bits:
        signed = self._is_signed(expr, env)

        if isinstance(expr, vast.VIdent):
            if expr.name not in env:
                raise SimulationError(
                    f"reference to undeclared signal {expr.name!r} in module {self.module.name}"
                )
            value = env[expr.name]
            return Bits(value.as_int if value.signed else value.value, width, signed)
        if isinstance(expr, vast.VLiteral):
            return Bits(expr.value, width, signed)
        if isinstance(expr, vast.VCall):
            operand = self._eval_sized(expr.args[0], env, width)
            if expr.name == "$signed":
                return Bits(operand.value, width, True)
            return Bits(operand.value, width, False)
        if isinstance(expr, vast.VUnary):
            if expr.op in ("&", "|", "^", "~&", "~|", "~^"):
                operand = self._eval(expr.operand, env)
                reductions = {
                    "&": operand.and_reduce(),
                    "|": operand.or_reduce(),
                    "^": operand.xor_reduce(),
                    "~&": operand.and_reduce().bit_not(),
                    "~|": operand.or_reduce().bit_not(),
                    "~^": operand.xor_reduce().bit_not(),
                }
                return Bits(reductions[expr.op].value, max(width, 1), False)
            if expr.op == "!":
                operand = self._eval(expr.operand, env)
                return Bits(0 if operand.value else 1, max(width, 1), False)
            operand = self._eval_sized(expr.operand, env, width)
            if expr.op == "~":
                return Bits(~operand.value, width, signed)
            if expr.op == "-":
                return Bits(-operand.as_int, width, signed)
            raise SimulationError(f"unsupported unary operator {expr.op}")
        if isinstance(expr, vast.VBinary):
            return self._eval_binary(expr, env, width, signed)
        if isinstance(expr, vast.VTernary):
            condition = self._eval(expr.condition, env)
            chosen = expr.true_value if condition.value else expr.false_value
            return self._eval_sized(chosen, env, width)
        if isinstance(expr, vast.VConcat):
            result = Bits(0, 0)
            for part in expr.parts:
                part_value = self._eval(part, env)
                result = result.cat(Bits(part_value.value, self.self_width(part, env)))
            return Bits(result.value, max(width, result.width), False)
        if isinstance(expr, vast.VRepeat):
            part_width = self.self_width(expr.value, env)
            part_value = self._eval(expr.value, env)
            replicated = Bits(part_value.value, part_width).replicate(expr.count)
            return Bits(replicated.value, max(width, replicated.width), False)
        if isinstance(expr, vast.VIndex):
            if (
                isinstance(expr.target, vast.VIdent)
                and expr.target.name in self.memory_depths
            ):
                name = expr.target.name
                info = self._info(name)
                index = self._eval(expr.index, env).value
                element = (
                    self.memories[name][index]
                    if index < self.memory_depths[name]
                    else 0  # out-of-range reads collapse to 0 (two-state)
                )
                if signed:
                    element = to_signed(element, info.width)
                return Bits(element, max(width, info.width), signed)
            target = self._eval(expr.target, env)
            index = self._eval(expr.index, env).value
            bit = (target.value >> index) & 1 if index < target.width else 0
            return Bits(bit, max(width, 1), False)
        if isinstance(expr, vast.VRange):
            target = self._eval(expr.target, env)
            field_width = expr.msb - expr.lsb + 1
            value = (target.value >> expr.lsb) & mask(field_width)
            return Bits(value, max(width, field_width), False)
        raise SimulationError(f"unsupported expression {expr!r}")

    def _eval_binary(self, expr: vast.VBinary, env: dict[str, Bits], width: int, signed: bool) -> Bits:
        op = expr.op
        if op in ("&&", "||"):
            left = self._eval(expr.left, env).value != 0
            right = self._eval(expr.right, env).value != 0
            result = (left and right) if op == "&&" else (left or right)
            return Bits(1 if result else 0, max(width, 1), False)
        if op in ("==", "!=", "===", "!==", "<", "<=", ">", ">="):
            operand_width = max(
                self.self_width(expr.left, env), self.self_width(expr.right, env)
            )
            operands_signed = self._is_signed(expr.left, env) and self._is_signed(expr.right, env)
            left = self._eval_sized(expr.left, env, operand_width)
            right = self._eval_sized(expr.right, env, operand_width)
            left_value = left.as_int if operands_signed else left.value
            right_value = right.as_int if operands_signed else right.value
            comparisons = {
                "==": left_value == right_value,
                "===": left_value == right_value,
                "!=": left_value != right_value,
                "!==": left_value != right_value,
                "<": left_value < right_value,
                "<=": left_value <= right_value,
                ">": left_value > right_value,
                ">=": left_value >= right_value,
            }
            return Bits(1 if comparisons[op] else 0, max(width, 1), False)
        if op in ("<<", ">>", "<<<", ">>>"):
            left = self._eval_sized(expr.left, env, width)
            amount = self._eval(expr.right, env).value
            if op == "<<" or op == "<<<":
                return Bits(left.value << amount, width, signed)
            if op == ">>>" and self._is_signed(expr.left, env):
                return Bits(left.as_int >> amount, width, signed)
            return Bits(left.value >> amount, width, signed)
        left = self._eval_sized(expr.left, env, width)
        right = self._eval_sized(expr.right, env, width)
        left_value = left.as_int if signed else left.value
        right_value = right.as_int if signed else right.value
        if op == "+":
            return Bits(left_value + right_value, width, signed)
        if op == "-":
            return Bits(left_value - right_value, width, signed)
        if op == "*":
            return Bits(left_value * right_value, width, signed)
        if op == "/":
            if right_value == 0:
                return Bits(0, width, signed)
            quotient = abs(left_value) // abs(right_value)
            if (left_value < 0) != (right_value < 0):
                quotient = -quotient
            return Bits(quotient, width, signed)
        if op == "%":
            if right_value == 0:
                return Bits(0, width, signed)
            remainder = abs(left_value) % abs(right_value)
            if left_value < 0:
                remainder = -remainder
            return Bits(remainder, width, signed)
        if op == "&":
            return Bits(left.value & right.value, width, signed)
        if op == "|":
            return Bits(left.value | right.value, width, signed)
        if op in ("^", "^~", "~^"):
            result = left.value ^ right.value
            if op != "^":
                result = ~result
            return Bits(result, width, signed)
        raise SimulationError(f"unsupported binary operator {op}")


def _target_name(expr: vast.VExpr) -> str:
    if isinstance(expr, vast.VIdent):
        return expr.name
    raise SimulationError(f"unsupported assignment target base {expr!r}")
