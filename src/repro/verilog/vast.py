"""AST for the Verilog-2001 subset understood by the parser and simulator.

The subset covers what the emitter produces plus the idioms used by the
hand-written reference modules in :mod:`repro.problems`: ANSI port lists,
``wire``/``reg`` declarations, continuous ``assign``, ``always @(*)`` and
``always @(posedge clk)`` blocks, ``if``/``else``, ``case``, blocking and
non-blocking assignments, and the usual expression operators.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class VExpr:
    pass


@dataclass(frozen=True)
class VIdent(VExpr):
    name: str


@dataclass(frozen=True)
class VLiteral(VExpr):
    value: int
    width: int | None = None
    signed: bool = False


@dataclass(frozen=True)
class VUnary(VExpr):
    op: str  # ~ ! - & | ^ ~& ~| ~^
    operand: VExpr


@dataclass(frozen=True)
class VBinary(VExpr):
    op: str
    left: VExpr
    right: VExpr


@dataclass(frozen=True)
class VTernary(VExpr):
    condition: VExpr
    true_value: VExpr
    false_value: VExpr


@dataclass(frozen=True)
class VConcat(VExpr):
    parts: tuple[VExpr, ...]


@dataclass(frozen=True)
class VRepeat(VExpr):
    count: int
    value: VExpr


@dataclass(frozen=True)
class VIndex(VExpr):
    target: VExpr
    index: VExpr


@dataclass(frozen=True)
class VRange(VExpr):
    target: VExpr
    msb: int
    lsb: int


@dataclass(frozen=True)
class VCall(VExpr):
    name: str  # $signed / $unsigned
    args: tuple[VExpr, ...]


# ---------------------------------------------------------------------------
# Statements (inside always blocks)
# ---------------------------------------------------------------------------


@dataclass
class VStmt:
    pass


@dataclass
class VBlockingAssign(VStmt):
    target: VExpr
    value: VExpr


@dataclass
class VNonBlockingAssign(VStmt):
    target: VExpr
    value: VExpr


@dataclass
class VIf(VStmt):
    condition: VExpr
    then_body: list[VStmt] = field(default_factory=list)
    else_body: list[VStmt] = field(default_factory=list)


@dataclass
class VCaseItem:
    patterns: list[VExpr] | None  # None means the default item
    body: list[VStmt] = field(default_factory=list)


@dataclass
class VCase(VStmt):
    subject: VExpr
    items: list[VCaseItem] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Module items
# ---------------------------------------------------------------------------


@dataclass
class VPort:
    name: str
    direction: str  # "input" or "output"
    msb: int = 0
    lsb: int = 0
    signed: bool = False
    kind: str = "wire"  # "wire" or "reg" (output reg ...)

    @property
    def width(self) -> int:
        return self.msb - self.lsb + 1


@dataclass
class VNet:
    name: str
    kind: str  # "wire" or "reg"
    msb: int = 0
    lsb: int = 0
    signed: bool = False
    depth: int | None = None  # memory arrays: reg [msb:lsb] name [0:depth-1];

    @property
    def width(self) -> int:
        return self.msb - self.lsb + 1


@dataclass
class VAssign:
    target: VExpr
    value: VExpr


@dataclass
class VAlways:
    """An always block; ``edges`` is empty for ``always @(*)``."""

    edges: list[tuple[str, str]] = field(default_factory=list)  # (edge, signal)
    body: list[VStmt] = field(default_factory=list)

    @property
    def is_combinational(self) -> bool:
        return not self.edges


@dataclass
class VModule:
    name: str
    ports: list[VPort] = field(default_factory=list)
    nets: list[VNet] = field(default_factory=list)
    assigns: list[VAssign] = field(default_factory=list)
    always_blocks: list[VAlways] = field(default_factory=list)
    parameters: dict[str, int] = field(default_factory=dict)

    def port_named(self, name: str) -> VPort | None:
        for port in self.ports:
            if port.name == name:
                return port
        return None

    def inputs(self) -> list[VPort]:
        return [p for p in self.ports if p.direction == "input"]

    def outputs(self) -> list[VPort]:
        return [p for p in self.ports if p.direction == "output"]
