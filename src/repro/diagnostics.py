"""Diagnostics shared by the Chisel frontend and the toolchain facade.

Diagnostics deliberately mimic the wording of the real Chisel/firtool
toolchain because the ReChisel Reviewer consumes them as feedback text
(paper §IV-B, Table II); the error ``code`` field additionally carries the
Table II class (``A1`` .. ``C2``) so experiments can classify errors without
string matching.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """Severity of a diagnostic, mirroring sbt/firtool output levels."""

    ERROR = "error"
    WARNING = "warn"
    INFO = "info"


@dataclass(frozen=True)
class SourceLocation:
    """A ``file:line:column`` location within a Chisel source string."""

    line: int
    column: int
    file: str = "Main.scala"

    def __str__(self) -> str:
        return f"{self.file}:{self.line}:{self.column}"


@dataclass(frozen=True)
class Diagnostic:
    """One compiler message: location, human-readable text and error class."""

    message: str
    severity: Severity = Severity.ERROR
    location: SourceLocation | None = None
    code: str | None = None
    suggestion: str | None = None

    def render(self) -> str:
        """Render the diagnostic the way sbt prints compiler output."""
        prefix = f"[{self.severity.value}]"
        loc = f" {self.location}:" if self.location else ""
        text = f"{prefix}{loc} {self.message}"
        if self.suggestion:
            text += f"\n{prefix}   suggestion: {self.suggestion}"
        return text


@dataclass
class DiagnosticList:
    """A mutable collection of diagnostics gathered across compiler stages."""

    diagnostics: list[Diagnostic] = field(default_factory=list)

    def error(
        self,
        message: str,
        location: SourceLocation | None = None,
        code: str | None = None,
        suggestion: str | None = None,
    ) -> Diagnostic:
        diag = Diagnostic(message, Severity.ERROR, location, code, suggestion)
        self.diagnostics.append(diag)
        return diag

    def warning(
        self, message: str, location: SourceLocation | None = None, code: str | None = None
    ) -> Diagnostic:
        diag = Diagnostic(message, Severity.WARNING, location, code)
        self.diagnostics.append(diag)
        return diag

    def extend(self, other: "DiagnosticList") -> None:
        self.diagnostics.extend(other.diagnostics)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    def render(self) -> str:
        return "\n".join(d.render() for d in self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)


class ChiselError(Exception):
    """Raised when parsing or elaboration cannot continue.

    Carries a :class:`Diagnostic` so callers can recover the structured
    message, location and Table II error class.
    """

    def __init__(self, diagnostic: Diagnostic):
        super().__init__(diagnostic.render())
        self.diagnostic = diagnostic

    @classmethod
    def at(
        cls,
        message: str,
        location: SourceLocation | None = None,
        code: str | None = None,
        suggestion: str | None = None,
    ) -> "ChiselError":
        return cls(Diagnostic(message, Severity.ERROR, location, code, suggestion))
