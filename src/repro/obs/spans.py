"""Tracing spans: nested timed scopes published as paired bus events.

A :func:`span` context manager emits ``span.start`` / ``span.end`` events on
the ``trace`` topic, with monotonic durations (``time.perf_counter``) and
parent/child linkage carried through a :class:`contextvars.ContextVar` — so
nesting works across ``await`` points and each asyncio task (one served
session) gets its own lineage.  The taxonomy the service emits::

    session                     one served work unit
    ├── llm.generate            chat completion (purpose-labelled)
    ├── tool.compile            toolchain step on the tool executor
    ├── tool.simulate           simulate step (possibly micro-batched)
    └── llm.review / tool.parse / ...

:func:`build_timeline` reconstructs the parent/child tree from a captured
event stream; the operations console uses it for per-stage latencies and the
tests assert a session's timeline covers its LLM, tool and simulate steps.

When the bus has no subscribers a span costs two attribute reads — no ids,
no clocks, no contextvar traffic — so instrumentation can stay on warm paths
permanently.
"""

from __future__ import annotations

import itertools
import os
import time
from contextvars import ContextVar
from dataclasses import dataclass, field

from repro.obs.events import Event, EventBus, get_bus

#: (trace_id, span_id) of the innermost active span in this context.
_current: ContextVar[tuple[str, str] | None] = ContextVar("repro_obs_span", default=None)

_ids = itertools.count(1)


def _new_id() -> str:
    return f"{os.getpid():x}-{next(_ids):x}"


def current_span() -> tuple[str, str] | None:
    """The active ``(trace_id, span_id)`` pair, or ``None`` outside any span."""
    return _current.get()


class span:
    """Context manager timing one scope and publishing its start/end events.

    ``attrs`` ride on both events (and whatever :meth:`annotate` adds rides
    on the end event).  A span opened with no active parent starts a new
    trace; children inherit the trace id.  Reentrant and exception-safe: the
    end event carries ``error`` when the scope raised.
    """

    __slots__ = ("name", "topic", "attrs", "_bus", "_active", "_token", "_started",
                 "span_id", "parent_id", "trace_id")

    def __init__(self, name: str, bus: EventBus | None = None, topic: str = "trace", **attrs):
        self.name = name
        self.topic = topic
        self.attrs = attrs
        self._bus = bus
        self._active = False
        self._token = None
        self._started = 0.0
        self.span_id = ""
        self.parent_id = ""
        self.trace_id = ""

    def annotate(self, **attrs) -> "span":
        """Attach attributes to the end event (e.g. an outcome computed late)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "span":
        bus = self._bus if self._bus is not None else get_bus()
        self._bus = bus
        if not bus.active:
            return self
        self._active = True
        parent = _current.get()
        self.trace_id = parent[0] if parent is not None else _new_id()
        self.parent_id = parent[1] if parent is not None else ""
        self.span_id = _new_id()
        self._token = _current.set((self.trace_id, self.span_id))
        self._started = time.perf_counter()
        bus.publish(
            self.topic,
            "span.start",
            span=self.span_id,
            parent=self.parent_id,
            trace=self.trace_id,
            op=self.name,
            **self.attrs,
        )
        return self

    def __exit__(self, exc_type, exc, _tb) -> None:
        if not self._active:
            return
        duration = time.perf_counter() - self._started
        _current.reset(self._token)
        self._active = False
        attrs = self.attrs
        if exc_type is not None:
            attrs = {**attrs, "error": exc_type.__name__}
        self._bus.publish(
            self.topic,
            "span.end",
            span=self.span_id,
            parent=self.parent_id,
            trace=self.trace_id,
            op=self.name,
            duration=round(duration, 9),
            **attrs,
        )


# ---------------------------------------------------------------------------
# Timeline reconstruction
# ---------------------------------------------------------------------------


@dataclass
class SpanNode:
    """One reconstructed span with its children, ordered by start time."""

    span_id: str
    parent_id: str
    trace_id: str
    name: str
    start_ts: float = 0.0
    duration: float | None = None
    attrs: dict = field(default_factory=dict)
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return self.duration is not None

    def find(self, name: str) -> list["SpanNode"]:
        """Every descendant (and self) whose name matches ``name``."""
        found = [self] if self.name == name else []
        for child in self.children:
            found.extend(child.find(name))
        return found

    def render(self, indent: int = 0) -> str:
        duration = f"{self.duration * 1000:.2f} ms" if self.complete else "…"
        lines = ["  " * indent + f"{self.name}  {duration}"]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)


def build_timeline(events: list[Event]) -> list[SpanNode]:
    """Reconstruct span trees from a captured stream of trace events.

    Tolerant of truncation: an end without a captured start still yields a
    node (with the end event's timestamp), and an unfinished span appears
    with ``duration None``.  Returns the roots (spans whose parent was never
    seen), ordered by start time.
    """
    nodes: dict[str, SpanNode] = {}
    order: dict[str, int] = {}
    for event in events:
        if event.name not in ("span.start", "span.end"):
            continue
        attrs = event.attrs
        span_id = attrs.get("span", "")
        node = nodes.get(span_id)
        if node is None:
            node = nodes[span_id] = SpanNode(
                span_id=span_id,
                parent_id=attrs.get("parent", ""),
                trace_id=attrs.get("trace", ""),
                name=attrs.get("op", ""),
                start_ts=event.ts,
            )
            order[span_id] = event.seq
        if event.name == "span.end":
            node.duration = attrs.get("duration")
        extra = {
            key: value
            for key, value in attrs.items()
            if key not in ("span", "parent", "trace", "op", "duration")
        }
        node.attrs.update(extra)

    roots: list[SpanNode] = []
    for node in nodes.values():
        parent = nodes.get(node.parent_id) if node.parent_id else None
        if parent is not None:
            parent.children.append(node)
        else:
            roots.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda child: order[child.span_id])
    roots.sort(key=lambda node: order[node.span_id])
    return roots
