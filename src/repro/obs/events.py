"""The structured event bus: typed events, topic pub/sub, bounded subscribers.

Every layer of the served system (service, dispatcher, fleet supervisor,
sweep engine, stage caches, fuzz engine) publishes :class:`Event` records
onto an :class:`EventBus`.  Publishing is designed to sit on hot paths:

* with **no subscribers** a ``publish`` call is one attribute read and a
  falsy check — no event object is even constructed;
* with subscribers it is a cheap enqueue onto each matching subscriber's
  bounded deque — no locks held during I/O, no serialization, no syscalls.

Subscribers own **bounded** queues: a slow consumer loses the *oldest*
events (ring-buffer semantics, the tail of a live stream matters most) and
the loss is counted per subscriber — silent event loss is a bug class this
module refuses to have.  External processes subscribe through the line-JSON
transports in :mod:`repro.obs.transport`.

Topics are dotted names (``service.job``, ``llm.batch``, ``fleet``,
``trace``, ``cache.stats``, ``sweep.progress``, ``fuzz.program``).  A
subscription names topic *prefixes*: ``"service"`` matches ``service.job``
and ``service.snapshot``; ``None`` (or ``"*"``) matches everything.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field

#: Monotonic sequence shared by every bus in the process, so merged streams
#: from several buses still have a total order.
_sequence = itertools.count(1)


@dataclass(frozen=True)
class Event:
    """One structured occurrence: a topic, a name, a timestamp and attributes.

    ``ts`` is wall-clock (``time.time()``) for cross-process correlation;
    ``seq`` is a process-wide monotonic sequence number that orders events
    published in the same clock tick.  ``attrs`` is a flat JSON-serializable
    mapping; treat it as immutable.
    """

    topic: str
    name: str
    ts: float
    seq: int
    pid: int
    attrs: dict = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps(
            {
                "topic": self.topic,
                "name": self.name,
                "ts": self.ts,
                "seq": self.seq,
                "pid": self.pid,
                "attrs": self.attrs,
            },
            sort_keys=True,
            separators=(",", ":"),
            default=str,
        )

    @classmethod
    def from_json(cls, line: str) -> "Event":
        raw = json.loads(line)
        return cls(
            topic=raw["topic"],
            name=raw["name"],
            ts=raw["ts"],
            seq=raw["seq"],
            pid=raw.get("pid", 0),
            attrs=raw.get("attrs", {}),
        )


def _matches(topics: tuple[str, ...] | None, topic: str) -> bool:
    if topics is None:
        return True
    for prefix in topics:
        if prefix == "*" or topic == prefix or topic.startswith(prefix + "."):
            return True
    return False


class Subscription:
    """One subscriber's bounded event queue with drop accounting.

    Thread-safe: any number of publisher threads may :meth:`_offer` while one
    consumer drains via :meth:`pop_all` / :meth:`get`.  When the queue is
    full the oldest event is dropped and ``dropped`` incremented — consumers
    check :attr:`dropped` to know their view has gaps.
    """

    def __init__(
        self,
        topics: tuple[str, ...] | None = None,
        maxsize: int = 2048,
        name: str | None = None,
    ):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.topics = topics
        self.maxsize = maxsize
        self.name = name or f"sub-{next(_sequence)}"
        self._queue: deque[Event] = deque()
        self._lock = threading.Lock()
        self._ready = threading.Event()
        self._dropped = 0
        self.closed = False

    @property
    def dropped(self) -> int:
        return self._dropped

    def __len__(self) -> int:
        return len(self._queue)

    def _offer(self, event: Event) -> None:
        with self._lock:
            if self.closed:
                return
            if len(self._queue) >= self.maxsize:
                self._queue.popleft()
                self._dropped += 1
            self._queue.append(event)
        self._ready.set()

    def pop_all(self) -> list[Event]:
        """Drain everything queued right now (non-blocking)."""
        with self._lock:
            drained = list(self._queue)
            self._queue.clear()
            self._ready.clear()
        return drained

    def get(self, timeout: float | None = None) -> Event | None:
        """Pop one event, waiting up to ``timeout`` seconds; ``None`` on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._lock:
                if self._queue:
                    return self._queue.popleft()
                if self.closed:
                    return None
                self._ready.clear()
            remaining = None if deadline is None else deadline - time.monotonic()
            if remaining is not None and remaining <= 0:
                return None
            if not self._ready.wait(remaining):
                return None

    def close(self) -> None:
        with self._lock:
            self.closed = True
        self._ready.set()


class EventBus:
    """Topic-based pub/sub with per-subscriber bounded queues.

    The publish fast path is engineered for hot loops: ``self._subscriptions``
    empty means return immediately; otherwise the (topic → matching
    subscribers) route is served from a cache invalidated on every
    subscribe/unsubscribe.
    """

    def __init__(self):
        self._subscriptions: list[Subscription] = []
        self._routes: dict[str, tuple[Subscription, ...]] = {}
        self._lock = threading.Lock()
        self.published = 0
        self._pid = os.getpid()

    # ---------------------------------------------------------- subscriptions

    @property
    def active(self) -> bool:
        """True when at least one subscriber is attached (publish is not free)."""
        return bool(self._subscriptions)

    def subscribe(
        self,
        topics: str | list[str] | tuple[str, ...] | None = None,
        maxsize: int = 2048,
        name: str | None = None,
    ) -> Subscription:
        """Attach a bounded subscriber for ``topics`` (prefixes; ``None`` = all)."""
        if isinstance(topics, str):
            topics = (topics,)
        elif topics is not None:
            topics = tuple(topics)
        subscription = Subscription(topics, maxsize=maxsize, name=name)
        with self._lock:
            self._subscriptions.append(subscription)
            self._routes.clear()
        return subscription

    def unsubscribe(self, subscription: Subscription) -> None:
        subscription.close()
        with self._lock:
            if subscription in self._subscriptions:
                self._subscriptions.remove(subscription)
            self._routes.clear()

    # --------------------------------------------------------------- publish

    def publish(self, topic: str, name: str, **attrs) -> Event | None:
        """Publish one event; returns it, or ``None`` when nobody listens."""
        if not self._subscriptions:
            return None
        targets = self._routes.get(topic)
        if targets is None:
            with self._lock:
                targets = tuple(
                    sub for sub in self._subscriptions if _matches(sub.topics, topic)
                )
                self._routes[topic] = targets
        if not targets:
            return None
        event = Event(
            topic=topic,
            name=name,
            ts=time.time(),
            seq=next(_sequence),
            pid=self._pid,
            attrs=attrs,
        )
        self.published += 1
        for subscription in targets:
            subscription._offer(event)
        return event

    def emit(self, event: Event) -> None:
        """Re-publish a pre-built event (transports relaying foreign streams)."""
        if not self._subscriptions:
            return
        targets = self._routes.get(event.topic)
        if targets is None:
            with self._lock:
                targets = tuple(
                    sub for sub in self._subscriptions if _matches(sub.topics, event.topic)
                )
                self._routes[event.topic] = targets
        self.published += 1
        for subscription in targets:
            subscription._offer(event)

    # ------------------------------------------------------------------ stats

    def stats(self) -> dict:
        with self._lock:
            subscribers = [
                {
                    "name": sub.name,
                    "topics": list(sub.topics) if sub.topics else ["*"],
                    "queued": len(sub),
                    "dropped": sub.dropped,
                }
                for sub in self._subscriptions
            ]
        return {"published": self.published, "subscribers": subscribers}


# ---------------------------------------------------------------------------
# The process-global bus
# ---------------------------------------------------------------------------

JSONL_ENV = "REPRO_EVENTS_JSONL"
SOCKET_ENV = "REPRO_EVENTS_SOCKET"

_global_bus: EventBus | None = None
_global_lock = threading.Lock()
_env_installed = False


def get_bus() -> EventBus:
    """The process-global bus every instrumented layer defaults to.

    On first call, the environment transports are installed when configured:
    ``REPRO_EVENTS_JSONL=path`` attaches a JSON-lines file sink and
    ``REPRO_EVENTS_SOCKET=host:port`` serves the stream to external
    subscribers (see :mod:`repro.obs.transport`).
    """
    global _global_bus, _env_installed
    bus = _global_bus
    if bus is not None and _env_installed:
        return bus
    with _global_lock:
        if _global_bus is None:
            _global_bus = EventBus()
        if not _env_installed:
            _env_installed = True
            if os.environ.get(JSONL_ENV) or os.environ.get(SOCKET_ENV):
                from repro.obs.transport import install_from_environment

                install_from_environment(_global_bus)
        return _global_bus


def set_bus(bus: EventBus | None) -> EventBus | None:
    """Swap the global bus (tests); returns the previous one."""
    global _global_bus
    with _global_lock:
        previous, _global_bus = _global_bus, bus
    return previous


def publish(topic: str, name: str, **attrs) -> Event | None:
    """Publish onto the global bus (convenience for one-off call sites)."""
    return get_bus().publish(topic, name, **attrs)
