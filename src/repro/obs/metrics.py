"""Metrics registry: counters, gauges, histograms, Prometheus exposition.

The registry holds typed instruments keyed by ``(name, labels)`` series and
renders them in the Prometheus text format, so any scraper (or a human with
``curl`` against a dump) can read service health without bespoke parsing.

:class:`MetricsSink` derives the whole registry from the structured event
stream — the same events the operations console renders — instead of a
second set of ad-hoc counters threaded through the code: job states, cache
tiers, span latencies, LLM/sim batch sizes, queue depth and fleet
supervision counters all fall out of one ``attach``.
"""

from __future__ import annotations

import threading
from bisect import bisect_right

from repro.obs.events import Event, EventBus, Subscription

_DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)


def _labels_key(labels: dict) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(key: tuple[tuple[str, str], ...]) -> str:
    if not key:
        return ""
    body = ",".join(f'{name}="{value}"' for name, value in key)
    return "{" + body + "}"


class Counter:
    """A monotonically increasing value, optionally split by labels."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._series: dict[tuple, float] = {}
        self._lock = threading.Lock()

    def inc(self, value: float = 1.0, **labels) -> None:
        key = _labels_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + value

    def value(self, **labels) -> float:
        return self._series.get(_labels_key(labels), 0.0)

    def render(self) -> list[str]:
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} {self.kind}"]
        for key in sorted(self._series):
            lines.append(f"{self.name}{_render_labels(key)} {self._series[key]:g}")
        return lines


class Gauge(Counter):
    """A value that can go up and down (queue depth, workers alive)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        with self._lock:
            self._series[_labels_key(labels)] = float(value)


class Histogram:
    """Cumulative-bucket histogram in the Prometheus style."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "", buckets: tuple[float, ...] = _DEFAULT_BUCKETS):
        self.name = name
        self.help = help
        self.buckets = tuple(sorted(buckets))
        self._series: dict[tuple, list] = {}  # key -> [bucket counts..., count, sum]
        self._lock = threading.Lock()

    def observe(self, value: float, **labels) -> None:
        key = _labels_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = [0] * len(self.buckets) + [0, 0.0]
            index = bisect_right(self.buckets, value)
            for i in range(index, len(self.buckets)):
                series[i] += 1
            series[-2] += 1
            series[-1] += value

    def count(self, **labels) -> int:
        series = self._series.get(_labels_key(labels))
        return series[-2] if series else 0

    def sum(self, **labels) -> float:
        series = self._series.get(_labels_key(labels))
        return series[-1] if series else 0.0

    def render(self) -> list[str]:
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} {self.kind}"]
        for key in sorted(self._series):
            series = self._series[key]
            for bucket, cumulative in zip(self.buckets, series):
                labelled = key + (("le", f"{bucket:g}"),)
                lines.append(f"{self.name}_bucket{_render_labels(labelled)} {cumulative}")
            inf_key = key + (("le", "+Inf"),)
            lines.append(f"{self.name}_bucket{_render_labels(inf_key)} {series[-2]}")
            lines.append(f"{self.name}_count{_render_labels(key)} {series[-2]}")
            lines.append(f"{self.name}_sum{_render_labels(key)} {series[-1]:g}")
        return lines


class MetricsRegistry:
    """A named collection of instruments with one-call text exposition."""

    def __init__(self):
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, lambda: Counter(name, help), Counter)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, lambda: Gauge(name, help), Gauge)

    def histogram(
        self, name: str, help: str = "", buckets: tuple[float, ...] = _DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get(name, lambda: Histogram(name, help, buckets), Histogram)

    def _get(self, name: str, build, expected):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = self._instruments[name] = build()
            elif not isinstance(instrument, expected):
                raise TypeError(
                    f"metric {name!r} already registered as {type(instrument).__name__}"
                )
            return instrument

    def render(self) -> str:
        """The whole registry in Prometheus text exposition format."""
        lines: list[str] = []
        with self._lock:
            instruments = sorted(self._instruments.values(), key=lambda i: i.name)
        for instrument in instruments:
            lines.extend(instrument.render())
        return "\n".join(lines) + ("\n" if lines else "")


class MetricsSink:
    """Fill a :class:`MetricsRegistry` from the structured event stream.

    ``pump()`` drains the sink's bus subscription and folds every event into
    the registry; call it from a timer, a console refresh, or a loop around
    ``subscription.get``.  ``attach``/``detach`` manage the subscription;
    events lost to backpressure surface as ``repro_events_dropped_total``.
    """

    TOPICS = (
        "service", "llm", "sim", "trace", "fleet", "cache", "sweep", "fuzz",
        "campaign", "retry",
    )

    def __init__(self, registry: MetricsRegistry | None = None):
        self.registry = registry or MetricsRegistry()
        self._subscription: Subscription | None = None
        self._bus: EventBus | None = None

    def attach(self, bus: EventBus, maxsize: int = 8192) -> "MetricsSink":
        self._bus = bus
        self._subscription = bus.subscribe(self.TOPICS, maxsize=maxsize, name="metrics")
        return self

    def detach(self) -> None:
        if self._bus is not None and self._subscription is not None:
            self._bus.unsubscribe(self._subscription)
        self._bus = None
        self._subscription = None

    def pump(self) -> int:
        """Fold everything queued into the registry; returns events consumed."""
        if self._subscription is None:
            return 0
        events = self._subscription.pop_all()
        for event in events:
            self.apply(event)
        dropped = self._subscription.dropped
        if dropped:
            self.registry.counter(
                "repro_events_dropped_total", "events lost to sink backpressure"
            ).inc(0)  # ensure the series exists even before the first loss
            gauge = self.registry.gauge(
                "repro_events_dropped", "current drop count of the metrics sink"
            )
            gauge.set(dropped)
        return len(events)

    # ------------------------------------------------------------------ rules

    def apply(self, event: Event) -> None:
        registry = self.registry
        topic, name, attrs = event.topic, event.name, event.attrs
        if topic == "service.job":
            if name == "cache-hit":
                registry.counter(
                    "repro_service_cache_hits_total", "jobs served from a cache tier"
                ).inc(tier=attrs.get("tier", "unknown"))
            else:
                registry.counter(
                    "repro_service_jobs_total", "job state transitions"
                ).inc(state=name)
        elif topic == "service.snapshot":
            registry.gauge("repro_service_queue_depth", "queued jobs").set(
                attrs.get("queue_depth", 0)
            )
            registry.gauge("repro_service_in_flight", "executing sessions").set(
                attrs.get("in_flight", 0)
            )
        elif topic == "trace" and name == "span.end":
            duration = attrs.get("duration")
            if duration is not None:
                registry.histogram(
                    "repro_span_seconds", "span durations by operation"
                ).observe(duration, op=attrs.get("op", ""))
        elif topic == "llm.batch":
            registry.histogram(
                "repro_llm_batch_size",
                "LLM micro-batch sizes",
                buckets=(1, 2, 4, 8, 16, 32, 64, 128),
            ).observe(attrs.get("size", 0))
        elif topic == "llm.retry":
            registry.counter("repro_llm_retries_total", "dispatch retries").inc(
                reason=attrs.get("reason", "error")
            )
        elif topic == "llm.breaker":
            registry.counter(
                "repro_breaker_transitions_total", "circuit-breaker transitions"
            ).inc(transition=name)
        elif topic == "retry":
            registry.counter(
                "repro_retries_total", "retry attempts by source layer"
            ).inc(source=attrs.get("source", "unknown"))
        elif topic == "campaign":
            if name == "budget":
                registry.gauge("repro_campaign_llm_spent", "campaign LLM spend").set(
                    attrs.get("spent", 0)
                )
            elif name == "progress":
                registry.gauge(
                    "repro_campaign_stage_done", "campaign stage progress"
                ).set(attrs.get("done", 0), stage=attrs.get("stage", ""))
            else:
                registry.counter(
                    "repro_campaign_events_total", "campaign lifecycle events"
                ).inc(event=name)
        elif topic == "sim.batch":
            registry.histogram(
                "repro_sim_batch_size",
                "simulate micro-batch sizes",
                buckets=(1, 2, 4, 8, 16, 32, 64, 128),
            ).observe(attrs.get("size", 0))
        elif topic == "fleet":
            registry.counter(
                "repro_fleet_events_total", "fleet supervision events"
            ).inc(event=name)
        elif topic == "cache.stats":
            for cache, counters in (attrs.get("caches") or {}).items():
                registry.gauge("repro_cache_hits", "stage-cache hits").set(
                    counters.get("hits", 0), cache=cache
                )
                registry.gauge("repro_cache_misses", "stage-cache misses").set(
                    counters.get("misses", 0), cache=cache
                )
        elif topic == "sweep.progress":
            registry.counter("repro_sweep_units_total", "sweep units resolved").inc()
        elif topic == "fuzz.program":
            registry.counter(
                "repro_fuzz_programs_total", "fuzzed programs by outcome"
            ).inc(ok=str(bool(attrs.get("ok", True))).lower())
