"""Observability: structured event bus, tracing spans, metrics, transports.

The operator surface of the served system (see README "Operations
console").  Three layers share one event stream:

* :mod:`repro.obs.events` — the typed :class:`EventBus` with topic pub/sub
  and bounded, drop-counting subscriber queues; :func:`get_bus` is the
  process-global instance every instrumented layer publishes to;
* :mod:`repro.obs.spans` — :func:`span` context managers emitting
  start/end trace events with monotonic durations and parent/child lineage
  (session → LLM call → tool call → simulate), plus timeline reconstruction;
* :mod:`repro.obs.metrics` — a Prometheus-style registry fed from the same
  events by :class:`MetricsSink`;
* :mod:`repro.obs.transport` — JSON-lines file and line-JSON socket
  transports so external processes (the Textual console, CI artifacts, a
  scraper) subscribe without touching the serving process.
"""

from repro.obs.events import Event, EventBus, Subscription, get_bus, publish, set_bus
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, MetricsSink
from repro.obs.spans import SpanNode, build_timeline, current_span, span
from repro.obs.transport import (
    JsonlWriter,
    SocketEventServer,
    install_from_environment,
    iter_socket_events,
    parse_endpoint,
)

__all__ = [
    "Event",
    "EventBus",
    "Subscription",
    "get_bus",
    "set_bus",
    "publish",
    "span",
    "current_span",
    "SpanNode",
    "build_timeline",
    "MetricsRegistry",
    "MetricsSink",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlWriter",
    "SocketEventServer",
    "iter_socket_events",
    "parse_endpoint",
    "install_from_environment",
]
