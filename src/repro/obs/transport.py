"""Out-of-process event transports: JSON-lines files and line-JSON sockets.

Both transports are *sinks driven by their own threads*: they subscribe to a
bus like any consumer and drain their bounded queues off the publisher's
path, so a stalled disk or a slow socket peer degrades to counted drops on
that subscriber — never to backpressure inside the served system.

* :class:`JsonlWriter` appends one ``Event.to_json()`` line per event; the
  CI chaos/fuzz jobs upload these files as failure artifacts.
* :class:`SocketEventServer` serves the stream over TCP, one JSON line per
  event, to any number of external subscribers (``nc host port`` is a valid
  client); :func:`iter_socket_events` is the Python client the operations
  console uses to watch a service running in another process.

``install_from_environment`` wires both from ``REPRO_EVENTS_JSONL`` /
``REPRO_EVENTS_SOCKET`` so any entry point (service, sweeps, fuzz, chaos
tests) exports its stream without code changes.
"""

from __future__ import annotations

import os
import socket
import threading
from pathlib import Path
from typing import Iterator

from repro.obs.events import Event, EventBus, JSONL_ENV, SOCKET_ENV

_POLL = 0.2  # seconds between queue drains when idle


class JsonlWriter:
    """Append bus events to a JSON-lines file from a drain thread."""

    def __init__(
        self,
        bus: EventBus,
        path: str | os.PathLike,
        topics: list[str] | None = None,
        maxsize: int = 8192,
    ):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._bus = bus
        self._subscription = bus.subscribe(topics, maxsize=maxsize, name="jsonl-writer")
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, name="repro-obs-jsonl", daemon=True)
        self._thread.start()

    def _run(self) -> None:
        with self.path.open("a", encoding="utf-8") as handle:
            while True:
                event = self._subscription.get(timeout=_POLL)
                if event is not None:
                    handle.write(event.to_json() + "\n")
                    for queued in self._subscription.pop_all():
                        handle.write(queued.to_json() + "\n")
                    handle.flush()
                elif self._stop.is_set():
                    dropped = self._subscription.dropped
                    if dropped:
                        handle.write(
                            Event("obs", "writer-dropped", 0.0, 0, os.getpid(),
                                  {"dropped": dropped}).to_json() + "\n"
                        )
                    return

    def close(self) -> None:
        self._stop.set()
        self._bus.unsubscribe(self._subscription)
        self._thread.join(timeout=5.0)


class SocketEventServer:
    """Serve the bus over TCP as line-JSON, one subscriber queue per client."""

    def __init__(
        self,
        bus: EventBus,
        host: str = "127.0.0.1",
        port: int = 0,
        topics: list[str] | None = None,
        maxsize: int = 8192,
    ):
        self._bus = bus
        self._topics = topics
        self._maxsize = maxsize
        self._server = socket.create_server((host, port))
        self._server.settimeout(_POLL)
        self.address: tuple[str, int] = self._server.getsockname()[:2]
        self._stop = threading.Event()
        self._clients: list[threading.Thread] = []
        self._accept = threading.Thread(
            target=self._accept_loop, name="repro-obs-socket", daemon=True
        )
        self._accept.start()

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _addr = self._server.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            thread = threading.Thread(
                target=self._serve_client, args=(conn,), daemon=True
            )
            thread.start()
            self._clients.append(thread)

    def _serve_client(self, conn: socket.socket) -> None:
        subscription = self._bus.subscribe(
            self._topics, maxsize=self._maxsize, name="socket-client"
        )
        try:
            conn.settimeout(5.0)
            while not self._stop.is_set():
                event = subscription.get(timeout=_POLL)
                if event is None:
                    continue
                payload = event.to_json() + "\n"
                for queued in subscription.pop_all():
                    payload += queued.to_json() + "\n"
                conn.sendall(payload.encode())
        except OSError:
            pass  # client went away; just release its queue
        finally:
            self._bus.unsubscribe(subscription)
            try:
                conn.close()
            except OSError:
                pass

    def close(self) -> None:
        self._stop.set()
        try:
            self._server.close()
        except OSError:
            pass
        self._accept.join(timeout=5.0)
        for thread in self._clients:
            thread.join(timeout=5.0)


def iter_socket_events(
    host: str, port: int, timeout: float | None = None
) -> Iterator[Event]:
    """Connect to a :class:`SocketEventServer` and yield events as they arrive.

    ``timeout`` bounds the wait for *each* event; the generator ends on
    timeout or when the server closes the connection.
    """
    with socket.create_connection((host, port), timeout=timeout) as conn:
        conn.settimeout(timeout)
        buffer = b""
        while True:
            try:
                chunk = conn.recv(65536)
            except (socket.timeout, OSError):
                return
            if not chunk:
                return
            buffer += chunk
            while b"\n" in buffer:
                line, buffer = buffer.split(b"\n", 1)
                if line.strip():
                    yield Event.from_json(line.decode())


def parse_endpoint(raw: str, default_host: str = "127.0.0.1") -> tuple[str, int]:
    """``host:port`` / ``:port`` / ``port`` → a ``(host, port)`` pair."""
    raw = raw.strip()
    if ":" in raw:
        host, _, port = raw.rpartition(":")
        return (host or default_host, int(port))
    return (default_host, int(raw))


def install_from_environment(bus: EventBus) -> list[object]:
    """Attach the transports named by the environment; returns what was built."""
    installed: list[object] = []
    jsonl = os.environ.get(JSONL_ENV, "").strip()
    if jsonl and jsonl.lower() not in ("0", "off", "none"):
        installed.append(JsonlWriter(bus, jsonl))
    endpoint = os.environ.get(SOCKET_ENV, "").strip()
    if endpoint and endpoint.lower() not in ("0", "off", "none"):
        host, port = parse_endpoint(endpoint)
        installed.append(SocketEventServer(bus, host, port))
    return installed
