"""A small bounded LRU cache shared by the toolchain memoization layers.

Three hot paths memoize pure functions of source text — Chisel compilation
(:class:`~repro.toolchain.compiler.ChiselCompiler`), Verilog parsing
(:mod:`repro.toolchain.simulator`) and kernel compilation
(:mod:`repro.verilog.compile_sim`).  They share this helper so the eviction
policy and stats live in one place.  Cached values are shared between callers:
treat them as immutable.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from typing import Generic, TypeVar

V = TypeVar("V")

_SENTINEL = object()


def text_key(*parts: str | None) -> str:
    """Stable cache key for one or more text fragments (e.g. source + top)."""
    digest = hashlib.sha256()
    for part in parts:
        digest.update(b"\x00" if part is None else part.encode())
        digest.update(b"\x1f")
    return digest.hexdigest()


def stable_fingerprint(document: object) -> str:
    """Content fingerprint of a JSON-serializable document.

    Keys are sorted and separators fixed so the digest is independent of dict
    insertion order and Python version.  Used by the sweep result store to key
    work units by their full configuration.
    """
    canonical = json.dumps(document, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()


class LruCache(Generic[V]):
    """Bounded insertion-refreshing cache with hit/miss counters.

    ``max_size`` of 0 (or ``None``) disables storage entirely: every lookup
    misses and :meth:`put` is a no-op.

    Thread-safe: the async generation service shares these caches between the
    event loop (synthetic-client completions) and its bounded tool executor
    (compile/simulate offload), so lookups and insertions are lock-guarded.
    The caches memoize pure functions, so contention only ever costs time —
    but the guard keeps eviction bookkeeping consistent under interleaving.
    """

    def __init__(self, max_size: int | None):
        self.max_size = max_size or 0
        self._data: OrderedDict[str, V] = OrderedDict()
        self.stats = {"hits": 0, "misses": 0}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def get(self, key: str, default: V | None = None) -> V | None:
        with self._lock:
            value = self._data.get(key, _SENTINEL)
            if value is _SENTINEL:
                self.stats["misses"] += 1
                return default
            self.stats["hits"] += 1
            self._data.move_to_end(key)
            return value  # type: ignore[return-value]

    def put(self, key: str, value: V) -> V:
        with self._lock:
            if self.max_size:
                self._data[key] = value
                while len(self._data) > self.max_size:
                    self._data.popitem(last=False)
            return value

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self.stats.update(hits=0, misses=0)
