"""Bounded LRU caches, the cache registry and content fingerprints.

Every memoization layer in the toolchain — Chisel parsing and per-module
elaboration, the FIRRTL pass pipeline, Verilog emission and parsing, compiled
simulation kernels, trace-compiled testbenches and vectorized NumPy kernels
(``sim_vec`` / ``sim_vec_kernel``) — shares :class:`LruCache`
so the eviction policy and hit/miss accounting live in one place.  Caches
constructed with a ``name`` self-register in a process-wide registry;
:func:`cache_stats` aggregates hits/misses/size per name (summing across
instances, e.g. every per-compiler result cache) and is what
``repro.service.telemetry`` snapshots surface.

Cached values are shared between callers: treat them as immutable.
"""

from __future__ import annotations

import hashlib
import json
import threading
import weakref
from collections import OrderedDict
from dataclasses import fields, is_dataclass
from typing import Generic, TypeVar

V = TypeVar("V")

_SENTINEL = object()


def text_key(*parts: str | None) -> str:
    """Stable cache key for one or more text fragments (e.g. source + top)."""
    digest = hashlib.sha256()
    for part in parts:
        digest.update(b"\x00" if part is None else part.encode())
        digest.update(b"\x1f")
    return digest.hexdigest()


def stable_fingerprint(document: object) -> str:
    """Content fingerprint of a JSON-serializable document.

    Keys are sorted and separators fixed so the digest is independent of dict
    insertion order and Python version.  Used by the sweep result store to key
    work units by their full configuration.
    """
    canonical = json.dumps(document, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()


def structural_fingerprint(node: object, skip_fields: tuple[str, ...] = ("location",)) -> str:
    """Content hash of a dataclass tree, ignoring ``skip_fields`` everywhere.

    This is the key for the stage-level compile caches: two parse trees (or
    FIRRTL circuits) that differ only in source *positions* — shifted lines
    after an edit elsewhere in the file, moved comments — hash identically, so
    ReChisel iteration k+1 re-runs a stage only when the revision structurally
    changed its input.  The trade-off is the classic one of content-addressed
    build caches: diagnostics replayed from a cached stage carry the source
    coordinates of the first structurally-identical occurrence.  Error *text*,
    classes and ordering are unaffected.

    May raise ``RecursionError`` on pathologically deep trees; callers fall
    back to the uncached path in that case.
    """
    digest = hashlib.sha256()
    update = digest.update
    _structural_update(node, update, skip_fields)
    return digest.hexdigest()


def _structural_update(value: object, update, skip_fields: tuple[str, ...]) -> None:
    if is_dataclass(value) and not isinstance(value, type):
        update(b"D")
        update(type(value).__name__.encode())
        update(b"\x1f")
        for field_ in fields(value):
            if field_.name in skip_fields:
                continue
            update(field_.name.encode())
            update(b"=")
            _structural_update(getattr(value, field_.name), update, skip_fields)
        update(b";")
    elif isinstance(value, (list, tuple)):
        update(b"L")
        for item in value:
            _structural_update(item, update, skip_fields)
        update(b";")
    elif isinstance(value, dict):
        update(b"M")
        for key, item in value.items():
            _structural_update(key, update, skip_fields)
            update(b":")
            _structural_update(item, update, skip_fields)
        update(b";")
    else:
        update(b"v")
        update(repr(value).encode())
        update(b"\x1f")


def get_or_compute(cache, key: str, compute, cache_exceptions: tuple = ()):
    """Shared stage-memo pattern: lookup, compute on miss, replay failures.

    Exceptions of the listed types are cached as values and re-raised on both
    the miss and every subsequent hit (the same faulty candidate recurs
    constantly across samples and repair iterations); anything else
    propagates uncached.
    """
    cached = cache.get(key, _SENTINEL)
    if cached is not _SENTINEL:
        if cache_exceptions and isinstance(cached, cache_exceptions):
            raise cached
        return cached
    try:
        value = compute()
    except cache_exceptions as exc:
        cache.put(key, exc)
        raise
    return cache.put(key, value)


# ---------------------------------------------------------------------------
# Cache registry
# ---------------------------------------------------------------------------

_registry: dict[str, list[weakref.ref]] = {}
_registry_lock = threading.Lock()


def register_cache(name: str, cache: "LruCache") -> "LruCache":
    """Track ``cache`` under ``name`` for :func:`cache_stats` aggregation."""
    with _registry_lock:
        _registry.setdefault(name, []).append(weakref.ref(cache))
    return cache


def _live_caches() -> dict[str, list["LruCache"]]:
    with _registry_lock:
        live: dict[str, list[LruCache]] = {}
        for name, refs in _registry.items():
            instances = [cache for ref in refs if (cache := ref()) is not None]
            refs[:] = [weakref.ref(cache) for cache in instances]
            if instances:
                live[name] = instances
        return live


def cache_stats() -> dict[str, dict[str, int]]:
    """Hit/miss/size counters for every registered cache, aggregated by name.

    Covers the whole verification engine: ``chisel_parse``,
    ``chisel_elaborate``, ``chisel_compile`` (summed over compiler instances),
    ``firrtl_passes``, ``verilog_emit``, ``verilog_parse``, ``sim_kernel`` and
    ``sim_trace``.
    """
    stats: dict[str, dict[str, int]] = {}
    for name, instances in sorted(_live_caches().items()):
        stats[name] = {
            "hits": sum(cache.stats["hits"] for cache in instances),
            "misses": sum(cache.stats["misses"] for cache in instances),
            "size": sum(len(cache) for cache in instances),
            "instances": len(instances),
        }
    return stats


def clear_registered_caches() -> None:
    """Empty every registered cache and reset its counters (cold-start helper).

    Benchmarks use this to force deterministic cold runs; note it clears the
    *registered* caches only — per-object memos (module fingerprints, testbench
    trace plans) key by identity and stay valid.
    """
    for instances in _live_caches().values():
        for cache in instances:
            cache.clear()
    publish_cache_stats(name="cleared")


def publish_cache_stats(bus=None, name: str = "snapshot") -> None:
    """Publish one ``cache.stats`` event carrying :func:`cache_stats`.

    The stage caches are too hot to instrument per lookup; instead consumers
    (the generation service after each completed job, the console on demand)
    publish aggregate snapshots.  A no-op unless the bus has subscribers, so
    it is safe anywhere.
    """
    if bus is None:
        from repro.obs.events import get_bus

        bus = get_bus()
    if bus.active:
        bus.publish("cache.stats", name, caches=cache_stats())


def snapshot_registered_caches() -> list[tuple["LruCache", "OrderedDict", dict]]:
    """Capture the contents and counters of every registered cache.

    Used by test isolation (see the repo-root ``conftest.py``): a test that clears or
    cold-starts the global caches runs between :func:`snapshot_registered_caches`
    and :func:`restore_registered_caches`, so the rest of the suite keeps its
    warm state regardless of test ordering.  The snapshot holds strong
    references to the cache instances, so keep it short-lived.
    """
    snapshot = []
    for instances in _live_caches().values():
        for cache in instances:
            with cache._lock:
                snapshot.append((cache, OrderedDict(cache._data), dict(cache.stats)))
    return snapshot


def restore_registered_caches(snapshot: list[tuple["LruCache", "OrderedDict", dict]]) -> None:
    """Put every snapshotted cache back exactly as captured.

    Caches registered after the snapshot was taken are left untouched (they
    did not exist before the test, so there is no prior state to restore).
    """
    for cache, data, stats in snapshot:
        with cache._lock:
            cache._data.clear()
            cache._data.update(data)
            cache.stats.update(stats)


class LruCache(Generic[V]):
    """Bounded insertion-refreshing cache with hit/miss counters.

    ``max_size`` of 0 (or ``None``) disables storage entirely: every lookup
    misses and :meth:`put` is a no-op.  A ``name`` registers the instance for
    :func:`cache_stats` aggregation.

    Thread-safe: the async generation service shares these caches between the
    event loop (synthetic-client completions) and its bounded tool executor
    (compile/simulate offload), so lookups and insertions are lock-guarded.
    The caches memoize pure functions, so contention only ever costs time —
    but the guard keeps eviction bookkeeping consistent under interleaving.
    """

    def __init__(self, max_size: int | None, name: str | None = None):
        self.max_size = max_size or 0
        self.name = name
        self._data: OrderedDict[str, V] = OrderedDict()
        self.stats = {"hits": 0, "misses": 0}
        self._lock = threading.Lock()
        if name is not None:
            register_cache(name, self)

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def get(self, key: str, default: V | None = None) -> V | None:
        with self._lock:
            value = self._data.get(key, _SENTINEL)
            if value is _SENTINEL:
                self.stats["misses"] += 1
                return default
            self.stats["hits"] += 1
            self._data.move_to_end(key)
            return value  # type: ignore[return-value]

    def put(self, key: str, value: V) -> V:
        with self._lock:
            if self.max_size:
                self._data[key] = value
                while len(self._data) > self.max_size:
                    self._data.popitem(last=False)
            return value

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self.stats.update(hits=0, misses=0)
