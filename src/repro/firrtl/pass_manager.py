"""Pass manager: run the FIRRTL pipeline and collect diagnostics.

The pipeline result is memoized per circuit *content* (stage 3 of the
incremental compile pipeline): :func:`circuit_fingerprint` hashes every
module's structure once — memoized on the module object, so circuits rebuilt
around a cached elaboration cost one dict lookup — and
:meth:`PassManager.run_cached` replays the stored :class:`PassResult` for
repeat circuits.  Passes never mutate their input, so cached circuits and
diagnostic lists are shared; treat them as immutable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.caching import LruCache, get_or_compute, structural_fingerprint, text_key
from repro.diagnostics import DiagnosticList
from repro.firrtl import ir
from repro.firrtl.passes import (
    CheckCombLoops,
    CheckInitialization,
    InferResets,
    InferWidths,
    LowerTypes,
)
from repro.firrtl.passes.base import Pass


def circuit_fingerprint(circuit: ir.Circuit) -> str:
    """Structural content hash of a circuit (source positions excluded)."""
    parts = [circuit.name]
    for module in circuit.modules:
        fingerprint = module.__dict__.get("_structural_fp")
        if fingerprint is None:
            fingerprint = structural_fingerprint(module)
            module._structural_fp = fingerprint  # IR is immutable by convention
        parts.append(fingerprint)
    return text_key(*parts)


@dataclass
class PassResult:
    """Outcome of running a pass pipeline."""

    circuit: ir.Circuit
    diagnostics: DiagnosticList = field(default_factory=DiagnosticList)

    @property
    def ok(self) -> bool:
        return not self.diagnostics.has_errors


class PassManager:
    """Run a sequence of passes, stopping after the first pass that errors.

    Stopping early mirrors the real toolchain: later passes assume invariants
    established by earlier ones (e.g. width inference assumes ground types),
    and the compiler feedback the Reviewer sees is the first batch of errors.
    """

    def __init__(self, passes: list[Pass] | None = None, cache_size: int | None = 256):
        self.passes = passes if passes is not None else default_passes()
        self._cache: LruCache[PassResult] = LruCache(cache_size, name="firrtl_passes")

    def run(self, circuit: ir.Circuit) -> PassResult:
        diagnostics = DiagnosticList()
        current = circuit
        for pass_ in self.passes:
            current = pass_.run(current, diagnostics)
            if diagnostics.has_errors:
                break
        return PassResult(current, diagnostics)

    def run_cached(self, circuit: ir.Circuit) -> PassResult:
        """:meth:`run`, memoized by circuit fingerprint.

        The returned :class:`PassResult` (circuit and diagnostics included) is
        shared between callers and must not be mutated.
        """
        if not self._cache.max_size:
            return self.run(circuit)
        try:
            key = circuit_fingerprint(circuit)
        except RecursionError:
            return self.run(circuit)
        return get_or_compute(self._cache, key, lambda: self.run(circuit))


def default_passes() -> list[Pass]:
    return [
        InferResets(),
        LowerTypes(),
        InferWidths(),
        CheckInitialization(),
        CheckCombLoops(),
    ]


def run_default_pipeline(circuit: ir.Circuit) -> PassResult:
    """Run the default pass pipeline on ``circuit``."""
    return PassManager().run(circuit)
