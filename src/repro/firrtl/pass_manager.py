"""Pass manager: run the FIRRTL pipeline and collect diagnostics."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.diagnostics import DiagnosticList
from repro.firrtl import ir
from repro.firrtl.passes import (
    CheckCombLoops,
    CheckInitialization,
    InferResets,
    InferWidths,
    LowerTypes,
)
from repro.firrtl.passes.base import Pass


@dataclass
class PassResult:
    """Outcome of running a pass pipeline."""

    circuit: ir.Circuit
    diagnostics: DiagnosticList = field(default_factory=DiagnosticList)

    @property
    def ok(self) -> bool:
        return not self.diagnostics.has_errors


class PassManager:
    """Run a sequence of passes, stopping after the first pass that errors.

    Stopping early mirrors the real toolchain: later passes assume invariants
    established by earlier ones (e.g. width inference assumes ground types),
    and the compiler feedback the Reviewer sees is the first batch of errors.
    """

    def __init__(self, passes: list[Pass] | None = None):
        self.passes = passes if passes is not None else default_passes()

    def run(self, circuit: ir.Circuit) -> PassResult:
        diagnostics = DiagnosticList()
        current = circuit
        for pass_ in self.passes:
            current = pass_.run(current, diagnostics)
            if diagnostics.has_errors:
                break
        return PassResult(current, diagnostics)


def default_passes() -> list[Pass]:
    return [
        InferResets(),
        LowerTypes(),
        InferWidths(),
        CheckInitialization(),
        CheckCombLoops(),
    ]


def run_default_pipeline(circuit: ir.Circuit) -> PassResult:
    """Run the default pass pipeline on ``circuit``."""
    return PassManager().run(circuit)
