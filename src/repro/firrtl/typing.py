"""Type and width computation for FIRRTL expressions.

The :class:`SymbolTable` collects the declared type of every named signal in a
module (ports, wires, registers, nodes); :func:`type_of` then computes the
type of any expression.  Widths follow Chisel semantics (see
:mod:`repro.firrtl.ir`).
"""

from __future__ import annotations

from repro.firrtl import ir
from repro.hdl.bits import min_width_for


class TypeError_(Exception):
    """Raised when an expression is ill-typed (unknown field, bad op operand)."""


def _maxw(a: int | None, b: int | None) -> int | None:
    if a is None or b is None:
        return None
    return max(a, b)


def _addw(a: int | None, b: int | None) -> int | None:
    if a is None or b is None:
        return None
    return a + b


class SymbolTable:
    """Declared types of every named signal in a module."""

    def __init__(self, module: ir.Module):
        self.module = module
        self.types: dict[str, ir.Type] = {}
        self.kinds: dict[str, str] = {}
        for port in module.ports:
            self.types[port.name] = port.type
            self.kinds[port.name] = "port:" + port.direction
        for stmt in ir.walk_stmts(module.body):
            if isinstance(stmt, ir.DefWire):
                self.types[stmt.name] = stmt.type
                self.kinds[stmt.name] = "wire"
            elif isinstance(stmt, ir.DefRegister):
                self.types[stmt.name] = stmt.type
                self.kinds[stmt.name] = "reg"
            elif isinstance(stmt, ir.DefMemory):
                # A memory types as a vector of its element type, so SubAccess
                # reads/writes resolve to the element through the normal path.
                self.types[stmt.name] = ir.VectorType(stmt.type, stmt.depth)
                self.kinds[stmt.name] = "mem"
            elif isinstance(stmt, ir.DefNode):
                self.kinds[stmt.name] = "node"
                # Node types are computed lazily once all declarations are known.
        for stmt in ir.walk_stmts(module.body):
            if isinstance(stmt, ir.DefNode) and stmt.name not in self.types:
                try:
                    self.types[stmt.name] = type_of(stmt.value, self)
                except TypeError_:
                    self.types[stmt.name] = ir.UIntType(None)

    def type_named(self, name: str) -> ir.Type:
        if name not in self.types:
            raise TypeError_(f"reference to unknown signal {name!r}")
        return self.types[name]

    def kind_of(self, name: str) -> str:
        return self.kinds.get(name, "unknown")

    def update(self, name: str, tpe: ir.Type) -> None:
        self.types[name] = tpe


def width_of(tpe: ir.Type) -> int | None:
    if isinstance(tpe, (ir.UIntType, ir.SIntType)):
        return tpe.width
    if isinstance(tpe, (ir.ClockType, ir.ResetType, ir.AsyncResetType)):
        return 1
    if isinstance(tpe, ir.VectorType):
        elem = width_of(tpe.element)
        return None if elem is None else elem * tpe.size
    if isinstance(tpe, ir.BundleType):
        total = 0
        for f in tpe.fields:
            w = width_of(f.type)
            if w is None:
                return None
            total += w
        return total
    raise TypeError_(f"cannot compute width of {tpe}")


def is_signed(tpe: ir.Type) -> bool:
    return isinstance(tpe, ir.SIntType)


def type_of(expr: ir.Expr, table: SymbolTable) -> ir.Type:
    """Compute the type (with possibly-unknown width) of ``expr``."""
    if isinstance(expr, ir.Reference):
        return table.type_named(expr.name)
    if isinstance(expr, ir.SubField):
        target = type_of(expr.target, table)
        if not isinstance(target, ir.BundleType):
            raise TypeError_(f"subfield access .{expr.name} on non-bundle type {target}")
        field = target.field_named(expr.name)
        if field is None:
            raise TypeError_(f"bundle has no field named {expr.name!r}")
        return field.type
    if isinstance(expr, (ir.SubIndex, ir.SubAccess)):
        target = type_of(expr.target, table)
        if isinstance(target, ir.VectorType):
            return target.element
        if isinstance(target, (ir.UIntType, ir.SIntType)):
            return ir.UIntType(1)  # bit extraction from a ground value
        raise TypeError_(f"index access on non-indexable type {target}")
    if isinstance(expr, ir.UIntLiteral):
        width = expr.width if expr.width is not None else min_width_for(expr.value)
        return ir.UIntType(width)
    if isinstance(expr, ir.SIntLiteral):
        width = expr.width if expr.width is not None else min_width_for(expr.value, signed=True)
        return ir.SIntType(width)
    if isinstance(expr, ir.Mux):
        t_true = type_of(expr.true_value, table)
        t_false = type_of(expr.false_value, table)
        return _merge_mux(t_true, t_false)
    if isinstance(expr, ir.DoPrim):
        return _prim_type(expr, table)
    raise TypeError_(f"cannot type expression {expr!r}")


def _merge_mux(t_true: ir.Type, t_false: ir.Type) -> ir.Type:
    if isinstance(t_true, ir.VectorType) and isinstance(t_false, ir.VectorType):
        return t_true
    if isinstance(t_true, ir.BundleType):
        return t_true
    w = _maxw(width_of(t_true), width_of(t_false))
    if is_signed(t_true) and is_signed(t_false):
        return ir.SIntType(w)
    return ir.UIntType(w)


def _prim_type(expr: ir.DoPrim, table: SymbolTable) -> ir.Type:
    op = expr.op
    arg_types = [type_of(a, table) for a in expr.args]
    widths = [width_of(t) for t in arg_types]
    signed = all(is_signed(t) for t in arg_types) if arg_types else False

    def result(width: int | None, force_signed: bool | None = None) -> ir.Type:
        use_signed = signed if force_signed is None else force_signed
        return ir.SIntType(width) if use_signed else ir.UIntType(width)

    if op in ("add", "sub"):
        base = _maxw(widths[0], widths[1])
        return result(None if base is None else base + 1)
    if op in ("addw", "subw"):
        return result(_maxw(widths[0], widths[1]))
    if op == "mul":
        return result(_addw(widths[0], widths[1]))
    if op == "div":
        w = widths[0]
        return result(None if w is None else w + (1 if signed else 0))
    if op == "rem":
        if widths[0] is None or widths[1] is None:
            return result(None)
        return result(min(widths[0], widths[1]))
    if op in ("lt", "leq", "gt", "geq", "eq", "neq"):
        return ir.UIntType(1)
    if op in ("and", "or", "xor"):
        return ir.UIntType(_maxw(widths[0], widths[1]))
    if op == "not":
        return ir.UIntType(widths[0])
    if op == "neg":
        return ir.SIntType(None if widths[0] is None else widths[0] + 1)
    if op in ("andr", "orr", "xorr"):
        return ir.UIntType(1)
    if op == "cat":
        return ir.UIntType(_addw(widths[0], widths[1]))
    if op == "bits":
        hi, lo = expr.consts
        return ir.UIntType(hi - lo + 1)
    if op == "head":
        return ir.UIntType(expr.consts[0])
    if op == "tail":
        w = widths[0]
        return ir.UIntType(None if w is None else max(w - expr.consts[0], 0))
    if op == "pad":
        w = widths[0]
        n = expr.consts[0]
        return result(None if w is None else max(w, n))
    if op == "shl":
        w = widths[0]
        return result(None if w is None else w + expr.consts[0])
    if op == "shr":
        w = widths[0]
        return result(None if w is None else max(w - expr.consts[0], 1))
    if op == "dshl":
        w0, w1 = widths
        if w0 is None or w1 is None:
            return result(None)
        return result(w0 + min((1 << w1) - 1, 64))
    if op == "dshr":
        return result(widths[0])
    if op == "asUInt":
        return ir.UIntType(widths[0])
    if op == "asSInt":
        return ir.SIntType(widths[0])
    if op == "asClock":
        return ir.ClockType()
    if op == "asAsyncReset":
        return ir.AsyncResetType()
    if op == "cvt":
        w = widths[0]
        return ir.SIntType(None if w is None else (w if signed else w + 1))
    if op == "popcount":
        w = widths[0]
        return ir.UIntType(None if w is None else max(1, min_width_for(w)))
    if op == "reverse":
        return ir.UIntType(widths[0])
    raise TypeError_(f"unhandled primitive op {op}")
