"""FIRRTL-style intermediate representation.

A deliberately small IR covering what module-level Chisel designs need:
ground types (``UInt``/``SInt``/``Clock``/``Reset``), aggregates
(``Vector``/``Bundle``), wires, registers, nodes, connections and nested
``when`` conditionals.  Width fields may be ``None`` (uninferred) until the
``InferWidths`` pass runs.

Expression width rules (documented per primitive op in
:mod:`repro.firrtl.typing`) follow Chisel semantics rather than raw FIRRTL:
``+``/``-`` wrap to ``max`` width, ``+&``/``-&`` expand by one bit, ``*`` sums
widths, comparisons are 1-bit, ``##`` concatenates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.diagnostics import SourceLocation

# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Type:
    """Base class for FIRRTL types."""


@dataclass(frozen=True)
class GroundType(Type):
    pass


@dataclass(frozen=True)
class UIntType(GroundType):
    width: int | None = None

    def __str__(self) -> str:
        return f"UInt<{self.width}>" if self.width is not None else "UInt"


@dataclass(frozen=True)
class SIntType(GroundType):
    width: int | None = None

    def __str__(self) -> str:
        return f"SInt<{self.width}>" if self.width is not None else "SInt"


@dataclass(frozen=True)
class ClockType(GroundType):
    def __str__(self) -> str:
        return "Clock"


@dataclass(frozen=True)
class ResetType(GroundType):
    """Abstract reset; must be resolved to Bool by ``InferResets``."""

    def __str__(self) -> str:
        return "Reset"


@dataclass(frozen=True)
class AsyncResetType(GroundType):
    def __str__(self) -> str:
        return "AsyncReset"


@dataclass(frozen=True)
class VectorType(Type):
    element: Type
    size: int

    def __str__(self) -> str:
        return f"{self.element}[{self.size}]"


@dataclass(frozen=True)
class BundleField:
    name: str
    type: Type
    flipped: bool = False


@dataclass(frozen=True)
class BundleType(Type):
    fields: tuple[BundleField, ...] = ()

    def field_named(self, name: str) -> BundleField | None:
        for f in self.fields:
            if f.name == name:
                return f
        return None

    def __str__(self) -> str:
        inner = ", ".join(
            f"{'flip ' if f.flipped else ''}{f.name}: {f.type}" for f in self.fields
        )
        return f"{{{inner}}}"


def is_ground(tpe: Type) -> bool:
    return isinstance(tpe, GroundType)


def bool_type() -> UIntType:
    return UIntType(1)


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Expr:
    pass


@dataclass(frozen=True)
class Reference(Expr):
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class SubField(Expr):
    target: Expr
    name: str

    def __str__(self) -> str:
        return f"{self.target}.{self.name}"


@dataclass(frozen=True)
class SubIndex(Expr):
    target: Expr
    index: int

    def __str__(self) -> str:
        return f"{self.target}[{self.index}]"


@dataclass(frozen=True)
class SubAccess(Expr):
    """Dynamic (run-time) index into a vector."""

    target: Expr
    index: Expr

    def __str__(self) -> str:
        return f"{self.target}[{self.index}]"


@dataclass(frozen=True)
class UIntLiteral(Expr):
    value: int
    width: int | None = None

    def __str__(self) -> str:
        return f"UInt<{self.width}>({self.value})"


@dataclass(frozen=True)
class SIntLiteral(Expr):
    value: int
    width: int | None = None

    def __str__(self) -> str:
        return f"SInt<{self.width}>({self.value})"


# Primitive operations.  The ``consts`` tuple carries integer parameters
# (bit-extract bounds, static shift amounts, pad widths).
PRIM_OPS = {
    "add",      # expanding add (+&)
    "addw",     # wrapping add (+)
    "sub",      # expanding subtract (-&)
    "subw",     # wrapping subtract (-)
    "mul",
    "div",
    "rem",
    "lt",
    "leq",
    "gt",
    "geq",
    "eq",
    "neq",
    "and",
    "or",
    "xor",
    "not",
    "neg",
    "andr",
    "orr",
    "xorr",
    "cat",
    "bits",     # consts = (hi, lo)
    "head",     # consts = (n,)
    "tail",     # consts = (n,)
    "pad",      # consts = (n,)
    "shl",      # consts = (n,)
    "shr",      # consts = (n,)
    "dshl",
    "dshr",
    "asUInt",
    "asSInt",
    "asClock",
    "asAsyncReset",
    "cvt",
    "popcount",
    "reverse",
}


@dataclass(frozen=True)
class DoPrim(Expr):
    op: str
    args: tuple[Expr, ...]
    consts: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.op not in PRIM_OPS:
            raise ValueError(f"unknown primitive op {self.op!r}")

    def __str__(self) -> str:
        parts = [str(a) for a in self.args] + [str(c) for c in self.consts]
        return f"{self.op}({', '.join(parts)})"


@dataclass(frozen=True)
class Mux(Expr):
    condition: Expr
    true_value: Expr
    false_value: Expr

    def __str__(self) -> str:
        return f"mux({self.condition}, {self.true_value}, {self.false_value})"


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt:
    pass


@dataclass
class DefWire(Stmt):
    name: str
    type: Type
    location: SourceLocation | None = None
    has_default: bool = False  # WireDefault / WireInit


@dataclass
class DefRegister(Stmt):
    name: str
    type: Type
    clock: Expr
    reset: Expr | None = None
    init: Expr | None = None
    location: SourceLocation | None = None


@dataclass
class DefMemory(Stmt):
    """A memory of ``depth`` elements of ground ``type``.

    Reads are expressed as ``SubAccess(Reference(name), addr)``; writes are
    ``Connect`` statements whose target is such a ``SubAccess`` (optionally
    nested under ``Conditionally`` for write enables).  ``sync_read`` records
    whether the Chisel-level construct was ``SyncReadMem`` (the elaborator
    models the one-cycle read latency with an explicit read register, so the
    flag is informational for passes and emission).  Writes are always
    synchronous to ``clock``.
    """

    name: str
    type: Type
    depth: int
    sync_read: bool
    clock: Expr
    location: SourceLocation | None = None


@dataclass
class DefNode(Stmt):
    name: str
    value: Expr
    location: SourceLocation | None = None


@dataclass
class Connect(Stmt):
    target: Expr
    value: Expr
    location: SourceLocation | None = None


@dataclass
class Invalidate(Stmt):
    """``target is invalid`` — marks a signal as intentionally undriven."""

    target: Expr
    location: SourceLocation | None = None


@dataclass
class Block(Stmt):
    stmts: list[Stmt] = field(default_factory=list)

    def append(self, stmt: Stmt) -> None:
        self.stmts.append(stmt)

    def __iter__(self):
        return iter(self.stmts)

    def __len__(self) -> int:
        return len(self.stmts)


@dataclass
class Conditionally(Stmt):
    predicate: Expr
    conseq: Block = field(default_factory=Block)
    alt: Block = field(default_factory=Block)
    location: SourceLocation | None = None


# ---------------------------------------------------------------------------
# Modules and circuits
# ---------------------------------------------------------------------------

INPUT = "input"
OUTPUT = "output"


@dataclass
class Port:
    name: str
    direction: str  # INPUT or OUTPUT
    type: Type
    location: SourceLocation | None = None


@dataclass
class Module:
    name: str
    ports: list[Port] = field(default_factory=list)
    body: Block = field(default_factory=Block)

    def port_named(self, name: str) -> Port | None:
        for port in self.ports:
            if port.name == name:
                return port
        return None


@dataclass
class Circuit:
    name: str
    modules: list[Module] = field(default_factory=list)

    @property
    def main(self) -> Module:
        for module in self.modules:
            if module.name == self.name:
                return module
        return self.modules[0]


# ---------------------------------------------------------------------------
# Traversal helpers
# ---------------------------------------------------------------------------


def walk_exprs(expr: Expr):
    """Yield ``expr`` and all of its sub-expressions."""
    yield expr
    if isinstance(expr, (SubField,)):
        yield from walk_exprs(expr.target)
    elif isinstance(expr, SubIndex):
        yield from walk_exprs(expr.target)
    elif isinstance(expr, SubAccess):
        yield from walk_exprs(expr.target)
        yield from walk_exprs(expr.index)
    elif isinstance(expr, DoPrim):
        for arg in expr.args:
            yield from walk_exprs(arg)
    elif isinstance(expr, Mux):
        yield from walk_exprs(expr.condition)
        yield from walk_exprs(expr.true_value)
        yield from walk_exprs(expr.false_value)


def walk_stmts(stmt: Stmt):
    """Yield ``stmt`` and all nested statements (depth-first)."""
    yield stmt
    if isinstance(stmt, Block):
        for child in stmt.stmts:
            yield from walk_stmts(child)
    elif isinstance(stmt, Conditionally):
        yield from walk_stmts(stmt.conseq)
        yield from walk_stmts(stmt.alt)


def root_reference(expr: Expr) -> Reference | None:
    """Return the leftmost :class:`Reference` of a connect target, if any."""
    current = expr
    while True:
        if isinstance(current, Reference):
            return current
        if isinstance(current, (SubField, SubIndex, SubAccess)):
            current = current.target
            continue
        return None


def expr_references(expr: Expr) -> set[str]:
    """Names of all root references appearing anywhere in ``expr``."""
    names: set[str] = set()
    for sub in walk_exprs(expr):
        if isinstance(sub, Reference):
            names.add(sub.name)
    return names
