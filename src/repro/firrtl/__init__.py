"""FIRRTL-style intermediate representation and checking/lowering passes.

The Chisel elaborator (:mod:`repro.chisel.elaborator`) produces a
:class:`~repro.firrtl.ir.Circuit`; the pass pipeline
(:mod:`repro.firrtl.passes`) then performs the checks the paper's compiler
feedback relies on (reset inference, width inference, initialization checking,
combinational-loop detection) and lowers aggregate types so the Verilog
backend (:mod:`repro.verilog.emitter`) can emit synthesizable Verilog.
"""

from repro.firrtl import ir
from repro.firrtl.pass_manager import PassManager, run_default_pipeline

__all__ = ["ir", "PassManager", "run_default_pipeline"]
