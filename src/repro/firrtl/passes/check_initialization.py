"""CheckInitialization: every wire and output port must be driven on every path.

This is the compiler-side logical check the paper highlights (Table II B3,
"Reference w not fully initialized") and the root cause of the Fig. 4
non-progress-loop example: a signal assigned only inside some branches of a
``when``/``switch`` has no value on the remaining paths, which would infer a
latch in hardware.

A signal counts as initialized on a path if it is connected or invalidated on
that path; ``WireDefault`` signals are initialized by construction;
registers are exempt (they hold their previous value).
"""

from __future__ import annotations

from repro.diagnostics import DiagnosticList, SourceLocation
from repro.firrtl import ir
from repro.firrtl.passes.base import Pass


class CheckInitialization(Pass):
    name = "CheckInitialization"

    def run(self, circuit: ir.Circuit, diagnostics: DiagnosticList) -> ir.Circuit:
        for module in circuit.modules:
            self._check_module(module, diagnostics)
        return circuit

    def _check_module(self, module: ir.Module, diagnostics: DiagnosticList) -> None:
        required: dict[str, tuple[str, SourceLocation | None]] = {}
        for port in module.ports:
            if port.direction == ir.OUTPUT:
                required[port.name] = ("output port", port.location)
        for stmt in ir.walk_stmts(module.body):
            if isinstance(stmt, ir.DefWire) and not stmt.has_default:
                required[stmt.name] = ("wire", stmt.location)

        fully_assigned = self._assigned_in(module.body)
        ever_assigned = self._ever_assigned(module.body)

        for name, (kind, location) in sorted(required.items()):
            if name in fully_assigned:
                continue
            if name not in ever_assigned:
                diagnostics.error(
                    f"Reference {name} is not initialized: the {kind} is never driven. "
                    "Connect it with := (or initialize it with WireDefault)",
                    location=location,
                    code="B3",
                )
            else:
                diagnostics.error(
                    f"Reference {name} is not fully initialized: the {kind} is only "
                    "driven inside some when/switch branches. Provide a default value "
                    "before the conditional (e.g. WireDefault) or drive it in an "
                    ".otherwise branch",
                    location=location,
                    code="B3",
                )

    def _assigned_in(self, block: ir.Block) -> set[str]:
        """Signals driven on *every* path through ``block``."""
        assigned: set[str] = set()
        for stmt in block.stmts:
            if isinstance(stmt, (ir.Connect, ir.Invalidate)):
                root = ir.root_reference(stmt.target)
                if root is not None and isinstance(stmt.target, ir.Reference):
                    assigned.add(root.name)
            elif isinstance(stmt, ir.Conditionally):
                conseq = self._assigned_in(stmt.conseq)
                alt = self._assigned_in(stmt.alt)
                assigned |= conseq & alt
            elif isinstance(stmt, ir.Block):
                assigned |= self._assigned_in(stmt)
        return assigned

    def _ever_assigned(self, block: ir.Block) -> set[str]:
        """Signals driven on *some* path through ``block``."""
        assigned: set[str] = set()
        for stmt in ir.walk_stmts(block):
            if isinstance(stmt, (ir.Connect, ir.Invalidate)):
                root = ir.root_reference(stmt.target)
                if root is not None:
                    assigned.add(root.name)
        return assigned
