"""CheckInitialization: every wire and output port must be driven on every path.

This is the compiler-side logical check the paper highlights (Table II B3,
"Reference w not fully initialized") and the root cause of the Fig. 4
non-progress-loop example: a signal assigned only inside some branches of a
``when``/``switch`` has no value on the remaining paths, which would infer a
latch in hardware.

A signal counts as initialized on a path if it is connected or invalidated on
that path; ``WireDefault`` signals are initialized by construction;
registers are exempt (they hold their previous value).
"""

from __future__ import annotations

from repro.diagnostics import DiagnosticList, SourceLocation
from repro.firrtl import ir
from repro.firrtl.passes.base import Pass


class CheckInitialization(Pass):
    name = "CheckInitialization"

    def run(self, circuit: ir.Circuit, diagnostics: DiagnosticList) -> ir.Circuit:
        for module in circuit.modules:
            self._check_module(module, diagnostics)
        return circuit

    def _check_module(self, module: ir.Module, diagnostics: DiagnosticList) -> None:
        required: dict[str, tuple[str, SourceLocation | None]] = {}
        for port in module.ports:
            if port.direction == ir.OUTPUT:
                required[port.name] = ("output port", port.location)

        # One fused traversal collects the undriven-wire declarations and both
        # assignment summaries (the seed walked the body three times).
        wires: list[ir.DefWire] = []
        ever_assigned: set[str] = set()
        fully_assigned = self._scan_block(module.body, wires, ever_assigned)
        for stmt in wires:
            required[stmt.name] = ("wire", stmt.location)

        for name, (kind, location) in sorted(required.items()):
            if name in fully_assigned:
                continue
            if name not in ever_assigned:
                diagnostics.error(
                    f"Reference {name} is not initialized: the {kind} is never driven. "
                    "Connect it with := (or initialize it with WireDefault)",
                    location=location,
                    code="B3",
                )
            else:
                diagnostics.error(
                    f"Reference {name} is not fully initialized: the {kind} is only "
                    "driven inside some when/switch branches. Provide a default value "
                    "before the conditional (e.g. WireDefault) or drive it in an "
                    ".otherwise branch",
                    location=location,
                    code="B3",
                )

    def _scan_block(
        self, block: ir.Block, wires: list[ir.DefWire], ever: set[str]
    ) -> set[str]:
        """Returns the signals driven on *every* path through ``block`` while
        accumulating any-path assignments (``ever``) and undriven-wire
        declarations (``wires``) in the same traversal."""
        assigned: set[str] = set()
        for stmt in block.stmts:
            if isinstance(stmt, (ir.Connect, ir.Invalidate)):
                root = ir.root_reference(stmt.target)
                if root is not None:
                    ever.add(root.name)
                    if isinstance(stmt.target, ir.Reference):
                        assigned.add(root.name)
            elif isinstance(stmt, ir.Conditionally):
                conseq = self._scan_block(stmt.conseq, wires, ever)
                alt = self._scan_block(stmt.alt, wires, ever)
                assigned |= conseq & alt
            elif isinstance(stmt, ir.Block):
                assigned |= self._scan_block(stmt, wires, ever)
            elif isinstance(stmt, ir.DefWire) and not stmt.has_default:
                wires.append(stmt)
        return assigned
