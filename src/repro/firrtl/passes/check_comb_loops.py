"""CheckCombLoops: detect combinational cycles (Table II C2).

Builds a dependency graph over ground signals after lowering: for every
combinational sink (wire, node, output port) each signal referenced by a
driving expression — including the predicates of enclosing ``when`` blocks —
is a dependency.  Registers break cycles (their outputs change only on clock
edges).  Any strongly-connected component with more than one node, or a
self-loop, is reported with a sample path formatted like firtool's output.
"""

from __future__ import annotations

import networkx as nx

from repro.diagnostics import DiagnosticList
from repro.firrtl import ir
from repro.firrtl.passes.base import Pass


class CheckCombLoops(Pass):
    name = "CheckCombLoops"

    def run(self, circuit: ir.Circuit, diagnostics: DiagnosticList) -> ir.Circuit:
        for module in circuit.modules:
            self._check_module(module, diagnostics)
        return circuit

    def _check_module(self, module: ir.Module, diagnostics: DiagnosticList) -> None:
        # One traversal gathers register definitions and candidate edges; the
        # register filter (unknowable mid-walk, definitions may follow uses)
        # is applied when the graph is assembled afterwards.
        registers: set[str] = set()
        entries: list[tuple[bool, str, set[str]]] = []
        self._collect(module.body, [], registers, entries)
        graph = nx.DiGraph()
        for is_connect, sink, sources in entries:
            if is_connect and sink in registers:
                continue
            for source in sources:
                if source in ("clock", "reset"):
                    continue
                graph.add_edge(source, sink)

        reported: set[frozenset[str]] = set()
        for cycle_nodes in nx.strongly_connected_components(graph):
            if len(cycle_nodes) == 1:
                node = next(iter(cycle_nodes))
                if not graph.has_edge(node, node):
                    continue
            key = frozenset(cycle_nodes)
            if key in reported:
                continue
            reported.add(key)
            sample = self._sample_path(graph, cycle_nodes)
            diagnostics.error(
                f"Detected combinational cycle in a FIRRTL module {module.name}. "
                f"Sample path: {{{sample}}}. Break the loop by inserting a register "
                "or restructuring the logic",
                code="C2",
            )

    def _collect(
        self,
        block: ir.Block,
        predicates: list[ir.Expr],
        registers: set[str],
        entries: list[tuple[bool, str, set[str]]],
    ) -> None:
        for stmt in block.stmts:
            if isinstance(stmt, ir.DefRegister):
                registers.add(stmt.name)
            elif isinstance(stmt, ir.DefMemory):
                # Memory writes are synchronous, so memories break cycles just
                # like registers do.
                registers.add(stmt.name)
            elif isinstance(stmt, ir.Connect):
                root = ir.root_reference(stmt.target)
                if root is None:
                    continue
                sources = ir.expr_references(stmt.value)
                for predicate in predicates:
                    sources |= ir.expr_references(predicate)
                entries.append((True, root.name, sources))
            elif isinstance(stmt, ir.DefNode):
                entries.append((False, stmt.name, ir.expr_references(stmt.value)))
            elif isinstance(stmt, ir.Conditionally):
                self._collect(stmt.conseq, predicates + [stmt.predicate], registers, entries)
                self._collect(stmt.alt, predicates + [stmt.predicate], registers, entries)
            elif isinstance(stmt, ir.Block):
                self._collect(stmt, predicates, registers, entries)

    def _sample_path(self, graph: nx.DiGraph, nodes: set[str]) -> str:
        start = sorted(nodes)[0]
        if graph.has_edge(start, start):
            return f"{start} <- {start}"
        try:
            cycle = nx.find_cycle(graph.subgraph(nodes), source=start)
        except nx.NetworkXNoCycle:  # pragma: no cover - SCC guarantees a cycle
            return start
        names = [edge[0] for edge in cycle] + [cycle[0][0]]
        return " <- ".join(reversed(names))
