"""CheckCombLoops: detect combinational cycles (Table II C2).

Builds a dependency graph over ground signals after lowering: for every
combinational sink (wire, node, output port) each signal referenced by a
driving expression — including the predicates of enclosing ``when`` blocks —
is a dependency.  Registers break cycles (their outputs change only on clock
edges).  Any strongly-connected component with more than one node, or a
self-loop, is reported with a sample path formatted like firtool's output.
"""

from __future__ import annotations

import networkx as nx

from repro.diagnostics import DiagnosticList
from repro.firrtl import ir
from repro.firrtl.passes.base import Pass


class CheckCombLoops(Pass):
    name = "CheckCombLoops"

    def run(self, circuit: ir.Circuit, diagnostics: DiagnosticList) -> ir.Circuit:
        for module in circuit.modules:
            self._check_module(module, diagnostics)
        return circuit

    def _check_module(self, module: ir.Module, diagnostics: DiagnosticList) -> None:
        registers = {
            stmt.name
            for stmt in ir.walk_stmts(module.body)
            if isinstance(stmt, ir.DefRegister)
        }
        graph = nx.DiGraph()
        self._add_edges(module.body, [], registers, graph)

        reported: set[frozenset[str]] = set()
        for cycle_nodes in nx.strongly_connected_components(graph):
            if len(cycle_nodes) == 1:
                node = next(iter(cycle_nodes))
                if not graph.has_edge(node, node):
                    continue
            key = frozenset(cycle_nodes)
            if key in reported:
                continue
            reported.add(key)
            sample = self._sample_path(graph, cycle_nodes)
            diagnostics.error(
                f"Detected combinational cycle in a FIRRTL module {module.name}. "
                f"Sample path: {{{sample}}}. Break the loop by inserting a register "
                "or restructuring the logic",
                code="C2",
            )

    def _add_edges(
        self,
        block: ir.Block,
        predicates: list[ir.Expr],
        registers: set[str],
        graph: nx.DiGraph,
    ) -> None:
        for stmt in block.stmts:
            if isinstance(stmt, ir.Connect):
                root = ir.root_reference(stmt.target)
                if root is None or root.name in registers:
                    continue
                sources = ir.expr_references(stmt.value)
                for predicate in predicates:
                    sources |= ir.expr_references(predicate)
                for source in sources:
                    if source in ("clock", "reset"):
                        continue
                    graph.add_edge(source, root.name)
            elif isinstance(stmt, ir.DefNode):
                for source in ir.expr_references(stmt.value):
                    if source in ("clock", "reset"):
                        continue
                    graph.add_edge(source, stmt.name)
            elif isinstance(stmt, ir.Conditionally):
                self._add_edges(stmt.conseq, predicates + [stmt.predicate], registers, graph)
                self._add_edges(stmt.alt, predicates + [stmt.predicate], registers, graph)
            elif isinstance(stmt, ir.Block):
                self._add_edges(stmt, predicates, registers, graph)

    def _sample_path(self, graph: nx.DiGraph, nodes: set[str]) -> str:
        start = sorted(nodes)[0]
        if graph.has_edge(start, start):
            return f"{start} <- {start}"
        try:
            cycle = nx.find_cycle(graph.subgraph(nodes), source=start)
        except nx.NetworkXNoCycle:  # pragma: no cover - SCC guarantees a cycle
            return start
        names = [edge[0] for edge in cycle] + [cycle[0][0]]
        return " <- ".join(reversed(names))
