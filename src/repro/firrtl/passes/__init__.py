"""FIRRTL checking and lowering passes.

The default pipeline (see :mod:`repro.firrtl.pass_manager`) is:

1. ``InferResets``        — reject abstract ``Reset()`` ports (Table II B1).
2. ``LowerTypes``         — flatten Vec/Bundle signals to ground signals,
   turn dynamic indexing into mux trees / conditional writes.
3. ``InferWidths``        — fixed-point width inference for unsized signals.
4. ``CheckInitialization``— every wire/output driven on every path (B3).
5. ``CheckCombLoops``     — no combinational cycles (C2).
"""

from repro.firrtl.passes.check_comb_loops import CheckCombLoops
from repro.firrtl.passes.check_initialization import CheckInitialization
from repro.firrtl.passes.infer_resets import InferResets
from repro.firrtl.passes.infer_widths import InferWidths
from repro.firrtl.passes.lower_types import LowerTypes

__all__ = [
    "InferResets",
    "LowerTypes",
    "InferWidths",
    "CheckInitialization",
    "CheckCombLoops",
]
