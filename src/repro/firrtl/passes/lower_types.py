"""LowerTypes: flatten aggregate signals into ground-typed signals.

After this pass every wire, register and port has a ground type
(``UInt``/``SInt``/``Clock``), which is what both the Verilog emitter and the
simulator consume:

* ``Vec`` signals become ``name_0 .. name_{n-1}``;
* ``Bundle`` signals become ``name_field`` (recursively);
* static indexing / field selection is rewritten to the flattened name;
* dynamic reads (``vec(idx)``) become a mux chain;
* dynamic writes (``vec(idx) := x``) become one conditional write per element.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.diagnostics import DiagnosticList, SourceLocation
from repro.firrtl import ir
from repro.firrtl.passes.base import Pass


# An aggregate "view": the flattened structure of an aggregate-typed signal.
@dataclass
class AggVec:
    elements: list[object] = field(default_factory=list)  # ir.Expr | AggVec | AggBundle


@dataclass
class AggBundle:
    fields: dict[str, object] = field(default_factory=dict)


class LowerTypes(Pass):
    name = "LowerTypes"

    def run(self, circuit: ir.Circuit, diagnostics: DiagnosticList) -> ir.Circuit:
        modules = [self._lower_module(m, diagnostics) for m in circuit.modules]
        return ir.Circuit(circuit.name, modules)

    # ------------------------------------------------------------------ module

    def _lower_module(self, module: ir.Module, diagnostics: DiagnosticList) -> ir.Module:
        self.diagnostics = diagnostics
        # name -> (type, view of flattened references)
        self.views: dict[str, object] = {}
        self.types: dict[str, ir.Type] = {}
        # Memories stay addressed (never flattened); their names gate the
        # SubAccess write-target passthrough below.
        self.memories: set[str] = set()

        ports: list[ir.Port] = []
        for port in module.ports:
            if isinstance(port.type, (ir.VectorType, ir.BundleType)):
                expanded = self._expand(port.name, port.type)
                for leaf_name, leaf_type in expanded:
                    ports.append(ir.Port(leaf_name, port.direction, leaf_type, port.location))
                self.views[port.name] = self._build_view(port.name, port.type)
                self.types[port.name] = port.type
            else:
                ports.append(port)

        body = ir.Block()
        self._lower_block(module.body, body)
        return ir.Module(module.name, ports, body)

    # --------------------------------------------------------------- expansion

    def _expand(self, name: str, tpe: ir.Type) -> list[tuple[str, ir.Type]]:
        if isinstance(tpe, ir.VectorType):
            leaves: list[tuple[str, ir.Type]] = []
            for index in range(tpe.size):
                leaves.extend(self._expand(f"{name}_{index}", tpe.element))
            return leaves
        if isinstance(tpe, ir.BundleType):
            leaves = []
            for bundle_field in tpe.fields:
                leaves.extend(self._expand(f"{name}_{bundle_field.name}", bundle_field.type))
            return leaves
        return [(name, tpe)]

    def _build_view(self, name: str, tpe: ir.Type) -> object:
        if isinstance(tpe, ir.VectorType):
            return AggVec([self._build_view(f"{name}_{i}", tpe.element) for i in range(tpe.size)])
        if isinstance(tpe, ir.BundleType):
            return AggBundle(
                {f.name: self._build_view(f"{name}_{f.name}", f.type) for f in tpe.fields}
            )
        return ir.Reference(name)

    # ------------------------------------------------------------- statements

    def _lower_block(self, block: ir.Block, out: ir.Block) -> None:
        for stmt in block.stmts:
            self._lower_stmt(stmt, out)

    def _lower_stmt(self, stmt: ir.Stmt, out: ir.Block) -> None:
        if isinstance(stmt, ir.DefWire):
            if isinstance(stmt.type, (ir.VectorType, ir.BundleType)):
                self.views[stmt.name] = self._build_view(stmt.name, stmt.type)
                self.types[stmt.name] = stmt.type
                for leaf_name, leaf_type in self._expand(stmt.name, stmt.type):
                    out.append(ir.DefWire(leaf_name, leaf_type, stmt.location, stmt.has_default))
            else:
                out.append(stmt)
            return
        if isinstance(stmt, ir.DefRegister):
            if isinstance(stmt.type, (ir.VectorType, ir.BundleType)):
                self.views[stmt.name] = self._build_view(stmt.name, stmt.type)
                self.types[stmt.name] = stmt.type
                init_view = self._lower_expr(stmt.init) if stmt.init is not None else None
                clock = self._lower_ground(stmt.clock, stmt.location)
                reset = (
                    self._lower_ground(stmt.reset, stmt.location)
                    if stmt.reset is not None
                    else None
                )
                self._lower_aggregate_register(stmt, init_view, clock, reset, out)
            else:
                clock = self._lower_ground(stmt.clock, stmt.location)
                reset = (
                    self._lower_ground(stmt.reset, stmt.location)
                    if stmt.reset is not None
                    else None
                )
                init = (
                    self._lower_ground(stmt.init, stmt.location)
                    if stmt.init is not None
                    else None
                )
                out.append(
                    ir.DefRegister(stmt.name, stmt.type, clock, reset, init, stmt.location)
                )
            return
        if isinstance(stmt, ir.DefMemory):
            self.memories.add(stmt.name)
            clock = self._lower_ground(stmt.clock, stmt.location)
            out.append(
                ir.DefMemory(
                    stmt.name, stmt.type, stmt.depth, stmt.sync_read, clock, stmt.location
                )
            )
            return
        if isinstance(stmt, ir.DefNode):
            out.append(ir.DefNode(stmt.name, self._lower_ground(stmt.value, stmt.location), stmt.location))
            return
        if isinstance(stmt, ir.Connect):
            self._lower_connect(stmt, out)
            return
        if isinstance(stmt, ir.Invalidate):
            self._lower_invalidate(stmt, out)
            return
        if isinstance(stmt, ir.Conditionally):
            conseq = ir.Block()
            alt = ir.Block()
            self._lower_block(stmt.conseq, conseq)
            self._lower_block(stmt.alt, alt)
            predicate = self._lower_ground(stmt.predicate, stmt.location)
            out.append(ir.Conditionally(predicate, conseq, alt, stmt.location))
            return
        if isinstance(stmt, ir.Block):
            self._lower_block(stmt, out)
            return
        out.append(stmt)

    def _lower_aggregate_register(self, stmt, init_view, clock, reset, out: ir.Block) -> None:
        def recurse(name: str, tpe: ir.Type, init: object | None) -> None:
            if isinstance(tpe, ir.VectorType):
                for index in range(tpe.size):
                    sub_init = None
                    if isinstance(init, AggVec):
                        sub_init = init.elements[index]
                    recurse(f"{name}_{index}", tpe.element, sub_init)
                return
            if isinstance(tpe, ir.BundleType):
                for bundle_field in tpe.fields:
                    sub_init = None
                    if isinstance(init, AggBundle):
                        sub_init = init.fields.get(bundle_field.name)
                    recurse(f"{name}_{bundle_field.name}", bundle_field.type, sub_init)
                return
            leaf_init = init if isinstance(init, ir.Expr) else None
            out.append(
                ir.DefRegister(name, tpe, clock, reset if leaf_init is not None else None,
                               leaf_init, stmt.location)
            )

        recurse(stmt.name, stmt.type, init_view)

    # ------------------------------------------------------------- connections

    def _lower_connect(self, stmt: ir.Connect, out: ir.Block) -> None:
        alternatives = self._expand_write_target(stmt.target, stmt.location)
        value = self._lower_expr(stmt.value)
        for condition, target_view in alternatives:
            connects = self._leaf_connects(target_view, value, stmt.location)
            if condition is None:
                for connect in connects:
                    out.append(connect)
            else:
                out.append(ir.Conditionally(condition, ir.Block(connects), ir.Block(), stmt.location))

    def _lower_invalidate(self, stmt: ir.Invalidate, out: ir.Block) -> None:
        alternatives = self._expand_write_target(stmt.target, stmt.location)
        for condition, target_view in alternatives:
            invalidates = [
                ir.Invalidate(leaf, stmt.location) for leaf in self._view_leaves(target_view)
            ]
            if condition is None:
                for stmt_out in invalidates:
                    out.append(stmt_out)
            else:
                out.append(
                    ir.Conditionally(condition, ir.Block(invalidates), ir.Block(), stmt.location)
                )

    def _leaf_connects(
        self, target_view: object, value_view: object, location: SourceLocation | None
    ) -> list[ir.Stmt]:
        if isinstance(target_view, ir.Expr):
            if not isinstance(value_view, ir.Expr):
                value_view = self._aggregate_to_ground(value_view, location)
            return [ir.Connect(target_view, value_view, location)]
        if isinstance(target_view, AggVec):
            if isinstance(value_view, AggVec) and len(value_view.elements) == len(target_view.elements):
                connects: list[ir.Stmt] = []
                for t_elem, v_elem in zip(target_view.elements, value_view.elements):
                    connects.extend(self._leaf_connects(t_elem, v_elem, location))
                return connects
            self.diagnostics.error(
                "cannot connect a non-Vec value to a Vec signal", location, code="B5"
            )
            return []
        if isinstance(target_view, AggBundle):
            if isinstance(value_view, AggBundle):
                connects = []
                for name, t_member in target_view.fields.items():
                    if name not in value_view.fields:
                        self.diagnostics.error(
                            f"Connection between sink (Bundle) and source (Bundle) failed: "
                            f"source Record missing field ({name}).",
                            location,
                            code="B4",
                        )
                        continue
                    connects.extend(
                        self._leaf_connects(t_member, value_view.fields[name], location)
                    )
                return connects
            self.diagnostics.error(
                "cannot connect a non-Bundle value to a Bundle signal", location, code="B4"
            )
            return []
        return []

    def _view_leaves(self, view: object) -> list[ir.Expr]:
        if isinstance(view, ir.Expr):
            return [view]
        if isinstance(view, AggVec):
            leaves: list[ir.Expr] = []
            for element in view.elements:
                leaves.extend(self._view_leaves(element))
            return leaves
        if isinstance(view, AggBundle):
            leaves = []
            for member in view.fields.values():
                leaves.extend(self._view_leaves(member))
            return leaves
        return []

    def _expand_write_target(
        self, expr: ir.Expr, location: SourceLocation | None
    ) -> list[tuple[ir.Expr | None, object]]:
        """Return (condition, view) alternatives for a connect target."""
        if isinstance(expr, ir.Reference):
            view = self.views.get(expr.name, expr)
            return [(None, view)]
        if isinstance(expr, ir.SubField):
            alternatives = self._expand_write_target(expr.target, location)
            results: list[tuple[ir.Expr | None, object]] = []
            for condition, view in alternatives:
                if isinstance(view, AggBundle) and expr.name in view.fields:
                    results.append((condition, view.fields[expr.name]))
                elif isinstance(view, ir.Expr):
                    results.append((condition, ir.SubField(view, expr.name)))
                else:
                    self.diagnostics.error(
                        f"field {expr.name!r} does not exist on the connection target",
                        location,
                        code="B4",
                    )
            return results
        if isinstance(expr, ir.SubIndex):
            alternatives = self._expand_write_target(expr.target, location)
            results = []
            for condition, view in alternatives:
                if isinstance(view, AggVec):
                    if expr.index < 0 or expr.index >= len(view.elements):
                        self.diagnostics.error(
                            f"{expr.index} is out of bounds (min 0, max {len(view.elements) - 1})",
                            location,
                            code="B7",
                        )
                        continue
                    results.append((condition, view.elements[expr.index]))
                elif isinstance(view, ir.Expr):
                    results.append((condition, ir.SubIndex(view, expr.index)))
            return results
        if isinstance(expr, ir.SubAccess):
            index = self._lower_ground(expr.index, location)
            alternatives = self._expand_write_target(expr.target, location)
            results = []
            for condition, view in alternatives:
                if not isinstance(view, AggVec):
                    if isinstance(view, ir.Expr):
                        root = ir.root_reference(view)
                        if root is not None and root.name in self.memories:
                            # Memory writes stay addressed: mem[addr] <= value.
                            results.append((condition, ir.SubAccess(view, index)))
                            continue
                    self.diagnostics.error(
                        "dynamic indexing on a non-Vec connection target", location, code="B5"
                    )
                    continue
                for element_index, element in enumerate(view.elements):
                    equality = ir.DoPrim("eq", (index, ir.UIntLiteral(element_index)))
                    combined = (
                        equality if condition is None else ir.DoPrim("and", (condition, equality))
                    )
                    results.append((combined, element))
            return results
        # Ground expression target (should not normally happen).
        return [(None, self._lower_ground(expr, location))]

    # ------------------------------------------------------------- expressions

    def _lower_ground(self, expr: ir.Expr, location: SourceLocation | None) -> ir.Expr:
        lowered = self._lower_expr(expr)
        if isinstance(lowered, ir.Expr):
            return lowered
        return self._aggregate_to_ground(lowered, location)

    def _aggregate_to_ground(self, view: object, location: SourceLocation | None) -> ir.Expr:
        """Convert an aggregate view used in ground context by concatenation."""
        leaves = self._view_leaves(view)
        if not leaves:
            self.diagnostics.error(
                "aggregate value used where a ground value is required", location, code="B5"
            )
            return ir.UIntLiteral(0, 1)
        result = leaves[0]
        for leaf in leaves[1:]:
            result = ir.DoPrim("cat", (leaf, result))
        return result

    def _lower_expr(self, expr: ir.Expr) -> object:
        if isinstance(expr, ir.Reference):
            return self.views.get(expr.name, expr)
        if isinstance(expr, ir.SubField):
            target = self._lower_expr(expr.target)
            if isinstance(target, AggBundle):
                return target.fields.get(expr.name, ir.UIntLiteral(0, 1))
            if isinstance(target, ir.Expr):
                return ir.SubField(target, expr.name)
            return ir.UIntLiteral(0, 1)
        if isinstance(expr, ir.SubIndex):
            target = self._lower_expr(expr.target)
            if isinstance(target, AggVec):
                if 0 <= expr.index < len(target.elements):
                    return target.elements[expr.index]
                self.diagnostics.error(
                    f"{expr.index} is out of bounds (min 0, max {len(target.elements) - 1})",
                    None,
                    code="B7",
                )
                return ir.UIntLiteral(0, 1)
            if isinstance(target, ir.Expr):
                return ir.SubIndex(target, expr.index)
            return ir.UIntLiteral(0, 1)
        if isinstance(expr, ir.SubAccess):
            target = self._lower_expr(expr.target)
            index = self._lower_ground(expr.index, None)
            if isinstance(target, AggVec):
                elements = target.elements
                if not elements:
                    return ir.UIntLiteral(0, 1)
                if any(not isinstance(e, ir.Expr) for e in elements):
                    self.diagnostics.error(
                        "dynamic indexing into a Vec of aggregates is not supported",
                        None,
                        code="B5",
                    )
                    return ir.UIntLiteral(0, 1)
                result = elements[-1]
                for element_index in range(len(elements) - 2, -1, -1):
                    condition = ir.DoPrim("eq", (index, ir.UIntLiteral(element_index)))
                    result = ir.Mux(condition, elements[element_index], result)
                return result
            if isinstance(target, ir.Expr):
                return ir.SubAccess(target, index)
            return ir.UIntLiteral(0, 1)
        if isinstance(expr, ir.DoPrim):
            args = tuple(self._lower_ground(a, None) for a in expr.args)
            return ir.DoPrim(expr.op, args, expr.consts)
        if isinstance(expr, ir.Mux):
            return ir.Mux(
                self._lower_ground(expr.condition, None),
                self._lower_ground(expr.true_value, None),
                self._lower_ground(expr.false_value, None),
            )
        return expr
