"""InferResets: reject ports declared with the abstract ``Reset()`` type.

Real Chisel attempts to infer a concrete reset type (synchronous ``Bool`` or
``AsyncReset``) for abstract resets; module-level designs that declare
``IO(Input(Reset()))`` and then use the signal as a Bool cannot be inferred
and firtool reports exactly the diagnostic reproduced here (Table II B1).
In this subset abstract resets on ports are always reported, mirroring the
common failure mode of LLM-generated code.
"""

from __future__ import annotations

from repro.diagnostics import DiagnosticList
from repro.firrtl import ir
from repro.firrtl.passes.base import Pass


class InferResets(Pass):
    name = "InferResets"

    def run(self, circuit: ir.Circuit, diagnostics: DiagnosticList) -> ir.Circuit:
        for module in circuit.modules:
            for port in module.ports:
                if self._contains_abstract_reset(port.type):
                    diagnostics.error(
                        f"A port {port.name} with abstract reset type was unable to be "
                        "inferred by InferResets (expected reset type to be a concrete "
                        "Bool or AsyncReset); declare the port as Input(Bool()) or "
                        "Input(AsyncReset())",
                        location=port.location,
                        code="B1",
                    )
        return circuit

    def _contains_abstract_reset(self, tpe: ir.Type) -> bool:
        if isinstance(tpe, ir.ResetType):
            return True
        if isinstance(tpe, ir.VectorType):
            return self._contains_abstract_reset(tpe.element)
        if isinstance(tpe, ir.BundleType):
            return any(self._contains_abstract_reset(f.type) for f in tpe.fields)
        return False
