"""InferWidths: fixed-point width inference for unsized ground signals.

Runs after LowerTypes, so every declaration is ground-typed.  A signal whose
declared width is ``None`` (``UInt()`` / ``Wire(UInt())`` / ``RegInit(0.U)``)
gets the maximum width of every expression connected to it (including
register init values); literal widths default to the minimal width of their
value.  Signals whose width remains unknown after the fixed point — and
ports, which must always carry a width — are reported.
"""

from __future__ import annotations

from repro.diagnostics import DiagnosticList
from repro.firrtl import ir
from repro.firrtl.passes.base import Pass
from repro.firrtl.typing import SymbolTable, TypeError_, type_of, width_of

_MAX_ITERATIONS = 32


class InferWidths(Pass):
    name = "InferWidths"

    def run(self, circuit: ir.Circuit, diagnostics: DiagnosticList) -> ir.Circuit:
        modules = [self._infer_module(m, diagnostics) for m in circuit.modules]
        return ir.Circuit(circuit.name, modules)

    def _infer_module(self, module: ir.Module, diagnostics: DiagnosticList) -> ir.Module:
        table = SymbolTable(module)

        # Gather every (sink name, source expression) pair that constrains
        # widths, plus the first declaration of each name — the fixed-point
        # loop consults declared widths per constraint per iteration, so the
        # lookup must not re-walk the body each time.
        constraints: list[tuple[str, ir.Expr]] = []
        declarations: dict[str, ir.Stmt] = {}
        for stmt in ir.walk_stmts(module.body):
            if isinstance(stmt, ir.Connect):
                root = ir.root_reference(stmt.target)
                if root is not None:
                    constraints.append((root.name, stmt.value))
            elif isinstance(stmt, ir.DefRegister) and stmt.init is not None:
                constraints.append((stmt.name, stmt.init))
            elif isinstance(stmt, ir.DefNode):
                constraints.append((stmt.name, stmt.value))
            if isinstance(stmt, (ir.DefWire, ir.DefRegister, ir.DefMemory)):
                # Memory elements always carry an explicit width (enforced at
                # elaboration), so connects to mem[addr] never widen them.
                declarations.setdefault(stmt.name, stmt)
        declared_widths: dict[str, int | None] = {}

        def declared_width(name: str) -> int | None:
            if name not in declared_widths:
                declared_widths[name] = self._declared_width(module, name, declarations)
            return declared_widths[name]

        for _ in range(_MAX_ITERATIONS):
            changed = False
            for name, source in constraints:
                current = table.types.get(name)
                if current is None or not isinstance(current, (ir.UIntType, ir.SIntType)):
                    continue
                try:
                    source_width = width_of(type_of(source, table))
                except TypeError_:
                    continue
                if source_width is None:
                    continue
                if current.width is None or current.width < source_width:
                    # Connections to a *declared-width* signal never widen it
                    # (Chisel truncates); only undeclared widths are inferred.
                    if declared_width(name) is not None:
                        continue
                    new_width = source_width if current.width is None else max(current.width, source_width)
                    new_type = (
                        ir.SIntType(new_width)
                        if isinstance(current, ir.SIntType)
                        else ir.UIntType(new_width)
                    )
                    table.update(name, new_type)
                    changed = True
            if not changed:
                break

        # Write the inferred widths back into the declarations.
        rewritten = self._rewrite_module(module, table)

        for port in rewritten.ports:
            if isinstance(port.type, (ir.UIntType, ir.SIntType)) and port.type.width is None:
                diagnostics.error(
                    f"unable to infer width of port {port.name}; specify the width "
                    f"explicitly (e.g. UInt(8.W))",
                    location=port.location,
                    code="WIDTH",
                )
        for stmt in ir.walk_stmts(rewritten.body):
            if isinstance(stmt, (ir.DefWire, ir.DefRegister)):
                if isinstance(stmt.type, (ir.UIntType, ir.SIntType)) and stmt.type.width is None:
                    diagnostics.error(
                        f"unable to infer width of {stmt.name}; it is never driven by a "
                        "sized expression",
                        location=stmt.location,
                        code="WIDTH",
                    )
        return rewritten

    def _declared_width(
        self, module: ir.Module, name: str, declarations: dict[str, ir.Stmt]
    ) -> int | None:
        port = module.port_named(name)
        if port is not None:
            return width_of(port.type)
        stmt = declarations.get(name)
        if stmt is not None:
            return width_of(stmt.type)
        return None

    def _rewrite_module(self, module: ir.Module, table: SymbolTable) -> ir.Module:
        ports = [
            ir.Port(p.name, p.direction, table.types.get(p.name, p.type), p.location)
            for p in module.ports
        ]
        body = ir.Block()
        self._rewrite_block(module.body, body, table)
        return ir.Module(module.name, ports, body)

    def _rewrite_block(self, block: ir.Block, out: ir.Block, table: SymbolTable) -> None:
        for stmt in block.stmts:
            if isinstance(stmt, ir.DefWire):
                out.append(
                    ir.DefWire(
                        stmt.name, table.types.get(stmt.name, stmt.type), stmt.location, stmt.has_default
                    )
                )
            elif isinstance(stmt, ir.DefRegister):
                out.append(
                    ir.DefRegister(
                        stmt.name,
                        table.types.get(stmt.name, stmt.type),
                        stmt.clock,
                        stmt.reset,
                        stmt.init,
                        stmt.location,
                    )
                )
            elif isinstance(stmt, ir.Conditionally):
                conseq = ir.Block()
                alt = ir.Block()
                self._rewrite_block(stmt.conseq, conseq, table)
                self._rewrite_block(stmt.alt, alt, table)
                out.append(ir.Conditionally(stmt.predicate, conseq, alt, stmt.location))
            elif isinstance(stmt, ir.Block):
                inner = ir.Block()
                self._rewrite_block(stmt, inner, table)
                out.append(inner)
            else:
                out.append(stmt)
