"""Base class shared by all FIRRTL passes."""

from __future__ import annotations

from repro.diagnostics import DiagnosticList
from repro.firrtl import ir


class Pass:
    """A transformation or check over a FIRRTL circuit.

    Passes mutate nothing: :meth:`run` returns a (possibly new) circuit and
    appends any findings to the supplied diagnostic list.  A pass that only
    checks returns the input circuit unchanged.
    """

    name = "pass"

    def run(self, circuit: ir.Circuit, diagnostics: DiagnosticList) -> ir.Circuit:
        raise NotImplementedError
