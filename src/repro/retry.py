"""Unified retry, backoff and circuit-breaking primitives.

Before this module, every layer carried its own flavor of "try again later":
the fleet supervisor computed exponential restart cooldowns inline, the LLM
dispatcher owned a jittered :class:`RetryPolicy`, and the campaign
orchestrator was about to grow a third copy.  They now share one vocabulary:

* :class:`BackoffPolicy` — deterministic capped exponential backoff (the
  fleet's restart cooldown);
* :class:`RetryPolicy` — capped exponential backoff with multiplicative
  jitter (the dispatcher's retry schedule); jitter draws from a caller-owned
  ``random.Random``, so a seeded RNG makes whole retry schedules
  reproducible (:func:`seeded_rng` derives one from any JSON-able parts);
* :class:`CircuitBreaker` — a thread-safe closed/open/half-open breaker that
  publishes ``llm.breaker`` (or ``<name>.breaker``) lifecycle events;
* transport-fault taxonomy (:class:`TransportError` and friends) +
  :func:`is_transport_fault`, so retry loops across the stack classify
  failures the same way;
* :func:`emit_retry` — every retry in the system announces itself as a
  ``retry.attempt`` event on the bus, tagged with its source layer.

Everything here is dependency-free (stdlib + :mod:`repro.obs`) so any layer
may import it without cycles.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import threading
import time
from dataclasses import dataclass

BREAKER_THRESHOLD_ENV = "REPRO_BREAKER_THRESHOLD"
BREAKER_COOLDOWN_ENV = "REPRO_BREAKER_COOLDOWN"
BREAKER_PROBES_ENV = "REPRO_BREAKER_PROBES"

#: Breaker states (string-valued so snapshots serialize naturally).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


# --------------------------------------------------------------------- faults


class TransportError(RuntimeError):
    """A transient transport-level failure (the connection, not the answer)."""


class TransportTimeout(TransportError):
    """A transport attempt exceeded its time bound."""


class HttpError(TransportError):
    """An HTTP-level provider failure (5xx burst, rate-limit storm, ...)."""

    def __init__(self, status: int, message: str = ""):
        super().__init__(message or f"provider returned HTTP {status}")
        self.status = status


class MalformedResponseError(TransportError):
    """The provider answered, but with bytes no session should ever see.

    Treated as a transport fault: the only safe reaction is to retry the
    request, never to hand garbage to a session (which would silently change
    results instead of failing loudly).
    """


class BreakerOpenError(RuntimeError):
    """A request was rejected because the circuit breaker is open.

    Deliberately *not* a :class:`TransportError`: breaker rejections are
    back-pressure, not new evidence of transport failure, and must never be
    fed back into ``record_failure``.
    """


def is_transport_fault(exc: BaseException) -> bool:
    """Classify an exception as transient-transport (retry-worthy) or not."""
    return isinstance(exc, (TransportError, TimeoutError, ConnectionError))


# -------------------------------------------------------------------- backoff


@dataclass(frozen=True)
class BackoffPolicy:
    """Deterministic capped exponential backoff.

    ``delay(k)`` for attempt ``k`` (1-based) is ``base * factor**(k-1)``
    capped at ``cap``.  This is the fleet supervisor's historical restart
    cooldown, extracted so every layer cools down the same way.
    """

    base: float = 0.1
    factor: float = 2.0
    cap: float = 5.0

    def delay(self, attempt: int) -> float:
        return min(self.cap, self.base * (self.factor ** max(0, attempt - 1)))


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with multiplicative jitter.

    ``attempts`` counts *retries* after the first try.  The delay before
    retry ``k`` (1-based) is ``base_delay * 2**(k-1)`` capped at
    ``max_delay``, scaled by a uniform factor in ``[1 - jitter/2, 1 + jitter/2]``
    so synchronized failures don't retry in lockstep.
    """

    attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.5

    def delay(self, attempt: int, rng: random.Random) -> float:
        base = min(self.max_delay, self.base_delay * (2 ** (attempt - 1)))
        return base * (1.0 - self.jitter / 2.0 + rng.random() * self.jitter)


def seeded_rng(*parts: object) -> random.Random:
    """A ``random.Random`` deterministically seeded from ``parts``.

    The seed is a stable hash of the JSON form of ``parts``, so retry jitter
    (and chaos fault schedules) replay identically across runs and platforms.
    """
    canonical = json.dumps(parts, sort_keys=True, separators=(",", ":"), default=str)
    digest = hashlib.sha256(canonical.encode("utf-8")).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def emit_retry(bus, source: str, attempt: int, reason: str, delay: float) -> None:
    """Publish one ``retry.attempt`` event (no-op without subscribers)."""
    if bus is not None and bus.active:
        bus.publish(
            "retry",
            "attempt",
            source=source,
            attempt=attempt,
            reason=reason,
            delay=round(delay, 4),
        )


# -------------------------------------------------------------------- breaker


def _env_number(name: str, cast):
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        return cast(raw)
    except ValueError:
        raise ValueError(f"{name} must be a number, got {raw!r}") from None


class CircuitBreaker:
    """A thread-safe closed/open/half-open circuit breaker.

    ``threshold`` consecutive recorded failures open the breaker: ``allow()``
    rejects every caller for ``cooldown`` seconds, after which the breaker
    goes half-open and admits up to ``probes`` concurrent probe requests.  A
    probe success closes the breaker; a probe failure re-opens it for another
    cooldown.  State transitions publish ``<name>.breaker`` events
    (``open`` / ``half-open`` / ``close``) when a bus is attached, and
    rejections are counted in the snapshot so operators can see shed load.

    Safe to share between asyncio code and threads: every transition happens
    under one lock, and ``clock`` is injectable for deterministic tests.
    """

    def __init__(
        self,
        threshold: int = 5,
        cooldown: float = 1.0,
        probes: int = 1,
        *,
        name: str = "llm",
        bus=None,
        clock=time.monotonic,
    ):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if cooldown < 0:
            raise ValueError("cooldown must be >= 0")
        if probes < 1:
            raise ValueError("probes must be >= 1")
        self.threshold = threshold
        self.cooldown = cooldown
        self.probes = probes
        self.name = name
        self.bus = bus
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at: float | None = None
        self._probes_in_flight = 0
        self._stats = {"opens": 0, "rejections": 0, "probes": 0}

    # Internal: callers hold self._lock.
    def _publish(self, transition: str) -> None:
        if self.bus is not None and self.bus.active:
            self.bus.publish(
                self.name + ".breaker",
                transition,
                state=self._state,
                failures=self._failures,
                opens=self._stats["opens"],
                rejections=self._stats["rejections"],
            )

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open_locked()
            return self._state

    def _maybe_half_open_locked(self) -> None:
        if self._state == OPEN and self._opened_at is not None:
            if self._clock() - self._opened_at >= self.cooldown:
                self._state = HALF_OPEN
                self._probes_in_flight = 0
                self._publish("half-open")

    def allow(self) -> bool:
        """Whether a request may proceed right now (claims a probe slot when
        half-open)."""
        with self._lock:
            self._maybe_half_open_locked()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN and self._probes_in_flight < self.probes:
                self._probes_in_flight += 1
                self._stats["probes"] += 1
                return True
            self._stats["rejections"] += 1
            self._publish("reject")
            return False

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            if self._state != CLOSED:
                self._state = CLOSED
                self._opened_at = None
                self._probes_in_flight = 0
                self._publish("close")

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            was = self._state
            if was == HALF_OPEN or (was == CLOSED and self._failures >= self.threshold):
                self._state = OPEN
                self._opened_at = self._clock()
                self._probes_in_flight = 0
                self._stats["opens"] += 1
                self._publish("open")

    def snapshot(self) -> dict:
        with self._lock:
            self._maybe_half_open_locked()
            return {
                "name": self.name,
                "state": self._state,
                "failures": self._failures,
                "threshold": self.threshold,
                "cooldown": self.cooldown,
                **self._stats,
            }

    @classmethod
    def from_environment(
        cls, *, name: str = "llm", bus=None, default_threshold: int = 5
    ) -> "CircuitBreaker | None":
        """Build a breaker from ``REPRO_BREAKER_*``; threshold 0 disables it."""
        threshold = _env_number(BREAKER_THRESHOLD_ENV, int)
        if threshold is not None and threshold <= 0:
            return None
        cooldown = _env_number(BREAKER_COOLDOWN_ENV, float)
        probes = _env_number(BREAKER_PROBES_ENV, int)
        return cls(
            threshold if threshold is not None else default_threshold,
            cooldown if cooldown is not None and cooldown >= 0 else 1.0,
            max(1, probes) if probes is not None else 1,
            name=name,
            bus=bus,
        )
