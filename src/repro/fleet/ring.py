"""Consistent-hash routing for the generation fleet.

Jobs are routed by work-unit fingerprint so identical specs always land on
the same warm worker (whose compiler/kernel/trace caches already hold the
spec's artifacts).  Consistent hashing keeps that property under churn: when
a worker is evicted only the keys that hashed to it move, instead of the
whole keyspace reshuffling — a restarted fleet keeps most of its cache
locality.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterator


def _point(value: str) -> int:
    return int.from_bytes(hashlib.sha256(value.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """A consistent-hash ring over hashable node ids (worker slots).

    Each node is placed at ``replicas`` pseudo-random points; ``node_for``
    returns the first node clockwise of the key's point, and ``walk`` yields
    every distinct node in clockwise order — the supervisor's fallback order
    when the preferred worker is cooling down or being restarted.
    """

    def __init__(self, replicas: int = 64):
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self._points: list[int] = []
        self._nodes: list[object] = []  # parallel to _points

    def __len__(self) -> int:
        return len(set(self._nodes))

    @property
    def nodes(self) -> set:
        return set(self._nodes)

    def add(self, node) -> None:
        if node in self._nodes:
            return
        for replica in range(self.replicas):
            point = _point(f"{node!r}#{replica}")
            index = bisect.bisect(self._points, point)
            self._points.insert(index, point)
            self._nodes.insert(index, node)

    def remove(self, node) -> None:
        keep = [(p, n) for p, n in zip(self._points, self._nodes) if n != node]
        self._points = [p for p, _ in keep]
        self._nodes = [n for _, n in keep]

    def node_for(self, key: str):
        """The key's preferred node, or ``None`` on an empty ring."""
        for node in self.walk(key):
            return node
        return None

    def walk(self, key: str) -> Iterator:
        """Every distinct node in clockwise order from the key's point."""
        if not self._points:
            return
        start = bisect.bisect(self._points, _point(key)) % len(self._points)
        seen = set()
        for offset in range(len(self._points)):
            node = self._nodes[(start + offset) % len(self._points)]
            if node not in seen:
                seen.add(node)
                yield node
