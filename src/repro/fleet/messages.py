"""The supervisor <-> worker wire protocol (pickled over duplex pipes).

Every message is a small frozen dataclass built from picklable primitives.
Jobs carry an optional *fault directive* — the hook the chaos harness uses to
make a worker misbehave deterministically.  Directives are interpreted by the
worker before (or instead of) executing the unit:

* ``FAULT_CRASH`` — ``os._exit`` immediately: a hard crash mid-job;
* ``FAULT_HANG`` — sleep forever while heartbeats keep flowing: a hung job,
  detected by the supervisor's lease timeout;
* ``FAULT_FREEZE`` — stop heartbeating *and* sleep: a wedged process,
  detected by the heartbeat monitor;
* ``FAULT_SLOW`` — sleep briefly, then execute normally: lets chaos tests
  SIGKILL a worker while its job is reliably in flight;
* ``FAULT_ERROR`` — raise instead of executing: a clean job failure (no
  worker death).

Production dispatch never sets a directive; only a
:class:`~repro.fleet.supervisor.FleetSupervisor` constructed with a
``fault_injector`` does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.work import WorkUnit

FAULT_CRASH = "crash"
FAULT_HANG = "hang"
FAULT_FREEZE = "freeze"
FAULT_SLOW = "slow"
FAULT_ERROR = "error"

#: Exit code of a FAULT_CRASH so tests can tell injected crashes from real ones.
CRASH_EXIT_CODE = 87

#: How long hang/freeze faults sleep; the supervisor kills the worker long
#: before this elapses (lease or heartbeat timeout).
FAULT_SLEEP_SECONDS = 3600.0

#: FAULT_SLOW's pre-execution delay.
SLOW_SECONDS = 0.25


@dataclass(frozen=True)
class Job:
    """One leased unit of work dispatched to a worker."""

    job_id: str
    unit: WorkUnit
    fault: str | None = None


@dataclass(frozen=True)
class JobStarted:
    """Sent just before execution; scopes crash blame to the job actually
    running (jobs still queued in the pipe re-queue blame-free)."""

    job_id: str


@dataclass(frozen=True)
class JobResult:
    job_id: str
    payload: dict


@dataclass(frozen=True)
class JobFailure:
    """The unit itself raised; the worker survives (not a crash)."""

    job_id: str
    error: str


@dataclass(frozen=True)
class Heartbeat:
    slot: int
    seq: int


@dataclass(frozen=True)
class Ready:
    """Sent once the worker's context is built and it can accept jobs."""

    slot: int
    pid: int


@dataclass(frozen=True)
class Stop:
    """Graceful shutdown request from the supervisor."""
