"""The fleet supervisor: spawn, watch, restart, re-queue, degrade.

:class:`FleetSupervisor` owns N worker processes (one per *slot*), a
consistent-hash ring routing work-unit fingerprints to slots, and a single
pump thread that multiplexes every worker pipe:

* **dispatch** — submitted jobs route to the first live worker clockwise of
  their fingerprint on the ring, so identical specs always land on the same
  warm caches; each dispatch takes a *lease* with a deadline;
* **liveness** — workers heartbeat from a side thread; a dead process, a
  stale heartbeat, or an expired lease all declare the worker lost (hung
  workers are SIGKILLed first);
* **recovery** — a lost worker's in-flight leases re-queue onto surviving
  workers; the worker itself restarts after exponential backoff, and is
  permanently evicted once it exceeds ``max_restarts``;
* **poison control** — a job whose execution has killed ``poison_threshold``
  workers is quarantined and executed in-process, so one poisoned spec cannot
  chew through the whole fleet;
* **degradation** — with every slot evicted the supervisor executes jobs
  in-process itself: slower, but the sweep still completes.

Work units are deterministic and self-seeding, so none of this changes
results — only placement and wall-clock.  ``tests/test_fleet_chaos.py``
SIGKILLs workers mid-job and asserts bit-identity with
:class:`~repro.experiments.executors.SerialExecutor`.

:class:`FleetExecutor` adapts the supervisor to the sweep-engine executor
protocol (``run_stream(units)`` yielding ``(index, payload)``), so
``REPRO_FLEET=1`` drops it in where the process-pool executor runs today.
"""

from __future__ import annotations

import itertools
import multiprocessing
import multiprocessing.connection
import os
import queue
import signal
import threading
import time
from collections import deque
from concurrent.futures import CancelledError, Future, as_completed
from typing import Callable, Iterable, Iterator

from repro.experiments.strategies import execute_unit
from repro.experiments.work import WorkerContext, WorkUnit
from repro.retry import emit_retry
from repro.fleet.config import FleetConfig
from repro.fleet.events import EventLog
from repro.fleet.messages import (
    Heartbeat,
    Job,
    JobFailure,
    JobResult,
    JobStarted,
    Ready,
    Stop,
)
from repro.fleet.ring import HashRing
from repro.fleet.worker import fleet_worker_main

#: Worker states.
STARTING = "starting"
READY = "ready"
COOLING = "cooling"
EVICTED = "evicted"

_LIVE_STATES = (STARTING, READY)


class FleetJobError(RuntimeError):
    """A job raised inside a worker (a clean failure, not a worker death)."""


class FleetShutdownError(RuntimeError):
    """The supervisor closed while the job was still pending."""


class _WorkerHandle:
    """Supervisor-side state of one fleet slot."""

    __slots__ = (
        "slot",
        "process",
        "conn",
        "state",
        "restarts",
        "last_seen",
        "restart_at",
        "leases",
        "pid",
        "executing",
    )

    def __init__(self, slot: int):
        self.slot = slot
        self.process = None
        self.conn = None
        self.state = COOLING
        self.restarts = 0
        self.last_seen = 0.0
        self.restart_at = 0.0
        self.leases: dict[str, float] = {}  # job_id -> lease deadline
        self.pid: int | None = None
        self.executing: str | None = None  # job_id reported by JobStarted


class _JobState:
    __slots__ = ("job_id", "unit", "key", "future", "attempts", "worker_deaths")

    def __init__(self, job_id: str, unit: WorkUnit, key: str, future: Future):
        self.job_id = job_id
        self.unit = unit
        self.key = key
        self.future = future
        self.attempts = 0
        self.worker_deaths = 0


class FleetSupervisor:
    """Supervise a fleet of generation workers; see the module docstring.

    ``fault_injector`` is the chaos hook: ``fault_injector(unit, attempt)``
    (attempt is 0-based) returns a directive from
    :mod:`repro.fleet.messages` or ``None``.  Production supervisors leave it
    unset; quarantined/degraded in-process execution never consults it.
    """

    def __init__(
        self,
        config: FleetConfig | None = None,
        *,
        fault_injector: Callable[[WorkUnit, int], str | None] | None = None,
        bus=None,
    ):
        self.config = config or FleetConfig()
        if bus is None:
            from repro.obs import get_bus

            bus = get_bus()
        self.events = EventLog(bus=bus)
        self._fault_injector = fault_injector
        self._workers: dict[int, _WorkerHandle] = {}
        self._jobs: dict[str, _JobState] = {}
        self._waiting: deque[str] = deque()
        self._submissions: "queue.SimpleQueue[str]" = queue.SimpleQueue()
        self._job_ids = itertools.count()
        self._ring = HashRing(self.config.ring_replicas)
        self._counters = {
            "dispatched": 0,
            "completed": 0,
            "failed": 0,
            "crashes": 0,
            "restarts": 0,
            "requeues": 0,
            "evictions": 0,
            "heartbeat_misses": 0,
            "lease_expirations": 0,
            "quarantined": 0,
            "inline_executions": 0,
        }
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._pump: threading.Thread | None = None
        self._context: WorkerContext | None = None
        self._degraded = False
        self._closed = False
        if self.config.start_method:
            self._mp = multiprocessing.get_context(self.config.start_method)
        elif "fork" in multiprocessing.get_all_start_methods():
            self._mp = multiprocessing.get_context("fork")
        else:  # pragma: no cover - non-fork platforms
            self._mp = multiprocessing.get_context()

    # -------------------------------------------------------------- lifecycle

    @property
    def started(self) -> bool:
        return self._pump is not None

    def start(self) -> "FleetSupervisor":
        if self._closed:
            raise RuntimeError("fleet supervisor already closed")
        if self.started:
            return self
        for slot in range(self.config.workers):
            handle = _WorkerHandle(slot)
            self._workers[slot] = handle
            self._ring.add(slot)
            self._spawn(handle)
        self._pump = threading.Thread(target=self._pump_loop, name="fleet-pump", daemon=True)
        self._pump.start()
        return self

    def drain(self, timeout: float | None = None) -> bool:
        """Wait until every accepted job has resolved (graceful shutdown).

        Accepts no new work afterwards only if the caller follows with
        :meth:`close`; drain itself just waits the in-flight set down so a
        shutdown can finish leased jobs instead of stranding them with
        ``FleetShutdownError``.  Returns ``True`` when the fleet emptied
        within ``timeout`` seconds (``None`` = wait forever).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while not self._closed:
            with self._lock:
                if not self._jobs:
                    self.events.record("drained")
                    return True
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(self.config.tick)
        return False

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        if self._pump is not None:
            self._pump.join(timeout=10.0)
            self._pump = None
        for handle in self._workers.values():
            self._stop_worker(handle)
        with self._lock:
            pending = list(self._jobs.values())
            self._jobs.clear()
            self._waiting.clear()
        for job in pending:
            if not job.future.done():
                job.future.set_exception(
                    FleetShutdownError("fleet supervisor closed before the job finished")
                )
        self.events.record("closed")

    def __enter__(self) -> "FleetSupervisor":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------- submission

    def submit(self, unit: WorkUnit) -> Future:
        """Lease one unit to the fleet; returns a future for its payload."""
        if self._closed:
            raise RuntimeError("fleet supervisor already closed")
        if not self.started:
            self.start()
        job_id = str(next(self._job_ids))
        future: Future = Future()
        key = self._local_context().fingerprint(unit)
        with self._lock:
            self._jobs[job_id] = _JobState(job_id, unit, key, future)
        self._submissions.put(job_id)
        return future

    def run(self, units: Iterable[WorkUnit]) -> list[dict]:
        """Blocking convenience: payloads in submission order."""
        futures = [self.submit(unit) for unit in units]
        return [future.result() for future in futures]

    # ------------------------------------------------------------ observation

    def worker_pids(self) -> dict[int, int]:
        """Live worker pids by slot (the chaos harness kills these)."""
        return {
            handle.slot: handle.pid
            for handle in self._workers.values()
            if handle.state in _LIVE_STATES and handle.pid is not None
        }

    def health(self) -> dict:
        """A JSON-friendly snapshot of fleet health for telemetry."""
        now = time.monotonic()
        workers = []
        for handle in sorted(self._workers.values(), key=lambda h: h.slot):
            workers.append(
                {
                    "slot": handle.slot,
                    "state": handle.state,
                    "pid": handle.pid,
                    "restarts": handle.restarts,
                    "leases": len(handle.leases),
                    "heartbeat_age": (
                        round(now - handle.last_seen, 4)
                        if handle.state in _LIVE_STATES and handle.last_seen
                        else None
                    ),
                }
            )
        with self._lock:
            counters = dict(self._counters)
            pending = len(self._jobs)
        return {
            "workers": workers,
            "alive": sum(1 for w in workers if w["state"] in _LIVE_STATES),
            "degraded": self._degraded,
            "pending_jobs": pending,
            "counters": counters,
            # Supervision events lost to the bounded in-memory log; non-zero
            # means chaos forensics have gaps (the bus subscribers may still
            # have the full stream).
            "events_dropped": self.events.dropped,
        }

    # ------------------------------------------------------------ pump thread

    def _pump_loop(self) -> None:
        while not self._stop.is_set():
            try:
                self._drain_submissions()
                self._dispatch_waiting()
                self._poll_connections()
                self._check_liveness()
                self._restart_cooled()
            except Exception as exc:  # pragma: no cover - supervisor must survive
                self.events.record("pump-error", error=f"{type(exc).__name__}: {exc}")
                time.sleep(self.config.tick)

    def _drain_submissions(self) -> None:
        while True:
            try:
                self._waiting.append(self._submissions.get_nowait())
            except queue.Empty:
                return

    def _dispatch_waiting(self) -> None:
        deferred: deque[str] = deque()
        while self._waiting:
            job_id = self._waiting.popleft()
            job = self._jobs.get(job_id)
            if job is None or job.future.done():
                self._forget(job_id)
                continue
            handle = self._route(job.key)
            if handle is not None:
                self._send_job(handle, job)
            elif self._fleet_is_gone():
                self._execute_inline(job, reason="degraded")
            else:
                # Workers exist but none can take the job right now (cooling,
                # restarting, or saturated backlogs); retry next tick.
                deferred.append(job_id)
        self._waiting = deferred

    def _route(self, key: str) -> _WorkerHandle | None:
        """First live worker clockwise of ``key`` with lease headroom.

        Saturated workers are walked past (bounding any one pipe's backlog);
        with every live worker saturated the job waits a tick instead.
        """
        for slot in self._ring.walk(key):
            handle = self._workers[slot]
            if handle.state not in _LIVE_STATES:
                continue
            if len(handle.leases) < self.config.max_backlog:
                return handle
        return None

    def _send_job(self, handle: _WorkerHandle, job: _JobState) -> None:
        fault = None
        if self._fault_injector is not None:
            fault = self._fault_injector(job.unit, job.attempts)
        job.attempts += 1
        try:
            handle.conn.send(Job(job_id=job.job_id, unit=job.unit, fault=fault))
        except (BrokenPipeError, OSError):
            self._waiting.appendleft(job.job_id)
            self._on_worker_lost(handle, reason="send-failed")
            return
        handle.leases[job.job_id] = time.monotonic() + self.config.lease_timeout
        self._bump("dispatched")
        self.events.record(
            "dispatch", job=job.job_id, slot=handle.slot, attempt=job.attempts, fault=fault
        )

    def _poll_connections(self) -> None:
        by_conn = {
            handle.conn: handle
            for handle in self._workers.values()
            if handle.state in _LIVE_STATES and handle.conn is not None
        }
        if not by_conn:
            time.sleep(self.config.tick)
            return
        try:
            ready = multiprocessing.connection.wait(list(by_conn), timeout=self.config.tick)
        except OSError:
            ready = []
        for conn in ready:
            handle = by_conn[conn]
            while True:
                try:
                    if not conn.poll():
                        break
                    message = conn.recv()
                except (EOFError, OSError):
                    self._on_worker_lost(handle, reason="pipe-closed")
                    break
                self._handle_message(handle, message)

    def _handle_message(self, handle: _WorkerHandle, message) -> None:
        handle.last_seen = time.monotonic()
        if isinstance(message, Ready):
            handle.state = READY
            self.events.record("ready", slot=handle.slot, pid=message.pid)
        elif isinstance(message, Heartbeat):
            pass  # last_seen refresh above is the point
        elif isinstance(message, JobStarted):
            handle.executing = message.job_id
        elif isinstance(message, JobResult):
            if handle.executing == message.job_id:
                handle.executing = None
            handle.leases.pop(message.job_id, None)
            job = self._forget(message.job_id)
            if job is not None and not job.future.done():
                job.future.set_result(message.payload)
                self._bump("completed")
                self.events.record("result", job=message.job_id, slot=handle.slot)
        elif isinstance(message, JobFailure):
            if handle.executing == message.job_id:
                handle.executing = None
            handle.leases.pop(message.job_id, None)
            job = self._forget(message.job_id)
            if job is not None and not job.future.done():
                job.future.set_exception(FleetJobError(message.error))
                self._bump("failed")
                self.events.record(
                    "job-failed", job=message.job_id, slot=handle.slot, error=message.error
                )

    def _check_liveness(self) -> None:
        now = time.monotonic()
        for handle in list(self._workers.values()):
            if handle.state not in _LIVE_STATES:
                continue
            if handle.process is not None and not handle.process.is_alive():
                self._on_worker_lost(handle, reason="process-exited")
                continue
            if handle.last_seen and now - handle.last_seen > self.config.heartbeat_timeout:
                self._bump("heartbeat_misses")
                self.events.record(
                    "heartbeat-miss", slot=handle.slot, age=round(now - handle.last_seen, 4)
                )
                self._kill(handle)
                self._on_worker_lost(handle, reason="heartbeat-timeout")
                continue
            expired = [job_id for job_id, deadline in handle.leases.items() if deadline < now]
            if expired:
                self._bump("lease_expirations")
                self.events.record("lease-expired", slot=handle.slot, jobs=expired)
                self._kill(handle)
                self._on_worker_lost(handle, reason="lease-timeout")

    # ---------------------------------------------------------- failure paths

    def _on_worker_lost(self, handle: _WorkerHandle, reason: str) -> None:
        if handle.state not in _LIVE_STATES:
            return
        self._bump("crashes")
        exitcode = handle.process.exitcode if handle.process is not None else None
        self.events.record(
            "worker-lost", slot=handle.slot, reason=reason, exitcode=exitcode,
            restarts=handle.restarts,
        )
        self._close_conn(handle)
        if handle.process is not None:
            handle.process.join(timeout=1.0)
        leases = list(handle.leases)
        handle.leases = {}
        blamed = handle.executing
        handle.executing = None
        for job_id in leases:
            job = self._jobs.get(job_id)
            if job is None or job.future.done():
                self._forget(job_id)
                continue
            # Only the job the worker was actually executing is blamed for
            # the death; jobs still queued in its pipe re-queue blame-free.
            if job_id == blamed:
                job.worker_deaths += 1
            if job.worker_deaths >= self.config.poison_threshold:
                self._bump("quarantined")
                self.events.record(
                    "quarantine", job=job_id, worker_deaths=job.worker_deaths
                )
                self._execute_inline(job, reason="quarantine")
            else:
                self._bump("requeues")
                self.events.record("lease-requeue", job=job_id, slot=handle.slot)
                self._waiting.append(job_id)
        handle.restarts += 1
        if handle.restarts > self.config.max_restarts:
            handle.state = EVICTED
            self._ring.remove(handle.slot)
            self._bump("evictions")
            self.events.record("evict", slot=handle.slot, restarts=handle.restarts)
            if self._fleet_is_gone() and not self._degraded:
                self._degraded = True
                self.events.record("fleet-degraded")
        else:
            handle.state = COOLING
            delay = self.config.backoff_delay(handle.restarts)
            handle.restart_at = time.monotonic() + delay
            self.events.record("cooling", slot=handle.slot, delay=round(delay, 4))
            emit_retry(self.events.bus, "fleet", handle.restarts, reason, delay)

    def _restart_cooled(self) -> None:
        now = time.monotonic()
        for handle in self._workers.values():
            if handle.state == COOLING and handle.restart_at <= now and not self._closed:
                self._bump("restarts")
                self.events.record("restart", slot=handle.slot, attempt=handle.restarts)
                self._spawn(handle)

    def _execute_inline(self, job: _JobState, reason: str) -> None:
        """Run a job in the supervisor process (quarantine / degraded mode)."""
        self._bump("inline_executions")
        self.events.record("inline-execution", job=job.job_id, reason=reason)
        try:
            payload = execute_unit(self._local_context(), job.unit)
        except Exception as exc:
            self._forget(job.job_id)
            if not job.future.done():
                job.future.set_exception(FleetJobError(f"{type(exc).__name__}: {exc}"))
                self._bump("failed")
        else:
            self._forget(job.job_id)
            if not job.future.done():
                job.future.set_result(payload)
                self._bump("completed")

    # ---------------------------------------------------------------- helpers

    def _local_context(self) -> WorkerContext:
        if self._context is None:
            self._context = WorkerContext()
        return self._context

    def _fleet_is_gone(self) -> bool:
        return all(handle.state == EVICTED for handle in self._workers.values())

    def _spawn(self, handle: _WorkerHandle) -> None:
        parent_conn, child_conn = self._mp.Pipe(duplex=True)
        process = self._mp.Process(
            target=fleet_worker_main,
            args=(handle.slot, child_conn, self.config.heartbeat_interval),
            name=f"fleet-worker-{handle.slot}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        handle.process = process
        handle.conn = parent_conn
        handle.pid = process.pid
        handle.state = STARTING
        handle.last_seen = time.monotonic()
        self.events.record("spawn", slot=handle.slot, pid=process.pid)

    def _kill(self, handle: _WorkerHandle) -> None:
        if handle.process is None or not handle.process.is_alive():
            return
        try:
            os.kill(handle.process.pid, signal.SIGKILL)
        except (ProcessLookupError, OSError):  # pragma: no cover - already gone
            pass
        handle.process.join(timeout=2.0)

    def _stop_worker(self, handle: _WorkerHandle) -> None:
        if handle.conn is not None:
            try:
                handle.conn.send(Stop())
            except (BrokenPipeError, OSError):
                pass
        if handle.process is not None and handle.process.is_alive():
            handle.process.join(timeout=1.0)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=1.0)
            if handle.process.is_alive():  # pragma: no cover - terminate sufficed so far
                self._kill(handle)
        self._close_conn(handle)
        handle.state = EVICTED if handle.state == EVICTED else COOLING

    def _close_conn(self, handle: _WorkerHandle) -> None:
        if handle.conn is not None:
            try:
                handle.conn.close()
            except OSError:
                pass
            handle.conn = None

    def _forget(self, job_id: str) -> _JobState | None:
        with self._lock:
            return self._jobs.pop(job_id, None)

    def _bump(self, counter: str, by: int = 1) -> None:
        with self._lock:
            self._counters[counter] += by


class FleetExecutor:
    """Sweep-engine executor facade over a :class:`FleetSupervisor`.

    Exposes the same streaming protocol as
    :class:`~repro.experiments.executors.SerialExecutor` /
    :class:`~repro.experiments.executors.ParallelExecutor` —
    ``run_stream(units)`` yields ``(index, payload)`` as units finish — so
    the engine persists results the moment they exist and chaos-killed
    sweeps stay resumable through the store.

    Requires units resolvable against the *default* problem registry (worker
    processes rebuild it); the engine falls back to the serial executor for
    custom registries, exactly as it does for the process pool.
    """

    def __init__(
        self,
        config: FleetConfig | None = None,
        *,
        supervisor: FleetSupervisor | None = None,
        fault_injector: Callable[[WorkUnit, int], str | None] | None = None,
    ):
        self.supervisor = supervisor or FleetSupervisor(config, fault_injector=fault_injector)
        self.jobs = self.supervisor.config.workers

    def run_stream(self, units: Iterable[WorkUnit]) -> Iterator[tuple[int, dict]]:
        units = list(units)
        if not units:
            return
        self.supervisor.start()
        futures = {self.supervisor.submit(unit): index for index, unit in enumerate(units)}
        try:
            for future in as_completed(futures):
                try:
                    yield futures[future], future.result()
                except CancelledError:  # pragma: no cover - abandoned stream race
                    continue
        finally:
            # If the consumer abandons the stream, don't leave queued units
            # burning fleet capacity.
            for future in futures:
                future.cancel()

    def shutdown(self) -> None:
        self.supervisor.close()
