"""The fleet worker process: one warm context, jobs over a pipe, side-thread heartbeats.

``fleet_worker_main`` is the child-process entry point.  It starts a daemon
heartbeat thread first (so the supervisor can watch liveness even while the
context warms up), builds one :class:`~repro.experiments.work.WorkerContext`
— problem registry, compiler memo, golden-Verilog cache, kernel caches — and
then drains :class:`~repro.fleet.messages.Job` messages until told to stop.

Units are deterministic and self-seeding, so a unit executed here returns the
same payload it would under :class:`~repro.experiments.executors.SerialExecutor`;
which worker runs a job changes wall-clock only, never results.

Fault directives (see :mod:`repro.fleet.messages`) are honoured before
execution; production jobs never carry one.
"""

from __future__ import annotations

import os
import threading
import time

from repro.experiments.strategies import execute_unit
from repro.experiments.work import WorkerContext
from repro.fleet.messages import (
    CRASH_EXIT_CODE,
    FAULT_CRASH,
    FAULT_ERROR,
    FAULT_FREEZE,
    FAULT_HANG,
    FAULT_SLEEP_SECONDS,
    FAULT_SLOW,
    Heartbeat,
    Job,
    JobFailure,
    JobResult,
    JobStarted,
    Ready,
    SLOW_SECONDS,
    Stop,
)


class _Sender:
    """Serializes pipe writes between the job loop and the heartbeat thread."""

    def __init__(self, conn):
        self._conn = conn
        self._lock = threading.Lock()

    def send(self, message) -> bool:
        with self._lock:
            try:
                self._conn.send(message)
                return True
            except (BrokenPipeError, OSError):
                # Supervisor gone; the worker will exit on its next recv.
                return False


def _heartbeat_loop(sender: _Sender, slot: int, interval: float, stop: threading.Event) -> None:
    seq = 0
    while not stop.wait(interval):
        seq += 1
        if not sender.send(Heartbeat(slot=slot, seq=seq)):
            return


def _apply_fault(fault: str | None, stop_heartbeats: threading.Event, job_id: str) -> None:
    """Honour a chaos directive; returns only if execution should proceed."""
    if fault is None:
        return
    if fault == FAULT_CRASH:
        os._exit(CRASH_EXIT_CODE)
    if fault == FAULT_FREEZE:
        stop_heartbeats.set()
        time.sleep(FAULT_SLEEP_SECONDS)
    if fault == FAULT_HANG:
        time.sleep(FAULT_SLEEP_SECONDS)
    if fault == FAULT_SLOW:
        time.sleep(SLOW_SECONDS)
        return
    if fault == FAULT_ERROR:
        raise RuntimeError(f"injected fault for job {job_id}")


def fleet_worker_main(slot: int, conn, heartbeat_interval: float) -> None:
    """Child-process entry point; never raises (reports failures over the pipe)."""
    sender = _Sender(conn)
    stop_heartbeats = threading.Event()
    threading.Thread(
        target=_heartbeat_loop,
        args=(sender, slot, heartbeat_interval, stop_heartbeats),
        name=f"fleet-heartbeat-{slot}",
        daemon=True,
    ).start()
    try:
        context = WorkerContext()
        sender.send(Ready(slot=slot, pid=os.getpid()))
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if isinstance(message, Stop):
                break
            if not isinstance(message, Job):
                continue
            sender.send(JobStarted(job_id=message.job_id))
            try:
                _apply_fault(message.fault, stop_heartbeats, message.job_id)
                payload = execute_unit(context, message.unit)
            except Exception as exc:
                sender.send(
                    JobFailure(job_id=message.job_id, error=f"{type(exc).__name__}: {exc}")
                )
            else:
                sender.send(JobResult(job_id=message.job_id, payload=payload))
    finally:
        stop_heartbeats.set()
        try:
            conn.close()
        except OSError:
            pass
