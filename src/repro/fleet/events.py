"""Structured supervisor event log — a bounded sink over the event bus.

Every supervision decision — spawn, ready, dispatch, crash, heartbeat miss,
lease expiry, re-queue, restart, eviction, quarantine, degradation — is
recorded as one dict with a wall-clock timestamp.  The chaos tests assert
against these events, the service surfaces recent ones in its telemetry, and
the CI chaos-smoke job uploads them as an artifact when a test fails, so a
flaky supervision bug leaves a full trace behind.

Since the structured event bus landed (:mod:`repro.obs`), the log doubles as
a *publisher*: every record also lands on the bus's ``fleet`` topic, where
the operations console and the metrics sink consume it live.  The bounded
in-memory list stays — chaos tests assert against it synchronously — and its
overflow count is surfaced in ``FleetSupervisor.health()`` as
``events_dropped`` so silent event loss is visible.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path


class EventLog:
    """A bounded, thread-safe, append-only list of supervision events.

    ``bus`` (a :class:`repro.obs.EventBus`) mirrors every record onto the
    given ``topic``; publishing happens outside the log's lock and is a no-op
    while the bus has no subscribers.
    """

    def __init__(self, limit: int = 4096, bus=None, topic: str = "fleet"):
        self.limit = limit
        self.bus = bus
        self.topic = topic
        self._events: list[dict] = []
        self._dropped = 0
        self._lock = threading.Lock()

    @property
    def dropped(self) -> int:
        """Events lost to the bounded in-memory window (never to the bus)."""
        return self._dropped

    def record(self, event: str, **fields) -> dict:
        entry = {"t": round(time.time(), 4), "event": event, **fields}
        with self._lock:
            self._events.append(entry)
            if len(self._events) > self.limit:
                overflow = len(self._events) - self.limit
                del self._events[:overflow]
                self._dropped += overflow
        if self.bus is not None and self.bus.active:
            self.bus.publish(self.topic, event, **fields)
        return entry

    def events(self, kind: str | None = None) -> list[dict]:
        with self._lock:
            snapshot = list(self._events)
        if kind is None:
            return snapshot
        return [entry for entry in snapshot if entry["event"] == kind]

    def count(self, kind: str) -> int:
        return len(self.events(kind))

    def dump(self, path: str | os.PathLike) -> Path:
        """Write the log as JSON lines; returns the written path."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        with self._lock:
            lines = [json.dumps(entry, sort_keys=True) for entry in self._events]
            dropped = self._dropped
        with target.open("w", encoding="utf-8") as handle:
            if dropped:
                handle.write(json.dumps({"event": "log-truncated", "dropped": dropped}) + "\n")
            for line in lines:
                handle.write(line + "\n")
        return target
