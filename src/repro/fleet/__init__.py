"""Supervised multi-process generation fleet.

The :mod:`repro.service` layer runs one asyncio loop in one process; the
fleet scales execution out to supervised worker processes that each own warm
compiler/kernel/trace caches.  The pieces:

* :class:`~repro.fleet.config.FleetConfig` — worker count, heartbeat cadence,
  lease timeout, restart backoff; every knob also reads ``REPRO_FLEET_*``;
* :class:`~repro.fleet.ring.HashRing` — consistent-hash routing of jobs by
  work-unit fingerprint, so identical specs land on the same warm worker;
* :mod:`~repro.fleet.worker` — the child-process main loop: build one
  :class:`~repro.experiments.work.WorkerContext`, drain jobs over a pipe,
  heartbeat from a side thread;
* :class:`~repro.fleet.supervisor.FleetSupervisor` — spawns workers, monitors
  heartbeats and leases, SIGKILLs hung workers, restarts crashed ones with
  exponential backoff, evicts repeat offenders, quarantines poisoned jobs,
  and degrades to in-process execution when the fleet is gone;
* :class:`~repro.fleet.supervisor.FleetExecutor` — the sweep-engine executor
  facade (same ``run_stream`` protocol as the serial/parallel executors).

Because work units are deterministic and self-seeding, fleet results are
bit-identical to :class:`~repro.experiments.executors.SerialExecutor` no
matter how many workers die mid-sweep — ``tests/test_fleet_chaos.py`` SIGKILLs
workers, injects hangs and poisoned jobs, and asserts exactly that.
"""

from repro.fleet.config import FleetConfig
from repro.fleet.messages import (
    FAULT_CRASH,
    FAULT_ERROR,
    FAULT_FREEZE,
    FAULT_HANG,
    FAULT_SLOW,
)
from repro.fleet.ring import HashRing
from repro.fleet.supervisor import FleetExecutor, FleetJobError, FleetSupervisor

__all__ = [
    "FleetConfig",
    "FleetExecutor",
    "FleetJobError",
    "FleetSupervisor",
    "HashRing",
    "FAULT_CRASH",
    "FAULT_ERROR",
    "FAULT_FREEZE",
    "FAULT_HANG",
    "FAULT_SLOW",
]
