"""Configuration for the supervised generation fleet.

Every knob is also settable from the environment (``REPRO_FLEET_*``) so
deployments tune the fleet without code changes; see EXPERIMENTS.md for the
catalogue.  Timeouts are in seconds.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

from repro.retry import BackoffPolicy

WORKERS_ENV = "REPRO_FLEET_WORKERS"
HEARTBEAT_ENV = "REPRO_FLEET_HEARTBEAT"
HEARTBEAT_MISSES_ENV = "REPRO_FLEET_HEARTBEAT_MISSES"
LEASE_TIMEOUT_ENV = "REPRO_FLEET_LEASE_TIMEOUT"
BACKOFF_ENV = "REPRO_FLEET_BACKOFF"
BACKOFF_MAX_ENV = "REPRO_FLEET_BACKOFF_MAX"
MAX_RESTARTS_ENV = "REPRO_FLEET_MAX_RESTARTS"
POISON_THRESHOLD_ENV = "REPRO_FLEET_POISON_THRESHOLD"
START_METHOD_ENV = "REPRO_FLEET_START_METHOD"


def _env_float(name: str) -> float | None:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        return float(raw)
    except ValueError:
        raise ValueError(f"{name} must be a number, got {raw!r}") from None


def _env_int(name: str) -> int | None:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"{name} must be an integer, got {raw!r}") from None


@dataclass(frozen=True)
class FleetConfig:
    """Knobs of the :class:`~repro.fleet.supervisor.FleetSupervisor`.

    ``workers`` sizes the fleet.  A worker whose heartbeat is older than
    ``heartbeat_interval * heartbeat_misses`` is declared nonresponsive and
    SIGKILLed; a job leased longer than ``lease_timeout`` kills its worker the
    same way (both re-queue the worker's in-flight leases).  Crashed workers
    restart after ``restart_backoff * 2**(restarts - 1)`` seconds (capped at
    ``restart_backoff_max``) and are permanently evicted after
    ``max_restarts`` restarts; when every slot is evicted the supervisor
    degrades to executing jobs in-process.  A job whose execution has killed
    ``poison_threshold`` workers is quarantined: it runs in-process instead of
    taking down a third worker.

    ``start_method`` picks the multiprocessing start method; ``fork`` (the
    default where available) gives workers the parent's warm imports.
    """

    workers: int = 4
    heartbeat_interval: float = 0.5
    heartbeat_misses: int = 6
    lease_timeout: float = 120.0
    restart_backoff: float = 0.1
    restart_backoff_max: float = 5.0
    max_restarts: int = 5
    poison_threshold: int = 2
    start_method: str | None = None
    ring_replicas: int = 64
    #: Max jobs leased to one worker at a time; overflow walks the ring to the
    #: next worker (bounds pipe backlog and smooths a skewed hash).
    max_backlog: int = 8

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be > 0")
        if self.heartbeat_misses < 1:
            raise ValueError("heartbeat_misses must be >= 1")
        if self.lease_timeout <= 0:
            raise ValueError("lease_timeout must be > 0")
        if self.poison_threshold < 1:
            raise ValueError("poison_threshold must be >= 1")

    @property
    def heartbeat_timeout(self) -> float:
        return self.heartbeat_interval * self.heartbeat_misses

    @property
    def tick(self) -> float:
        """The supervisor pump's poll timeout: responsive but not spinning."""
        return max(0.005, min(0.05, self.heartbeat_interval / 4.0))

    @property
    def backoff(self) -> BackoffPolicy:
        """The restart cooldown as a shared :class:`repro.retry.BackoffPolicy`."""
        return BackoffPolicy(base=self.restart_backoff, cap=self.restart_backoff_max)

    def backoff_delay(self, restarts: int) -> float:
        """Seconds to cool down before restart number ``restarts`` (1-based)."""
        return self.backoff.delay(restarts)

    @classmethod
    def from_environment(cls, base: "FleetConfig | None" = None) -> "FleetConfig":
        """``base`` (default ``FleetConfig()``) overridden by ``REPRO_FLEET_*``."""
        config = base or cls()
        updates: dict[str, object] = {}
        workers = _env_int(WORKERS_ENV)
        if workers is not None:
            updates["workers"] = max(1, workers)
        heartbeat = _env_float(HEARTBEAT_ENV)
        if heartbeat is not None and heartbeat > 0:
            updates["heartbeat_interval"] = heartbeat
        misses = _env_int(HEARTBEAT_MISSES_ENV)
        if misses is not None:
            updates["heartbeat_misses"] = max(1, misses)
        lease = _env_float(LEASE_TIMEOUT_ENV)
        if lease is not None and lease > 0:
            updates["lease_timeout"] = lease
        backoff = _env_float(BACKOFF_ENV)
        if backoff is not None:
            updates["restart_backoff"] = max(0.0, backoff)
        backoff_max = _env_float(BACKOFF_MAX_ENV)
        if backoff_max is not None:
            updates["restart_backoff_max"] = max(0.0, backoff_max)
        max_restarts = _env_int(MAX_RESTARTS_ENV)
        if max_restarts is not None:
            updates["max_restarts"] = max(0, max_restarts)
        poison = _env_int(POISON_THRESHOLD_ENV)
        if poison is not None:
            updates["poison_threshold"] = max(1, poison)
        start_method = os.environ.get(START_METHOD_ENV, "").strip()
        if start_method:
            updates["start_method"] = start_method
        return replace(config, **updates) if updates else config
