"""The unbiased Pass@k estimator of Chen et al. (2021), as used by the paper."""

from __future__ import annotations

from math import comb


def pass_at_k(n: int, c: int, k: int) -> float:
    """Probability that at least one of ``k`` samples passes.

    ``n`` is the number of samples drawn for the case, ``c`` how many of them
    passed.  Uses the unbiased estimator ``1 - C(n-c, k) / C(n, k)``.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if not 0 <= c <= n:
        raise ValueError("c must be between 0 and n")
    if k <= 0:
        raise ValueError("k must be positive")
    if k > n:
        k = n
    if n - c < k:
        return 1.0
    return 1.0 - comb(n - c, k) / comb(n, k)


def aggregate_pass_at_k(per_case_counts: list[tuple[int, int]], k: int) -> float:
    """Average Pass@k over cases given ``(n, c)`` pairs; returns a percentage."""
    if not per_case_counts:
        return 0.0
    total = sum(pass_at_k(n, c, k) for n, c in per_case_counts)
    return 100.0 * total / len(per_case_counts)
