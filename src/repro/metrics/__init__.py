"""Evaluation metrics: Pass@k estimation and error statistics."""

from repro.metrics.errors import ErrorBreakdown, error_breakdown, per_iteration_error_mix
from repro.metrics.passk import aggregate_pass_at_k, pass_at_k

__all__ = [
    "pass_at_k",
    "aggregate_pass_at_k",
    "ErrorBreakdown",
    "error_breakdown",
    "per_iteration_error_mix",
]
