"""Error-type statistics: the Fig. 1 breakdown and the Fig. 7 per-iteration mix."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ErrorBreakdown:
    """Percentage of attempts per outcome class (sums to ~100)."""

    syntax: float
    functional: float
    success: float


def error_breakdown(outcomes: list[str]) -> ErrorBreakdown:
    """Classify a list of attempt outcomes ("syntax"/"functional"/"success")."""
    if not outcomes:
        return ErrorBreakdown(0.0, 0.0, 0.0)
    total = len(outcomes)
    syntax = 100.0 * sum(1 for o in outcomes if o == "syntax") / total
    functional = 100.0 * sum(1 for o in outcomes if o == "functional") / total
    success = 100.0 * sum(1 for o in outcomes if o == "success") / total
    return ErrorBreakdown(syntax, functional, success)


def per_iteration_error_mix(
    outcome_lists: list[list[str]], max_iterations: int
) -> list[ErrorBreakdown]:
    """For each iteration 0..max, the outcome mix across runs (Fig. 7).

    ``outcome_lists[r][i]`` is run ``r``'s outcome after ``i`` reflection
    iterations; runs that finished early hold their final state.
    """
    mixes: list[ErrorBreakdown] = []
    for iteration in range(max_iterations + 1):
        column: list[str] = []
        for outcomes in outcome_lists:
            if not outcomes:
                continue
            index = min(iteration, len(outcomes) - 1)
            column.append(outcomes[index])
        mixes.append(error_breakdown(column))
    return mixes
