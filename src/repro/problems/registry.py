"""The benchmark registry: 216 module-level cases across three suites.

The split mirrors the character of the paper's sources:

* ``verilogeval_s2r`` — mostly combinational spec-to-RTL blocks and small
  arithmetic units;
* ``hdlbits``        — the tutorial-style problems, including the paper's
  ``Vector5`` case study, plus basic sequential elements;
* ``rtllm``          — the larger designs: ALUs, FSMs, arbiters, MACs.

The exact problem count is asserted to 216, the number of valid cases the
paper retains after filtering.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.problems.base import SUITE_HDLBITS, SUITE_RTLLM, SUITE_VERILOGEVAL, Problem
from repro.problems.families import arithmetic, combinational, fsm, memory, sequential

EXPECTED_PROBLEM_COUNT = 216
MEMORY_PROBLEM_COUNT = 10


@dataclass
class ProblemRegistry:
    """An ordered, id-addressable collection of benchmark problems."""

    problems: list[Problem] = field(default_factory=list)

    def add(self, problem: Problem) -> None:
        if any(p.problem_id == problem.problem_id for p in self.problems):
            raise ValueError(f"duplicate problem id {problem.problem_id!r}")
        self.problems.append(problem)

    def by_id(self, problem_id: str) -> Problem:
        for problem in self.problems:
            if problem.problem_id == problem_id:
                return problem
        raise KeyError(problem_id)

    def by_suite(self, suite: str) -> list[Problem]:
        return [p for p in self.problems if p.suite == suite]

    def __len__(self) -> int:
        return len(self.problems)

    def __iter__(self):
        return iter(self.problems)


def build_default_registry() -> ProblemRegistry:
    """Build the full 216-case benchmark."""
    registry = ProblemRegistry()
    VE, HB, RT = SUITE_VERILOGEVAL, SUITE_HDLBITS, SUITE_RTLLM

    # ------------------------------------------------------------ VerilogEval
    for width in (1, 2, 3, 4, 5, 6, 8, 16, 32):
        registry.add(combinational.passthrough(width, VE))
    for width in (1, 2, 4, 8, 16, 32):
        registry.add(combinational.notgate(width, VE))
    for op in ("and", "or", "xor", "nand", "nor", "xnor"):
        for width in (1, 2, 3, 4, 8, 16):
            registry.add(combinational.gate(op, width, VE))
    for width in (1, 2, 3, 4, 8, 16, 32):
        registry.add(combinational.mux2(width, VE))
    for width in (2, 4, 8, 16):
        registry.add(combinational.mux4(width, VE))
    for width in (2, 3, 4, 5, 6, 8, 16, 32):
        registry.add(combinational.adder(width, VE))
    for width in (4, 6, 8, 16, 32):
        registry.add(combinational.subtractor(width, VE))
    for width in (2, 3, 4, 6, 8, 16, 32):
        registry.add(combinational.comparator(width, VE))
    for bits in (2, 3, 4, 5):
        registry.add(combinational.decoder(bits, VE))
    for size in (4, 8, 16):
        registry.add(combinational.priority_encoder(size, VE))
    for width in (4, 6, 8, 16, 32):
        registry.add(combinational.parity(width, VE))
    for in_width, out_width in ((4, 8), (8, 16), (8, 32), (16, 32)):
        registry.add(combinational.sign_extend(in_width, out_width, VE))
    for width in (4, 8, 16):
        registry.add(combinational.abs_diff(width, VE))
    for width in (4, 8, 16):
        registry.add(combinational.min_max(width, VE))
    for width in (4, 8, 16, 32):
        registry.add(arithmetic.saturating_adder(width, VE))
    for width in (3, 4, 6, 8, 16, 32):
        registry.add(arithmetic.average(width, VE))
    for width in (2, 3, 4, 5, 6, 8, 16):
        registry.add(arithmetic.multiplier(width, VE))
    for width, lo, hi in ((8, 10, 200), (8, 32, 96), (16, 100, 1000)):
        registry.add(arithmetic.clamp(width, lo, hi, VE))
    for width, lanes in ((4, 2), (8, 2), (4, 3), (8, 3)):
        registry.add(arithmetic.dot_product(width, lanes, VE))

    # --------------------------------------------------------------- HDLBits
    registry.add(combinational.vector5(HB))
    for width in (4, 6, 8, 16, 32):
        registry.add(combinational.bit_reverse(width, HB))
    for width in (3, 4, 8, 16):
        registry.add(combinational.popcount(width, HB))
    for width in (4, 8, 16, 32):
        registry.add(combinational.shifter(width, HB))
    registry.add(combinational.byte_swap(HB))
    registry.add(combinational.seven_segment(HB))
    for bits in (3, 5, 7):
        registry.add(combinational.majority(bits, HB))
    registry.add(combinational.ones_complement_checksum(HB))
    for width in (4, 8, 16):
        registry.add(combinational.gray_encoder(width, HB))
    for width in (1, 2, 3, 4, 8, 16, 32):
        registry.add(sequential.dff(width, HB))
    for width in (4, 6, 8, 16, 32):
        registry.add(sequential.register_with_enable(width, HB))
    for width in (2, 3, 4, 5, 6, 8, 16):
        registry.add(sequential.counter(width, HB))
    for width in (4, 8, 16):
        registry.add(sequential.up_down_counter(width, HB))
    registry.add(sequential.edge_detector(HB, falling=False))
    registry.add(sequential.edge_detector(HB, falling=True))
    registry.add(sequential.toggle_ff(HB))
    for pattern in ("101", "110", "1101"):
        registry.add(fsm.sequence_detector(pattern, HB))

    # ----------------------------------------------------------------- RTLLM
    for width in (2, 3, 4):
        registry.add(sequential.saturating_counter(width, RT))
    for width, depth in ((4, 3), (8, 4), (8, 2), (16, 4)):
        registry.add(sequential.shift_register(width, depth, RT))
    for width in (4, 8, 16):
        registry.add(sequential.serial_to_parallel(width, RT))
    for width in (4, 6, 8, 16):
        registry.add(sequential.accumulator(width, RT))
    for width, depth in ((8, 3), (4, 5), (16, 2)):
        registry.add(sequential.delay_line(width, depth, RT))
    for width in (3, 4, 8):
        registry.add(sequential.gray_counter(width, RT))
    for cycles in (2, 3, 5):
        registry.add(sequential.pulse_stretcher(cycles, RT))
    for pattern in ("0110", "1010"):
        registry.add(fsm.sequence_detector(pattern, RT))
    for green, yellow, red in ((3, 1, 2), (4, 2, 3)):
        registry.add(fsm.traffic_light(green, yellow, red, RT))
    for price in (15, 25):
        registry.add(fsm.vending_machine(price, RT))
    registry.add(fsm.round_robin_arbiter(RT))
    for cycles in (3, 4):
        registry.add(fsm.debouncer(cycles, RT))
    for width in (4, 8, 16):
        registry.add(arithmetic.alu(width, RT))
    for width in (4, 8):
        registry.add(arithmetic.mac(width, RT))

    count = len(registry)
    if count != EXPECTED_PROBLEM_COUNT:
        raise AssertionError(
            f"benchmark registry has {count} problems, expected {EXPECTED_PROBLEM_COUNT}"
        )
    return registry


def build_memory_family() -> list[Problem]:
    """The ``memory`` extension family: register files and FIFOs.

    Kept out of :func:`build_default_registry` so the paper's exact 216-case
    benchmark stays intact; :func:`build_extended_registry` appends these for
    sweeps that include the memory language surface (ROADMAP "Scenario
    expansion").
    """
    problems: list[Problem] = []
    for width, depth in ((4, 4), (8, 8), (16, 4)):
        problems.append(memory.register_file(width, depth))
    for width, depth in ((4, 4), (8, 8), (16, 4)):
        problems.append(memory.sync_register_file(width, depth))
    for width, depth in ((4, 4), (8, 4), (8, 8), (16, 8)):
        problems.append(memory.fifo(width, depth))
    if len(problems) != MEMORY_PROBLEM_COUNT:
        raise AssertionError(
            f"memory family has {len(problems)} problems, expected {MEMORY_PROBLEM_COUNT}"
        )
    return problems


def build_extended_registry() -> ProblemRegistry:
    """The paper's 216 cases plus the ``memory`` extension suite.

    Drop-in wherever :func:`build_default_registry` is accepted (e.g.
    ``SweepEngine(registry=build_extended_registry())``), so the memory
    family runs through the standard sweep/campaign path unchanged.
    """
    registry = build_default_registry()
    for problem in build_memory_family():
        registry.add(problem)
    return registry
