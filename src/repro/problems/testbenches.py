"""Stimulus generators shared by the benchmark problem families."""

from __future__ import annotations

import random
from itertools import product

from repro.problems.base import IoPort
from repro.sim.testbench import FunctionalPoint, Testbench

_EXHAUSTIVE_LIMIT_BITS = 10
_DEFAULT_RANDOM_POINTS = 64
_DEFAULT_SEQUENCE_CYCLES = 48


def combinational_testbench(
    inputs: list[IoPort], rng: random.Random, points: int = _DEFAULT_RANDOM_POINTS
) -> Testbench:
    """Exhaustive stimuli when the input space is small, random otherwise."""
    total_bits = sum(port.width for port in inputs)
    functional_points: list[FunctionalPoint] = []
    if total_bits <= _EXHAUSTIVE_LIMIT_BITS:
        ranges = [range(1 << port.width) for port in inputs]
        for values in product(*ranges):
            stimulus = {port.verilog_name: value for port, value in zip(inputs, values)}
            functional_points.append(FunctionalPoint(stimulus))
    else:
        for _ in range(points):
            stimulus = {
                port.verilog_name: rng.getrandbits(port.width) for port in inputs
            }
            functional_points.append(FunctionalPoint(stimulus))
        # Always include the all-zeros and all-ones corner cases.
        functional_points.append(FunctionalPoint({p.verilog_name: 0 for p in inputs}))
        functional_points.append(
            FunctionalPoint({p.verilog_name: (1 << p.width) - 1 for p in inputs})
        )
    return Testbench(points=functional_points, reset_cycles=0)


def sequential_testbench(
    inputs: list[IoPort],
    rng: random.Random,
    cycles: int = _DEFAULT_SEQUENCE_CYCLES,
    bias: dict[str, float] | None = None,
) -> Testbench:
    """A random input sequence checked every cycle.

    ``bias`` optionally gives per-1-bit-signal probabilities of being high
    (useful for enables that should be mostly asserted).
    """
    bias = bias or {}
    functional_points: list[FunctionalPoint] = []
    for _ in range(cycles):
        stimulus: dict[str, int] = {}
        for port in inputs:
            if port.width == 1 and port.name in bias:
                stimulus[port.verilog_name] = 1 if rng.random() < bias[port.name] else 0
            else:
                stimulus[port.verilog_name] = rng.getrandbits(port.width)
        functional_points.append(FunctionalPoint(stimulus, clock_cycles=1))
    return Testbench(points=functional_points, reset_cycles=2)


def directed_then_random_testbench(
    inputs: list[IoPort],
    directed: list[dict[str, int]],
    rng: random.Random,
    random_points: int = 32,
    sequential: bool = False,
) -> Testbench:
    """Directed vectors first (corner cases), then random fill."""
    cycles = 1 if sequential else 0
    points = [FunctionalPoint(dict(vector), clock_cycles=cycles) for vector in directed]
    for _ in range(random_points):
        stimulus = {port.verilog_name: rng.getrandbits(port.width) for port in inputs}
        points.append(FunctionalPoint(stimulus, clock_cycles=cycles))
    return Testbench(points=points, reset_cycles=2 if sequential else 0)
