"""Combinational benchmark problem families (gates, muxes, encoders, ...)."""

from __future__ import annotations

import functools

from repro.problems.base import IoPort, Problem, TextFault
from repro.problems.testbenches import combinational_testbench


def _comb_problem(
    problem_id: str,
    suite: str,
    name: str,
    description: str,
    inputs: list[IoPort],
    outputs: list[IoPort],
    golden: str,
    faults: list[TextFault],
    tags: list[str] | None = None,
) -> Problem:
    return Problem(
        problem_id=problem_id,
        suite=suite,
        name=name,
        description=description,
        inputs=inputs,
        outputs=outputs,
        golden_chisel=golden,
        testbench_builder=functools.partial(combinational_testbench, inputs),
        sequential=False,
        functional_faults=faults,
        tags=["combinational"] + (tags or []),
    )


_HEADER = "import chisel3._\nimport chisel3.util._\n\n"


def passthrough(width: int, suite: str) -> Problem:
    golden = _HEADER + f"""class TopModule extends Module {{
  val io = IO(new Bundle {{
    val in = Input(UInt({width}.W))
    val out = Output(UInt({width}.W))
  }})
  io.out := io.in
}}
"""
    return _comb_problem(
        f"passthrough_w{width}",
        suite,
        f"{width}-bit wire",
        f"Implement a simple {width}-bit wire: the output `out` must always equal the input `in`.",
        [IoPort("in", width)],
        [IoPort("out", width)],
        golden,
        [TextFault("func_invert", "output is inverted", "io.out := io.in", "io.out := ~io.in")],
    )


def notgate(width: int, suite: str) -> Problem:
    golden = _HEADER + f"""class TopModule extends Module {{
  val io = IO(new Bundle {{
    val in = Input(UInt({width}.W))
    val out = Output(UInt({width}.W))
  }})
  io.out := ~io.in
}}
"""
    return _comb_problem(
        f"not_gate_w{width}",
        suite,
        f"{width}-bit inverter",
        f"Implement a {width}-bit bitwise inverter: each bit of `out` is the complement of the corresponding bit of `in`.",
        [IoPort("in", width)],
        [IoPort("out", width)],
        golden,
        [TextFault("func_no_invert", "inversion dropped", "~io.in", "io.in")],
    )


_GATE_EXPRS = {
    "and": "io.a & io.b",
    "or": "io.a | io.b",
    "xor": "io.a ^ io.b",
    "nand": "~(io.a & io.b)",
    "nor": "~(io.a | io.b)",
    "xnor": "~(io.a ^ io.b)",
}

_GATE_WRONG = {
    "and": "io.a | io.b",
    "or": "io.a & io.b",
    "xor": "io.a & io.b",
    "nand": "io.a & io.b",
    "nor": "io.a | io.b",
    "xnor": "io.a ^ io.b",
}


def gate(op: str, width: int, suite: str) -> Problem:
    golden = _HEADER + f"""class TopModule extends Module {{
  val io = IO(new Bundle {{
    val a = Input(UInt({width}.W))
    val b = Input(UInt({width}.W))
    val out = Output(UInt({width}.W))
  }})
  io.out := {_GATE_EXPRS[op]}
}}
"""
    return _comb_problem(
        f"gate_{op}_w{width}",
        suite,
        f"{width}-bit {op.upper()} gate",
        f"Implement a {width}-bit bitwise {op.upper()} gate: `out` is the bitwise {op.upper()} of inputs `a` and `b`.",
        [IoPort("a", width), IoPort("b", width)],
        [IoPort("out", width)],
        golden,
        [TextFault("func_wrong_gate", "wrong boolean operator", _GATE_EXPRS[op], _GATE_WRONG[op])],
    )


def mux2(width: int, suite: str) -> Problem:
    golden = _HEADER + f"""class TopModule extends Module {{
  val io = IO(new Bundle {{
    val a = Input(UInt({width}.W))
    val b = Input(UInt({width}.W))
    val sel = Input(Bool())
    val out = Output(UInt({width}.W))
  }})
  io.out := Mux(io.sel, io.b, io.a)
}}
"""
    return _comb_problem(
        f"mux2_w{width}",
        suite,
        f"{width}-bit 2-to-1 multiplexer",
        f"Implement a {width}-bit 2-to-1 multiplexer. When `sel` is 0 the output is `a`; when `sel` is 1 the output is `b`.",
        [IoPort("a", width), IoPort("b", width), IoPort("sel", 1)],
        [IoPort("out", width)],
        golden,
        [TextFault("func_swapped_mux", "multiplexer inputs swapped", "Mux(io.sel, io.b, io.a)", "Mux(io.sel, io.a, io.b)")],
    )


def mux4(width: int, suite: str) -> Problem:
    golden = _HEADER + f"""class TopModule extends Module {{
  val io = IO(new Bundle {{
    val a = Input(UInt({width}.W))
    val b = Input(UInt({width}.W))
    val c = Input(UInt({width}.W))
    val d = Input(UInt({width}.W))
    val sel = Input(UInt(2.W))
    val out = Output(UInt({width}.W))
  }})
  val result = WireDefault(io.a)
  switch (io.sel) {{
    is (0.U) {{ result := io.a }}
    is (1.U) {{ result := io.b }}
    is (2.U) {{ result := io.c }}
    is (3.U) {{ result := io.d }}
  }}
  io.out := result
}}
"""
    return _comb_problem(
        f"mux4_w{width}",
        suite,
        f"{width}-bit 4-to-1 multiplexer",
        f"Implement a {width}-bit 4-to-1 multiplexer. The 2-bit select `sel` chooses input `a`, `b`, `c` or `d` for values 0, 1, 2 and 3 respectively.",
        [IoPort("a", width), IoPort("b", width), IoPort("c", width), IoPort("d", width), IoPort("sel", 2)],
        [IoPort("out", width)],
        golden,
        [
            TextFault("func_swapped_cases", "select values 2 and 3 swapped",
                      "is (2.U) { result := io.c }", "is (2.U) { result := io.d }"),
        ],
    )


def adder(width: int, suite: str) -> Problem:
    golden = _HEADER + f"""class TopModule extends Module {{
  val io = IO(new Bundle {{
    val a = Input(UInt({width}.W))
    val b = Input(UInt({width}.W))
    val cin = Input(Bool())
    val sum = Output(UInt({width}.W))
    val cout = Output(Bool())
  }})
  val total = io.a +& io.b +& io.cin.asUInt
  io.sum := total({width - 1}, 0)
  io.cout := total({width})
}}
"""
    return _comb_problem(
        f"adder_w{width}",
        suite,
        f"{width}-bit full adder",
        f"Implement a {width}-bit adder with carry-in and carry-out. `sum` is the low {width} bits of a + b + cin and `cout` is the carry out of the most significant bit.",
        [IoPort("a", width), IoPort("b", width), IoPort("cin", 1)],
        [IoPort("sum", width), IoPort("cout", 1)],
        golden,
        [
            TextFault("func_no_carry_in", "carry-in ignored", "+& io.cin.asUInt", "+& 0.U"),
            TextFault("func_wrong_cout", "carry-out taken from the wrong bit",
                      f"io.cout := total({width})", f"io.cout := total({width - 1})"),
        ],
    )


def subtractor(width: int, suite: str) -> Problem:
    golden = _HEADER + f"""class TopModule extends Module {{
  val io = IO(new Bundle {{
    val a = Input(UInt({width}.W))
    val b = Input(UInt({width}.W))
    val diff = Output(UInt({width}.W))
    val borrow = Output(Bool())
  }})
  io.diff := io.a - io.b
  io.borrow := io.a < io.b
}}
"""
    return _comb_problem(
        f"subtractor_w{width}",
        suite,
        f"{width}-bit subtractor",
        f"Implement a {width}-bit subtractor. `diff` is a - b (modulo 2^{width}) and `borrow` is 1 when a < b.",
        [IoPort("a", width), IoPort("b", width)],
        [IoPort("diff", width), IoPort("borrow", 1)],
        golden,
        [TextFault("func_swapped_operands", "operands swapped", "io.a - io.b", "io.b - io.a")],
    )


def comparator(width: int, suite: str) -> Problem:
    golden = _HEADER + f"""class TopModule extends Module {{
  val io = IO(new Bundle {{
    val a = Input(UInt({width}.W))
    val b = Input(UInt({width}.W))
    val eq = Output(Bool())
    val lt = Output(Bool())
    val gt = Output(Bool())
  }})
  io.eq := io.a === io.b
  io.lt := io.a < io.b
  io.gt := io.a > io.b
}}
"""
    return _comb_problem(
        f"comparator_w{width}",
        suite,
        f"{width}-bit comparator",
        f"Implement a {width}-bit unsigned comparator producing three flags: `eq` (a == b), `lt` (a < b) and `gt` (a > b).",
        [IoPort("a", width), IoPort("b", width)],
        [IoPort("eq", 1), IoPort("lt", 1), IoPort("gt", 1)],
        golden,
        [TextFault("func_lt_is_le", "lt implemented as <=", "io.a < io.b", "io.a <= io.b")],
    )


def decoder(bits: int, suite: str) -> Problem:
    size = 1 << bits
    golden = _HEADER + f"""class TopModule extends Module {{
  val io = IO(new Bundle {{
    val in = Input(UInt({bits}.W))
    val en = Input(Bool())
    val out = Output(UInt({size}.W))
  }})
  io.out := Mux(io.en, (1.U({size}.W) << io.in)({size - 1}, 0), 0.U)
}}
"""
    return _comb_problem(
        f"decoder_{bits}to{size}",
        suite,
        f"{bits}-to-{size} decoder",
        f"Implement a {bits}-to-{size} one-hot decoder with enable. When `en` is 1, output bit `in` is set and all other bits are 0; when `en` is 0 the output is all zeros.",
        [IoPort("in", bits), IoPort("en", 1)],
        [IoPort("out", size)],
        golden,
        [TextFault("func_ignore_enable", "enable ignored", "Mux(io.en, ", "Mux(true.B, ")],
    )


def priority_encoder(size: int, suite: str) -> Problem:
    out_width = max(1, (size - 1).bit_length())
    golden = _HEADER + f"""class TopModule extends Module {{
  val io = IO(new Bundle {{
    val in = Input(UInt({size}.W))
    val out = Output(UInt({out_width}.W))
    val valid = Output(Bool())
  }})
  val index = WireDefault(0.U({out_width}.W))
  for (i <- 0 until {size}) {{
    when (io.in(i)) {{
      index := i.U
    }}
  }}
  io.out := index
  io.valid := io.in.orR
}}
"""
    return _comb_problem(
        f"priority_encoder_{size}",
        suite,
        f"{size}-input priority encoder",
        f"Implement a {size}-input priority encoder. `out` is the index of the highest-priority (most significant) set bit of `in`; `valid` is 1 when any input bit is set. When no bit is set, `out` is 0.",
        [IoPort("in", size)],
        [IoPort("out", out_width), IoPort("valid", 1)],
        golden,
        [
            TextFault("func_inverted_condition", "priority condition inverted",
                      "when (io.in(i))", "when (!io.in(i))"),
            TextFault("func_valid_inverted", "valid flag inverted", "io.in.orR", "!io.in.orR"),
        ],
    )


def parity(width: int, suite: str) -> Problem:
    golden = _HEADER + f"""class TopModule extends Module {{
  val io = IO(new Bundle {{
    val in = Input(UInt({width}.W))
    val even = Output(Bool())
    val odd = Output(Bool())
  }})
  val p = io.in.xorR
  io.odd := p
  io.even := !p
}}
"""
    return _comb_problem(
        f"parity_w{width}",
        suite,
        f"{width}-bit parity generator",
        f"Compute the parity of a {width}-bit input. `odd` is 1 when the number of set bits is odd; `even` is its complement.",
        [IoPort("in", width)],
        [IoPort("even", 1), IoPort("odd", 1)],
        golden,
        [TextFault("func_swapped_parity", "even and odd outputs swapped", "io.odd := p", "io.odd := !p")],
    )


def vector5(suite: str) -> Problem:
    """The paper's Fig. 8 case study: 25 pairwise 1-bit equality comparisons."""
    golden = _HEADER + """class TopModule extends Module {
  val io = IO(new Bundle {
    val a = Input(Bool())
    val b = Input(Bool())
    val c = Input(Bool())
    val d = Input(Bool())
    val e = Input(Bool())
    val out = Output(UInt(25.W))
  })
  val inputs = VecInit(io.a, io.b, io.c, io.d, io.e)
  val tempOut = Wire(Vec(25, Bool()))
  for (bit <- tempOut) { bit := false.B }
  var idx = 0
  for (i <- 0 until 5) {
    for (j <- 0 until 5) {
      tempOut(24 - idx) := inputs(i) === inputs(j)
      idx += 1
    }
  }
  io.out := tempOut.asUInt
}
"""
    return _comb_problem(
        "vector5",
        suite,
        "Vector5 pairwise comparison",
        "Given five 1-bit signals (a, b, c, d and e), compute all 25 pairwise one-bit comparisons in the 25-bit output vector. The output should be 1 if the two bits being compared are equal. out[24] corresponds to the comparison a vs a, out[23] to a vs b, continuing row by row down to out[0] for e vs e.",
        [IoPort("a", 1), IoPort("b", 1), IoPort("c", 1), IoPort("d", 1), IoPort("e", 1)],
        [IoPort("out", 25)],
        golden,
        [
            TextFault("func_inner_loop_start", "inner loop starts at i instead of 0 (Fig. 8 iteration 3 bug)",
                      "for (j <- 0 until 5)", "for (j <- i until 5)"),
            TextFault("func_not_equal", "comparison uses =/= instead of ===",
                      "inputs(i) === inputs(j)", "inputs(i) =/= inputs(j)"),
        ],
        tags=["case_study"],
    )


def bit_reverse(width: int, suite: str) -> Problem:
    golden = _HEADER + f"""class TopModule extends Module {{
  val io = IO(new Bundle {{
    val in = Input(UInt({width}.W))
    val out = Output(UInt({width}.W))
  }})
  io.out := Reverse(io.in)
}}
"""
    return _comb_problem(
        f"bit_reverse_w{width}",
        suite,
        f"{width}-bit bit-reversal",
        f"Reverse the bit order of a {width}-bit input: output bit i must equal input bit {width - 1} - i.",
        [IoPort("in", width)],
        [IoPort("out", width)],
        golden,
        [TextFault("func_no_reverse", "bits not reversed", "Reverse(io.in)", "io.in")],
    )


def popcount(width: int, suite: str) -> Problem:
    out_width = max(1, width.bit_length())
    golden = _HEADER + f"""class TopModule extends Module {{
  val io = IO(new Bundle {{
    val in = Input(UInt({width}.W))
    val count = Output(UInt({out_width}.W))
  }})
  io.count := PopCount(io.in)
}}
"""
    return _comb_problem(
        f"popcount_w{width}",
        suite,
        f"{width}-bit population count",
        f"Count the number of set bits in a {width}-bit input and output the count.",
        [IoPort("in", width)],
        [IoPort("count", out_width)],
        golden,
        [TextFault("func_count_zeros", "counts zeros instead of ones", "PopCount(io.in)", "PopCount(~io.in)")],
    )


def shifter(width: int, suite: str) -> Problem:
    shamt_width = max(1, (width - 1).bit_length())
    golden = _HEADER + f"""class TopModule extends Module {{
  val io = IO(new Bundle {{
    val in = Input(UInt({width}.W))
    val shamt = Input(UInt({shamt_width}.W))
    val left = Input(Bool())
    val out = Output(UInt({width}.W))
  }})
  val shiftedLeft = (io.in << io.shamt)({width - 1}, 0)
  val shiftedRight = io.in >> io.shamt
  io.out := Mux(io.left, shiftedLeft, shiftedRight)
}}
"""
    return _comb_problem(
        f"shifter_w{width}",
        suite,
        f"{width}-bit logical shifter",
        f"Implement a {width}-bit logical shifter. When `left` is 1 the input is shifted left by `shamt` bits (zeros shifted in, result truncated to {width} bits); otherwise it is shifted right logically by `shamt`.",
        [IoPort("in", width), IoPort("shamt", shamt_width), IoPort("left", 1)],
        [IoPort("out", width)],
        golden,
        [TextFault("func_direction_swapped", "shift directions swapped",
                   "Mux(io.left, shiftedLeft, shiftedRight)", "Mux(io.left, shiftedRight, shiftedLeft)")],
    )


def sign_extend(in_width: int, out_width: int, suite: str) -> Problem:
    golden = _HEADER + f"""class TopModule extends Module {{
  val io = IO(new Bundle {{
    val in = Input(UInt({in_width}.W))
    val out = Output(UInt({out_width}.W))
  }})
  val sign = io.in({in_width - 1})
  io.out := Cat(Fill({out_width - in_width}, sign), io.in)
}}
"""
    return _comb_problem(
        f"sign_extend_{in_width}to{out_width}",
        suite,
        f"{in_width}-to-{out_width} sign extension",
        f"Sign-extend a {in_width}-bit two's-complement input to {out_width} bits: the upper {out_width - in_width} bits of the output are copies of the input's most significant bit.",
        [IoPort("in", in_width)],
        [IoPort("out", out_width)],
        golden,
        [TextFault("func_zero_extend", "zero-extends instead of sign-extending",
                   f"Fill({out_width - in_width}, sign)", f"Fill({out_width - in_width}, 0.U(1.W))")],
    )


def abs_diff(width: int, suite: str) -> Problem:
    golden = _HEADER + f"""class TopModule extends Module {{
  val io = IO(new Bundle {{
    val a = Input(UInt({width}.W))
    val b = Input(UInt({width}.W))
    val out = Output(UInt({width}.W))
  }})
  io.out := Mux(io.a >= io.b, io.a - io.b, io.b - io.a)
}}
"""
    return _comb_problem(
        f"abs_diff_w{width}",
        suite,
        f"{width}-bit absolute difference",
        f"Compute the absolute difference |a - b| of two {width}-bit unsigned inputs.",
        [IoPort("a", width), IoPort("b", width)],
        [IoPort("out", width)],
        golden,
        [TextFault("func_always_a_minus_b", "always computes a - b",
                   "Mux(io.a >= io.b, io.a - io.b, io.b - io.a)", "io.a - io.b")],
    )


def min_max(width: int, suite: str) -> Problem:
    golden = _HEADER + f"""class TopModule extends Module {{
  val io = IO(new Bundle {{
    val a = Input(UInt({width}.W))
    val b = Input(UInt({width}.W))
    val min = Output(UInt({width}.W))
    val max = Output(UInt({width}.W))
  }})
  io.min := Mux(io.a < io.b, io.a, io.b)
  io.max := Mux(io.a < io.b, io.b, io.a)
}}
"""
    return _comb_problem(
        f"min_max_w{width}",
        suite,
        f"{width}-bit min/max unit",
        f"Output both the minimum and the maximum of two {width}-bit unsigned inputs.",
        [IoPort("a", width), IoPort("b", width)],
        [IoPort("min", width), IoPort("max", width)],
        golden,
        [TextFault("func_swapped_minmax", "min and max outputs swapped",
                   "io.min := Mux(io.a < io.b, io.a, io.b)", "io.min := Mux(io.a < io.b, io.b, io.a)")],
    )


def byte_swap(suite: str) -> Problem:
    golden = _HEADER + """class TopModule extends Module {
  val io = IO(new Bundle {
    val in = Input(UInt(32.W))
    val out = Output(UInt(32.W))
  })
  io.out := Cat(io.in(7, 0), io.in(15, 8), io.in(23, 16), io.in(31, 24))
}
"""
    return _comb_problem(
        "byte_swap_32",
        suite,
        "32-bit byte swap",
        "Reverse the byte order of a 32-bit word (endianness swap): output byte 0 is input byte 3, output byte 1 is input byte 2, and so on.",
        [IoPort("in", 32)],
        [IoPort("out", 32)],
        golden,
        [TextFault("func_half_swap", "only the halfwords are swapped",
                   "Cat(io.in(7, 0), io.in(15, 8), io.in(23, 16), io.in(31, 24))",
                   "Cat(io.in(15, 0), io.in(31, 16))")],
    )


_SEVEN_SEG = [0x3F, 0x06, 0x5B, 0x4F, 0x66, 0x6D, 0x7D, 0x07, 0x7F, 0x6F]


def seven_segment(suite: str) -> Problem:
    cases = "\n".join(
        f"    is ({digit}.U) {{ io.seg := \"h{code:02x}\".U }}" for digit, code in enumerate(_SEVEN_SEG)
    )
    golden = _HEADER + f"""class TopModule extends Module {{
  val io = IO(new Bundle {{
    val digit = Input(UInt(4.W))
    val seg = Output(UInt(7.W))
  }})
  io.seg := 0.U
  switch (io.digit) {{
{cases}
  }}
}}
"""
    return _comb_problem(
        "seven_segment",
        suite,
        "Seven-segment decoder",
        "Decode a BCD digit (0-9) to the seven-segment pattern {g,f,e,d,c,b,a} with segment a in bit 0. For 0 the pattern is 0x3F, for 1 it is 0x06, for 2 it is 0x5B, for 3 0x4F, for 4 0x66, for 5 0x6D, for 6 0x7D, for 7 0x07, for 8 0x7F and for 9 0x6F. Inputs above 9 produce all segments off (0).",
        [IoPort("digit", 4)],
        [IoPort("seg", 7)],
        golden,
        [TextFault("func_wrong_nine", "wrong pattern for digit 9",
                   'is (9.U) { io.seg := "h6f".U }', 'is (9.U) { io.seg := "h67".U }')],
    )


def majority(bits: int, suite: str) -> Problem:
    threshold = bits // 2 + 1
    golden = _HEADER + f"""class TopModule extends Module {{
  val io = IO(new Bundle {{
    val in = Input(UInt({bits}.W))
    val out = Output(Bool())
  }})
  io.out := PopCount(io.in) >= {threshold}.U
}}
"""
    return _comb_problem(
        f"majority_{bits}",
        suite,
        f"{bits}-input majority vote",
        f"Output 1 when a majority (at least {threshold}) of the {bits} input bits are 1, otherwise 0.",
        [IoPort("in", bits)],
        [IoPort("out", 1)],
        golden,
        [TextFault("func_strict_majority", "uses > instead of >=",
                   f"PopCount(io.in) >= {threshold}.U", f"PopCount(io.in) > {threshold}.U")],
    )


def ones_complement_checksum(suite: str) -> Problem:
    golden = _HEADER + """class TopModule extends Module {
  val io = IO(new Bundle {
    val a = Input(UInt(16.W))
    val b = Input(UInt(16.W))
    val sum = Output(UInt(16.W))
  })
  val total = io.a +& io.b
  io.sum := total(15, 0) + total(16).asUInt
}
"""
    return _comb_problem(
        "ones_complement_sum",
        suite,
        "16-bit one's-complement adder",
        "Add two 16-bit words using one's-complement (end-around carry) addition: compute a + b and add the carry-out back into the least significant bit.",
        [IoPort("a", 16), IoPort("b", 16)],
        [IoPort("sum", 16)],
        golden,
        [TextFault("func_drop_carry", "end-around carry dropped",
                   "total(15, 0) + total(16).asUInt", "total(15, 0)")],
    )


def gray_encoder(width: int, suite: str) -> Problem:
    golden = _HEADER + f"""class TopModule extends Module {{
  val io = IO(new Bundle {{
    val in = Input(UInt({width}.W))
    val out = Output(UInt({width}.W))
  }})
  io.out := io.in ^ (io.in >> 1)
}}
"""
    return _comb_problem(
        f"gray_encoder_w{width}",
        suite,
        f"{width}-bit binary-to-Gray encoder",
        f"Convert a {width}-bit binary value to Gray code: out = in XOR (in >> 1).",
        [IoPort("in", width)],
        [IoPort("out", width)],
        golden,
        [TextFault("func_shift_left", "shifts left instead of right",
                   "io.in ^ (io.in >> 1)", f"io.in ^ (io.in << 1)({width - 1}, 0)")],
    )
