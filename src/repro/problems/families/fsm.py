"""Finite-state-machine benchmark problem families."""

from __future__ import annotations

import functools

from repro.problems.base import IoPort, Problem, TextFault
from repro.problems.testbenches import sequential_testbench

_HEADER = "import chisel3._\nimport chisel3.util._\n\n"


def _fsm_problem(
    problem_id: str,
    suite: str,
    name: str,
    description: str,
    inputs: list[IoPort],
    outputs: list[IoPort],
    golden: str,
    faults: list[TextFault],
    bias: dict[str, float] | None = None,
) -> Problem:
    return Problem(
        problem_id=problem_id,
        suite=suite,
        name=name,
        description=description,
        inputs=inputs,
        outputs=outputs,
        golden_chisel=golden,
        testbench_builder=functools.partial(sequential_testbench, inputs, cycles=64, bias=bias),
        sequential=True,
        functional_faults=faults,
        tags=["sequential", "fsm"],
    )


def sequence_detector(pattern: str, suite: str, overlapping: bool = True) -> Problem:
    """Detect a binary ``pattern`` on a serial input (overlapping occurrences).

    The golden solution keeps the last ``len(pattern)`` input bits in a history
    register and compares against the pattern, which naturally handles
    overlapping matches.
    """
    length = len(pattern)
    golden = _HEADER + f"""class TopModule extends Module {{
  val io = IO(new Bundle {{
    val in = Input(Bool())
    val detected = Output(Bool())
  }})
  val history = RegInit(0.U({length}.W))
  val nextHistory = Cat(history({length - 2}, 0), io.in.asUInt)
  history := nextHistory
  io.detected := nextHistory === "b{pattern}".U
}}
"""
    return _fsm_problem(
        f"seq_detect_{pattern}",
        suite,
        f"Sequence detector for pattern {pattern}",
        f"Detect the serial bit pattern {pattern} (most recent bit last) on the 1-bit input `in`. `detected` must be 1 during the cycle in which the final bit of the pattern is clocked in; overlapping occurrences are all detected. Synchronous reset clears the detector history.",
        [IoPort("in", 1)],
        [IoPort("detected", 1)],
        golden,
        [
            TextFault("func_stale_history", "detection uses the previous cycle's history",
                      f'io.detected := nextHistory === "b{pattern}".U',
                      f'io.detected := history === "b{pattern}".U'),
        ],
        bias={"in": 0.5},
    )


def traffic_light(green_cycles: int, yellow_cycles: int, red_cycles: int, suite: str) -> Problem:
    maximum = max(green_cycles, yellow_cycles, red_cycles)
    counter_width = max(2, (maximum - 1).bit_length() + 1)
    golden = _HEADER + f"""class TopModule extends Module {{
  val io = IO(new Bundle {{
    val green = Output(Bool())
    val yellow = Output(Bool())
    val red = Output(Bool())
  }})
  val sGreen = 0.U(2.W)
  val sYellow = 1.U(2.W)
  val sRed = 2.U(2.W)
  val state = RegInit(0.U(2.W))
  val count = RegInit(0.U({counter_width}.W))
  val limit = WireDefault({green_cycles - 1}.U({counter_width}.W))
  when (state === sYellow) {{
    limit := {yellow_cycles - 1}.U
  }} .elsewhen (state === sRed) {{
    limit := {red_cycles - 1}.U
  }}
  when (count === limit) {{
    count := 0.U
    when (state === sRed) {{
      state := sGreen
    }} .otherwise {{
      state := state + 1.U
    }}
  }} .otherwise {{
    count := count + 1.U
  }}
  io.green := state === sGreen
  io.yellow := state === sYellow
  io.red := state === sRed
}}
"""
    return _fsm_problem(
        f"traffic_light_{green_cycles}_{yellow_cycles}_{red_cycles}",
        suite,
        "Traffic light controller",
        f"Implement a three-state traffic light controller that cycles green → yellow → red → green. Green lasts {green_cycles} cycles, yellow {yellow_cycles} cycles and red {red_cycles} cycles. Exactly one of the three outputs is high at any time. Synchronous reset returns to green with the timer cleared.",
        [],
        [IoPort("green", 1), IoPort("yellow", 1), IoPort("red", 1)],
        golden,
        [
            TextFault("func_yellow_duration", "yellow phase lasts one cycle too long",
                      f"limit := {yellow_cycles - 1}.U", f"limit := {yellow_cycles}.U"),
        ],
    )


def vending_machine(price: int, suite: str) -> Problem:
    width = max(3, (price * 2 - 1).bit_length())
    golden = _HEADER + f"""class TopModule extends Module {{
  val io = IO(new Bundle {{
    val nickel = Input(Bool())
    val dime = Input(Bool())
    val dispense = Output(Bool())
  }})
  val total = RegInit(0.U({width}.W))
  val credit = total + Mux(io.nickel, 5.U, 0.U) + Mux(io.dime, 10.U, 0.U)
  when (credit >= {price}.U) {{
    total := 0.U
  }} .otherwise {{
    total := credit
  }}
  io.dispense := credit >= {price}.U
}}
"""
    return _fsm_problem(
        f"vending_machine_{price}",
        suite,
        "Vending machine controller",
        f"Implement a vending machine accepting nickels (5 cents) and dimes (10 cents), at most one of each per cycle. When the accumulated credit reaches {price} cents or more, assert `dispense` for one cycle and reset the credit to zero (excess credit is not returned). Synchronous reset clears the credit.",
        [IoPort("nickel", 1), IoPort("dime", 1)],
        [IoPort("dispense", 1)],
        golden,
        [TextFault("func_strict_threshold", "dispenses only on exact amount",
                   f"credit >= {price}.U) {{\n    total := 0.U", f"credit === {price}.U) {{\n    total := 0.U")],
        bias={"nickel": 0.4, "dime": 0.35},
    )


def round_robin_arbiter(suite: str) -> Problem:
    golden = _HEADER + """class TopModule extends Module {
  val io = IO(new Bundle {
    val req0 = Input(Bool())
    val req1 = Input(Bool())
    val grant0 = Output(Bool())
    val grant1 = Output(Bool())
  })
  val lastGrant = RegInit(false.B)
  val grant0 = WireDefault(false.B)
  val grant1 = WireDefault(false.B)
  when (io.req0 && io.req1) {
    grant0 := lastGrant
    grant1 := !lastGrant
  } .elsewhen (io.req0) {
    grant0 := true.B
  } .elsewhen (io.req1) {
    grant1 := true.B
  }
  when (grant0) {
    lastGrant := false.B
  } .elsewhen (grant1) {
    lastGrant := true.B
  }
  io.grant0 := grant0
  io.grant1 := grant1
}
"""
    return _fsm_problem(
        "rr_arbiter_2",
        suite,
        "Two-way round-robin arbiter",
        "Implement a two-requester round-robin arbiter. When only one requester asserts its request, it is granted. When both request in the same cycle, the grant alternates: the requester that was not granted most recently wins. Grants are combinational in the same cycle as the requests; the round-robin pointer updates on the clock edge. Synchronous reset gives requester 0 priority first.",
        [IoPort("req0", 1), IoPort("req1", 1)],
        [IoPort("grant0", 1), IoPort("grant1", 1)],
        golden,
        [TextFault("func_fixed_priority", "requester 0 always wins ties",
                   "grant0 := lastGrant\n    grant1 := !lastGrant",
                   "grant0 := true.B\n    grant1 := false.B")],
        bias={"req0": 0.6, "req1": 0.6},
    )


def debouncer(stable_cycles: int, suite: str) -> Problem:
    width = max(2, (stable_cycles).bit_length())
    golden = _HEADER + f"""class TopModule extends Module {{
  val io = IO(new Bundle {{
    val noisy = Input(Bool())
    val clean = Output(Bool())
  }})
  val stableValue = RegInit(false.B)
  val candidate = RegInit(false.B)
  val count = RegInit(0.U({width}.W))
  when (io.noisy === candidate) {{
    when (count === {stable_cycles - 1}.U) {{
      stableValue := candidate
    }} .otherwise {{
      count := count + 1.U
    }}
  }} .otherwise {{
    candidate := io.noisy
    count := 0.U
  }}
  io.clean := stableValue
}}
"""
    return _fsm_problem(
        f"debouncer_{stable_cycles}",
        suite,
        "Input debouncer",
        f"Debounce a noisy 1-bit input: the output only changes to a new value after the input has held that value for {stable_cycles} consecutive clock cycles. Synchronous reset clears the output to 0.",
        [IoPort("noisy", 1)],
        [IoPort("clean", 1)],
        golden,
        [TextFault("func_no_counter_reset", "counter not cleared when the input changes",
                   "candidate := io.noisy\n    count := 0.U", "candidate := io.noisy")],
        bias={"noisy": 0.5},
    )
