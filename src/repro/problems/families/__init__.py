"""Parameterised benchmark problem families.

Each family is a function returning a fully-populated
:class:`~repro.problems.base.Problem`: specification text, I/O contract,
golden Chisel solution, stimulus generator and problem-specific functional
faults.  The registry (:mod:`repro.problems.registry`) instantiates families
over widths/parameters to build the 216-case benchmark.
"""

from repro.problems.families import arithmetic, combinational, fsm, memory, sequential

__all__ = ["combinational", "sequential", "fsm", "arithmetic", "memory"]
