"""Arithmetic benchmark problem families (ALU, multiplier, MAC, saturation)."""

from __future__ import annotations

import functools

from repro.problems.base import IoPort, Problem, TextFault
from repro.problems.testbenches import combinational_testbench, sequential_testbench

_HEADER = "import chisel3._\nimport chisel3.util._\n\n"


def alu(width: int, suite: str) -> Problem:
    inputs = [IoPort("a", width), IoPort("b", width), IoPort("op", 3)]
    outputs = [IoPort("result", width), IoPort("zero", 1)]
    golden = _HEADER + f"""class TopModule extends Module {{
  val io = IO(new Bundle {{
    val a = Input(UInt({width}.W))
    val b = Input(UInt({width}.W))
    val op = Input(UInt(3.W))
    val result = Output(UInt({width}.W))
    val zero = Output(Bool())
  }})
  val result = WireDefault(0.U({width}.W))
  switch (io.op) {{
    is (0.U) {{ result := io.a + io.b }}
    is (1.U) {{ result := io.a - io.b }}
    is (2.U) {{ result := io.a & io.b }}
    is (3.U) {{ result := io.a | io.b }}
    is (4.U) {{ result := io.a ^ io.b }}
    is (5.U) {{ result := (io.a < io.b).asUInt }}
    is (6.U) {{ result := (io.a << io.b(2, 0))({width - 1}, 0) }}
    is (7.U) {{ result := io.a >> io.b(2, 0) }}
  }}
  io.result := result
  io.zero := result === 0.U
}}
"""
    return Problem(
        problem_id=f"alu_w{width}",
        suite=suite,
        name=f"{width}-bit ALU",
        description=(
            f"Implement a {width}-bit ALU controlled by a 3-bit opcode `op`: "
            "0 = add (wrapping), 1 = subtract (wrapping), 2 = bitwise AND, 3 = bitwise OR, "
            "4 = bitwise XOR, 5 = unsigned set-less-than (1 when a < b), "
            "6 = logical shift left of a by b[2:0], 7 = logical shift right of a by b[2:0]. "
            "`zero` is 1 when the result equals 0."
        ),
        inputs=inputs,
        outputs=outputs,
        golden_chisel=golden,
        testbench_builder=functools.partial(combinational_testbench, inputs),
        sequential=False,
        functional_faults=[
            TextFault("func_slt_swapped", "set-less-than compares the wrong way",
                      "(io.a < io.b).asUInt", "(io.b < io.a).asUInt"),
            TextFault("func_sub_is_add", "subtract opcode performs addition",
                      "is (1.U) { result := io.a - io.b }", "is (1.U) { result := io.a + io.b }"),
        ],
        tags=["combinational", "arithmetic"],
    )


def multiplier(width: int, suite: str) -> Problem:
    inputs = [IoPort("a", width), IoPort("b", width)]
    outputs = [IoPort("product", 2 * width)]
    golden = _HEADER + f"""class TopModule extends Module {{
  val io = IO(new Bundle {{
    val a = Input(UInt({width}.W))
    val b = Input(UInt({width}.W))
    val product = Output(UInt({2 * width}.W))
  }})
  io.product := io.a * io.b
}}
"""
    return Problem(
        problem_id=f"multiplier_w{width}",
        suite=suite,
        name=f"{width}x{width} multiplier",
        description=f"Implement a combinational {width}x{width} unsigned multiplier producing a {2 * width}-bit product.",
        inputs=inputs,
        outputs=outputs,
        golden_chisel=golden,
        testbench_builder=functools.partial(combinational_testbench, inputs),
        sequential=False,
        functional_faults=[
            TextFault("func_add_not_mul", "adds instead of multiplies", "io.a * io.b", "io.a +& io.b"),
        ],
        tags=["combinational", "arithmetic"],
    )


def saturating_adder(width: int, suite: str) -> Problem:
    maximum = (1 << width) - 1
    inputs = [IoPort("a", width), IoPort("b", width)]
    outputs = [IoPort("sum", width)]
    golden = _HEADER + f"""class TopModule extends Module {{
  val io = IO(new Bundle {{
    val a = Input(UInt({width}.W))
    val b = Input(UInt({width}.W))
    val sum = Output(UInt({width}.W))
  }})
  val full = io.a +& io.b
  io.sum := Mux(full > {maximum}.U, {maximum}.U, full({width - 1}, 0))
}}
"""
    return Problem(
        problem_id=f"sat_adder_w{width}",
        suite=suite,
        name=f"{width}-bit saturating adder",
        description=f"Add two {width}-bit unsigned values with saturation: when the true sum exceeds {maximum}, the output clamps to {maximum} instead of wrapping.",
        inputs=inputs,
        outputs=outputs,
        golden_chisel=golden,
        testbench_builder=functools.partial(combinational_testbench, inputs),
        sequential=False,
        functional_faults=[
            TextFault("func_wrapping", "wraps instead of saturating",
                      f"Mux(full > {maximum}.U, {maximum}.U, full({width - 1}, 0))",
                      f"full({width - 1}, 0)"),
        ],
        tags=["combinational", "arithmetic"],
    )


def mac(width: int, suite: str) -> Problem:
    acc_width = 2 * width + 4
    inputs = [IoPort("a", width), IoPort("b", width), IoPort("en", 1), IoPort("clear", 1)]
    outputs = [IoPort("acc", acc_width)]
    golden = _HEADER + f"""class TopModule extends Module {{
  val io = IO(new Bundle {{
    val a = Input(UInt({width}.W))
    val b = Input(UInt({width}.W))
    val en = Input(Bool())
    val clear = Input(Bool())
    val acc = Output(UInt({acc_width}.W))
  }})
  val accumulator = RegInit(0.U({acc_width}.W))
  when (io.clear) {{
    accumulator := 0.U
  }} .elsewhen (io.en) {{
    accumulator := accumulator + io.a * io.b
  }}
  io.acc := accumulator
}}
"""
    return Problem(
        problem_id=f"mac_w{width}",
        suite=suite,
        name=f"{width}-bit multiply-accumulate",
        description=(
            f"Implement a multiply-accumulate unit: when `en` is 1 (and `clear` is 0), the product a*b is added to a "
            f"{acc_width}-bit accumulator on the rising clock edge. When `clear` is 1 the accumulator is cleared "
            "(clear has priority over en). Synchronous reset also clears it."
        ),
        inputs=inputs,
        outputs=outputs,
        golden_chisel=golden,
        testbench_builder=functools.partial(
            sequential_testbench, inputs, bias={"en": 0.8, "clear": 0.1}
        ),
        sequential=True,
        functional_faults=[
            TextFault("func_priority_swapped", "enable has priority over clear",
                      "when (io.clear) {\n    accumulator := 0.U\n  } .elsewhen (io.en) {\n    accumulator := accumulator + io.a * io.b\n  }",
                      "when (io.en) {\n    accumulator := accumulator + io.a * io.b\n  } .elsewhen (io.clear) {\n    accumulator := 0.U\n  }"),
        ],
        tags=["sequential", "arithmetic"],
    )


def average(width: int, suite: str) -> Problem:
    inputs = [IoPort("a", width), IoPort("b", width)]
    outputs = [IoPort("avg", width)]
    golden = _HEADER + f"""class TopModule extends Module {{
  val io = IO(new Bundle {{
    val a = Input(UInt({width}.W))
    val b = Input(UInt({width}.W))
    val avg = Output(UInt({width}.W))
  }})
  val total = io.a +& io.b
  io.avg := (total >> 1)({width - 1}, 0)
}}
"""
    return Problem(
        problem_id=f"average_w{width}",
        suite=suite,
        name=f"{width}-bit averaging unit",
        description=f"Compute the floor of the average of two {width}-bit unsigned inputs, i.e. (a + b) / 2 without overflow.",
        inputs=inputs,
        outputs=outputs,
        golden_chisel=golden,
        testbench_builder=functools.partial(combinational_testbench, inputs),
        sequential=False,
        functional_faults=[
            TextFault("func_rounds_up", "rounds up instead of down for odd sums",
                      "val total = io.a +& io.b", "val total = (io.a +& io.b) + 1.U"),
        ],
        tags=["combinational", "arithmetic"],
    )


def clamp(width: int, lo: int, hi: int, suite: str) -> Problem:
    inputs = [IoPort("in", width)]
    outputs = [IoPort("out", width)]
    golden = _HEADER + f"""class TopModule extends Module {{
  val io = IO(new Bundle {{
    val in = Input(UInt({width}.W))
    val out = Output(UInt({width}.W))
  }})
  val low = {lo}.U({width}.W)
  val high = {hi}.U({width}.W)
  io.out := Mux(io.in < low, low, Mux(io.in > high, high, io.in))
}}
"""
    return Problem(
        problem_id=f"clamp_w{width}_{lo}_{hi}",
        suite=suite,
        name=f"{width}-bit clamp to [{lo}, {hi}]",
        description=f"Clamp a {width}-bit unsigned input to the inclusive range [{lo}, {hi}]: values below {lo} output {lo}, values above {hi} output {hi}, everything else passes through.",
        inputs=inputs,
        outputs=outputs,
        golden_chisel=golden,
        testbench_builder=functools.partial(combinational_testbench, inputs),
        sequential=False,
        functional_faults=[
            TextFault("func_bounds_swapped", "clamping bounds swapped",
                      "Mux(io.in < low, low, Mux(io.in > high, high, io.in))",
                      "Mux(io.in < low, high, Mux(io.in > high, low, io.in))"),
        ],
        tags=["combinational", "arithmetic"],
    )


def dot_product(width: int, lanes: int, suite: str) -> Problem:
    out_width = 2 * width + lanes
    inputs = [IoPort(f"a{i}", width) for i in range(lanes)] + [
        IoPort(f"b{i}", width) for i in range(lanes)
    ]
    outputs = [IoPort("dot", out_width)]
    terms = " +& ".join(f"io.a{i} * io.b{i}" for i in range(lanes))
    io_fields = "\n".join(
        [f"    val a{i} = Input(UInt({width}.W))" for i in range(lanes)]
        + [f"    val b{i} = Input(UInt({width}.W))" for i in range(lanes)]
    )
    golden = _HEADER + f"""class TopModule extends Module {{
  val io = IO(new Bundle {{
{io_fields}
    val dot = Output(UInt({out_width}.W))
  }})
  io.dot := {terms}
}}
"""
    return Problem(
        problem_id=f"dot_product_w{width}_l{lanes}",
        suite=suite,
        name=f"{lanes}-lane dot product",
        description=f"Compute the dot product of two {lanes}-element vectors of {width}-bit unsigned values: dot = sum over i of a_i * b_i, without overflow.",
        inputs=inputs,
        outputs=outputs,
        golden_chisel=golden,
        testbench_builder=functools.partial(combinational_testbench, inputs),
        sequential=False,
        functional_faults=[
            TextFault("func_missing_lane", "last lane omitted from the sum",
                      f" +& io.a{lanes - 1} * io.b{lanes - 1}", ""),
        ],
        tags=["combinational", "arithmetic"],
    )
