"""Memory benchmark problem family: register files and FIFOs.

These designs exercise the ``Mem``/``SyncReadMem`` surface end-to-end —
addressed synchronous writes, combinational and synchronous (read-first) read
ports, and pointer-managed circular buffers.  They extend the benchmark
beyond the paper's 216 register/FSM-level cases (ROADMAP "Scenario
expansion"), so the registry keeps them in a separate ``memory`` suite
reachable via :func:`~repro.problems.registry.build_extended_registry`.
"""

from __future__ import annotations

import functools

from repro.problems.base import SUITE_MEMORY, IoPort, Problem, TextFault
from repro.problems.testbenches import sequential_testbench

_HEADER = "import chisel3._\nimport chisel3.util._\n\n"


def _mem_problem(
    problem_id: str,
    name: str,
    description: str,
    inputs: list[IoPort],
    outputs: list[IoPort],
    golden: str,
    faults: list[TextFault],
    bias: dict[str, float] | None = None,
) -> Problem:
    return Problem(
        problem_id=problem_id,
        suite=SUITE_MEMORY,
        name=name,
        description=description,
        inputs=inputs,
        outputs=outputs,
        golden_chisel=golden,
        testbench_builder=functools.partial(sequential_testbench, inputs, bias=bias),
        sequential=True,
        functional_faults=faults,
        tags=["sequential", "memory"],
    )


def register_file(width: int, depth: int) -> Problem:
    """A ``Mem``-based register file: sync write, combinational read."""
    addr = max(1, (depth - 1).bit_length())
    golden = _HEADER + f"""class TopModule extends Module {{
  val io = IO(new Bundle {{
    val wen = Input(Bool())
    val waddr = Input(UInt({addr}.W))
    val wdata = Input(UInt({width}.W))
    val raddr = Input(UInt({addr}.W))
    val rdata = Output(UInt({width}.W))
  }})
  val regs = Mem({depth}, UInt({width}.W))
  when (io.wen) {{
    regs(io.waddr) := io.wdata
  }}
  io.rdata := regs(io.raddr)
}}
"""
    return _mem_problem(
        f"regfile_w{width}_d{depth}",
        f"{depth}x{width} register file",
        f"Implement a register file with {depth} entries of {width} bits. "
        "On a rising clock edge, when `wen` is 1 the entry at `waddr` captures "
        "`wdata`. `rdata` continuously (combinationally) presents the entry at "
        "`raddr`; a write becomes visible to reads only after its clock edge. "
        "Entries power up as 0 and are not cleared by reset.",
        [IoPort("wen", 1), IoPort("waddr", addr), IoPort("wdata", width), IoPort("raddr", addr)],
        [IoPort("rdata", width)],
        golden,
        [
            TextFault(
                "func_wen_ignored",
                "write-enable ignored, every cycle writes",
                "when (io.wen) {\n    regs(io.waddr) := io.wdata\n  }",
                "regs(io.waddr) := io.wdata",
            ),
            TextFault(
                "func_read_crossed",
                "read port wired to the write address",
                "io.rdata := regs(io.raddr)",
                "io.rdata := regs(io.waddr)",
            ),
        ],
        bias={"wen": 0.7},
    )


def sync_register_file(width: int, depth: int) -> Problem:
    """A ``SyncReadMem``-based register file: read-first synchronous read."""
    addr = max(1, (depth - 1).bit_length())
    golden = _HEADER + f"""class TopModule extends Module {{
  val io = IO(new Bundle {{
    val wen = Input(Bool())
    val waddr = Input(UInt({addr}.W))
    val wdata = Input(UInt({width}.W))
    val ren = Input(Bool())
    val raddr = Input(UInt({addr}.W))
    val rdata = Output(UInt({width}.W))
  }})
  val regs = SyncReadMem({depth}, UInt({width}.W))
  when (io.wen) {{
    regs.write(io.waddr, io.wdata)
  }}
  io.rdata := regs.read(io.raddr, io.ren)
}}
"""
    return _mem_problem(
        f"sync_regfile_w{width}_d{depth}",
        f"{depth}x{width} synchronous-read register file",
        f"Implement a register file with {depth} entries of {width} bits and a "
        "synchronous read port. On a rising clock edge, when `wen` is 1 the "
        "entry at `waddr` captures `wdata`; when `ren` is 1 `rdata` captures "
        "the entry at `raddr` (one-cycle read latency), otherwise `rdata` "
        "holds its previous value. A read and a write to the same address in "
        "the same cycle return the old (pre-write) data. Entries power up as "
        "0 and are not cleared by reset.",
        [
            IoPort("wen", 1),
            IoPort("waddr", addr),
            IoPort("wdata", width),
            IoPort("ren", 1),
            IoPort("raddr", addr),
        ],
        [IoPort("rdata", width)],
        golden,
        [
            TextFault(
                "func_ren_ignored",
                "read-enable ignored, reads every cycle",
                "regs.read(io.raddr, io.ren)",
                "regs.read(io.raddr)",
            ),
        ],
        bias={"wen": 0.7, "ren": 0.7},
    )


def fifo(width: int, depth: int) -> Problem:
    """A circular-buffer FIFO built from a ``Mem`` plus pointer registers.

    ``depth`` must be a power of two so the pointers wrap for free.
    """
    if depth & (depth - 1):
        raise ValueError("fifo depth must be a power of two")
    ptr = max(1, (depth - 1).bit_length())
    cnt = ptr + 1
    golden = _HEADER + f"""class TopModule extends Module {{
  val io = IO(new Bundle {{
    val push = Input(Bool())
    val pop = Input(Bool())
    val din = Input(UInt({width}.W))
    val dout = Output(UInt({width}.W))
    val empty = Output(Bool())
    val full = Output(Bool())
    val count = Output(UInt({cnt}.W))
  }})
  val buf = Mem({depth}, UInt({width}.W))
  val rptr = RegInit(0.U({ptr}.W))
  val wptr = RegInit(0.U({ptr}.W))
  val count = RegInit(0.U({cnt}.W))
  val empty = count === 0.U
  val full = count === {depth}.U
  val doPush = io.push && !full
  val doPop = io.pop && !empty
  when (doPush) {{
    buf(wptr) := io.din
    wptr := wptr + 1.U
  }}
  when (doPop) {{
    rptr := rptr + 1.U
  }}
  when (doPush && !doPop) {{
    count := count + 1.U
  }} .elsewhen (doPop && !doPush) {{
    count := count - 1.U
  }}
  io.dout := buf(rptr)
  io.empty := empty
  io.full := full
  io.count := count
}}
"""
    return _mem_problem(
        f"fifo_w{width}_d{depth}",
        f"{depth}-entry {width}-bit FIFO",
        f"Implement a synchronous FIFO holding up to {depth} entries of "
        f"{width} bits, backed by a circular buffer with read/write pointers. "
        "On a rising clock edge a push (`push`=1, not full) stores `din` at "
        "the tail; a pop (`pop`=1, not empty) advances the head. Pushes into "
        "a full FIFO and pops from an empty FIFO are ignored. `dout` "
        "continuously presents the head entry, `count` the number of stored "
        "entries, and `empty`/`full` flag the boundary states. A synchronous "
        "active-high reset empties the FIFO (pointers and count return to 0).",
        [IoPort("push", 1), IoPort("pop", 1), IoPort("din", width)],
        [
            IoPort("dout", width),
            IoPort("empty", 1),
            IoPort("full", 1),
            IoPort("count", cnt),
        ],
        golden,
        [
            TextFault(
                "func_full_off_by_one",
                f"full asserted at {depth - 1} entries",
                f"count === {depth}.U",
                f"count === {depth - 1}.U",
            ),
            TextFault(
                "func_push_when_full",
                "push overwrites when full",
                "val doPush = io.push && !full",
                "val doPush = io.push",
            ),
        ],
        bias={"push": 0.6, "pop": 0.5},
    )
