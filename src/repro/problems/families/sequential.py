"""Sequential benchmark problem families (registers, counters, shift registers)."""

from __future__ import annotations

import functools

from repro.problems.base import IoPort, Problem, TextFault
from repro.problems.testbenches import sequential_testbench


def _seq_problem(
    problem_id: str,
    suite: str,
    name: str,
    description: str,
    inputs: list[IoPort],
    outputs: list[IoPort],
    golden: str,
    faults: list[TextFault],
    bias: dict[str, float] | None = None,
    tags: list[str] | None = None,
) -> Problem:
    return Problem(
        problem_id=problem_id,
        suite=suite,
        name=name,
        description=description,
        inputs=inputs,
        outputs=outputs,
        golden_chisel=golden,
        testbench_builder=functools.partial(sequential_testbench, inputs, bias=bias),
        sequential=True,
        functional_faults=faults,
        tags=["sequential"] + (tags or []),
    )


_HEADER = "import chisel3._\nimport chisel3.util._\n\n"


def dff(width: int, suite: str) -> Problem:
    golden = _HEADER + f"""class TopModule extends Module {{
  val io = IO(new Bundle {{
    val d = Input(UInt({width}.W))
    val q = Output(UInt({width}.W))
  }})
  val reg = RegInit(0.U({width}.W))
  reg := io.d
  io.q := reg
}}
"""
    return _seq_problem(
        f"dff_w{width}",
        suite,
        f"{width}-bit D flip-flop",
        f"Implement a {width}-bit D register. On every rising clock edge the output `q` captures the input `d`. A synchronous active-high reset clears `q` to 0.",
        [IoPort("d", width)],
        [IoPort("q", width)],
        golden,
        [TextFault("func_passthrough", "register bypassed (combinational passthrough)",
                   "io.q := reg", "io.q := io.d")],
    )


def register_with_enable(width: int, suite: str) -> Problem:
    golden = _HEADER + f"""class TopModule extends Module {{
  val io = IO(new Bundle {{
    val d = Input(UInt({width}.W))
    val en = Input(Bool())
    val q = Output(UInt({width}.W))
  }})
  val reg = RegInit(0.U({width}.W))
  when (io.en) {{
    reg := io.d
  }}
  io.q := reg
}}
"""
    return _seq_problem(
        f"reg_enable_w{width}",
        suite,
        f"{width}-bit register with enable",
        f"Implement a {width}-bit register with a write-enable. On a rising clock edge, `q` captures `d` only when `en` is 1; otherwise it holds its value. Synchronous reset clears it to 0.",
        [IoPort("d", width), IoPort("en", 1)],
        [IoPort("q", width)],
        golden,
        [TextFault("func_enable_ignored", "enable ignored, always loads",
                   "when (io.en) {\n    reg := io.d\n  }", "reg := io.d")],
        bias={"en": 0.7},
    )


def counter(width: int, suite: str) -> Problem:
    golden = _HEADER + f"""class TopModule extends Module {{
  val io = IO(new Bundle {{
    val en = Input(Bool())
    val count = Output(UInt({width}.W))
  }})
  val reg = RegInit(0.U({width}.W))
  when (io.en) {{
    reg := reg + 1.U
  }}
  io.count := reg
}}
"""
    return _seq_problem(
        f"counter_w{width}",
        suite,
        f"{width}-bit up counter",
        f"Implement a {width}-bit up counter with enable. When `en` is 1 the counter increments on each rising clock edge and wraps from {2**width - 1} back to 0; when `en` is 0 it holds. Synchronous reset clears it to 0.",
        [IoPort("en", 1)],
        [IoPort("count", width)],
        golden,
        [TextFault("func_increment_by_two", "increments by 2", "reg + 1.U", "reg + 2.U")],
        bias={"en": 0.8},
    )


def up_down_counter(width: int, suite: str) -> Problem:
    golden = _HEADER + f"""class TopModule extends Module {{
  val io = IO(new Bundle {{
    val en = Input(Bool())
    val up = Input(Bool())
    val count = Output(UInt({width}.W))
  }})
  val reg = RegInit(0.U({width}.W))
  when (io.en) {{
    when (io.up) {{
      reg := reg + 1.U
    }} .otherwise {{
      reg := reg - 1.U
    }}
  }}
  io.count := reg
}}
"""
    return _seq_problem(
        f"updown_counter_w{width}",
        suite,
        f"{width}-bit up/down counter",
        f"Implement a {width}-bit up/down counter. When `en` is 1, the counter increments when `up` is 1 and decrements when `up` is 0 (wrapping in both directions). When `en` is 0 the value holds. Synchronous reset clears it to 0.",
        [IoPort("en", 1), IoPort("up", 1)],
        [IoPort("count", width)],
        golden,
        [TextFault("func_direction_swapped", "up/down directions swapped",
                   "reg := reg + 1.U\n    } .otherwise {\n      reg := reg - 1.U",
                   "reg := reg - 1.U\n    } .otherwise {\n      reg := reg + 1.U")],
        bias={"en": 0.8},
    )


def saturating_counter(width: int, suite: str) -> Problem:
    maximum = (1 << width) - 1
    golden = _HEADER + f"""class TopModule extends Module {{
  val io = IO(new Bundle {{
    val en = Input(Bool())
    val count = Output(UInt({width}.W))
    val full = Output(Bool())
  }})
  val reg = RegInit(0.U({width}.W))
  when (io.en && reg < {maximum}.U) {{
    reg := reg + 1.U
  }}
  io.count := reg
  io.full := reg === {maximum}.U
}}
"""
    return _seq_problem(
        f"sat_counter_w{width}",
        suite,
        f"{width}-bit saturating counter",
        f"Implement a {width}-bit saturating counter. When `en` is 1 it increments on each clock edge but stops (saturates) at {maximum}; `full` is asserted when the counter holds {maximum}. Synchronous reset clears it to 0.",
        [IoPort("en", 1)],
        [IoPort("count", width), IoPort("full", 1)],
        golden,
        [TextFault("func_wraps", "counter wraps instead of saturating",
                   f"io.en && reg < {maximum}.U", "io.en")],
        bias={"en": 0.85},
    )


def shift_register(width: int, depth: int, suite: str) -> Problem:
    golden = _HEADER + f"""class TopModule extends Module {{
  val io = IO(new Bundle {{
    val in = Input(UInt({width}.W))
    val en = Input(Bool())
    val out = Output(UInt({width}.W))
  }})
  val stages = Reg(Vec({depth}, UInt({width}.W)))
  when (io.en) {{
    stages(0) := io.in
    for (i <- 1 until {depth}) {{
      stages(i) := stages(i - 1)
    }}
  }}
  io.out := stages({depth - 1})
}}
"""
    return _seq_problem(
        f"shift_register_w{width}_d{depth}",
        suite,
        f"{depth}-stage, {width}-bit shift register",
        f"Implement a {depth}-stage shift register of {width}-bit words with enable. When `en` is 1, on each rising edge the input enters stage 0 and every stage shifts to the next; the output is the last stage (a delay of {depth} cycles).",
        [IoPort("in", width), IoPort("en", 1)],
        [IoPort("out", width)],
        golden,
        [TextFault("func_short_delay", "output taken one stage too early",
                   f"io.out := stages({depth - 1})", f"io.out := stages({depth - 2})")],
        bias={"en": 0.9},
    )


def serial_to_parallel(width: int, suite: str) -> Problem:
    golden = _HEADER + f"""class TopModule extends Module {{
  val io = IO(new Bundle {{
    val bitIn = Input(Bool())
    val shift = Input(Bool())
    val data = Output(UInt({width}.W))
  }})
  val reg = RegInit(0.U({width}.W))
  when (io.shift) {{
    reg := Cat(reg({width - 2}, 0), io.bitIn.asUInt)
  }}
  io.data := reg
}}
"""
    return _seq_problem(
        f"sipo_w{width}",
        suite,
        f"{width}-bit serial-in parallel-out register",
        f"Implement a {width}-bit serial-in parallel-out shift register. When `shift` is 1, on each rising edge the register shifts left by one and the new least-significant bit is `bitIn`. The full register contents appear on `data`.",
        [IoPort("bitIn", 1), IoPort("shift", 1)],
        [IoPort("data", width)],
        golden,
        [TextFault("func_shift_right", "shifts right instead of left",
                   f"Cat(reg({width - 2}, 0), io.bitIn.asUInt)",
                   f"Cat(io.bitIn.asUInt, reg({width - 1}, 1))")],
        bias={"shift": 0.85},
    )


def edge_detector(suite: str, falling: bool = False) -> Problem:
    kind = "falling" if falling else "rising"
    expr = "!io.in && last" if falling else "io.in && !last"
    wrong = "io.in && last"
    golden = _HEADER + f"""class TopModule extends Module {{
  val io = IO(new Bundle {{
    val in = Input(Bool())
    val pulse = Output(Bool())
  }})
  val last = RegNext(io.in, false.B)
  io.pulse := {expr}
}}
"""
    return _seq_problem(
        f"edge_detector_{kind}",
        suite,
        f"{kind.capitalize()}-edge detector",
        f"Detect {kind} edges of a 1-bit input. `pulse` is asserted for exactly one cycle whenever `in` transitions from {'1 to 0' if falling else '0 to 1'} between consecutive clock cycles.",
        [IoPort("in", 1)],
        [IoPort("pulse", 1)],
        golden,
        [TextFault("func_level_not_edge", "detects level instead of edge", expr, wrong)],
    )


def toggle_ff(suite: str) -> Problem:
    golden = _HEADER + """class TopModule extends Module {
  val io = IO(new Bundle {
    val t = Input(Bool())
    val q = Output(Bool())
  })
  val state = RegInit(false.B)
  when (io.t) {
    state := !state
  }
  io.q := state
}
"""
    return _seq_problem(
        "toggle_ff",
        suite,
        "Toggle flip-flop",
        "Implement a T flip-flop: when `t` is 1 the output toggles on the rising clock edge, otherwise it holds. Synchronous reset clears it to 0.",
        [IoPort("t", 1)],
        [IoPort("q", 1)],
        golden,
        [TextFault("func_always_toggle", "toggles every cycle regardless of t",
                   "when (io.t) {\n    state := !state\n  }", "state := !state")],
        bias={"t": 0.6},
    )


def accumulator(width: int, suite: str) -> Problem:
    golden = _HEADER + f"""class TopModule extends Module {{
  val io = IO(new Bundle {{
    val in = Input(UInt({width}.W))
    val valid = Input(Bool())
    val sum = Output(UInt({width + 4}.W))
  }})
  val acc = RegInit(0.U({width + 4}.W))
  when (io.valid) {{
    acc := acc + io.in
  }}
  io.sum := acc
}}
"""
    return _seq_problem(
        f"accumulator_w{width}",
        suite,
        f"{width}-bit input accumulator",
        f"Accumulate a stream of {width}-bit values into a {width + 4}-bit running sum. When `valid` is 1 the input is added to the sum on the rising clock edge; the sum wraps modulo 2^{width + 4}. Synchronous reset clears the sum.",
        [IoPort("in", width), IoPort("valid", 1)],
        [IoPort("sum", width + 4)],
        golden,
        [TextFault("func_overwrite", "accumulator overwritten instead of added",
                   "acc := acc + io.in", "acc := io.in")],
        bias={"valid": 0.75},
    )


def delay_line(width: int, depth: int, suite: str) -> Problem:
    stages = "\n".join(
        f"  val stage{i} = RegInit(0.U({width}.W))" for i in range(depth)
    )
    connects = ["  stage0 := io.in"]
    for i in range(1, depth):
        connects.append(f"  stage{i} := stage{i - 1}")
    golden = _HEADER + f"""class TopModule extends Module {{
  val io = IO(new Bundle {{
    val in = Input(UInt({width}.W))
    val out = Output(UInt({width}.W))
  }})
{stages}
{chr(10).join(connects)}
  io.out := stage{depth - 1}
}}
"""
    return _seq_problem(
        f"delay_line_w{width}_d{depth}",
        suite,
        f"{depth}-cycle delay line",
        f"Delay a {width}-bit input by exactly {depth} clock cycles using a register pipeline. Synchronous reset clears every stage.",
        [IoPort("in", width)],
        [IoPort("out", width)],
        golden,
        [TextFault("func_short_pipeline", "one pipeline stage bypassed",
                   f"io.out := stage{depth - 1}", f"io.out := stage{max(0, depth - 2)}")],
    )


def gray_counter(width: int, suite: str) -> Problem:
    golden = _HEADER + f"""class TopModule extends Module {{
  val io = IO(new Bundle {{
    val en = Input(Bool())
    val gray = Output(UInt({width}.W))
  }})
  val binary = RegInit(0.U({width}.W))
  when (io.en) {{
    binary := binary + 1.U
  }}
  io.gray := binary ^ (binary >> 1)
}}
"""
    return _seq_problem(
        f"gray_counter_w{width}",
        suite,
        f"{width}-bit Gray-code counter",
        f"Implement a {width}-bit Gray-code counter: an internal binary counter increments when `en` is 1 and the output is its Gray encoding (binary XOR binary >> 1). Synchronous reset clears the counter.",
        [IoPort("en", 1)],
        [IoPort("gray", width)],
        golden,
        [TextFault("func_binary_output", "outputs binary instead of Gray",
                   "binary ^ (binary >> 1)", "binary")],
        bias={"en": 0.8},
    )


def pulse_stretcher(cycles: int, suite: str) -> Problem:
    width = max(1, (cycles - 1).bit_length() + 1)
    golden = _HEADER + f"""class TopModule extends Module {{
  val io = IO(new Bundle {{
    val trigger = Input(Bool())
    val out = Output(Bool())
  }})
  val remaining = RegInit(0.U({width}.W))
  when (io.trigger) {{
    remaining := {cycles}.U
  }} .elsewhen (remaining > 0.U) {{
    remaining := remaining - 1.U
  }}
  io.out := remaining > 0.U
}}
"""
    return _seq_problem(
        f"pulse_stretcher_{cycles}",
        suite,
        f"{cycles}-cycle pulse stretcher",
        f"Stretch a single-cycle trigger pulse to {cycles} cycles: when `trigger` is seen, the output stays high for the next {cycles} clock cycles (re-triggering restarts the count). Synchronous reset clears the output.",
        [IoPort("trigger", 1)],
        [IoPort("out", 1)],
        golden,
        [TextFault("func_off_by_one", "stretches one cycle too few",
                   f"remaining := {cycles}.U", f"remaining := {cycles - 1}.U")],
        bias={"trigger": 0.25},
    )
