"""Generic syntax-fault injectors keyed to the paper's Table II error classes.

The synthetic LLM backend uses these to turn a golden Chisel solution into a
realistic faulty attempt: each injector performs a small, mechanical edit that
produces one of the catalogued compiler errors when the result is compiled by
:class:`repro.toolchain.ChiselCompiler`.  Injectors know which problems they
apply to (``applies``), so the backend can sample only feasible faults.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable

from repro.problems.base import Problem


@dataclass(frozen=True)
class SyntaxFault:
    """A generic, mechanically-injectable syntax fault."""

    fault_id: str
    error_class: str  # Table II class: A1..A3, B1..B7, C1..C2, PARSE
    description: str
    applies: Callable[[str, Problem], bool]
    apply: Callable[[str, Problem], str]


def _first_multibit_input(problem: Problem):
    for port in problem.inputs:
        if port.width > 1:
            return port
    return None


# ---------------------------------------------------------------------------
# Individual injectors
# ---------------------------------------------------------------------------

_VAL_DEF_RE = re.compile(r"val (\w{3,}) = (?:Reg|Wire|VecInit)")


def _misspell_applies(source: str, problem: Problem) -> bool:
    match = _VAL_DEF_RE.search(source)
    if match is None:
        return False
    name = match.group(1)
    return source.count(name) >= 2


def _misspell_apply(source: str, problem: Problem) -> str:
    match = _VAL_DEF_RE.search(source)
    assert match is not None
    name = match.group(1)
    misspelled = name[:-1] if len(name) > 3 else name + "x"
    definition_end = match.end()
    usage = source.find(name, definition_end)
    if usage < 0:
        return source
    return source[:usage] + misspelled + source[usage + len(name):]


def _cast_applies(source: str, problem: Problem) -> bool:
    return ".asUInt" in source or ".asSInt" in source or " === " in source


def _cast_apply(source: str, problem: Problem) -> str:
    if ".asUInt" in source:
        return source.replace(".asUInt", ".asInstanceOf[UInt]", 1)
    if ".asSInt" in source:
        return source.replace(".asSInt", ".asInstanceOf[SInt]", 1)
    return source.replace(" === ", " == ", 1)


def _width_arity_applies(source: str, problem: Problem) -> bool:
    return re.search(r"UInt\(\d+\.W\)", source) is not None


def _width_arity_apply(source: str, problem: Problem) -> str:
    return re.sub(r"UInt\((\d+)\.W\)", r"UInt(\1)", source, count=1)


def _abstract_reset_applies(source: str, problem: Problem) -> bool:
    return "new Bundle {" in source


def _abstract_reset_apply(source: str, problem: Problem) -> str:
    return source.replace(
        "new Bundle {", "new Bundle {\n    val rst = Input(Reset())", 1
    )


def _bare_type_applies(source: str, problem: Problem) -> bool:
    return "})" in source


def _bare_type_apply(source: str, problem: Problem) -> str:
    index = source.find("})")
    insertion = "})\n  val tempSignal = UInt(8.W)\n  tempSignal := 0.U"
    return source[:index] + insertion + source[index + 2:]


def _uninitialized_applies(source: str, problem: Problem) -> bool:
    return _last_output_connect(source) is not None


_OUTPUT_CONNECT_RE = re.compile(r"^  io\.(\w+) := (.+)$", re.MULTILINE)


def _last_output_connect(source: str):
    matches = list(_OUTPUT_CONNECT_RE.finditer(source))
    return matches[-1] if matches else None


def _uninitialized_apply(source: str, problem: Problem) -> str:
    match = _last_output_connect(source)
    assert match is not None
    replacement = (
        f"  when (reset) {{\n    io.{match.group(1)} := {match.group(2)}\n  }}"
    )
    return source[: match.start()] + replacement + source[match.end():]


def _bool_arith_applies(source: str, problem: Problem) -> bool:
    return _last_output_connect(source) is not None


def _bool_arith_apply(source: str, problem: Problem) -> str:
    match = _last_output_connect(source)
    assert match is not None
    replacement = f"  io.{match.group(1)} := ({match.group(2)}) + true.B"
    return source[: match.start()] + replacement + source[match.end():]


def _as_clock_applies(source: str, problem: Problem) -> bool:
    return "extends Module" in source


def _as_clock_apply(source: str, problem: Problem) -> str:
    index = source.rfind("}")
    insertion = "  val derivedClock = (reset.asUInt).asClock\n"
    return source[:index] + insertion + source[index:]


def _out_of_bounds_applies(source: str, problem: Problem) -> bool:
    return _first_multibit_input(problem) is not None and "})" in source


def _out_of_bounds_apply(source: str, problem: Problem) -> str:
    port = _first_multibit_input(problem)
    assert port is not None
    field = port.name[3:] if port.name.startswith("io_") else port.name
    index = source.find("})")
    insertion = "})\n  val topBit = io." + field + "(" + str(port.width) + ")"
    return source[:index] + insertion + source[index + 2:]


def _comb_loop_applies(source: str, problem: Problem) -> bool:
    return "extends Module" in source


def _comb_loop_apply(source: str, problem: Problem) -> str:
    index = source.rfind("}")
    insertion = (
        "  val loopSignal = Wire(UInt(4.W))\n"
        "  loopSignal := loopSignal + 1.U\n"
    )
    return source[:index] + insertion + source[index:]


def _unbalanced_applies(source: str, problem: Problem) -> bool:
    return source.rstrip().endswith("}")


def _unbalanced_apply(source: str, problem: Problem) -> str:
    stripped = source.rstrip()
    return stripped[:-1] + "\n"


SYNTAX_FAULTS: list[SyntaxFault] = [
    SyntaxFault(
        "A1_misspelled_identifier",
        "A1",
        "a defined signal name is misspelled at one use site",
        _misspell_applies,
        _misspell_apply,
    ),
    SyntaxFault(
        "A2_scala_cast",
        "A2",
        "Scala asInstanceOf (or ==) used instead of the Chisel conversion/operator",
        _cast_applies,
        _cast_apply,
    ),
    SyntaxFault(
        "A3_width_without_W",
        "A3",
        "UInt width given as a plain Int instead of n.W",
        _width_arity_applies,
        _width_arity_apply,
    ),
    SyntaxFault(
        "B1_abstract_reset_port",
        "B1",
        "an extra port is declared with the abstract Reset() type",
        _abstract_reset_applies,
        _abstract_reset_apply,
    ),
    SyntaxFault(
        "B2_bare_type_signal",
        "B2",
        "a signal is declared as a bare Chisel type without Wire()/IO()",
        _bare_type_applies,
        _bare_type_apply,
    ),
    SyntaxFault(
        "B3_partial_initialization",
        "B3",
        "an output is only driven inside a when branch",
        _uninitialized_applies,
        _uninitialized_apply,
    ),
    SyntaxFault(
        "B5_bool_arithmetic",
        "B5",
        "arithmetic applied to a Bool operand without asUInt",
        _bool_arith_applies,
        _bool_arith_apply,
    ),
    SyntaxFault(
        "B6_asclock_on_uint",
        "B6",
        "asClock called on a UInt value",
        _as_clock_applies,
        _as_clock_apply,
    ),
    SyntaxFault(
        "B7_index_out_of_bounds",
        "B7",
        "a bit index equal to the signal width (out of bounds)",
        _out_of_bounds_applies,
        _out_of_bounds_apply,
    ),
    SyntaxFault(
        "C2_combinational_loop",
        "C2",
        "a wire combinationally depends on itself",
        _comb_loop_applies,
        _comb_loop_apply,
    ),
    SyntaxFault(
        "PARSE_unbalanced_brace",
        "PARSE",
        "the final closing brace is missing",
        _unbalanced_applies,
        _unbalanced_apply,
    ),
]

SYNTAX_FAULTS_BY_ID = {fault.fault_id: fault for fault in SYNTAX_FAULTS}


def applicable_syntax_faults(source: str, problem: Problem) -> list[SyntaxFault]:
    """All generic syntax faults that can be injected into ``source``."""
    return [fault for fault in SYNTAX_FAULTS if fault.applies(source, problem)]
