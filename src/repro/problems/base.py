"""Core data types for benchmark problems."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from repro.sim.testbench import Testbench

SUITE_VERILOGEVAL = "verilogeval_s2r"
SUITE_HDLBITS = "hdlbits"
SUITE_RTLLM = "rtllm"
SUITE_MEMORY = "memory"  # extension suite beyond the paper's 216 cases

SUITES = (SUITE_VERILOGEVAL, SUITE_HDLBITS, SUITE_RTLLM)
EXTENDED_SUITES = SUITES + (SUITE_MEMORY,)


@dataclass(frozen=True)
class IoPort:
    """One port in the problem's I/O contract.

    ``name`` is the logical field name used in the specification text
    (``a``, ``out``); the flattened Verilog-level port is ``io_<name>``
    (``verilog_name``) because the Chisel IO bundle is flattened by the
    toolchain.  Clock and reset are implicit and not listed here.
    """

    name: str
    width: int = 1

    @property
    def verilog_name(self) -> str:
        return f"io_{self.name}"


@dataclass(frozen=True)
class TextFault:
    """A problem-specific functional fault: a literal text substitution.

    Applying the fault replaces the first occurrence of ``old`` with ``new``
    in the golden Chisel source; the result still compiles but fails some
    functional points.  ``fault_id`` is stable so the synthetic LLM can track
    which faults remain in a revision.
    """

    fault_id: str
    description: str
    old: str
    new: str

    def apply(self, source: str) -> str:
        if self.old not in source:
            raise ValueError(
                f"fault {self.fault_id!r} does not apply: pattern {self.old!r} not found"
            )
        return source.replace(self.old, self.new, 1)

    def applies_to(self, source: str) -> bool:
        return self.old in source


@dataclass
class Problem:
    """One module-level benchmark case."""

    problem_id: str
    suite: str
    name: str
    description: str
    inputs: list[IoPort]
    outputs: list[IoPort]
    golden_chisel: str
    testbench_builder: Callable[[random.Random], Testbench]
    sequential: bool = False
    functional_faults: list[TextFault] = field(default_factory=list)
    tags: list[str] = field(default_factory=list)

    def build_testbench(self, seed: int = 0) -> Testbench:
        """Build the stimulus program for this problem (deterministic per seed)."""
        return self.testbench_builder(random.Random(seed))

    def spec_text(self) -> str:
        """The specification handed to the Generator: description + I/O table."""
        lines = [self.description.strip(), "", "Module name: TopModule", "Ports:"]
        for port in self.inputs:
            width = f"[{port.width - 1}:0] " if port.width > 1 else ""
            lines.append(f"  - input  {width}{port.name}")
        for port in self.outputs:
            width = f"[{port.width - 1}:0] " if port.width > 1 else ""
            lines.append(f"  - output {width}{port.name}")
        if self.sequential:
            lines.append(
                "The design is synchronous to the positive edge of `clock` and uses a "
                "synchronous active-high `reset`."
            )
        return "\n".join(lines)

    def port_names(self) -> list[str]:
        return [p.name for p in self.inputs] + [p.name for p in self.outputs]
