"""Benchmark problem suites.

The paper evaluates on 216 module-level cases filtered from VerilogEval's
Spec-to-RTL, AutoChip's HDLBits and RTLLM.  Those datasets cannot be
redistributed here, so this package provides three synthetic suites with the
same shape — module-level specifications with an I/O contract, a golden Chisel
solution, a golden Verilog reference (compiled from the golden Chisel through
this repo's own toolchain) and a stimulus generator — organised into
parameterised families (combinational, sequential, FSM and arithmetic
designs) that expand to exactly 216 valid cases.

Each problem also carries *fault* definitions used by the synthetic LLM
backend: functional faults are small semantic-preserving-to-compile text
substitutions specific to the problem, while syntax faults are generic
Table II injections provided by :mod:`repro.problems.mutations`.
"""

from repro.problems.base import IoPort, Problem, TextFault
from repro.problems.registry import (
    ProblemRegistry,
    build_default_registry,
    build_extended_registry,
    build_memory_family,
)

__all__ = [
    "IoPort",
    "Problem",
    "TextFault",
    "ProblemRegistry",
    "build_default_registry",
    "build_extended_registry",
    "build_memory_family",
]
