"""Common-error knowledge base (the paper's Table II).

Each entry records one recurring class of LLM-generated Chisel error: a short
description, an incorrect and a corrected snippet, and the compiler feedback
it produces.  The Reviewer injects the entries relevant to the current
feedback into its prompt (in-context learning, §IV-B); the Table II experiment
runner compiles each incorrect snippet through the toolchain to regenerate the
feedback column.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class KnowledgeEntry:
    """One Table II row."""

    code: str
    category: str
    description: str
    incorrect: str
    corrected: str
    feedback: str
    guidance: str


_MODULE_TEMPLATE = """import chisel3._
import chisel3.util._

class TopModule extends Module {{
  val io = IO(new Bundle {{
    val in = Input(UInt(4.W))
    val out = Output(UInt(4.W))
  }})
{body}
}}
"""


def wrap_snippet(body: str) -> str:
    """Embed a Table II snippet into a minimal compilable module skeleton."""
    indented = "\n".join("  " + line if line.strip() else line for line in body.splitlines())
    return _MODULE_TEMPLATE.format(body=indented)


KNOWLEDGE_BASE: list[KnowledgeEntry] = [
    KnowledgeEntry(
        code="A1",
        category="Structural",
        description="Misspelling, unmatched parentheses, or reference to an undefined value.",
        incorrect="val signal = Wire(UInt(4.W))\nsgnal := 0.U\nio.out := signal",
        corrected="val signal = Wire(UInt(4.W))\nsignal := 0.U\nio.out := signal",
        feedback="not found: value sgnal. Did you mean signal?",
        guidance="Check every identifier against its definition; Chisel names are ordinary Scala vals.",
    ),
    KnowledgeEntry(
        code="A2",
        category="Structural",
        description="Mixed usage of Chisel and Scala syntax (asInstanceOf, == on hardware).",
        incorrect="io.out := io.in.asInstanceOf[SInt].asUInt",
        corrected="io.out := io.in.asSInt.asUInt",
        feedback="class chisel3.UInt cannot be cast to class chisel3.SInt",
        guidance="Use Chisel conversion methods (.asUInt/.asSInt/.asBool) instead of Scala casts, and === instead of ==.",
    ),
    KnowledgeEntry(
        code="A3",
        category="Structural",
        description="Incorrect invocation of functions or methods (wrong arity or argument types).",
        incorrect="val r = Seq.fill(5)(0.U)\nio.out := r(0, 2)",
        corrected="val r = Seq.fill(5)(0.U)\nio.out := r(2)",
        feedback="Too many arguments. Found 2, expected 1 for method apply: (i: Int)",
        guidance="Check the arity and argument types of each call; Seq.apply takes a single Int index.",
    ),
    KnowledgeEntry(
        code="B1",
        category="Signal definition, usage and typing",
        description="Incorrect definition of clock or reset signals using the abstract Reset type.",
        incorrect="val rst = IO(Input(Reset()))\nio.out := io.in",
        corrected="val rst = IO(Input(Bool()))\nio.out := io.in",
        feedback="A port rst with abstract reset type was unable to be inferred by InferResets",
        guidance="Declare explicit resets as Input(Bool()) or Input(AsyncReset()), not the abstract Reset().",
    ),
    KnowledgeEntry(
        code="B2",
        category="Signal definition, usage and typing",
        description="Failure to encapsulate signals within IO()/Wire(): using a bare Chisel type as hardware.",
        incorrect="val temp = UInt(4.W)\ntemp := io.in\nio.out := temp",
        corrected="val temp = Wire(UInt(4.W))\ntemp := io.in\nio.out := temp",
        feedback="must be hardware, not a bare Chisel type. Perhaps you forgot to wrap it in Wire(_) or IO(_)?",
        guidance="A type like UInt(4.W) only describes hardware; wrap it in Wire(), Reg() or IO() to create a signal.",
    ),
    KnowledgeEntry(
        code="B3",
        category="Signal definition, usage and typing",
        description="Wire or output signal not (fully) initialized on every path.",
        incorrect="val w = Wire(Bool())\nwhen (io.in(0)) { w := false.B }\nio.out := w.asUInt",
        corrected="val w = WireDefault(false.B)\nwhen (io.in(0)) { w := false.B }\nio.out := w.asUInt",
        feedback="Reference w is not fully initialized",
        guidance="Give conditionally-driven wires a default with WireDefault (or drive them in an .otherwise branch) — Chisel's switch has no default case.",
    ),
    KnowledgeEntry(
        code="B4",
        category="Signal definition, usage and typing",
        description="Bundle connection mismatch: connecting records with different fields.",
        incorrect="// a := b where a and b are Bundles with different fields",
        corrected="// connect matching fields individually, or make both sides the same Bundle class",
        feedback="Connection between sink (Bundle) and source (Bundle) failed: source Record missing field",
        guidance="Bulk connections require both bundles to share field names and types; otherwise connect field by field.",
    ),
    KnowledgeEntry(
        code="B5",
        category="Signal definition, usage and typing",
        description="Signal type mismatch, e.g. arithmetic on Bool or driving a Bool condition with a UInt.",
        incorrect="val oks = VecInit(io.in(0), io.in(1))\nio.out := oks.reduce(_ +& _)",
        corrected="val oks = VecInit(io.in(0), io.in(1))\nio.out := oks.map(_.asUInt).reduce(_ +& _)",
        feedback="type mismatch;\n found   : chisel3.Bool\n required: chisel3.UInt",
        guidance="Convert Bool values with .asUInt before arithmetic, and make sure when()/Mux() conditions are Bool.",
    ),
    KnowledgeEntry(
        code="B6",
        category="Signal definition, usage and typing",
        description="Unsupported signal type conversion or casting (e.g. asClock on a UInt).",
        incorrect="val invertedClk = (~clock.asUInt).asClock\nio.out := io.in",
        corrected="val invertedClk = (!clock.asUInt.asBool).asClock\nio.out := io.in",
        feedback="value asClock is not a member of chisel3.UInt",
        guidance="asClock is only defined on Bool; convert through .asBool first.",
    ),
    KnowledgeEntry(
        code="B7",
        category="Signal definition, usage and typing",
        description="Out-of-bounds access on an array-type (Vec) or bit-indexed signal.",
        incorrect="val vector = Wire(Vec(4, UInt(4.W)))\nfor (i <- 0 until 4) { vector(i) := i.U }\nio.out := vector(4)",
        corrected="val vector = Wire(Vec(4, UInt(4.W)))\nfor (i <- 0 until 4) { vector(i) := i.U }\nio.out := vector(3)",
        feedback="4 is out of bounds (min 0, max 3)",
        guidance="Static indices must lie in [0, size-1]; remember Vec and bit indices are zero-based.",
    ),
    KnowledgeEntry(
        code="C1",
        category="Miscellaneous",
        description="Missing implicit clock when registers are used outside a clock domain (multi-clock designs).",
        incorrect="// val out = RegNext(in)  (inside a RawModule, outside withClock)",
        corrected="// val out = withClock(clk) { RegNext(in) }",
        feedback="No implicit clock",
        guidance="Inside RawModule (or for extra clock domains) wrap register definitions in withClock(...) { ... }.",
    ),
    KnowledgeEntry(
        code="C2",
        category="Miscellaneous",
        description="Combinational loop: a wire combinationally depends on itself.",
        incorrect="val a = Wire(UInt(4.W))\na := a + 1.U\nio.out := a",
        corrected="val a = RegInit(0.U(4.W))\na := a + 1.U\nio.out := a",
        feedback="Detected combinational cycle in a FIRRTL module",
        guidance="Break feedback paths with a register; combinational signals must form an acyclic graph.",
    ),
]

KNOWLEDGE_BY_CODE = {entry.code: entry for entry in KNOWLEDGE_BASE}


def knowledge_for_codes(codes: list[str] | set[str]) -> list[KnowledgeEntry]:
    """Entries relevant to the given diagnostic codes (falls back to all entries)."""
    selected = [KNOWLEDGE_BY_CODE[c] for c in sorted(set(codes)) if c in KNOWLEDGE_BY_CODE]
    return selected if selected else list(KNOWLEDGE_BASE)


def render_knowledge(entries: list[KnowledgeEntry]) -> str:
    """Render entries as the in-context learning block for the Reviewer prompt."""
    lines: list[str] = []
    for entry in entries:
        lines.append(f"[{entry.code}] {entry.description}")
        lines.append(f"  Typical compiler feedback: {entry.feedback.splitlines()[0]}")
        lines.append(f"  Fix guidance: {entry.guidance}")
    return "\n".join(lines)
