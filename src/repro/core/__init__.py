"""ReChisel core: the paper's primary contribution.

The workflow (Fig. 2) wires three LLM agents — :class:`Generator`,
:class::class:`Reviewer` and :class:`Inspector` — around the two external tools
(:mod:`repro.toolchain`): generate Chisel, compile it to Verilog, simulate it
against the reference, and on failure reflect on the structured feedback until
the code passes or the iteration cap is reached.  The Inspector maintains the
trace and runs the escape mechanism that breaks non-progress loops (§IV-C).
"""

from repro.core.feedback import Feedback, FeedbackKind
from repro.core.generator import Generator
from repro.core.inspector import Inspector
from repro.core.knowledge import KNOWLEDGE_BASE, KnowledgeEntry, knowledge_for_codes
from repro.core.rechisel import IterationRecord, ReChisel, ReChiselResult
from repro.core.reviewer import Reviewer, RevisionPlan
from repro.core.trace import Trace, TraceEntry

__all__ = [
    "Feedback",
    "FeedbackKind",
    "Generator",
    "Reviewer",
    "RevisionPlan",
    "Inspector",
    "Trace",
    "TraceEntry",
    "KnowledgeEntry",
    "KNOWLEDGE_BASE",
    "knowledge_for_codes",
    "ReChisel",
    "ReChiselResult",
    "IterationRecord",
]
