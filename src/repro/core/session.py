"""Step-wise session protocol for the agentic workflows.

Every workflow (ReChisel, zero-shot, AutoChip) is written as a Python
generator that *yields* at its blocking boundaries instead of calling the
blocking facilities directly:

* :class:`LLMCall` — the session needs a chat completion for ``messages``;
* :class:`ToolCall` — the session needs the result of a pure, CPU-bound
  toolchain step (compile, parse, simulate) wrapped in a zero-argument
  callable.

The driver answers each step by sending the result back into the generator
(``generator.send(value)``); the generator's return value is the workflow
result.  This inversion is what lets one event loop interleave hundreds of
sessions: the async service answers :class:`LLMCall` steps through the
batching dispatcher and offloads :class:`ToolCall` steps to a bounded
executor, while the classic blocking entry points (``ReChisel.run`` and
friends) answer them inline via :func:`drive` — same generator, same step
sequence, bit-identical results.

Sessions are resumable by construction: a generator suspended at a step
carries its full loop state (trace, current code, iteration counter), so the
driver may hold it suspended for as long as scheduling requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator, Union

from repro.llm.client import ChatClient, ChatMessage


@dataclass(frozen=True)
class LLMCall:
    """The session is suspended on a chat completion for ``messages``.

    ``purpose`` labels the agent role behind the call ("generate", "revise",
    "review", "loop_check") for telemetry; it never affects execution.
    """

    messages: list[ChatMessage]
    purpose: str = "generate"


@dataclass(frozen=True)
class ToolCall:
    """The session is suspended on a pure toolchain computation.

    ``fn`` must be a zero-argument callable free of side effects beyond
    cache warming, so it can run inline, in a thread, or be retried without
    changing the session's result.  ``purpose`` labels the tool ("compile",
    "simulate", "parse", "reference") for telemetry.

    ``batch`` optionally carries a declarative, batchable form of the same
    computation (e.g. a :class:`repro.toolchain.simulator.SimulateRequest`).
    Drivers that coalesce work from many sessions execute batches together;
    everyone else ignores it and calls ``run()``.  When ``batch`` is set, its
    ``run()`` must produce the same result as ``fn()``.
    """

    fn: Callable[[], object]
    purpose: str = "compile"
    batch: object | None = None

    def run(self) -> object:
        return self.fn()


SessionStep = Union[LLMCall, ToolCall]

#: A workflow session: yields steps, receives their results, returns the
#: workflow's result object via ``StopIteration.value``.
Session = Generator[SessionStep, object, object]


def drive(session: Session, client: ChatClient) -> object:
    """Run a session to completion synchronously.

    Answers :class:`LLMCall` steps with ``client.complete`` and
    :class:`ToolCall` steps by invoking them inline.  This is the classic
    blocking execution mode; the async service implements the same protocol
    with awaits in place of direct calls.
    """
    try:
        step = next(session)
        while True:
            if isinstance(step, LLMCall):
                value = client.complete(step.messages)
            else:
                value = step.run()
            step = session.send(value)
    except StopIteration as stop:
        return stop.value


@dataclass
class StepCounts:
    """Per-kind step tally, filled by :func:`counting` (used by telemetry)."""

    llm_calls: int = 0
    tool_calls: int = 0
    by_purpose: dict[str, int] = field(default_factory=dict)

    def record(self, step: SessionStep) -> None:
        if isinstance(step, LLMCall):
            self.llm_calls += 1
        else:
            self.tool_calls += 1
        self.by_purpose[step.purpose] = self.by_purpose.get(step.purpose, 0) + 1


def counting(session: Session, counts: StepCounts) -> Session:
    """Wrap a session, tallying every step it yields into ``counts``."""
    try:
        step = next(session)
        while True:
            counts.record(step)
            value = yield step
            step = session.send(value)
    except StopIteration as stop:
        return stop.value
