"""The Generator agent (Fig. 2, steps 1 and 7)."""

from __future__ import annotations

from repro.llm import prompts
from repro.llm.client import ChatClient


class Generator:
    """Produces Chisel (or Verilog) code from a specification and revision plans."""

    def __init__(self, client: ChatClient, language: str = "chisel"):
        self.client = client
        self.language = language

    def generate(self, spec: str, case_id: str | None = None) -> str:
        """Initial code generation from the specification alone."""
        messages = prompts.generation_prompt(spec, case_id, self.language)
        response = self.client.complete(messages)
        return prompts.extract_code_block(response)

    def revise(
        self,
        spec: str,
        previous_code: str,
        revision_plan: str,
        case_id: str | None = None,
        escaped: bool = False,
    ) -> str:
        """Apply a revision plan to the previous code (one reflection iteration)."""
        messages = prompts.revision_prompt(
            spec, case_id, previous_code, revision_plan, self.language, escaped
        )
        response = self.client.complete(messages)
        return prompts.extract_code_block(response)
