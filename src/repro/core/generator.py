"""The Generator agent (Fig. 2, steps 1 and 7)."""

from __future__ import annotations

from repro.llm import prompts
from repro.llm.client import ChatClient, ChatMessage


class Generator:
    """Produces Chisel (or Verilog) code from a specification and revision plans.

    The prompt-building and response-parsing halves are exposed separately
    (``generation_messages``/``revision_messages`` + ``parse``) so the
    step-wise sessions in :mod:`repro.core.session` can yield the exact same
    prompts this agent would send; ``generate``/``revise`` remain the
    blocking composition of the two.
    """

    def __init__(self, client: ChatClient | None, language: str = "chisel"):
        self.client = client
        self.language = language

    # ----------------------------------------------------------- prompt halves

    def generation_messages(self, spec: str, case_id: str | None = None) -> list[ChatMessage]:
        return prompts.generation_prompt(spec, case_id, self.language)

    def revision_messages(
        self,
        spec: str,
        previous_code: str,
        revision_plan: str,
        case_id: str | None = None,
        escaped: bool = False,
    ) -> list[ChatMessage]:
        return prompts.revision_prompt(
            spec, case_id, previous_code, revision_plan, self.language, escaped
        )

    @staticmethod
    def parse(response: str) -> str:
        return prompts.extract_code_block(response)

    # ------------------------------------------------------- blocking entry

    def generate(self, spec: str, case_id: str | None = None) -> str:
        """Initial code generation from the specification alone."""
        response = self.client.complete(self.generation_messages(spec, case_id))
        return self.parse(response)

    def revise(
        self,
        spec: str,
        previous_code: str,
        revision_plan: str,
        case_id: str | None = None,
        escaped: bool = False,
    ) -> str:
        """Apply a revision plan to the previous code (one reflection iteration)."""
        response = self.client.complete(
            self.revision_messages(spec, previous_code, revision_plan, case_id, escaped)
        )
        return self.parse(response)
