"""The reflection trace maintained by the Inspector (Fig. 2, steps 4-5)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.feedback import Feedback


@dataclass
class TraceEntry:
    """One reflection iteration: the code tried, the feedback it received."""

    iteration: int
    code: str
    feedback: Feedback
    revision_plan: str | None = None

    def summary_line(self) -> str:
        kinds = {
            "success": "passed",
            "syntax": "compile error",
            "functional": "simulation mismatch",
        }
        detail = ""
        if self.feedback.signatures:
            detail = ": " + "; ".join(s.render() for s in self.feedback.signatures[:3])
        return f"iteration {self.iteration}: {kinds[self.feedback.kind.value]}{detail}"


@dataclass
class Trace:
    """The full history of reflection iterations for one case."""

    entries: list[TraceEntry] = field(default_factory=list)
    discarded: list[TraceEntry] = field(default_factory=list)
    escapes: int = 0

    def append(self, entry: TraceEntry) -> None:
        self.entries.append(entry)

    def last(self) -> TraceEntry | None:
        return self.entries[-1] if self.entries else None

    def discard_from(self, index: int) -> list[TraceEntry]:
        """Drop (and remember) every entry from ``index`` onwards — the escape step."""
        dropped = self.entries[index:]
        self.discarded.extend(dropped)
        self.entries = self.entries[:index]
        self.escapes += 1
        return dropped

    def summary(self, limit: int = 8) -> str:
        """A compact textual summary for the Reviewer prompt."""
        if not self.entries:
            return "(no previous iterations)"
        lines = [entry.summary_line() for entry in self.entries[-limit:]]
        if len(self.entries) > limit:
            lines.insert(0, f"... {len(self.entries) - limit} earlier iterations omitted ...")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.entries)
