"""The ReChisel workflow (Fig. 2).

One :meth:`ReChisel.run` call executes the full agentic loop for a single
specification: Generator → Compiler → Simulator → (on failure) Inspector →
Reviewer → Generator …, up to ``max_iterations`` reflection iterations.  The
result records the outcome of every iteration so the experiment harness can
derive success-vs-iteration curves (Fig. 6) and error-mix statistics (Fig. 7)
from a single run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.feedback import (
    Feedback,
    FeedbackKind,
    feedback_from_compile,
    feedback_from_simulation,
    success_feedback,
)
from repro.core.generator import Generator
from repro.core.inspector import Inspector
from repro.core.reviewer import Reviewer
from repro.core.session import LLMCall, Session, ToolCall, drive
from repro.core.trace import Trace
from repro.llm.client import ChatClient
from repro.sim.testbench import DeviceUnderTest, Testbench
from repro.toolchain.compiler import ChiselCompiler
from repro.toolchain.simulator import SimulateRequest, Simulator
from repro.verilog.vast import VModule


@dataclass
class IterationRecord:
    """Outcome of one attempt (iteration 0 is the initial zero-shot attempt)."""

    iteration: int
    outcome: str  # "success", "syntax" or "functional"
    escaped: bool = False


@dataclass
class ReChiselResult:
    """Everything the experiments need about one workflow run."""

    success: bool
    success_iteration: int | None
    records: list[IterationRecord] = field(default_factory=list)
    final_code: str | None = None
    final_verilog: str | None = None
    trace: Trace = field(default_factory=Trace)
    escapes: int = 0

    def success_by(self, iteration_cap: int) -> bool:
        """Whether the case had succeeded with at most ``iteration_cap`` reflections."""
        return self.success_iteration is not None and self.success_iteration <= iteration_cap

    def outcome_at(self, iteration: int) -> str:
        """The outcome after ``iteration`` reflections (holds the last known state)."""
        if self.success_iteration is not None and iteration >= self.success_iteration:
            return "success"
        for record in reversed(self.records):
            if record.iteration <= iteration:
                return record.outcome
        return self.records[0].outcome if self.records else "syntax"

    def to_payload(self) -> dict:
        """Compact JSON-serializable form for the sweep result store.

        Carries exactly what the experiment aggregations consume (outcomes,
        iteration counts, escapes) — not the trace or code text, which would
        dominate the store for no analytical benefit.
        """
        return {
            "success": self.success,
            "success_iteration": self.success_iteration,
            "records": [[r.iteration, r.outcome, r.escaped] for r in self.records],
            "escapes": self.escapes,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ReChiselResult":
        """Rehydrate a stored result (``trace``/``final_code`` are not restored)."""
        result = cls(
            success=bool(payload["success"]),
            success_iteration=payload["success_iteration"],
            escapes=int(payload.get("escapes", 0)),
        )
        result.records = [
            IterationRecord(int(iteration), str(outcome), bool(escaped))
            for iteration, outcome, escaped in payload["records"]
        ]
        return result


class ReChisel:
    """LLM-based agentic Chisel generation with reflection and escape.

    The loop itself lives in :meth:`session`, a step-wise generator that
    yields at every LLM-call and toolchain boundary (see
    :mod:`repro.core.session`).  :meth:`run` is the classic blocking entry
    point: it drives the session inline against ``self.client`` and is
    bit-identical to driving the same session through the async generation
    service.  ``client`` may be ``None`` for session-only use (the driver
    supplies completions).
    """

    def __init__(
        self,
        client: ChatClient | None,
        max_iterations: int = 10,
        enable_escape: bool = True,
        use_knowledge: bool = True,
        feedback_detail: str = "full",
        compiler: ChiselCompiler | None = None,
        simulator: Simulator | None = None,
    ):
        self.client = client
        self.max_iterations = max_iterations
        self.feedback_detail = feedback_detail
        self.compiler = compiler or ChiselCompiler(top="TopModule")
        self.simulator = simulator or Simulator(top="TopModule")
        self.generator = Generator(client, language="chisel")
        self.reviewer = Reviewer(client, language="chisel", use_knowledge=use_knowledge)
        self.inspector = Inspector(client, enable_escape=enable_escape)

    # -------------------------------------------------------------------- run

    def run(
        self,
        spec: str,
        testbench: Testbench,
        reference: VModule | str | DeviceUnderTest,
        case_id: str | None = None,
    ) -> ReChiselResult:
        return drive(self.session(spec, testbench, reference, case_id), self.client)

    # ---------------------------------------------------------------- session

    def session(
        self,
        spec: str,
        testbench: Testbench,
        reference: VModule | str | DeviceUnderTest,
        case_id: str | None = None,
    ) -> Session:
        """The full agentic loop as a step-wise generator.

        Yields :class:`~repro.core.session.LLMCall` /
        :class:`~repro.core.session.ToolCall` steps, receives their results,
        and returns the :class:`ReChiselResult`.  The step sequence is exactly
        the call sequence of the historical blocking loop, so any driver that
        answers steps faithfully reproduces it bit-for-bit.
        """
        trace = Trace()
        result = ReChiselResult(success=False, success_iteration=None, trace=trace)

        response = yield LLMCall(self.generator.generation_messages(spec, case_id), "generate")
        code = self.generator.parse(response)
        feedback, verilog = yield from self._evaluate_steps(code, testbench, reference)
        self.inspector.record(trace, 0, code, feedback)
        result.records.append(IterationRecord(0, feedback.kind.value))
        result.final_code, result.final_verilog = code, verilog

        if feedback.is_success:
            result.success = True
            result.success_iteration = 0
            return result

        for iteration in range(1, self.max_iterations + 1):
            # The loop check is structural: matching signatures render
            # identically, so the Inspector's optional LLM confirmation path
            # never fires here and the call cannot block on a completion.
            detection = self.inspector.check_for_loop(trace, feedback)
            escaped = False
            if detection.detected:
                escaped = self.inspector.escape(trace, detection)
                restart = trace.last()
                if restart is not None:
                    code, feedback = restart.code, restart.feedback

            plan_messages = self.reviewer.review_messages(
                spec, code, self._trim(feedback), trace, case_id, escaped=escaped
            )
            plan_text = yield LLMCall(plan_messages, "review")
            plan = self.reviewer.parse(plan_text, escaped=escaped)
            if trace.last() is not None:
                trace.last().revision_plan = plan.text

            response = yield LLMCall(
                self.generator.revision_messages(spec, code, plan.text, case_id, escaped), "revise"
            )
            code = self.generator.parse(response)
            feedback, verilog = yield from self._evaluate_steps(code, testbench, reference)
            self.inspector.record(trace, iteration, code, feedback)
            result.records.append(IterationRecord(iteration, feedback.kind.value, escaped))
            result.final_code, result.final_verilog = code, verilog

            if feedback.is_success:
                result.success = True
                result.success_iteration = iteration
                break

        result.escapes = trace.escapes
        return result

    # ---------------------------------------------------------------- helpers

    def _evaluate_steps(
        self,
        code: str,
        testbench: Testbench,
        reference: VModule | str | DeviceUnderTest,
    ):
        """Run the two external tools: Compiler (step 2) and Simulator (step 3).

        A sub-generator yielding one :class:`ToolCall` per tool invocation and
        returning ``(feedback, verilog)``.
        """
        compile_result = yield ToolCall(lambda: self.compiler.compile(code), "compile")
        if not compile_result.success:
            return feedback_from_compile(compile_result), None
        request = SimulateRequest(self.simulator, compile_result.verilog or "", reference, testbench)
        outcome = yield ToolCall(request.run, "simulate", batch=request)
        if outcome.success:
            return success_feedback(), compile_result.verilog
        return feedback_from_simulation(outcome), compile_result.verilog

    def _trim(self, feedback: Feedback) -> Feedback:
        """Apply the feedback-granularity ablation ("summary" keeps one line per error)."""
        if self.feedback_detail == "full":
            return feedback
        lines = [line for line in feedback.text.splitlines() if line.strip()]
        summary = "\n".join(lines[:1 + len(feedback.signatures)])
        return Feedback(feedback.kind, summary, feedback.signatures, feedback.error_codes)
