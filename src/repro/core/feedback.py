"""Feedback construction: turn toolchain results into reviewer-facing text.

Implements the two feedback strategies of §IV-B: syntax feedback is the
compiler's error list (location, explanation, suggestion), functional feedback
is the list of failed functional points (inputs, expected, actual).  Each
feedback also carries *error signatures* — (location, error class) pairs —
which are what the Inspector compares to detect non-progress loops.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.toolchain.compiler import CompileResult
from repro.toolchain.simulator import SimulationOutcome


class FeedbackKind(enum.Enum):
    SUCCESS = "success"
    SYNTAX = "syntax"
    FUNCTIONAL = "functional"


@dataclass(frozen=True)
class ErrorSignature:
    """A stable identity for one error, used for loop detection."""

    location: str
    code: str
    summary: str

    def render(self) -> str:
        return f"{self.location} [{self.code}] {self.summary}"


@dataclass
class Feedback:
    """What the Reviewer sees for one iteration."""

    kind: FeedbackKind
    text: str
    signatures: list[ErrorSignature] = field(default_factory=list)
    error_codes: set[str] = field(default_factory=set)

    @property
    def is_success(self) -> bool:
        return self.kind is FeedbackKind.SUCCESS


def feedback_from_compile(result: CompileResult) -> Feedback:
    """Build syntax-error feedback from a failed compilation."""
    signatures = []
    codes = set()
    for diagnostic in result.errors:
        location = str(diagnostic.location) if diagnostic.location else "unknown location"
        code = diagnostic.code or "ERROR"
        summary = diagnostic.message.splitlines()[0][:120]
        signatures.append(ErrorSignature(location, code, summary))
        codes.add(code)
    return Feedback(FeedbackKind.SYNTAX, result.render_feedback(), signatures, codes)


def feedback_from_simulation(outcome: SimulationOutcome) -> Feedback:
    """Build functional-error feedback from a failed simulation."""
    if outcome.success:
        return Feedback(FeedbackKind.SUCCESS, "all functional points passed")
    signatures: list[ErrorSignature] = []
    if outcome.report is not None:
        for mismatch in outcome.report.mismatches[:16]:
            signatures.append(
                ErrorSignature(
                    location=f"output {mismatch.signal}",
                    code="FUNC",
                    summary=f"expected {mismatch.expected} got {mismatch.actual}",
                )
            )
    else:
        signatures.append(ErrorSignature("simulation", "FUNC", outcome.error or "simulation failed"))
    return Feedback(FeedbackKind.FUNCTIONAL, outcome.render_feedback(), signatures, {"FUNC"})


def success_feedback() -> Feedback:
    return Feedback(FeedbackKind.SUCCESS, "compilation and simulation succeeded")
