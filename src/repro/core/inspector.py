"""The Inspector agent (Fig. 2, steps 4-5): trace upkeep and the escape mechanism.

Loop detection follows §IV-C: the current feedback is compared with every
previous trace entry; if an error occurs at the same location and the causes
are judged identical, every iteration between the two points is a non-progress
loop.  The "same cause" judgement is made structurally (identical error class
and summary) and, when a chat client is provided, confirmed by the LLM exactly
as the paper describes.  On detection the looping iterations are discarded and
the Reviewer restarts from the step immediately preceding the loop with the
escape notice set.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.feedback import Feedback
from repro.core.trace import Trace, TraceEntry
from repro.llm import prompts
from repro.llm.client import ChatClient


@dataclass
class LoopDetection:
    """Result of checking the current feedback against the trace."""

    detected: bool
    loop_start: int | None = None  # index into the trace where the loop began
    discarded: int = 0


class Inspector:
    """Maintains the trace, detects non-progress loops and triggers escapes."""

    def __init__(self, client: ChatClient | None = None, enable_escape: bool = True):
        self.client = client
        self.enable_escape = enable_escape

    # ----------------------------------------------------------------- update

    def record(self, trace: Trace, iteration: int, code: str, feedback: Feedback) -> TraceEntry:
        """Append the current iteration's outcome to the trace (step 5)."""
        entry = TraceEntry(iteration, code, feedback)
        trace.append(entry)
        return entry

    # ------------------------------------------------------------------ loops

    def check_for_loop(self, trace: Trace, feedback: Feedback) -> LoopDetection:
        """Compare the current feedback with earlier entries (step 4/5).

        The most recent entry is the current iteration itself, so the scan
        covers everything before it.
        """
        if not self.enable_escape or feedback.is_success or len(trace) < 2:
            return LoopDetection(False)
        current_signatures = {s.render() for s in feedback.signatures}
        if not current_signatures:
            return LoopDetection(False)
        # Scan from the oldest entry forward: the loop is measured from its
        # earliest occurrence, so every repeat in between gets discarded.
        for index in range(0, len(trace.entries) - 1):
            previous = trace.entries[index]
            if previous.feedback.is_success:
                continue
            previous_signatures = {s.render() for s in previous.feedback.signatures}
            overlap = current_signatures & previous_signatures
            if not overlap:
                continue
            if self._same_cause(next(iter(overlap)), next(iter(overlap))):
                return LoopDetection(True, loop_start=index, discarded=len(trace.entries) - 1 - index)
        return LoopDetection(False)

    def escape(self, trace: Trace, detection: LoopDetection) -> bool:
        """Discard the looping iterations (Fig. 5).  Returns True if an escape happened."""
        if not detection.detected or detection.loop_start is None:
            return False
        # Keep the entry where the loop started (the step immediately preceding
        # the repeats) and drop everything after it, including the current one.
        trace.discard_from(detection.loop_start + 1)
        return True

    def _same_cause(self, previous_signature: str, current_signature: str) -> bool:
        if previous_signature == current_signature:
            # Identical location, class and summary: structurally the same error.
            return True
        if self.client is None:
            return False
        answer = self.client.complete(
            prompts.loop_check_prompt(previous_signature, current_signature)
        )
        return answer.strip().upper().startswith("YES")
