"""The Reviewer agent (Fig. 2, step 6): feedback + trace -> revision plan."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.feedback import Feedback
from repro.core.knowledge import knowledge_for_codes, render_knowledge
from repro.core.trace import Trace
from repro.llm import prompts
from repro.llm.client import ChatClient


@dataclass
class RevisionPlan:
    """The Reviewer's output: a textual plan guiding the next generation."""

    text: str
    escaped: bool = False


class Reviewer:
    """Analyses the trace and current feedback and writes a revision plan.

    ``use_knowledge`` controls the in-context learning block built from the
    Table II catalogue (§IV-B); disabling it is the knowledge ablation.  Like
    the Generator, the prompt-building half (``review_messages``/``parse``) is
    exposed for the step-wise sessions; ``review`` is the blocking composition.
    """

    def __init__(self, client: ChatClient | None, language: str = "chisel", use_knowledge: bool = True):
        self.client = client
        self.language = language
        self.use_knowledge = use_knowledge

    def review_messages(
        self,
        spec: str,
        current_code: str,
        feedback: Feedback,
        trace: Trace,
        case_id: str | None = None,
        escaped: bool = False,
    ):
        knowledge_text = "(disabled)"
        if self.use_knowledge:
            knowledge_text = render_knowledge(knowledge_for_codes(feedback.error_codes))
        return prompts.review_prompt(
            spec,
            case_id,
            current_code,
            feedback.text,
            trace.summary(),
            knowledge_text,
            escaped=escaped,
            language=self.language,
        )

    @staticmethod
    def parse(plan_text: str, escaped: bool = False) -> RevisionPlan:
        return RevisionPlan(plan_text.strip(), escaped=escaped)

    def review(
        self,
        spec: str,
        current_code: str,
        feedback: Feedback,
        trace: Trace,
        case_id: str | None = None,
        escaped: bool = False,
    ) -> RevisionPlan:
        messages = self.review_messages(spec, current_code, feedback, trace, case_id, escaped)
        return self.parse(self.client.complete(messages), escaped=escaped)
