"""``python -m repro.console`` — watch a running toolchain live.

Three sources, one console:

``--socket HOST:PORT``
    Tail another process that exported ``REPRO_EVENTS_SOCKET`` (see
    :mod:`repro.obs.transport`).  ``REPRO_CONSOLE_SOCKET`` supplies the
    default endpoint.

``--demo``
    Run a small synthetic generation workload in a background thread and
    watch it — a self-contained tour of every panel.

neither
    Watch this process's own bus (only useful when something in-process is
    publishing, e.g. under an embedding harness).

The Textual UI is optional: ``--plain`` (or ``REPRO_CONSOLE_PLAIN=1``, or
Textual simply not being installed) switches to a stdout renderer that
reprints the dashboard every interval.
"""

from __future__ import annotations

import argparse
import os
import sys
import threading
import time

from repro.console.model import ConsoleModel
from repro.obs import get_bus, iter_socket_events, parse_endpoint

SOCKET_ENV = "REPRO_CONSOLE_SOCKET"
INTERVAL_ENV = "REPRO_CONSOLE_INTERVAL"
PLAIN_ENV = "REPRO_CONSOLE_PLAIN"


def _feed_socket(model: ConsoleModel, host: str, port: int, stop: threading.Event) -> None:
    while not stop.is_set():
        try:
            for event in iter_socket_events(host, port):
                model.feed(event)
                if stop.is_set():
                    return
        except OSError:
            pass
        # Publisher not up (yet, or any more): retry until told to stop.
        stop.wait(1.0)


def _run_demo(stop: threading.Event) -> None:
    from repro.experiments.work import WorkUnit
    from repro.service import ServiceConfig, serve_units

    rechisel_knobs = (
        ("enable_escape", True),
        ("feedback_detail", "full"),
        ("use_knowledge", True),
    )
    for round_index in range(50):
        if stop.is_set():
            return
        units = []
        for strategy, knobs, max_iterations in (
            ("zero_shot", (("language", "chisel"),), 0),
            ("rechisel", rechisel_knobs, 6),
            ("autochip", (), 6),
        ):
            for sample in range(2):
                for model_name, problem in (
                    ("GPT-4o mini", "alu_w4"),
                    ("Claude 3.5 Sonnet", "counter_w4"),
                ):
                    units.append(
                        WorkUnit(
                            strategy, model_name, problem, 0, sample,
                            round_index, max_iterations, knobs,
                        )
                    )
        serve_units(units, ServiceConfig(max_in_flight=8))
        stop.wait(1.0)


def _plain_loop(model: ConsoleModel, interval: float, stop: threading.Event) -> None:
    try:
        while not stop.is_set():
            model.pump()
            sys.stdout.write("\n" + model.render() + "\n")
            sys.stdout.flush()
            time.sleep(interval)
    except KeyboardInterrupt:
        pass


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.console",
        description="Live operations console over the structured event bus.",
    )
    parser.add_argument(
        "--socket",
        default=os.environ.get(SOCKET_ENV),
        metavar="HOST:PORT",
        help="tail a process exporting REPRO_EVENTS_SOCKET at this endpoint",
    )
    parser.add_argument(
        "--demo", action="store_true",
        help="run a synthetic generation workload and watch it",
    )
    parser.add_argument(
        "--plain", action="store_true",
        default=os.environ.get(PLAIN_ENV, "") not in ("", "0"),
        help="render plain text to stdout instead of the Textual UI",
    )
    parser.add_argument(
        "--interval", type=float,
        default=float(os.environ.get(INTERVAL_ENV, "0.5")),
        help="refresh period in seconds (default 0.5)",
    )
    args = parser.parse_args(argv)

    model = ConsoleModel()
    stop = threading.Event()
    if args.socket:
        host, port = parse_endpoint(args.socket)
        threading.Thread(
            target=_feed_socket, args=(model, host, port, stop), daemon=True
        ).start()
    else:
        model.attach(get_bus())
        if args.demo:
            threading.Thread(target=_run_demo, args=(stop,), daemon=True).start()

    try:
        if args.plain:
            _plain_loop(model, args.interval, stop)
        else:
            try:
                from repro.console.app import ConsoleApp
            except ImportError as exc:
                print(f"{exc}\nfalling back to --plain", file=sys.stderr)
                _plain_loop(model, args.interval, stop)
            else:
                ConsoleApp(model, interval=args.interval).run()
    finally:
        stop.set()
        model.detach()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
