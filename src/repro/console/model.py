"""Headless state model behind the operations console.

:class:`ConsoleModel` consumes structured events from a
:class:`repro.obs.EventBus` subscription and folds them into the live tables
the console renders: per-session rows with per-stage latencies, the fleet
worker panel, cache hit rates, recent LLM/simulation batch sizes and a
bounded event tail.

It is deliberately pure Python with no UI dependency: the Textual app in
:mod:`repro.console.app` is a thin view over this model, the plain-text
``--plain`` mode calls :meth:`ConsoleModel.render`, and the headless console
tests drive a real generation service against it without Textual installed.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field

from repro.obs import Event, EventBus, Subscription

#: Topic prefixes the console subscribes to — everything it knows how to fold.
TOPICS = ("service", "trace", "fleet", "llm", "sim", "cache", "sweep", "fuzz", "campaign", "retry")

#: Glyphs for :func:`sparkline`, lowest to highest.
_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values, width: int = 32) -> str:
    """Render the last ``width`` values as a unicode block sparkline."""
    tail = list(values)[-width:]
    if not tail:
        return ""
    top = max(tail)
    if top <= 0:
        return _SPARK_BLOCKS[0] * len(tail)
    scale = len(_SPARK_BLOCKS) - 1
    return "".join(_SPARK_BLOCKS[min(scale, int(value * scale / top))] for value in tail)


@dataclass
class SessionRow:
    """One generation session (one ``session`` span) as the console shows it."""

    key: str
    trace: str = ""
    problem: str = "?"
    strategy: str = "?"
    model: str = "?"
    sample: int | None = None
    status: str = "running"
    started_ts: float = 0.0
    duration: float | None = None
    #: Cumulative seconds spent per child-span operation (``llm.generate``,
    #: ``tool.compile``, ``tool.simulate``, ...).
    stages: dict[str, float] = field(default_factory=dict)
    stage_counts: dict[str, int] = field(default_factory=dict)

    def stage_ms(self, prefix: str) -> float:
        """Total milliseconds across stages whose op starts with ``prefix``."""
        return 1000.0 * sum(
            seconds for op, seconds in self.stages.items() if op.startswith(prefix)
        )


class ConsoleModel:
    """Folds bus events into the tables the operations console displays."""

    def __init__(self, max_sessions: int = 256, tail: int = 200, batches: int = 120):
        self.sessions: OrderedDict[str, SessionRow] = OrderedDict()
        self.max_sessions = max_sessions
        self.counters: dict[str, int] = {}
        self.snapshot: dict = {}
        self.fleet: dict = {}
        self.caches: dict[str, dict] = {}
        self.llm_batches: deque[int] = deque(maxlen=batches)
        self.sim_batches: deque[int] = deque(maxlen=batches)
        self.sweep: dict = {}
        # Resilience state: LLM breaker snapshot, live campaign budget /
        # stage progress, preemption + retry counters (see resilience_lines).
        self.breaker: dict = {}
        self.campaign_id: str = ""
        self.campaign_status: str = ""
        self.campaign_budget: dict = {}
        self.campaign_stages: OrderedDict[str, dict] = OrderedDict()
        self.tail: deque[str] = deque(maxlen=tail)
        self.events_seen = 0
        self._trace_to_session: dict[str, str] = {}
        self._subscription: Subscription | None = None
        self._pending: deque[Event] = deque()

    # ------------------------------------------------------------- bus wiring

    def attach(self, bus: EventBus, maxsize: int = 8192) -> Subscription:
        """Subscribe to ``bus``; call :meth:`pump` to drain into the model."""
        self._subscription = bus.subscribe(TOPICS, maxsize=maxsize, name="console")
        return self._subscription

    def detach(self) -> None:
        if self._subscription is not None:
            self._subscription.close()
            self._subscription = None

    def feed(self, event: Event) -> None:
        """Queue one event from another thread (e.g. a socket reader).

        Safe without a lock: deque append/popleft are atomic, and the event is
        folded in on the next :meth:`pump` from the rendering thread.
        """
        self._pending.append(event)

    def pump(self) -> int:
        """Drain fed and subscribed events; returns how many arrived."""
        count = 0
        while self._pending:
            self.apply(self._pending.popleft())
            count += 1
        if self._subscription is not None:
            events = self._subscription.pop_all()
            for event in events:
                self.apply(event)
            count += len(events)
        return count

    # ---------------------------------------------------------------- folding

    def apply(self, event: Event) -> None:
        """Fold one event into the model (usable without a subscription)."""
        self.events_seen += 1
        topic = event.topic
        if topic == "trace":
            self._apply_trace(event)
        elif topic == "service.job":
            self._count(event.name)
            if event.name == "cache-hit":
                self._count("cache-hit." + str(event.attrs.get("tier", "?")))
        elif topic == "service.snapshot":
            self.snapshot = dict(event.attrs)
        elif topic == "fleet":
            if event.name == "health":
                self.fleet = dict(event.attrs)
            else:
                self._count("fleet." + event.name)
                self.tail.append(self._format(event))
        elif topic == "cache.stats":
            self.caches = dict(event.attrs.get("caches", {}))
        elif topic == "llm.batch":
            self.llm_batches.append(int(event.attrs.get("size", 0)))
        elif topic == "sim.batch":
            self.sim_batches.append(int(event.attrs.get("size", 0)))
        elif topic == "llm.retry":
            self._count("llm-retry")
            self.tail.append(self._format(event))
        elif topic == "llm.breaker":
            self.breaker = dict(event.attrs)
            self._count("breaker." + event.name)
            if event.name in ("open", "half-open", "close"):
                self.tail.append(self._format(event))
        elif topic == "retry":
            self._count("retry." + str(event.attrs.get("source", "?")))
        elif topic == "campaign":
            self._apply_campaign(event)
        elif topic == "sweep.progress":
            self.sweep = dict(event.attrs)
        elif topic.startswith("fuzz"):
            self._count(topic)
            if topic == "fuzz.finding":
                self.tail.append(self._format(event))

    def _count(self, key: str) -> None:
        self.counters[key] = self.counters.get(key, 0) + 1

    def _apply_campaign(self, event: Event) -> None:
        attrs = event.attrs
        self.campaign_id = str(attrs.get("campaign", self.campaign_id or ""))
        if event.name == "progress":
            stage = str(attrs.get("stage", "?"))
            entry = self.campaign_stages.setdefault(stage, {})
            entry["done"] = int(attrs.get("done", 0))
            entry["total"] = int(attrs.get("total", 0))
        elif event.name == "stage":
            stage = str(attrs.get("stage", "?"))
            entry = self.campaign_stages.setdefault(stage, {})
            entry["status"] = str(attrs.get("status", "?"))
            self.tail.append(self._format(event))
        elif event.name == "budget":
            self.campaign_budget = dict(attrs)
        elif event.name == "preempt":
            self._count("campaign.preempt")
        elif event.name == "checkpoint":
            self._count("campaign.checkpoint")
        else:  # start / complete / drain / degrade
            self._count("campaign." + event.name)
            if event.name == "complete":
                self.campaign_status = str(attrs.get("status", "?"))
            elif event.name == "start":
                self.campaign_status = "running"
            self.tail.append(self._format(event))

    def _apply_trace(self, event: Event) -> None:
        attrs = event.attrs
        op = attrs.get("op", "")
        span_id = attrs.get("span", "")
        trace_id = attrs.get("trace", "")
        if event.name == "span.start" and op == "session":
            row = SessionRow(
                key=span_id,
                trace=trace_id,
                problem=str(attrs.get("problem", "?")),
                strategy=str(attrs.get("strategy", "?")),
                model=str(attrs.get("model", "?")),
                sample=attrs.get("sample"),
                started_ts=event.ts,
            )
            self.sessions[span_id] = row
            self._trace_to_session[trace_id] = span_id
            while len(self.sessions) > self.max_sessions:
                _, evicted = self.sessions.popitem(last=False)
                self._trace_to_session.pop(evicted.trace, None)
        elif event.name == "span.end":
            if op == "session":
                row = self.sessions.get(span_id)
                if row is not None:
                    row.duration = attrs.get("duration")
                    row.status = "error" if "error" in attrs else "done"
                self._trace_to_session.pop(trace_id, None)
            else:
                session_key = self._trace_to_session.get(trace_id)
                row = self.sessions.get(session_key) if session_key else None
                if row is not None:
                    duration = float(attrs.get("duration") or 0.0)
                    row.stages[op] = row.stages.get(op, 0.0) + duration
                    row.stage_counts[op] = row.stage_counts.get(op, 0) + 1

    def _format(self, event: Event) -> str:
        extras = " ".join(
            f"{key}={value}" for key, value in sorted(event.attrs.items())
        )
        return f"{event.topic} {event.name} {extras}".rstrip()

    # -------------------------------------------------------------- table views

    def session_rows(self) -> list[tuple]:
        """Newest-first ``(problem, strategy, model, sample, status, llm ms,
        compile ms, simulate ms, total ms)`` rows for the sessions table."""
        rows = []
        for row in reversed(self.sessions.values()):
            total = row.duration
            rows.append(
                (
                    row.problem,
                    row.strategy,
                    row.model,
                    "-" if row.sample is None else str(row.sample),
                    row.status,
                    f"{row.stage_ms('llm.'):.1f}",
                    f"{row.stage_ms('tool.compile'):.1f}",
                    f"{row.stage_ms('tool.simulate'):.1f}",
                    "-" if total is None else f"{1000.0 * total:.1f}",
                )
            )
        return rows

    def worker_rows(self) -> list[tuple]:
        """``(slot, state, pid, restarts, leases, heartbeat age)`` per worker."""
        rows = []
        for worker in self.fleet.get("workers", []):
            age = worker.get("heartbeat_age")
            rows.append(
                (
                    str(worker.get("slot", "?")),
                    str(worker.get("state", "?")),
                    str(worker.get("pid", "-")),
                    str(worker.get("restarts", 0)),
                    str(worker.get("leases", 0)),
                    "-" if age is None else f"{age:.2f}s",
                )
            )
        return rows

    def cache_rows(self) -> list[tuple]:
        """``(cache, hits, misses, hit rate, size)`` per registered cache."""
        rows = []
        for name, stats in sorted(self.caches.items()):
            hits = stats.get("hits", 0)
            misses = stats.get("misses", 0)
            lookups = hits + misses
            rate = f"{100.0 * hits / lookups:.0f}%" if lookups else "-"
            rows.append((name, str(hits), str(misses), rate, str(stats.get("size", 0))))
        return rows

    def headline(self) -> str:
        """One status line: throughput counters, queue depth, sweep progress."""
        snap = self.snapshot
        parts = [
            f"done={self.counters.get('completed', 0)}",
            f"failed={self.counters.get('failed', 0)}",
            f"cache-hits={self.counters.get('cache-hit', 0)}",
            f"queue={snap.get('queue_depth', 0)}",
            f"in-flight={snap.get('in_flight', 0)}",
        ]
        if self.sweep:
            parts.append(f"sweep={self.sweep.get('done', 0)}/{self.sweep.get('total', 0)}")
        if self.fleet:
            parts.append(f"workers-alive={self.fleet.get('alive', 0)}")
        if self.breaker:
            parts.append(f"breaker={self.breaker.get('state', '?')}")
        return "  ".join(parts)

    def resilience_lines(self) -> list[str]:
        """The resilience panel: breaker, budget, campaign stages, preemptions."""
        lines = []
        if self.breaker:
            lines.append(
                f"llm breaker: {self.breaker.get('state', '?')}"
                f"  failures={self.breaker.get('failures', 0)}"
                f"  opens={self.breaker.get('opens', 0)}"
                f"  rejections={self.breaker.get('rejections', 0)}"
            )
        if self.campaign_id:
            status = self.campaign_status or "running"
            lines.append(f"campaign {self.campaign_id}: {status}")
        if self.campaign_budget:
            budget = self.campaign_budget
            limit = budget.get("limit")
            remaining = budget.get("remaining")
            line = f"llm budget: spent={budget.get('spent', 0)}"
            if limit is not None:
                line += f"/{limit}  remaining={remaining}"
            deadline_remaining = budget.get("deadline_remaining")
            if deadline_remaining is not None:
                line += f"  deadline={deadline_remaining}s"
            lines.append(line)
        for stage, entry in self.campaign_stages.items():
            status = entry.get("status", "running")
            done, total = entry.get("done"), entry.get("total")
            progress = f"  {done}/{total}" if total else ""
            lines.append(f"  stage {stage}: {status}{progress}")
        preempts = self.counters.get("campaign.preempt", 0)
        retries = sum(
            count for key, count in self.counters.items() if key.startswith("retry.")
        )
        degrades = self.counters.get("campaign.degrade", 0)
        if preempts or retries or degrades:
            lines.append(
                f"preemptions={preempts}  retries={retries}  degrades={degrades}"
            )
        return lines

    # ------------------------------------------------------------- plain text

    def render(self, sessions: int = 12) -> str:
        """A full plain-text dashboard (used by ``--plain`` and tests)."""
        lines = [self.headline(), ""]
        lines.append("sessions (newest first):")
        header = ("problem", "strategy", "model", "s", "status", "llm ms", "compile ms", "sim ms", "total ms")
        for row in [header] + self.session_rows()[:sessions]:
            lines.append("  " + "  ".join(str(cell).ljust(12) for cell in row).rstrip())
        if self.fleet:
            lines.append("")
            lines.append("fleet workers:")
            for row in self.worker_rows():
                lines.append("  " + "  ".join(row))
        if self.caches:
            lines.append("")
            lines.append("caches:")
            for row in self.cache_rows():
                lines.append("  " + "  ".join(row))
        resilience = self.resilience_lines()
        if resilience:
            lines.append("")
            lines.append("resilience:")
            lines.extend("  " + line for line in resilience)
        if self.llm_batches or self.sim_batches:
            lines.append("")
            lines.append(f"llm batches: {sparkline(self.llm_batches)}")
            lines.append(f"sim batches: {sparkline(self.sim_batches)}")
        if self.tail:
            lines.append("")
            lines.append("events:")
            lines.extend("  " + line for line in list(self.tail)[-10:])
        return "\n".join(lines)
