"""Textual view over :class:`repro.console.model.ConsoleModel`.

Importing this module requires the optional ``textual`` dependency
(``pip install repro-chipgpt[console]``); everything headless lives in
:mod:`repro.console.model` so the rest of the toolchain never pays for the
import.  The app polls the model on a timer (the model pumps its bus
subscription), then repaints four panels: the live session table, the fleet
worker table, the cache hit-rate table, and the batch-size sparklines with a
scrolling event tail.  A resilience panel (circuit-breaker state, campaign
budget and stage progress, preemption/retry counters) appears under the
caches whenever those events flow.
"""

from __future__ import annotations

from typing import Callable

try:
    from textual.app import App, ComposeResult
    from textual.containers import Horizontal, Vertical
    from textual.widgets import DataTable, Footer, Header, Log, Static
except ImportError as exc:  # pragma: no cover - exercised only without textual
    raise ImportError(
        "the operations console UI requires the optional 'textual' dependency "
        "(pip install textual); use --plain for the dependency-free renderer"
    ) from exc

from repro.console.model import ConsoleModel, sparkline

SESSION_COLUMNS = (
    "problem", "strategy", "model", "s", "status",
    "llm ms", "compile ms", "sim ms", "total ms",
)
WORKER_COLUMNS = ("slot", "state", "pid", "restarts", "leases", "hb age")
CACHE_COLUMNS = ("cache", "hits", "misses", "rate", "size")


class ConsoleApp(App):
    """Live operations console: ``python -m repro.console``."""

    TITLE = "repro operations console"
    BINDINGS = [("q", "quit", "Quit")]
    CSS = """
    #sessions { height: 1fr; }
    #side { width: 46; }
    #fleet { height: auto; max-height: 12; }
    #caches { height: auto; max-height: 14; }
    #resilience { height: auto; max-height: 10; padding: 0 1; }
    #batches { height: 4; padding: 0 1; }
    #headline { height: 1; padding: 0 1; }
    #tail { height: 10; }
    """

    def __init__(self, model: ConsoleModel, interval: float = 0.5,
                 on_tick: Callable[[], None] | None = None):
        super().__init__()
        self.model = model
        self.interval = interval
        #: Extra per-tick hook (the demo uses it to stop when the run ends).
        self.on_tick = on_tick
        self._tail_seen = 0

    def compose(self) -> ComposeResult:
        yield Header(show_clock=True)
        yield Static("", id="headline")
        with Horizontal():
            yield DataTable(id="sessions")
            with Vertical(id="side"):
                yield DataTable(id="fleet")
                yield DataTable(id="caches")
                yield Static("", id="resilience")
                yield Static("", id="batches")
        yield Log(id="tail")
        yield Footer()

    def on_mount(self) -> None:
        self.query_one("#sessions", DataTable).add_columns(*SESSION_COLUMNS)
        self.query_one("#fleet", DataTable).add_columns(*WORKER_COLUMNS)
        self.query_one("#caches", DataTable).add_columns(*CACHE_COLUMNS)
        self.set_interval(self.interval, self.refresh_model)
        self.refresh_model()

    def refresh_model(self) -> None:
        self.model.pump()
        self.query_one("#headline", Static).update(self.model.headline())
        self._repaint(self.query_one("#sessions", DataTable), self.model.session_rows())
        self._repaint(self.query_one("#fleet", DataTable), self.model.worker_rows())
        self._repaint(self.query_one("#caches", DataTable), self.model.cache_rows())
        self.query_one("#resilience", Static).update(
            "\n".join(self.model.resilience_lines())
        )
        self.query_one("#batches", Static).update(
            f"llm batches {sparkline(self.model.llm_batches)}\n"
            f"sim batches {sparkline(self.model.sim_batches)}"
        )
        tail = list(self.model.tail)
        fresh = self.model.events_seen
        if fresh != self._tail_seen:
            self._tail_seen = fresh
            log = self.query_one("#tail", Log)
            log.clear()
            for line in tail[-10:]:
                log.write_line(line)
        if self.on_tick is not None:
            self.on_tick()

    @staticmethod
    def _repaint(table: DataTable, rows: list[tuple]) -> None:
        # Full repaint: the tables are small (bounded by the model's limits)
        # and DataTable diffing would complicate eviction handling.
        table.clear()
        for row in rows:
            table.add_row(*row)
