"""Live operations console over the structured event bus.

The headless state model (:class:`~repro.console.model.ConsoleModel`) has no
UI dependency; the Textual app in :mod:`repro.console.app` is optional.  Run
``python -m repro.console --demo`` for a self-contained tour.
"""

from repro.console.model import ConsoleModel, SessionRow, sparkline

__all__ = ["ConsoleModel", "SessionRow", "sparkline"]
