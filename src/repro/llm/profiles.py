"""Behaviour profiles for the five LLMs the paper evaluates.

Every parameter is anchored to a measurement in the paper:

* ``chisel_baseline_success`` / ``verilog_baseline_success`` — Table I Pass@1
  (zero-shot, per attempt);
* ``syntax_error_share`` — Fig. 1, the fraction of *failed* baseline attempts
  whose first error is a compile (syntax) error rather than a functional one;
* ``chisel_fix_prob`` / ``functional_fix_prob`` — per-iteration repair
  probabilities fitted so that ten reflection iterations land near the
  Table III Pass@1 column at n=10 (the Claude models get the visibly stronger
  reflection gain the paper reports, GPT-4o mini the weakest);
* ``verilog_fix_prob`` — fitted the same way against the AutoChip column of
  Table IV;
* ``loop_prob`` — probability that a failed repair is a *futile edit* (same
  error at the same location), which is what produces the non-progress loops
  of §IV-C; weaker models loop more;
* ``regression_prob`` — probability that a functional repair reintroduces a
  syntax error (the Fig. 7 "syntax errors increase again" effect);
* ``escape_boost`` — multiplier applied to the fix probability on the first
  revision after the escape mechanism discards a loop.

Absolute success rates produced by the harness therefore track the paper by
construction; the *dynamics* (how fast curves rise, when they plateau, how
error mixes shift per iteration) emerge from the reflection loop itself.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

GPT4_TURBO = "GPT-4 Turbo"
GPT4O = "GPT-4o"
GPT4O_MINI = "GPT-4o mini"
CLAUDE_SONNET = "Claude 3.5 Sonnet"
CLAUDE_HAIKU = "Claude 3.5 Haiku"

PAPER_MODELS = (GPT4_TURBO, GPT4O, GPT4O_MINI, CLAUDE_SONNET, CLAUDE_HAIKU)
AUTOCHIP_MODELS = (GPT4_TURBO, GPT4O, CLAUDE_SONNET)


@dataclass(frozen=True)
class ModelProfile:
    """Calibrated behaviour of one LLM for Chisel / Verilog generation."""

    name: str
    chisel_baseline_success: float
    verilog_baseline_success: float
    syntax_error_share: float
    chisel_fix_prob: float
    functional_fix_prob: float
    verilog_fix_prob: float
    loop_prob: float
    regression_prob: float
    escape_boost: float = 1.6
    two_fault_prob: float = 0.25

    def fix_probability(self, error_kind: str, language: str = "chisel") -> float:
        """Per-iteration probability of removing one fault of ``error_kind``."""
        if language == "verilog":
            return self.verilog_fix_prob
        if error_kind == "functional":
            return self.functional_fix_prob
        return self.chisel_fix_prob

    def fingerprint(self) -> dict[str, float | str]:
        """Stable field dump for work-unit fingerprints.

        Sweep results depend on every calibrated parameter, so recalibrating a
        profile must invalidate the persistent result store for that model.
        """
        return asdict(self)


MODEL_PROFILES: dict[str, ModelProfile] = {
    GPT4_TURBO: ModelProfile(
        name=GPT4_TURBO,
        chisel_baseline_success=0.4554,
        verilog_baseline_success=0.6761,
        syntax_error_share=0.717,   # 39.7 / (39.7 + 15.7) from Fig. 1
        chisel_fix_prob=0.105,
        functional_fix_prob=0.085,
        verilog_fix_prob=0.065,
        loop_prob=0.35,
        regression_prob=0.06,
    ),
    GPT4O: ModelProfile(
        name=GPT4O,
        chisel_baseline_success=0.4507,
        verilog_baseline_success=0.6948,
        syntax_error_share=0.598,   # 32.0 / (32.0 + 21.5)
        chisel_fix_prob=0.125,
        functional_fix_prob=0.105,
        verilog_fix_prob=0.055,
        loop_prob=0.30,
        regression_prob=0.06,
    ),
    GPT4O_MINI: ModelProfile(
        name=GPT4O_MINI,
        chisel_baseline_success=0.1127,
        verilog_baseline_success=0.5915,
        syntax_error_share=0.965,   # 85.4 / (85.4 + 3.1)
        chisel_fix_prob=0.055,
        functional_fix_prob=0.045,
        verilog_fix_prob=0.045,
        loop_prob=0.55,
        regression_prob=0.10,
    ),
    CLAUDE_SONNET: ModelProfile(
        name=CLAUDE_SONNET,
        chisel_baseline_success=0.3333,
        verilog_baseline_success=0.7793,
        syntax_error_share=0.888,   # 61.2 / (61.2 + 7.7)
        chisel_fix_prob=0.205,
        functional_fix_prob=0.17,
        verilog_fix_prob=0.105,
        loop_prob=0.18,
        regression_prob=0.04,
    ),
    CLAUDE_HAIKU: ModelProfile(
        name=CLAUDE_HAIKU,
        chisel_baseline_success=0.2629,
        verilog_baseline_success=0.7559,
        syntax_error_share=0.90,    # 62.9 / (62.9 + 7.0)
        chisel_fix_prob=0.215,
        functional_fix_prob=0.175,
        verilog_fix_prob=0.09,
        loop_prob=0.20,
        regression_prob=0.05,
    ),
}


def profile_named(name: str) -> ModelProfile:
    """Look up a profile by model name (raises ``KeyError`` on unknown models)."""
    return MODEL_PROFILES[name]
