"""Async LLM access: the dispatcher that multiplexes many sessions onto one loop.

The blocking :class:`~repro.llm.client.ChatClient` protocol serves one
session at a time; the async generation service (:mod:`repro.service`) runs
hundreds.  This module provides the shared machinery between them:

* :class:`AsyncChatClient` — the awaitable twin of ``ChatClient``;
* :class:`SyncClientAdapter` — lift any blocking client into the async
  protocol (inline for cheap synthetic backends, via an executor for real
  network clients);
* :class:`LatencyClient` — a latency-simulating wrapper used by the service
  benchmarks and demos to model provider round-trips without burning CPU;
* :class:`TokenBucket` — an asyncio token-bucket rate limiter;
* :class:`RetryPolicy` — re-exported from :mod:`repro.retry` (the shared
  retry/backoff vocabulary), kept importable from here for compatibility;
* :class:`BatchingDispatcher` — the heart of the service's LLM layer: it
  coalesces concurrent completion requests into micro-batches (a short
  collection window, closed early when the batch fills), applies the rate
  limiter per batch, caps in-flight batches and per-profile concurrency, and
  retries transient failures with jittered backoff.  Optionally it threads a
  :class:`~repro.retry.CircuitBreaker` around every attempt (consecutive
  transport failures open it; rejected attempts back off like transport
  errors without adding failure evidence) and charges a duck-typed budget
  (anything with ``charge(n)``) one unit per accepted request, so campaign
  LLM-call budgets propagate into the service path with no import cycle.

Determinism note: each generation session owns its deterministically seeded
client, and the dispatcher always answers a request through *that* request's
client.  Batching therefore changes scheduling and wall-clock only — never
the text a session receives — which is what makes service results
bit-identical to blocking runs.
"""

from __future__ import annotations

import asyncio
import inspect
import random
from dataclasses import dataclass, field
from typing import Protocol

from repro.llm.client import ChatClient, ChatMessage
from repro.retry import BreakerOpenError, RetryPolicy, emit_retry, is_transport_fault

__all__ = [
    "AsyncChatClient",
    "BatchChatClient",
    "BatchingDispatcher",
    "DispatchStats",
    "LatencyClient",
    "RetryPolicy",
    "SyncClientAdapter",
    "TokenBucket",
]


class AsyncChatClient(Protocol):
    """Anything that can asynchronously turn a message list into a completion."""

    async def complete(self, messages: list[ChatMessage]) -> str:  # pragma: no cover - protocol
        ...


class BatchChatClient(Protocol):
    """A client with a native batch endpoint (one call, many completions)."""

    def complete_batch(self, batches: list[list[ChatMessage]]) -> list[str]:  # pragma: no cover
        ...


class SyncClientAdapter:
    """Lift a blocking :class:`ChatClient` into the async protocol.

    Without an ``executor`` the wrapped client runs inline on the event loop —
    correct for the fast synthetic backends this repo ships.  Pass an executor
    for clients that genuinely block (network APIs) so the loop stays free.
    """

    def __init__(self, client: ChatClient, executor=None):
        self.client = client
        self._executor = executor

    async def complete(self, messages: list[ChatMessage]) -> str:
        if self._executor is None:
            return self.client.complete(messages)
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._executor, self.client.complete, messages)


class LatencyClient:
    """An async client simulating a provider round-trip before answering.

    Wraps a blocking client and awaits ``latency`` seconds first, so N
    concurrent requests overlap their waits — the service benchmark uses this
    to model real API latency without consuming CPU.
    """

    def __init__(self, inner: ChatClient, latency: float):
        self.inner = inner
        self.latency = latency

    async def complete(self, messages: list[ChatMessage]) -> str:
        if self.latency > 0:
            await asyncio.sleep(self.latency)
        return self.inner.complete(messages)


class TokenBucket:
    """Asyncio token-bucket rate limiter (``rate`` tokens/second).

    ``acquire(n)`` waits until ``n`` tokens are available; waiters are served
    FIFO (an :class:`asyncio.Lock` queues them), so a large batch cannot be
    starved by a stream of small ones.
    """

    def __init__(self, rate: float, capacity: float | None = None):
        if rate <= 0:
            raise ValueError("rate must be > 0")
        self.rate = float(rate)
        self.capacity = float(capacity) if capacity is not None else max(1.0, self.rate)
        self._tokens = self.capacity
        self._last: float | None = None
        self._lock = asyncio.Lock()

    def _refill(self, now: float) -> None:
        if self._last is not None:
            self._tokens = min(self.capacity, self._tokens + (now - self._last) * self.rate)
        self._last = now

    async def acquire(self, tokens: float = 1.0) -> None:
        async with self._lock:
            loop = asyncio.get_running_loop()
            self._refill(loop.time())
            # Debt model: subtract first, then sleep the debt off.  Refilling
            # from a negative balance is never clipped by ``capacity``, so an
            # acquisition larger than the bucket (a big batch under a small
            # rate) still pays exactly ``tokens / rate`` seconds instead of
            # losing the tokens earned while sleeping.
            self._tokens -= tokens
            if self._tokens < 0:
                await asyncio.sleep(-self._tokens / self.rate)
                self._refill(loop.time())


@dataclass
class DispatchStats:
    """Cumulative dispatcher accounting (all mutated on the event loop)."""

    requests: int = 0
    batches: int = 0
    retries: int = 0
    failures: int = 0
    timeouts: int = 0
    cancelled: int = 0
    breaker_rejections: int = 0
    budget_rejections: int = 0
    max_batch_size: int = 0
    batched_requests: int = 0
    batch_sizes: list[int] = field(default_factory=list)

    _BATCH_HISTORY = 1024

    def record_batch(self, size: int) -> None:
        self.batches += 1
        self.batched_requests += size
        self.max_batch_size = max(self.max_batch_size, size)
        self.batch_sizes.append(size)
        if len(self.batch_sizes) > self._BATCH_HISTORY:
            del self.batch_sizes[: len(self.batch_sizes) - self._BATCH_HISTORY]

    @property
    def mean_batch_size(self) -> float:
        return self.batched_requests / self.batches if self.batches else 0.0

    def snapshot(self) -> dict:
        return {
            "requests": self.requests,
            "batches": self.batches,
            "retries": self.retries,
            "failures": self.failures,
            "timeouts": self.timeouts,
            "cancelled": self.cancelled,
            "breaker_rejections": self.breaker_rejections,
            "budget_rejections": self.budget_rejections,
            "mean_batch_size": round(self.mean_batch_size, 3),
            "max_batch_size": self.max_batch_size,
        }


class _Request:
    __slots__ = ("messages", "client", "future")

    def __init__(self, messages: list[ChatMessage], client, future: asyncio.Future):
        self.messages = messages
        self.client = client
        self.future = future


class BatchingDispatcher:
    """Coalesce concurrent completion requests into rate-limited micro-batches.

    Requests arriving within ``batch_window`` seconds of each other (or until
    ``max_batch`` of them are pending) are flushed as one batch: the batch
    acquires rate-limiter tokens once, occupies one in-flight batch slot, and
    its members complete concurrently.  A ``batch_window`` of 0 still batches
    whatever accumulated during the current event-loop tick — with many
    sessions awaiting completions, that alone yields healthy batch sizes.

    Requests carry their own client (per-session seeded backends) or fall
    back to ``default_client``.  If the default client exposes
    ``complete_batch``, same-batch requests bound to it are sent through one
    native batch call.  ``per_profile_limit`` caps how many requests of one
    model profile are in flight at once; ``retry`` resubmits failed requests
    with jittered exponential backoff.

    ``request_timeout`` bounds every completion *attempt*: an attempt slower
    than that many seconds is abandoned, counted in ``stats.timeouts`` and
    retried under the same policy as a transport error (so a wedged provider
    call cannot hold its batch slot forever).  Cancellation propagates both
    ways — a caller abandoning ``complete`` marks its request cancelled so
    workers skip it, and cancelled requests never have results forced on
    them.

    A dispatcher instance is bound to the event loop it first runs on.
    """

    def __init__(
        self,
        default_client: AsyncChatClient | ChatClient | None = None,
        *,
        batch_window: float = 0.0,
        max_batch: int = 8,
        rate_limiter: TokenBucket | None = None,
        max_concurrent_batches: int | None = None,
        per_profile_limit: int | None = None,
        retry: RetryPolicy | None = None,
        retry_seed: int | None = None,
        request_timeout: float | None = None,
        bus=None,
        breaker=None,
        budget=None,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if request_timeout is not None and request_timeout <= 0:
            raise ValueError("request_timeout must be > 0 or None")
        # Optional structured event bus (repro.obs): batch flushes, retries
        # and timeouts publish to it when subscribers are attached.
        self.bus = bus
        # Optional resilience hooks: ``breaker`` is a
        # :class:`repro.retry.CircuitBreaker` consulted before every attempt;
        # ``budget`` is any object with ``charge(n)`` (raising to refuse) —
        # campaigns pass their LLM-call budget without this module importing
        # repro.campaign.
        self.breaker = breaker
        self.budget = budget
        self.default_client = default_client
        self.batch_window = batch_window
        self.max_batch = max_batch
        self.rate_limiter = rate_limiter
        self.per_profile_limit = per_profile_limit
        self.retry = retry or RetryPolicy()
        self.request_timeout = request_timeout
        self.stats = DispatchStats()
        self._rng = random.Random(retry_seed)
        self._pending: list[_Request] = []
        self._timer: asyncio.Task | None = None
        self._batch_tasks: set[asyncio.Task] = set()
        self._batch_slots = (
            asyncio.Semaphore(max_concurrent_batches) if max_concurrent_batches else None
        )
        self._profile_slots: dict[str, asyncio.Semaphore] = {}

    # ---------------------------------------------------------------- public

    async def complete(
        self,
        messages: list[ChatMessage],
        client: AsyncChatClient | ChatClient | None = None,
        profile: str | None = None,
    ) -> str:
        """Complete ``messages`` through the batching pipeline."""
        resolved = client if client is not None else self.default_client
        if resolved is None:
            raise ValueError("no client for request and no default_client configured")
        if profile is not None and self.per_profile_limit:
            slot = self._profile_slots.get(profile)
            if slot is None:
                slot = self._profile_slots[profile] = asyncio.Semaphore(self.per_profile_limit)
            async with slot:
                return await self._enqueue(messages, resolved)
        return await self._enqueue(messages, resolved)

    async def drain(self) -> None:
        """Wait until every pending and in-flight batch has finished."""
        while self._pending or self._batch_tasks or self._timer is not None:
            if self._timer is not None or self._pending:
                self._flush_all()
            tasks = list(self._batch_tasks)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            else:
                await asyncio.sleep(0)

    # --------------------------------------------------------------- batching

    async def _enqueue(self, messages: list[ChatMessage], client) -> str:
        if self.budget is not None:
            try:
                self.budget.charge(1)
            except Exception:
                self.stats.budget_rejections += 1
                raise
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self.stats.requests += 1
        self._pending.append(_Request(messages, client, future))
        if len(self._pending) >= self.max_batch:
            self._flush_all()
        elif self._timer is None:
            self._timer = loop.create_task(self._flush_after_window())
        try:
            return await future
        except asyncio.CancelledError:
            # The caller gave up (session cancelled, service closing): leave
            # the request future cancelled so batch workers skip it instead
            # of completing work nobody is waiting for.
            if not future.done():
                future.cancel()
            if future.cancelled():
                self.stats.cancelled += 1
            raise

    async def _flush_after_window(self) -> None:
        try:
            if self.batch_window > 0:
                await asyncio.sleep(self.batch_window)
            else:
                # Yield once so every session runnable this tick can enqueue.
                await asyncio.sleep(0)
        except asyncio.CancelledError:
            return
        self._timer = None
        self._flush_all()

    def _flush_all(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        loop = asyncio.get_running_loop()
        while self._pending:
            chunk = self._pending[: self.max_batch]
            del self._pending[: self.max_batch]
            task = loop.create_task(self._run_batch(chunk))
            self._batch_tasks.add(task)
            task.add_done_callback(self._batch_tasks.discard)

    async def _run_batch(self, batch: list[_Request]) -> None:
        try:
            if self._batch_slots is not None:
                async with self._batch_slots:
                    await self._execute_batch(batch)
            else:
                await self._execute_batch(batch)
        except asyncio.CancelledError:
            for request in batch:
                if not request.future.done():
                    request.future.cancel()
            raise
        except BaseException as exc:  # defensive: a failed batch must not hang waiters
            for request in batch:
                if not request.future.done():
                    request.future.set_exception(exc)
            if not isinstance(exc, Exception):
                # KeyboardInterrupt & co. must still take the task down.
                raise

    async def _execute_batch(self, batch: list[_Request]) -> None:
        if self.rate_limiter is not None:
            await self.rate_limiter.acquire(len(batch))
        self.stats.record_batch(len(batch))
        if self.bus is not None and self.bus.active:
            self.bus.publish("llm.batch", "flush", size=len(batch))
        grouped = [request for request in batch if self._is_batchable(request)]
        singles = [request for request in batch if not self._is_batchable(request)]
        coros = []
        if grouped:
            coros.append(self._complete_grouped(grouped))
        coros.extend(self._complete_single(request) for request in singles)
        if coros:
            await asyncio.gather(*coros)

    def _is_batchable(self, request: _Request) -> bool:
        return request.client is self.default_client and hasattr(
            request.client, "complete_batch"
        )

    # ------------------------------------------------------------- completion

    async def _await_value(self, value):
        """Await an awaitable completion under the per-attempt timeout."""
        if not inspect.isawaitable(value):
            # Synchronous clients complete inline; there is nothing to bound.
            return value
        if self.request_timeout is None:
            return await value
        return await asyncio.wait_for(asyncio.ensure_future(value), self.request_timeout)

    async def _call(self, client, messages: list[ChatMessage]) -> str:
        return await self._await_value(client.complete(messages))

    async def _complete_single(self, request: _Request) -> None:
        attempt = 0
        while True:
            if request.future.done():
                return  # The caller abandoned this request; spend nothing on it.
            try:
                if self.breaker is not None and not self.breaker.allow():
                    self.stats.breaker_rejections += 1
                    raise BreakerOpenError(
                        f"circuit breaker {self.breaker.name!r} is open"
                    )
                result = await self._call(request.client, request.messages)
                if self.breaker is not None:
                    self.breaker.record_success()
                if not request.future.done():
                    request.future.set_result(result)
                return
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                timed_out = isinstance(exc, (asyncio.TimeoutError, TimeoutError))
                if timed_out:
                    self.stats.timeouts += 1
                    exc = TimeoutError(
                        f"completion attempt exceeded {self.request_timeout}s"
                    )
                # Breaker rejections are back-pressure, not fresh transport
                # evidence: back off and retry, but record nothing.
                if self.breaker is not None and not isinstance(exc, BreakerOpenError):
                    if timed_out or is_transport_fault(exc):
                        self.breaker.record_failure()
                attempt += 1
                reason = "timeout" if timed_out else type(exc).__name__
                if attempt > self.retry.attempts:
                    self.stats.failures += 1
                    if self.bus is not None and self.bus.active:
                        self.bus.publish("llm.retry", "exhausted", reason=reason)
                    if not request.future.done():
                        request.future.set_exception(exc)
                    return
                self.stats.retries += 1
                delay = self.retry.delay(attempt, self._rng)
                if self.bus is not None and self.bus.active:
                    self.bus.publish("llm.retry", "retry", attempt=attempt, reason=reason)
                emit_retry(self.bus, "llm", attempt, reason, delay)
                await asyncio.sleep(delay)

    async def _complete_grouped(self, group: list[_Request]) -> None:
        group = [request for request in group if not request.future.done()]
        if not group:
            return
        try:
            value = self.default_client.complete_batch(
                [request.messages for request in group]
            )
            value = await self._await_value(value)
            results = list(value)
            if len(results) != len(group):
                raise RuntimeError(
                    f"complete_batch returned {len(results)} results for {len(group)} requests"
                )
        except Exception as exc:
            if isinstance(exc, (asyncio.TimeoutError, TimeoutError)):
                self.stats.timeouts += 1
            # One poisoned request must not sink its batch-mates: degrade to
            # per-request completion, where the retry policy (and per-attempt
            # timeout) isolates failures to the requests that caused them.
            await asyncio.gather(*(self._complete_single(request) for request in group))
            return
        for request, result in zip(group, results):
            if not request.future.done():
                request.future.set_result(result)
