"""LLM layer: chat-client protocol, model behaviour profiles and the synthetic backend.

The agents in :mod:`repro.core` only ever talk to a :class:`ChatClient`; in
the paper that client is a commercial LLM API.  This reproduction ships a
synthetic backend (:class:`~repro.llm.synthetic.SyntheticChiselLLM`) whose
behaviour profiles are calibrated against the paper's reported numbers, plus a
:class:`~repro.llm.client.CallableClient` adapter so a real API can be plugged
in by passing any ``messages -> text`` callable.
"""

from repro.llm.client import CallableClient, ChatClient, ChatMessage, EchoClient
from repro.llm.profiles import MODEL_PROFILES, ModelProfile, profile_named
from repro.llm.synthetic import SyntheticChiselLLM

__all__ = [
    "ChatClient",
    "ChatMessage",
    "CallableClient",
    "EchoClient",
    "ModelProfile",
    "MODEL_PROFILES",
    "profile_named",
    "SyntheticChiselLLM",
]
