"""LLM layer: chat-client protocol, model behaviour profiles and the synthetic backend.

The agents in :mod:`repro.core` only ever talk to a :class:`ChatClient`; in
the paper that client is a commercial LLM API.  This reproduction ships a
synthetic backend (:class:`~repro.llm.synthetic.SyntheticChiselLLM`) whose
behaviour profiles are calibrated against the paper's reported numbers, plus a
:class:`~repro.llm.client.CallableClient` adapter so a real API can be plugged
in by passing any ``messages -> text`` callable.

For concurrent serving, :mod:`repro.llm.dispatch` adds the async side: the
:class:`~repro.llm.dispatch.AsyncChatClient` protocol, adapters for blocking
clients, and the :class:`~repro.llm.dispatch.BatchingDispatcher` that
coalesces many sessions' requests into rate-limited micro-batches.
"""

from repro.llm.client import (
    CallableClient,
    ChatClient,
    ChatMessage,
    EchoClient,
    RecordingClient,
)
from repro.llm.dispatch import (
    AsyncChatClient,
    BatchingDispatcher,
    LatencyClient,
    RetryPolicy,
    SyncClientAdapter,
    TokenBucket,
)
from repro.llm.profiles import MODEL_PROFILES, ModelProfile, profile_named
from repro.llm.synthetic import SyntheticChiselLLM

__all__ = [
    "ChatClient",
    "ChatMessage",
    "CallableClient",
    "EchoClient",
    "RecordingClient",
    "AsyncChatClient",
    "BatchingDispatcher",
    "LatencyClient",
    "RetryPolicy",
    "SyncClientAdapter",
    "TokenBucket",
    "ModelProfile",
    "MODEL_PROFILES",
    "profile_named",
    "SyntheticChiselLLM",
]
