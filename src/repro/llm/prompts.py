"""Prompt templates for the ReChisel agents.

The templates define the three agent roles of Fig. 2 (Generator, Reviewer,
Inspector) plus the AutoChip-style Verilog generator used by the baseline.
Structured markers (``benchmark-case:``, the section headers, the escape
notice) are part of the template contract: the synthetic LLM backend keys on
them, and they are equally readable by a real LLM.
"""

from __future__ import annotations

from repro.llm.client import ChatMessage

# Markers shared with the synthetic backend.
CASE_MARKER = "benchmark-case:"
SECTION_SPEC = "## Specification"
SECTION_PREVIOUS_CODE = "## Previous code"
SECTION_REVISION_PLAN = "## Revision plan"
SECTION_FEEDBACK = "## Feedback"
SECTION_TRACE = "## Reflection trace"
SECTION_KNOWLEDGE = "## Common error knowledge"
ESCAPE_NOTICE = (
    "ESCAPE NOTICE: a non-progress loop was detected and the looping iterations "
    "were discarded. Previous fixes for this error did not work; propose a "
    "fundamentally different solution."
)
TARGET_CHISEL = "TARGET-LANGUAGE: Chisel"
TARGET_VERILOG = "TARGET-LANGUAGE: Verilog"

GENERATOR_SYSTEM = (
    "You are an expert hardware engineer. You write complete, compilable Chisel 3 "
    "modules named TopModule from natural-language specifications. Reply with a "
    "single Scala code block and nothing else."
)

VERILOG_GENERATOR_SYSTEM = (
    "You are an expert hardware engineer. You write complete, synthesizable "
    "Verilog-2001 modules named TopModule from natural-language specifications. "
    "Reply with a single Verilog code block and nothing else."
)

REVIEWER_SYSTEM = (
    "You are a hardware verification expert. Given the compilation or simulation "
    "feedback for a Chisel module and the history of previous attempts, produce a "
    "revision plan. For every error give its Location, Root Cause and Solution."
)

INSPECTOR_SYSTEM = (
    "You maintain the reflection trace of an iterative code-repair workflow and "
    "detect non-progress loops: answer YES when two pieces of feedback describe "
    "the same error at the same location with the same root cause, NO otherwise."
)


def generation_prompt(spec: str, case_id: str | None, language: str = "chisel") -> list[ChatMessage]:
    """Initial Generator prompt (Step 1 of the workflow)."""
    target = TARGET_VERILOG if language == "verilog" else TARGET_CHISEL
    system = VERILOG_GENERATOR_SYSTEM if language == "verilog" else GENERATOR_SYSTEM
    case_line = f"// {CASE_MARKER} {case_id}\n" if case_id else ""
    user = (
        f"{target}\n"
        f"{SECTION_SPEC}\n"
        f"{case_line}{spec}\n\n"
        "Write the complete module implementation."
    )
    return [ChatMessage("system", system), ChatMessage("user", user)]


def revision_prompt(
    spec: str,
    case_id: str | None,
    previous_code: str,
    revision_plan: str,
    language: str = "chisel",
    escaped: bool = False,
) -> list[ChatMessage]:
    """Generator prompt for a reflection iteration (Step 7)."""
    target = TARGET_VERILOG if language == "verilog" else TARGET_CHISEL
    system = VERILOG_GENERATOR_SYSTEM if language == "verilog" else GENERATOR_SYSTEM
    fence = "verilog" if language == "verilog" else "scala"
    case_line = f"// {CASE_MARKER} {case_id}\n" if case_id else ""
    escape_block = f"{ESCAPE_NOTICE}\n\n" if escaped else ""
    user = (
        f"{target}\n"
        f"{SECTION_SPEC}\n"
        f"{case_line}{spec}\n\n"
        f"{SECTION_PREVIOUS_CODE}\n"
        f"```{fence}\n{previous_code}\n```\n\n"
        f"{escape_block}"
        f"{SECTION_REVISION_PLAN}\n{revision_plan}\n\n"
        "Apply the revision plan and output the complete corrected module."
    )
    return [ChatMessage("system", system), ChatMessage("user", user)]


def review_prompt(
    spec: str,
    case_id: str | None,
    current_code: str,
    feedback_text: str,
    trace_summary: str,
    knowledge_text: str,
    escaped: bool = False,
    language: str = "chisel",
) -> list[ChatMessage]:
    """Reviewer prompt (Step 6): analyse the trace and produce a revision plan."""
    fence = "verilog" if language == "verilog" else "scala"
    case_line = f"// {CASE_MARKER} {case_id}\n" if case_id else ""
    escape_block = f"{ESCAPE_NOTICE}\n\n" if escaped else ""
    user = (
        f"{SECTION_SPEC}\n{case_line}{spec}\n\n"
        f"{SECTION_PREVIOUS_CODE}\n```{fence}\n{current_code}\n```\n\n"
        f"{SECTION_FEEDBACK}\n{feedback_text}\n\n"
        f"{SECTION_TRACE}\n{trace_summary}\n\n"
        f"{escape_block}"
        f"{SECTION_KNOWLEDGE}\n{knowledge_text}\n\n"
        "Produce the revision plan."
    )
    return [ChatMessage("system", REVIEWER_SYSTEM), ChatMessage("user", user)]


def loop_check_prompt(previous_signature: str, current_signature: str) -> list[ChatMessage]:
    """Inspector prompt asking whether two errors share the same root cause."""
    user = (
        "Previous error signature:\n"
        f"{previous_signature}\n\n"
        "Current error signature:\n"
        f"{current_signature}\n\n"
        "Do these describe the same error with the same root cause? Answer YES or NO."
    )
    return [ChatMessage("system", INSPECTOR_SYSTEM), ChatMessage("user", user)]


def extract_code_block(text: str) -> str:
    """Pull the first fenced code block out of an LLM response (or return raw text)."""
    if "```" not in text:
        return text.strip()
    parts = text.split("```")
    if len(parts) < 3:
        return text.strip()
    block = parts[1]
    first_newline = block.find("\n")
    if first_newline >= 0 and block[:first_newline].strip().isalpha():
        block = block[first_newline + 1:]
    return block.strip()
