"""Synthetic LLM backend.

The backend stands in for the commercial LLM APIs the paper uses.  It speaks
the same text-in / text-out protocol as a real model (so the agents in
:mod:`repro.core` are unchanged) but produces its Chisel/Verilog attempts by
fault-injection against the benchmark's golden solutions:

* an initial generation is the golden solution with probability equal to the
  model's calibrated zero-shot success rate, otherwise it carries one or two
  injected faults (syntax faults from the Table II catalogue, functional
  faults from the problem definition);
* a revision repairs each remaining fault with the profile's per-iteration
  fix probability; failed repairs are either *futile edits* (same error —
  the non-progress loops of §IV-C) or switch to a different fault; functional
  fixes occasionally reintroduce a syntax fault (the Fig. 7 effect);
* the escape notice in the prompt boosts the fix probability, modelling the
  fresh perspective the escape mechanism buys.

Because every attempt is real Chisel/Verilog text, the toolchain, testbench,
feedback formatting, trace and escape machinery all operate on genuine data.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.llm import prompts
from repro.llm.client import ChatMessage
from repro.llm.profiles import ModelProfile
from repro.llm.verilog_faults import VERILOG_FAULTS_BY_ID, applicable_verilog_faults
from repro.problems.base import Problem
from repro.problems.mutations import SYNTAX_FAULTS_BY_ID, applicable_syntax_faults
from repro.problems.registry import ProblemRegistry
from repro.toolchain.compiler import ChiselCompiler


@dataclass(frozen=True)
class FaultRef:
    """A reference to one injected fault in an attempt."""

    kind: str  # "syntax", "functional", "vsyntax", "vfunctional"
    fault_id: str

    @property
    def is_syntax(self) -> bool:
        return self.kind in ("syntax", "vsyntax")


@dataclass
class AttemptState:
    """Bookkeeping for one emitted code attempt."""

    problem_id: str
    language: str
    faults: list[FaultRef] = field(default_factory=list)
    revision: int = 0


class SyntheticChiselLLM:
    """A profile-driven synthetic LLM implementing the ChatClient protocol."""

    def __init__(
        self,
        registry: ProblemRegistry,
        profile: ModelProfile,
        seed: int = 0,
        compiler: ChiselCompiler | None = None,
        golden_verilog_cache: dict[str, str] | None = None,
    ):
        self.registry = registry
        self.profile = profile
        self.rng = random.Random(seed)
        self.compiler = compiler or ChiselCompiler(top="TopModule")
        # The golden-Verilog cache may be shared across clients (the experiment
        # harness does this) so each golden solution is compiled only once.
        self._golden_verilog = golden_verilog_cache if golden_verilog_cache is not None else {}
        self._states: dict[str, AttemptState] = {}
        self.generation_count = 0
        self.revision_count = 0

    # ----------------------------------------------------------------- client

    def complete(self, messages: list[ChatMessage]) -> str:
        system = messages[0].content if messages else ""
        user = messages[-1].content if messages else ""

        if system == prompts.INSPECTOR_SYSTEM:
            return self._answer_loop_check(user)
        if system == prompts.REVIEWER_SYSTEM:
            return self._write_revision_plan(user)
        return self._generate_code(user)

    # --------------------------------------------------------------- inspector

    def _answer_loop_check(self, user: str) -> str:
        sections = user.split("signature:")
        if len(sections) >= 3:
            previous = sections[1].split("Current error")[0].strip()
            current = sections[2].split("Do these")[0].strip()
            return "YES" if previous == current else "NO"
        return "NO"

    # ---------------------------------------------------------------- reviewer

    def _write_revision_plan(self, user: str) -> str:
        feedback = _section(user, prompts.SECTION_FEEDBACK)
        lines = [line.strip() for line in feedback.splitlines() if line.strip()]
        plan: list[str] = []
        index = 1
        for line in lines:
            if line.startswith("[error]") or line.startswith("functional point"):
                plan.append(f"Error {index}:")
                plan.append(f"  Location: {line[:160]}")
                plan.append("  Root Cause: the generated code violates the behaviour or typing rule reported above.")
                plan.append("  Solution: rewrite the offending construct following the cited rule and the common-error guidance.")
                index += 1
        if not plan:
            plan.append("No actionable errors were reported; regenerate the module from the specification.")
        return "\n".join(plan)

    # --------------------------------------------------------------- generator

    def _generate_code(self, user: str) -> str:
        language = "verilog" if prompts.TARGET_VERILOG in user else "chisel"
        case_id = _case_id(user)
        problem = self._problem_for(case_id)
        fence = "verilog" if language == "verilog" else "scala"

        if problem is None:
            # Without a benchmark case to key on the synthetic backend cannot
            # fabricate a meaningful design; return an empty module skeleton.
            return f"```{fence}\n// unknown benchmark case\n```"

        if prompts.SECTION_REVISION_PLAN in user:
            self.revision_count += 1
            code = self._revise(user, problem, language)
        else:
            self.generation_count += 1
            code = self._initial_attempt(problem, language)
        return f"```{fence}\n{code}\n```"

    # ------------------------------------------------------------ attempt flow

    def _initial_attempt(self, problem: Problem, language: str) -> str:
        baseline = (
            self.profile.verilog_baseline_success
            if language == "verilog"
            else self.profile.chisel_baseline_success
        )
        if self.rng.random() < baseline:
            return self._register(self._golden(problem, language), problem, language, [])

        faults: list[FaultRef] = []
        first_kind = (
            "syntax" if self.rng.random() < self.profile.syntax_error_share else "functional"
        )
        first = self._sample_fault(problem, language, first_kind, exclude=[])
        if first is not None:
            faults.append(first)
        if self.rng.random() < self.profile.two_fault_prob:
            other_kind = "functional" if first_kind == "syntax" else "syntax"
            second = self._sample_fault(problem, language, other_kind, exclude=faults)
            if second is not None:
                faults.append(second)
        if not faults:
            return self._register(self._golden(problem, language), problem, language, [])
        code = self._build_code(problem, language, faults, revision=0)
        return self._register(code, problem, language, faults)

    def _revise(self, user: str, problem: Problem, language: str) -> str:
        previous_code = prompts.extract_code_block(_section(user, prompts.SECTION_PREVIOUS_CODE))
        escaped = prompts.ESCAPE_NOTICE in user
        state = self._states.get(previous_code.strip())
        if state is None:
            # Unknown previous code (e.g. a hand-written attempt): restart.
            return self._initial_attempt(problem, language)

        boost = self.profile.escape_boost if escaped else 1.0
        remaining: list[FaultRef] = []
        for fault in state.faults:
            kind = "syntax" if fault.is_syntax else "functional"
            fix_probability = min(0.97, self.profile.fix_probability(kind, language) * boost)
            if self.rng.random() < fix_probability:
                # Fault repaired.  Functional repairs occasionally reintroduce a
                # syntax error (Fig. 7).
                if kind == "functional" and self.rng.random() < self.profile.regression_prob:
                    regression = self._sample_fault(problem, language, "syntax", exclude=remaining)
                    if regression is not None:
                        remaining.append(regression)
                continue
            if self.rng.random() < self.profile.loop_prob:
                remaining.append(fault)  # futile edit: same error persists
                continue
            alternative = self._sample_fault(
                problem, language, kind, exclude=remaining + [fault]
            )
            remaining.append(alternative if alternative is not None else fault)

        revision = state.revision + 1
        if not remaining:
            return self._register(self._golden(problem, language), problem, language, [])
        code = self._build_code(problem, language, remaining, revision)
        return self._register(code, problem, language, remaining, revision)

    # ----------------------------------------------------------------- helpers

    def _problem_for(self, case_id: str | None) -> Problem | None:
        if case_id is None:
            return None
        try:
            return self.registry.by_id(case_id)
        except KeyError:
            return None

    def _golden(self, problem: Problem, language: str) -> str:
        if language == "chisel":
            return problem.golden_chisel
        if problem.problem_id not in self._golden_verilog:
            result = self.compiler.compile(problem.golden_chisel)
            if not result.success or result.verilog is None:
                raise RuntimeError(
                    f"golden Chisel for {problem.problem_id} does not compile: "
                    f"{result.render_feedback()}"
                )
            self._golden_verilog[problem.problem_id] = result.verilog
        return self._golden_verilog[problem.problem_id]

    def _sample_fault(
        self, problem: Problem, language: str, kind: str, exclude: list[FaultRef]
    ) -> FaultRef | None:
        excluded_ids = {fault.fault_id for fault in exclude}
        if language == "verilog":
            golden = self._golden(problem, "verilog")
            verilog_kind = "syntax" if kind == "syntax" else "functional"
            candidates = [
                FaultRef("v" + verilog_kind, fault.fault_id)
                for fault in applicable_verilog_faults(golden, verilog_kind)
                if fault.fault_id not in excluded_ids
            ]
        elif kind == "syntax":
            candidates = [
                FaultRef("syntax", fault.fault_id)
                for fault in applicable_syntax_faults(problem.golden_chisel, problem)
                if fault.fault_id not in excluded_ids
            ]
        else:
            candidates = [
                FaultRef("functional", fault.fault_id)
                for fault in problem.functional_faults
                if fault.applies_to(problem.golden_chisel) and fault.fault_id not in excluded_ids
            ]
        if not candidates:
            return None
        return self.rng.choice(candidates)

    def _build_code(
        self, problem: Problem, language: str, faults: list[FaultRef], revision: int
    ) -> str:
        code = self._golden(problem, language)
        ordered = sorted(faults, key=lambda fault: 0 if fault.kind in ("functional", "vfunctional") else 1)
        for fault in ordered:
            if fault.kind == "functional":
                text_fault = next(
                    f for f in problem.functional_faults if f.fault_id == fault.fault_id
                )
                if text_fault.applies_to(code):
                    code = text_fault.apply(code)
            elif fault.kind == "syntax":
                injector = SYNTAX_FAULTS_BY_ID[fault.fault_id]
                if injector.applies(code, problem):
                    code = injector.apply(code, problem)
            else:
                verilog_fault = VERILOG_FAULTS_BY_ID[fault.fault_id]
                if verilog_fault.applies(code):
                    code = verilog_fault.apply(code)
        if revision > 0:
            comment = "//" if language == "chisel" else "//"
            code = code.rstrip("\n") + f"\n{comment} revision {revision}\n"
        return code

    def _register(
        self,
        code: str,
        problem: Problem,
        language: str,
        faults: list[FaultRef],
        revision: int = 0,
    ) -> str:
        self._states[code.strip()] = AttemptState(problem.problem_id, language, list(faults), revision)
        return code


# ---------------------------------------------------------------------------
# Prompt parsing helpers
# ---------------------------------------------------------------------------


def _section(text: str, header: str) -> str:
    """Return the body of a ``## header`` section (up to the next ``## ``)."""
    start = text.find(header)
    if start < 0:
        return ""
    start += len(header)
    end = text.find("\n## ", start)
    return text[start:end] if end >= 0 else text[start:]


def _case_id(text: str) -> str | None:
    marker = prompts.CASE_MARKER
    index = text.find(marker)
    if index < 0:
        return None
    line_end = text.find("\n", index)
    value = text[index + len(marker): line_end if line_end >= 0 else None]
    return value.strip() or None
