"""Chat-client protocol shared by every agent.

Clients may now be shared across many interleaved generation sessions (the
async service multiplexes hundreds on one event loop and offloads toolchain
steps to worker threads), so the recording clients guard their ``calls``
lists with a lock: appends from concurrent threads can't tear, and snapshots
taken while sessions are in flight are consistent.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Protocol


@dataclass(frozen=True)
class ChatMessage:
    """One message in a chat exchange (role is "system", "user" or "assistant")."""

    role: str
    content: str


class ChatClient(Protocol):
    """Anything that can turn a message list into a completion string."""

    def complete(self, messages: list[ChatMessage]) -> str:  # pragma: no cover - protocol
        ...


class CallableClient:
    """Adapt a plain ``messages -> text`` callable (e.g. a real API wrapper)."""

    def __init__(self, function: Callable[[list[ChatMessage]], str]):
        self._function = function

    def complete(self, messages: list[ChatMessage]) -> str:
        return self._function(messages)


class EchoClient:
    """A trivial client that returns a fixed response; useful in unit tests."""

    def __init__(self, response: str = ""):
        self.response = response
        self.calls: list[list[ChatMessage]] = []
        self._lock = threading.Lock()

    def complete(self, messages: list[ChatMessage]) -> str:
        with self._lock:
            self.calls.append(list(messages))
        return self.response

    def call_count(self) -> int:
        with self._lock:
            return len(self.calls)


class RecordingClient:
    """Wrap any client, recording every ``(messages, response)`` exchange.

    Safe under concurrent use: the record list is lock-guarded, and
    :meth:`exchanges` returns a snapshot copy so callers can iterate while
    other sessions keep completing.
    """

    def __init__(self, inner: ChatClient):
        self.inner = inner
        self.calls: list[tuple[list[ChatMessage], str]] = []
        self._lock = threading.Lock()

    def complete(self, messages: list[ChatMessage]) -> str:
        response = self.inner.complete(messages)
        with self._lock:
            self.calls.append((list(messages), response))
        return response

    def call_count(self) -> int:
        with self._lock:
            return len(self.calls)

    def exchanges(self) -> list[tuple[list[ChatMessage], str]]:
        with self._lock:
            return list(self.calls)
