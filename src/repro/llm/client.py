"""Chat-client protocol shared by every agent."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol


@dataclass(frozen=True)
class ChatMessage:
    """One message in a chat exchange (role is "system", "user" or "assistant")."""

    role: str
    content: str


class ChatClient(Protocol):
    """Anything that can turn a message list into a completion string."""

    def complete(self, messages: list[ChatMessage]) -> str:  # pragma: no cover - protocol
        ...


class CallableClient:
    """Adapt a plain ``messages -> text`` callable (e.g. a real API wrapper)."""

    def __init__(self, function: Callable[[list[ChatMessage]], str]):
        self._function = function

    def complete(self, messages: list[ChatMessage]) -> str:
        return self._function(messages)


class EchoClient:
    """A trivial client that returns a fixed response; useful in unit tests."""

    def __init__(self, response: str = ""):
        self.response = response
        self.calls: list[list[ChatMessage]] = []

    def complete(self, messages: list[ChatMessage]) -> str:
        self.calls.append(list(messages))
        return self.response
