"""Fault injection for Verilog attempts (AutoChip baseline and Table I Verilog column)."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class VerilogFault:
    """A mechanical edit to golden Verilog producing a syntax or functional error."""

    fault_id: str
    kind: str  # "syntax" or "functional"
    description: str
    applies: Callable[[str], bool]
    apply: Callable[[str], str]


_ASSIGN_RE = re.compile(r"assign (\w+) = (.+);")

_OPERATOR_SWAPS = [(" + ", " - "), (" & ", " | "), (" ^ ", " & "), (" < ", " > "), (" == ", " != ")]


def _swap_operator_applies(source: str) -> bool:
    return any(old in source for old, _ in _OPERATOR_SWAPS) or _ASSIGN_RE.search(source) is not None


def _swap_operator_apply(source: str) -> str:
    for old, new in _OPERATOR_SWAPS:
        if old in source:
            return source.replace(old, new, 1)
    match = _ASSIGN_RE.search(source)
    assert match is not None
    replacement = f"assign {match.group(1)} = ~({match.group(2)});"
    return source[: match.start()] + replacement + source[match.end():]


def _invert_condition_applies(source: str) -> bool:
    return " ? " in source


def _invert_condition_apply(source: str) -> str:
    index = source.find(" ? ")
    # Swap the branches of the first ternary by negating its condition.
    return source[:index] + " == 0 ? " + source[index + 3:]


def _missing_semicolon_applies(source: str) -> bool:
    return ";" in source.split("endmodule")[0] and "assign" in source


def _missing_semicolon_apply(source: str) -> str:
    index = source.find("assign")
    end = source.find(";", index)
    return source[:end] + source[end + 1:]


def _missing_endmodule_applies(source: str) -> bool:
    return "endmodule" in source


def _missing_endmodule_apply(source: str) -> str:
    return source.replace("endmodule", "", 1)


def _keyword_typo_applies(source: str) -> bool:
    return "assign" in source


def _keyword_typo_apply(source: str) -> str:
    return source.replace("assign", "asign", 1)


VERILOG_FAULTS: list[VerilogFault] = [
    VerilogFault(
        "vfunc_operator_swap",
        "functional",
        "a binary operator (or an output polarity) is wrong",
        _swap_operator_applies,
        _swap_operator_apply,
    ),
    VerilogFault(
        "vfunc_condition_inverted",
        "functional",
        "a mux/ternary condition is inverted",
        _invert_condition_applies,
        _invert_condition_apply,
    ),
    VerilogFault(
        "vsyntax_missing_semicolon",
        "syntax",
        "a statement is missing its terminating semicolon",
        _missing_semicolon_applies,
        _missing_semicolon_apply,
    ),
    VerilogFault(
        "vsyntax_missing_endmodule",
        "syntax",
        "the endmodule keyword is missing",
        _missing_endmodule_applies,
        _missing_endmodule_apply,
    ),
    VerilogFault(
        "vsyntax_keyword_typo",
        "syntax",
        "the assign keyword is misspelled",
        _keyword_typo_applies,
        _keyword_typo_apply,
    ),
]

VERILOG_FAULTS_BY_ID = {fault.fault_id: fault for fault in VERILOG_FAULTS}


def applicable_verilog_faults(source: str, kind: str | None = None) -> list[VerilogFault]:
    faults = [f for f in VERILOG_FAULTS if f.applies(source)]
    if kind is not None:
        faults = [f for f in faults if f.kind == kind]
    return faults
