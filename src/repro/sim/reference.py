"""Behavioural (Python) reference models.

The benchmark problems primarily use golden Verilog references (compiled from
the golden Chisel solution), but a behavioural model is useful in tests to
validate the Verilog simulator itself against an independent implementation,
and as the reference for problems whose golden behaviour is easier to state
directly in Python.
"""

from __future__ import annotations

from typing import Callable

from repro.hdl.bits import mask
from repro.sim.testbench import DeviceUnderTest


class BehavioralDevice(DeviceUnderTest):
    """A reference model defined by Python functions over a state dict.

    Parameters
    ----------
    output_widths:
        Mapping of output port name to bit width (results are masked to it).
    combinational:
        ``f(inputs, state) -> outputs`` evaluated whenever outputs are read.
    sequential:
        Optional ``f(inputs, state) -> None`` applied once per clock cycle
        (mutates ``state``).
    reset_state:
        Factory returning the initial/reset state dict.
    """

    def __init__(
        self,
        output_widths: dict[str, int],
        combinational: Callable[[dict, dict], dict],
        sequential: Callable[[dict, dict], None] | None = None,
        reset_state: Callable[[], dict] | None = None,
    ):
        self.output_widths = dict(output_widths)
        self.combinational = combinational
        self.sequential = sequential
        self.reset_state = reset_state or dict
        self.state: dict = self.reset_state()
        self.inputs: dict[str, int] = {}

    def drive(self, inputs: dict[str, int]) -> None:
        self.inputs.update(inputs)

    def tick(self, clock: str, cycles: int) -> None:
        if self.sequential is None:
            return
        for _ in range(cycles):
            self.sequential(dict(self.inputs), self.state)

    def reset_pulse(self, reset: str, clock: str, cycles: int) -> None:
        if cycles > 0:
            self.state = self.reset_state()

    def read(self, name: str) -> int:
        outputs = self.combinational(dict(self.inputs), self.state)
        if name not in outputs:
            raise KeyError(f"behavioural reference produced no output named {name!r}")
        width = self.output_widths.get(name, 32)
        return outputs[name] & mask(width)

    def output_names(self) -> list[str]:
        return list(self.output_widths)
