"""Functional testbench harness: stimuli, functional points, DUT-vs-reference.

Mirrors §IV-B of the paper: every test case carries a reference module and a
series of *functional points* (input stimuli plus expected outputs); the
simulator applies the stimuli to the DUT, compares against the reference, and
the mismatching points become the functional-error feedback the Reviewer sees.
"""

from repro.sim.testbench import (
    FunctionalPoint,
    Mismatch,
    SimulationReport,
    Testbench,
    run_testbench,
)

__all__ = [
    "FunctionalPoint",
    "Mismatch",
    "SimulationReport",
    "Testbench",
    "run_testbench",
]
