"""Testbench execution: drive stimuli into DUT and reference, compare outputs.

Three backends produce bit-identical :class:`SimulationReport`s:

* the **trace** backend compiles the whole stimulus schedule into one
  generated closure per (module, testbench shape) pair
  (:func:`repro.verilog.compile_sim.get_trace_kernel`): stimulus values are
  preprocessed once into a flat array, the reset/drive/settle/tick sequence is
  unrolled, and all sampled outputs come back in a single call — no per-point
  dict or attribute dispatch;
* the **vector** backend
  (:func:`repro.verilog.compile_vec.get_vec_kernel`) goes one step further:
  NumPy structure-of-arrays kernels with one ``uint64`` lane per execution,
  evaluating every stimulus point of a combinational testbench — and, through
  :func:`run_testbenches`, every structurally identical candidate of a batch
  in lockstep — in one kernel call.  Ineligible pairings (>64-bit contexts,
  missing NumPy) silently fall back to trace/step-wise;
* the **step-wise** backend drives both devices point by point through the
  :class:`DeviceUnderTest` interface.  It is the semantic oracle, the only
  path for behavioural references and interpreter-fallback modules, and the
  path that reproduces runtime :class:`SimulationError` reports exactly.

Backend selection: ``run_testbench(..., backend=...)`` accepts ``"auto"``
(trace when both devices are eligible — the default), ``"trace"`` /
``"vector"`` (prefer that path, silently falling back when the pairing is
ineligible) and ``"stepwise"``; the environment variable ``REPRO_TB_BACKEND``
overrides the default for ``"auto"`` callers.  Forcing the backend through the
*environment* is stricter than the argument: ``REPRO_TB_BACKEND=trace`` (or
``=vector``) raises :class:`~repro.verilog.simulator.SimulationError` when the
pairing cannot use the forced backend (behavioural reference,
interpreter-only module, oversized schedule, >64-bit signals for vector)
instead of silently falling back — a global forcing knob that degrades
quietly would invalidate whatever measurement or verification the caller
forced it for.  ``REPRO_SIM_BACKEND=interpreter`` also disables the trace and
vector paths under ``"auto"``, since both execute compiled kernels.

**Health-based degradation**: kernel-path crashes (exceptions escaping a
compiled vector/trace kernel — never ordinary mismatch reports or
:class:`SimulationError`) feed per-backend circuit breakers.  Under
``"auto"``, a backend whose breaker trips (``REPRO_SIM_HEALTH_THRESHOLD``
consecutive crashes, default 3) is skipped until its cooldown expires —
vector degrades to trace, trace to step-wise — so a single poisoned kernel
path cannot fail a whole campaign.  Env-forced backends stay strict: with
``REPRO_TB_BACKEND=vector``/``=trace`` a kernel crash propagates instead of
degrading, because a forced backend that silently degrades would invalidate
whatever the caller forced it for.  ``backend_health()`` snapshots the
breakers; ``reset_backend_health()`` re-arms them (tests).

:func:`run_testbenches` is the batched entry point: jobs whose modules share a
structural fingerprint and testbench shape coalesce into one vector-kernel
call (duplicate (candidate, stimulus) rows collapse to a single lane), with
``REPRO_SIM_MAX_LANES`` bounding the lanes per call.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.retry import CircuitBreaker
from repro.verilog.compile_sim import TraceSchedule, get_trace_kernel
from repro.verilog.compile_vec import VecTraceKernel, get_vec_kernel
from repro.verilog.simulator import Simulation, SimulationError
from repro.verilog.vast import VModule

_TB_BACKEND_ENV = "REPRO_TB_BACKEND"
_TB_BACKENDS = ("auto", "trace", "stepwise", "vector")
_MAX_LANES_ENV = "REPRO_SIM_MAX_LANES"
_DEFAULT_MAX_LANES = 65536
_HEALTH_THRESHOLD_ENV = "REPRO_SIM_HEALTH_THRESHOLD"
_HEALTH_COOLDOWN = 5.0

#: Per-backend health breakers (lazily built; ``None`` entries = disabled).
_health: dict[str, CircuitBreaker | None] | None = None


def _health_breakers() -> dict[str, CircuitBreaker | None]:
    global _health
    if _health is None:
        raw = os.environ.get(_HEALTH_THRESHOLD_ENV, "").strip()
        threshold = int(raw) if raw else 3
        _health = {
            name: (
                CircuitBreaker(threshold, cooldown=_HEALTH_COOLDOWN, name="sim." + name)
                if threshold > 0
                else None
            )
            for name in ("vector", "trace")
        }
    return _health


def _health_allows(backend: str) -> bool:
    breaker = _health_breakers().get(backend)
    return breaker is None or breaker.allow()


def _health_failure(backend: str) -> None:
    breaker = _health_breakers().get(backend)
    if breaker is not None:
        breaker.record_failure()


def _health_success(backend: str) -> None:
    breaker = _health_breakers().get(backend)
    if breaker is not None:
        breaker.record_success()


def backend_health() -> dict:
    """Snapshot of the vector/trace health breakers (state, failures, opens)."""
    return {
        name: (breaker.snapshot() if breaker is not None else {"state": "disabled"})
        for name, breaker in _health_breakers().items()
    }


def reset_backend_health() -> None:
    """Re-arm the health breakers (re-reading ``REPRO_SIM_HEALTH_THRESHOLD``)."""
    global _health
    _health = None


@dataclass(frozen=True)
class FunctionalPoint:
    """One functional point: input stimuli, optional clocking, optional check.

    ``clock_cycles`` positive edges are applied *after* the inputs are driven;
    for purely combinational designs it stays 0 and outputs are compared after
    settling.
    """

    inputs: dict[str, int] = field(default_factory=dict)
    clock_cycles: int = 0
    check: bool = True
    comment: str = ""


@dataclass(frozen=True)
class Mismatch:
    """One failed functional point, formatted for reviewer feedback."""

    point_index: int
    signal: str
    inputs: dict[str, int]
    expected: int
    actual: int
    comment: str = ""

    def render(self) -> str:
        stimuli = ", ".join(f"{name}={value}" for name, value in sorted(self.inputs.items()))
        text = (
            f"functional point #{self.point_index}: output {self.signal} "
            f"expected {self.expected} but got {self.actual} (inputs: {stimuli})"
        )
        if self.comment:
            text += f" [{self.comment}]"
        return text


@dataclass
class SimulationReport:
    """Outcome of running a testbench against a DUT."""

    total_points: int = 0
    checked_points: int = 0
    failed_points: int = 0
    mismatches: list[Mismatch] = field(default_factory=list)
    runtime_error: str | None = None

    @property
    def passed(self) -> bool:
        return self.runtime_error is None and self.failed_points == 0

    def render(self) -> str:
        if self.runtime_error is not None:
            return f"simulation error: {self.runtime_error}"
        if self.passed:
            return f"all {self.checked_points} functional points passed"
        lines = [
            f"{self.failed_points} of {self.checked_points} functional points failed:"
        ]
        for mismatch in self.mismatches[:20]:
            lines.append("  " + mismatch.render())
        if len(self.mismatches) > 20:
            lines.append(f"  ... and {len(self.mismatches) - 20} more mismatches")
        return "\n".join(lines)


@dataclass
class Testbench:
    """A stimulus program shared by the DUT and the reference module."""

    __test__ = False  # not a pytest test class despite the name

    points: list[FunctionalPoint]
    clock: str = "clock"
    reset: str = "reset"
    reset_cycles: int = 1
    observed_outputs: list[str] | None = None
    max_mismatches: int = 64


class DeviceUnderTest:
    """Adapter giving :class:`Simulation` and behavioural models one interface."""

    def drive(self, inputs: dict[str, int]) -> None:
        raise NotImplementedError

    def tick(self, clock: str, cycles: int) -> None:
        raise NotImplementedError

    def reset_pulse(self, reset: str, clock: str, cycles: int) -> None:
        raise NotImplementedError

    def read(self, name: str) -> int:
        raise NotImplementedError

    def output_names(self) -> list[str]:
        raise NotImplementedError

    def flush(self) -> None:
        """Apply any deferred/batched stimulus now.  Default: nothing deferred."""


class VerilogDevice(DeviceUnderTest):
    """A Verilog module running in the cycle-based simulator."""

    def __init__(self, module: VModule):
        self.module = module
        self.simulation = Simulation(module)

    def drive(self, inputs: dict[str, int]) -> None:
        known = {}
        for name, value in inputs.items():
            if self.module.port_named(name) is None:
                raise SimulationError(
                    f"module {self.module.name} has no port named {name!r}; the "
                    "generated module does not match the required I/O contract"
                )
            known[name] = value
        # Defer settling: the next step(), read() or flush() settles once for
        # the batch, in the same state an eager settle would have seen.
        self.simulation.poke_many(known, settle=False)

    def flush(self) -> None:
        self.simulation.flush()

    def tick(self, clock: str, cycles: int) -> None:
        if cycles <= 0:
            return
        if self.module.port_named(clock) is None:
            raise SimulationError(
                f"module {self.module.name} has no clock port {clock!r}"
            )
        self.simulation.step(clock, cycles)

    def reset_pulse(self, reset: str, clock: str, cycles: int) -> None:
        if cycles <= 0 or self.module.port_named(reset) is None:
            return
        # The assertion settle is deferred into step()'s pre-edge settle (same
        # state, so merging is safe for any design).  The post-edge settle and
        # the deassertion settle are kept eager: skipping either would change
        # the settle *sequence*, which is observable for latch-like
        # (path-dependent) combinational logic.
        self.simulation.poke(reset, 1, settle=False)
        self.simulation.step(clock, cycles)
        self.simulation.flush()
        self.simulation.poke(reset, 0)

    def read(self, name: str) -> int:
        if self.module.port_named(name) is None:
            raise SimulationError(
                f"module {self.module.name} has no output port named {name!r}"
            )
        return self.simulation.peek(name)

    def output_names(self) -> list[str]:
        return [p.name for p in self.module.outputs()]


def _trace_plan(testbench: Testbench, observed: tuple[str, ...]):
    """``(TraceSchedule, flat stimulus tuple)`` for this testbench + outputs.

    Memoized on the testbench instance (stimulus programs are immutable by
    convention), keyed by the observed-output tuple since the default observed
    list depends on the reference device.
    """
    plans = testbench.__dict__.setdefault("_trace_plans", {})
    plan = plans.get(observed)
    if plan is None:
        points: list[tuple[tuple[str, ...], int, bool]] = []
        stimulus: list[int] = []
        for point in testbench.points:
            points.append((tuple(point.inputs), point.clock_cycles, point.check))
            stimulus.extend(point.inputs.values())
        schedule = TraceSchedule(
            clock=testbench.clock,
            reset=testbench.reset,
            reset_cycles=testbench.reset_cycles,
            observed=observed,
            points=tuple(points),
        )
        plan = plans[observed] = (schedule, tuple(stimulus))
    return plan


def _compare_outputs(
    testbench: Testbench,
    observed: Sequence[str],
    dut_out: Sequence[int],
    ref_out: Sequence[int],
) -> SimulationReport:
    """Build the report from two flat sampled-output arrays (point-major order).

    Shared by the trace and vector backends so mismatch ordering and
    ``max_mismatches`` capping are identical by construction.
    """
    report = SimulationReport(total_points=len(testbench.points))
    cursor = 0
    width = len(observed)
    for index, point in enumerate(testbench.points):
        if not point.check:
            continue
        report.checked_points += 1
        point_failed = False
        for position, signal in enumerate(observed):
            expected = ref_out[cursor + position]
            actual = dut_out[cursor + position]
            if expected != actual:
                point_failed = True
                if len(report.mismatches) < testbench.max_mismatches:
                    report.mismatches.append(
                        Mismatch(index, signal, dict(point.inputs), expected, actual, point.comment)
                    )
        cursor += width
        if point_failed:
            report.failed_points += 1
    return report


def _run_testbench_trace(
    dut: VModule, reference: VModule, testbench: Testbench
) -> SimulationReport | None:
    """Trace-compiled run; ``None`` when the pairing needs the step-wise path."""
    observed = testbench.observed_outputs
    if observed is None:
        observed = [port.name for port in reference.outputs()]
    schedule, stimulus = _trace_plan(testbench, tuple(observed))
    dut_kernel = get_trace_kernel(dut, schedule)
    if dut_kernel is None:
        return None
    ref_kernel = get_trace_kernel(reference, schedule)
    if ref_kernel is None:
        return None

    dut_out = dut_kernel.run(stimulus)
    ref_out = ref_kernel.run(stimulus)
    return _compare_outputs(testbench, observed, dut_out, ref_out)


def _compare_vec_outputs(
    testbench: Testbench,
    observed: Sequence[str],
    dut_out,
    ref_out,
) -> SimulationReport:
    """:func:`_compare_outputs` over uint64 sample arrays, fast-pathed.

    Matching arrays (the overwhelmingly common case for a passing candidate,
    and always the case for shared DUT/reference lanes) skip the per-point
    Python loop entirely — with no mismatches the loop can only count checked
    points, which is computed directly.  Divergent arrays take the shared
    slow path so mismatch ordering and capping stay identical by construction.
    """
    if dut_out is ref_out or bool((dut_out == ref_out).all()):
        report = SimulationReport(total_points=len(testbench.points))
        report.checked_points = sum(1 for point in testbench.points if point.check)
        return report
    return _compare_outputs(testbench, observed, dut_out.tolist(), ref_out.tolist())


def _packed_stimulus(testbench: Testbench, kernel: VecTraceKernel, stimulus: tuple):
    """The kernel-ready stimulus matrix, memoized on the testbench.

    Keyed by (fingerprint, digest) — repair iterations re-verify revised
    candidates against the same testbench, so the masked uint64 packing of an
    unchanged stimulus program is reused across calls.
    """
    packs = testbench.__dict__.setdefault("_vec_packs", {})
    key = (kernel.fingerprint, kernel.digest)
    packed = packs.get(key)
    if packed is None:
        packed = packs[key] = kernel.pack([stimulus])
    return packed


def _run_testbench_vector(
    dut: VModule, reference: VModule, testbench: Testbench
) -> SimulationReport | None:
    """Vector-kernel run; ``None`` when the pairing needs a scalar backend."""
    observed = testbench.observed_outputs
    if observed is None:
        observed = [port.name for port in reference.outputs()]
    schedule, stimulus = _trace_plan(testbench, tuple(observed))
    dut_kernel = get_vec_kernel(dut, schedule)
    if dut_kernel is None:
        return None
    ref_kernel = get_vec_kernel(reference, schedule)
    if ref_kernel is None:
        return None
    if ref_kernel is dut_kernel:
        # Structurally identical DUT and reference (same fingerprint hits the
        # same cached kernel): one set of lanes serves both sides.
        dut_out = ref_out = dut_kernel.run(_packed_stimulus(testbench, dut_kernel, stimulus))[0]
    else:
        dut_out = dut_kernel.run(_packed_stimulus(testbench, dut_kernel, stimulus))[0]
        ref_out = ref_kernel.run(_packed_stimulus(testbench, ref_kernel, stimulus))[0]
    return _compare_vec_outputs(testbench, observed, dut_out, ref_out)


def _max_lanes() -> int:
    raw = os.environ.get(_MAX_LANES_ENV, "").strip()
    if raw:
        try:
            value = int(raw)
        except ValueError:
            raise SimulationError(
                f"{_MAX_LANES_ENV} must be an integer, got {raw!r}"
            ) from None
        if value > 0:
            return value
    return _DEFAULT_MAX_LANES


def _run_vec_group(kernel: VecTraceKernel, rows: list[tuple]) -> list:
    """Run one kernel's deduplicated stimulus rows, chunked by the lane budget."""
    rows_per_chunk = max(1, _max_lanes() // max(1, kernel.lanes_per_row))
    outputs: list = []
    for start in range(0, len(rows), rows_per_chunk):
        matrix = kernel.run(rows[start : start + rows_per_chunk])
        outputs.extend(matrix[i] for i in range(matrix.shape[0]))
    return outputs


def run_testbenches(
    jobs: Iterable[tuple[DeviceUnderTest | VModule, DeviceUnderTest | VModule, Testbench]],
    backend: str | None = None,
) -> list[SimulationReport]:
    """Run many ``(dut, reference, testbench)`` jobs, coalescing same-shape work.

    Jobs whose modules share a structural fingerprint and testbench shape are
    grouped onto one vector kernel and simulated as a single lockstep batch;
    duplicate (module, stimulus) rows — N samples that produced the same
    candidate, or the shared golden reference — collapse to one lane.  Reports
    come back in job order and are bit-identical to per-job
    :func:`run_testbench` results.

    Under ``backend=None``/``"auto"``, a lone sequential job (nothing to
    batch with) keeps the scalar trace path, which is faster at one lane;
    ``backend="vector"`` or ``REPRO_TB_BACKEND=vector`` forces vector
    execution, the latter strictly (ineligible jobs raise).  Ineligible or
    non-batchable jobs fall back to :func:`run_testbench` individually.
    ``REPRO_SIM_MAX_LANES`` caps the lanes evaluated per kernel call; larger
    batches are split into ragged chunks transparently.
    """
    jobs = list(jobs)
    env_backend = os.environ.get(_TB_BACKEND_ENV)
    resolved = backend if backend is not None else env_backend or "auto"
    if resolved not in _TB_BACKENDS:
        raise SimulationError(
            f"unknown testbench backend {resolved!r}; expected one of {_TB_BACKENDS}"
        )
    use_vector = resolved in ("auto", "vector")
    if resolved == "auto" and os.environ.get("REPRO_SIM_BACKEND") == "interpreter":
        use_vector = False
    strict_vector = backend is None and env_backend == "vector"
    if use_vector and not strict_vector and not _health_allows("vector"):
        use_vector = False  # tripped health breaker: degrade the whole batch
    if backend is None:
        fallback_backend = None  # env semantics (incl. strictness) apply per job
    elif resolved == "vector":
        fallback_backend = "auto"
    else:
        fallback_backend = backend

    reports: list[SimulationReport | None] = [None] * len(jobs)
    # Per-kernel groups: id(kernel) -> (kernel, rows, {stimulus: row index}).
    groups: dict[int, tuple[VecTraceKernel, list[tuple], dict[tuple, int]]] = {}
    kernel_jobs: dict[int, int] = {}
    staged: list = []  # (job index, testbench, observed, dut handle, ref handle)

    def enlist(kernel: VecTraceKernel, stimulus: tuple) -> tuple[int, int]:
        key = id(kernel)
        group = groups.get(key)
        if group is None:
            group = groups[key] = (kernel, [], {})
        _kernel, rows, row_index = group
        row = row_index.get(stimulus)
        if row is None:
            row = row_index[stimulus] = len(rows)
            rows.append(stimulus)
        return key, row

    eligible: list = []  # (job index, testbench, observed, stimulus, dut_k, ref_k)
    for index, (dut, reference, testbench) in enumerate(jobs):
        plan = None
        if use_vector and isinstance(dut, VModule) and isinstance(reference, VModule):
            observed = testbench.observed_outputs
            if observed is None:
                observed = [port.name for port in reference.outputs()]
            schedule, stimulus = _trace_plan(testbench, tuple(observed))
            dut_kernel = get_vec_kernel(dut, schedule)
            ref_kernel = (
                get_vec_kernel(reference, schedule) if dut_kernel is not None else None
            )
            if dut_kernel is not None and ref_kernel is not None:
                plan = (index, testbench, observed, stimulus, dut_kernel, ref_kernel)
        if plan is None:
            reports[index] = run_testbench(dut, reference, testbench, fallback_backend)
        else:
            eligible.append(plan)
            kernel_jobs[id(plan[4])] = kernel_jobs.get(id(plan[4]), 0) + 1
            kernel_jobs[id(plan[5])] = kernel_jobs.get(id(plan[5]), 0) + 1

    for index, testbench, observed, stimulus, dut_kernel, ref_kernel in eligible:
        if resolved == "auto":
            # A lone lockstep job has nothing to batch with; the scalar trace
            # is faster at one lane.  Point-lane kernels win even solo.
            def worthwhile(kernel: VecTraceKernel) -> bool:
                return kernel.mode == "points" or kernel_jobs[id(kernel)] > 1

            if not (worthwhile(dut_kernel) and worthwhile(ref_kernel)):
                dut, reference, _tb = jobs[index]
                reports[index] = run_testbench(dut, reference, testbench, "auto")
                continue
        staged.append(
            (index, testbench, observed, enlist(dut_kernel, stimulus), enlist(ref_kernel, stimulus))
        )

    results: dict[int, list | None] = {}
    crashed = False
    for key, (kernel, rows, _) in groups.items():
        try:
            results[key] = _run_vec_group(kernel, rows)
        except SimulationError:
            raise
        except Exception:
            # A crashed kernel group fails its lanes over to the per-job
            # scalar path; strict env forcing propagates the crash instead.
            if strict_vector:
                raise
            _health_failure("vector")
            crashed = True
            results[key] = None
    for index, testbench, observed, (dut_key, dut_row), (ref_key, ref_row) in staged:
        dut_result, ref_result = results[dut_key], results[ref_key]
        if dut_result is None or ref_result is None:
            dut, reference, _tb = jobs[index]
            reports[index] = run_testbench(dut, reference, testbench, fallback_backend)
        else:
            reports[index] = _compare_vec_outputs(
                testbench, observed, dut_result[dut_row], ref_result[ref_row]
            )
    if groups and not crashed:
        _health_success("vector")
    return reports


def run_testbench(
    dut: DeviceUnderTest | VModule,
    reference: DeviceUnderTest | VModule,
    testbench: Testbench,
    backend: str | None = None,
) -> SimulationReport:
    """Run ``testbench`` on both devices and compare outputs point by point."""
    env_backend = os.environ.get(_TB_BACKEND_ENV)
    resolved = backend if backend is not None else env_backend or "auto"
    if resolved not in _TB_BACKENDS:
        raise SimulationError(
            f"unknown testbench backend {resolved!r}; expected one of {_TB_BACKENDS}"
        )
    # Env-forced trace/vector is strict: a silent fallback would quietly
    # invalidate the forcing, so ineligible pairings fail loudly instead.
    strict_trace = backend is None and env_backend == "trace"
    strict_vector = backend is None and env_backend == "vector"
    if resolved == "auto" and os.environ.get("REPRO_SIM_BACKEND") == "interpreter":
        resolved = "stepwise"  # honour the forced-interpreter knob
    if resolved == "vector":
        if isinstance(dut, VModule) and isinstance(reference, VModule):
            report = None
            if strict_vector or _health_allows("vector"):
                try:
                    report = _run_testbench_vector(dut, reference, testbench)
                except SimulationError:
                    raise
                except Exception:
                    # Kernel-path crash: strict env forcing propagates it;
                    # otherwise it feeds the vector health breaker and the
                    # job degrades to the trace tier.
                    if strict_vector:
                        raise
                    _health_failure("vector")
            if report is not None:
                _health_success("vector")
                return report
            if strict_vector:
                raise SimulationError(
                    f"{_TB_BACKEND_ENV}=vector was forced, but the pairing of "
                    f"modules {dut.name!r} and {reference.name!r} is not "
                    "vector-eligible (NumPy unavailable, >64-bit signals, "
                    "interpreter-only module, port mismatch, or oversized "
                    "schedule); unset the variable or use backend='auto' to "
                    "allow the scalar fallbacks"
                )
        elif strict_vector:
            devices = ", ".join(type(device).__name__ for device in (dut, reference))
            raise SimulationError(
                f"{_TB_BACKEND_ENV}=vector was forced, but the vector backend "
                f"requires parsed Verilog modules on both sides (got {devices}); "
                "behavioural references always run step-wise"
            )
        resolved = "auto"  # argument semantics: fall back to trace, then step-wise
    if (
        resolved in ("auto", "trace")
        and isinstance(dut, VModule)
        and isinstance(reference, VModule)
    ):
        report = None
        if strict_trace or _health_allows("trace"):
            try:
                report = _run_testbench_trace(dut, reference, testbench)
            except SimulationError:
                raise
            except Exception:
                # Kernel-path crash: strict forcing propagates, auto feeds
                # the trace health breaker and degrades to step-wise.
                if strict_trace:
                    raise
                _health_failure("trace")
        if report is not None:
            _health_success("trace")
            return report
        if strict_trace:
            raise SimulationError(
                f"{_TB_BACKEND_ENV}=trace was forced, but the pairing of modules "
                f"{dut.name!r} and {reference.name!r} is not trace-eligible "
                "(interpreter-only module, port mismatch, or oversized schedule); "
                "unset the variable or use backend='auto' to allow the step-wise "
                "fallback"
            )
    elif strict_trace:
        devices = ", ".join(type(device).__name__ for device in (dut, reference))
        raise SimulationError(
            f"{_TB_BACKEND_ENV}=trace was forced, but the trace backend requires "
            f"parsed Verilog modules on both sides (got {devices}); behavioural "
            "references always run step-wise"
        )

    if isinstance(dut, VModule):
        dut = VerilogDevice(dut)
    if isinstance(reference, VModule):
        reference = VerilogDevice(reference)

    report = SimulationReport(total_points=len(testbench.points))
    try:
        dut.reset_pulse(testbench.reset, testbench.clock, testbench.reset_cycles)
        reference.reset_pulse(testbench.reset, testbench.clock, testbench.reset_cycles)

        observed = testbench.observed_outputs
        if observed is None:
            observed = reference.output_names()

        for index, point in enumerate(testbench.points):
            dut.drive(point.inputs)
            reference.drive(point.inputs)
            dut.tick(testbench.clock, point.clock_cycles)
            reference.tick(testbench.clock, point.clock_cycles)
            if not point.check:
                # Unchecked points trigger no reads, so force the deferred
                # stimulus to settle before the next point overwrites it
                # (latch-like designs are sensitive to the settle sequence).
                dut.flush()
                reference.flush()
                continue
            report.checked_points += 1
            point_failed = False
            for signal in observed:
                expected = reference.read(signal)
                actual = dut.read(signal)
                if expected != actual:
                    point_failed = True
                    if len(report.mismatches) < testbench.max_mismatches:
                        report.mismatches.append(
                            Mismatch(index, signal, dict(point.inputs), expected, actual, point.comment)
                        )
            if point_failed:
                report.failed_points += 1
    except SimulationError as exc:
        report.runtime_error = str(exc)
    return report
