"""Baselines: zero-shot generation (Table I / Fig. 1) and an AutoChip-style
direct-Verilog reflection loop (Table IV)."""

from repro.baselines.autochip import AutoChip, AutoChipResult
from repro.baselines.zero_shot import ZeroShotOutcome, ZeroShotRunner

__all__ = ["ZeroShotRunner", "ZeroShotOutcome", "AutoChip", "AutoChipResult"]
